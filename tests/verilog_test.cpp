#include <gtest/gtest.h>

#include "ac/transform.hpp"
#include "energy/op_models.hpp"
#include "helpers.hpp"
#include "hw/generator.hpp"
#include "hw/netlist_energy.hpp"
#include "hw/verilog.hpp"

namespace problp::hw {
namespace {

using ac::Circuit;
using ac::NodeId;

Circuit make_small_circuit() {
  Circuit c({2, 2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(1, 1);
  const NodeId t = c.add_parameter(0.5);
  const NodeId u = c.add_parameter(0.25);
  const NodeId p = c.add_prod({x, t});
  const NodeId q = c.add_prod({y, u});
  c.set_root(c.add_sum({p, q}));
  return c;
}

TEST(Verilog, FixedEmissionStructure) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::string v = emit_fixed_verilog(netlist, lowprec::FixedFormat{1, 7});
  // Operator library present and bound.
  EXPECT_NE(v.find("module fx_add"), std::string::npos);
  EXPECT_NE(v.find("module fx_mul"), std::string::npos);
  EXPECT_EQ(v.find("ADD_MODULE"), std::string::npos);  // placeholders resolved
  EXPECT_EQ(v.find("MUL_MODULE"), std::string::npos);
  // Top module with clocked registers and the output bus.
  EXPECT_NE(v.find("module problp_ac_top"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("output [7:0] pr_out"), std::string::npos);
  // Quantised constant 0.5 at F=7 is 8'h40.
  EXPECT_NE(v.find("8'h40"), std::string::npos);
  // Round-to-nearest-even logic present in the multiplier.
  EXPECT_NE(v.find("sticky"), std::string::npos);
}

TEST(Verilog, FloatEmissionStructure) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::string v = emit_float_verilog(netlist, lowprec::FloatFormat{6, 9});
  EXPECT_NE(v.find("module fl_add"), std::string::npos);
  EXPECT_NE(v.find("module fl_mul"), std::string::npos);
  EXPECT_EQ(v.find("ADD_MODULE"), std::string::npos);
  EXPECT_NE(v.find("output [14:0] pr_out"), std::string::npos);  // E+M = 15 bits
  // 0.5 in fl<6,9>: exponent field = bias-1 = 30, mantissa 0 -> 15'h3c00.
  EXPECT_NE(v.find("15'h3c00"), std::string::npos);
}

TEST(Verilog, OneInstancePerOperator) {
  Rng rng(131);
  test::RandomCircuitSpec spec;
  spec.num_operators = 20;
  const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const Netlist netlist = generate_netlist(binary);
  const NetlistStats stats = netlist.stats();
  const std::string v = emit_fixed_verilog(netlist, lowprec::FixedFormat{10, 10});
  std::size_t count = 0;
  for (std::size_t pos = v.find(" u"); pos != std::string::npos; pos = v.find(" u", pos + 1)) {
    // Instance names are " u<N>(...)" in the datapath body.
    if (std::isdigit(static_cast<unsigned char>(v[pos + 2]))) ++count;
  }
  EXPECT_EQ(count, stats.adders + stats.multipliers + stats.maxes);
}

TEST(Verilog, TruncationModeOmitsRounding) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  VerilogOptions options;
  options.rounding = lowprec::RoundingMode::kTruncate;
  const std::string v = emit_fixed_verilog(netlist, lowprec::FixedFormat{1, 7}, options);
  EXPECT_EQ(v.find("sticky"), std::string::npos);
}

TEST(Verilog, BalancedModuleDelimiters) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::vector<std::string> emissions = {
      emit_fixed_verilog(netlist, lowprec::FixedFormat{1, 7}),
      emit_float_verilog(netlist, lowprec::FloatFormat{6, 9})};
  for (const std::string& v : emissions) {
    std::size_t modules = 0;
    std::size_t endmodules = 0;
    for (std::size_t pos = v.find("module "); pos != std::string::npos;
         pos = v.find("module ", pos + 1)) {
      if (pos == 0 || v[pos - 1] == '\n') ++modules;
    }
    for (std::size_t pos = v.find("endmodule"); pos != std::string::npos;
         pos = v.find("endmodule", pos + 1)) {
      ++endmodules;
    }
    EXPECT_EQ(modules, endmodules);
    std::size_t begins = 0;
    std::size_t ends = 0;
    for (std::size_t pos = v.find("begin"); pos != std::string::npos; pos = v.find("begin", pos + 1))
      ++begins;
    for (std::size_t pos = v.find(" end"); pos != std::string::npos; pos = v.find(" end", pos + 1)) {
      if (v.compare(pos, 9, " endmodule") != 0) ++ends;
    }
    EXPECT_GE(ends, begins > 0 ? 1u : 0u);
  }
}

TEST(NetlistEnergy, BreakdownMath) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const NetlistStats stats = netlist.stats();
  NetlistEnergyOptions options;
  options.synthesis_efficiency = 1.0;
  options.register_fj_per_bit = 2.0;
  const auto e = fixed_netlist_energy(netlist, lowprec::FixedFormat{1, 7}, options);
  const double ops = static_cast<double>(stats.adders) * energy::fixed_add_fj(8) +
                     static_cast<double>(stats.multipliers) * energy::fixed_mul_fj(8);
  EXPECT_DOUBLE_EQ(e.operator_fj, ops);
  EXPECT_DOUBLE_EQ(e.register_fj, static_cast<double>(stats.total_registers()) * 8 * 2.0);
  EXPECT_DOUBLE_EQ(e.total_fj(), e.operator_fj + e.register_fj);
}

TEST(NetlistEnergy, SynthesisEfficiencyScalesOperatorsOnly) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  NetlistEnergyOptions half;
  half.synthesis_efficiency = 0.5;
  NetlistEnergyOptions full;
  full.synthesis_efficiency = 1.0;
  const auto eh = float_netlist_energy(netlist, lowprec::FloatFormat{8, 13}, half);
  const auto ef = float_netlist_energy(netlist, lowprec::FloatFormat{8, 13}, full);
  EXPECT_DOUBLE_EQ(eh.operator_fj * 2.0, ef.operator_fj);
  EXPECT_DOUBLE_EQ(eh.register_fj, ef.register_fj);
}

}  // namespace
}  // namespace problp::hw
