#include <cmath>

#include <gtest/gtest.h>

#include "ac/transform.hpp"
#include "energy/circuit_energy.hpp"
#include "energy/op_models.hpp"
#include "helpers.hpp"

namespace problp::energy {
namespace {

TEST(OpModels, Table1Formulas) {
  // Spot values straight from Table 1.
  EXPECT_DOUBLE_EQ(fixed_add_fj(16), 7.8 * 16);
  EXPECT_DOUBLE_EQ(fixed_mul_fj(16), 1.9 * 256 * 4);
  EXPECT_DOUBLE_EQ(float_add_fj(23), 44.74 * 24);
  EXPECT_NEAR(float_mul_fj(23), 2.9 * 24 * 24 * std::log2(24.0), 1e-9);
}

TEST(OpModels, MonotoneInWidth) {
  for (int n = 2; n < 64; ++n) {
    EXPECT_LT(fixed_add_fj(n), fixed_add_fj(n + 1));
    EXPECT_LT(fixed_mul_fj(n), fixed_mul_fj(n + 1));
    EXPECT_LT(float_add_fj(n), float_add_fj(n + 1));
    EXPECT_LT(float_mul_fj(n), float_mul_fj(n + 1));
  }
}

TEST(OpModels, CrossoverFixedMultiplierOvertakesFloatAdder) {
  // The shape that drives representation choice: fixed multipliers grow
  // quadratically, float adders linearly in M.
  EXPECT_LT(fixed_mul_fj(8), float_mul_fj(8));   // same nominal width: float pays overhead
  EXPECT_GT(fixed_mul_fj(32), float_mul_fj(14));  // wide fixed loses to narrow float
}

TEST(OpModels, WidthHelpers) {
  EXPECT_EQ(fixed_width_bits(lowprec::FixedFormat{1, 15}), 16);
  EXPECT_EQ(float_width_bits(lowprec::FloatFormat{8, 23}), 31);  // no sign bit
}

TEST(Census, CountsLiveOperatorsOnly) {
  ac::Circuit c({2});
  const ac::NodeId x = c.add_indicator(0, 0);
  const ac::NodeId y = c.add_indicator(0, 1);
  const ac::NodeId t = c.add_parameter(0.5);
  c.add_prod({x, y});  // dead
  const ac::NodeId p = c.add_prod({x, t});
  const ac::NodeId s = c.add_sum({p, y});
  c.set_root(s);
  const OperatorCensus census = OperatorCensus::of(c);
  EXPECT_EQ(census.adders, 1u);
  EXPECT_EQ(census.multipliers, 1u);
  EXPECT_EQ(census.maxes, 0u);
  EXPECT_EQ(census.total(), 2u);
}

TEST(Census, RequiresBinary) {
  ac::Circuit c({2});
  const ac::NodeId a = c.add_parameter(0.1);
  const ac::NodeId b = c.add_parameter(0.2);
  const ac::NodeId d = c.add_parameter(0.3);
  c.set_root(c.add_sum({a, b, d}));
  EXPECT_THROW(OperatorCensus::of(c), InvalidArgument);
}

TEST(CircuitEnergy, SumsOperatorEnergies) {
  Rng rng(101);
  test::RandomCircuitSpec spec;
  spec.num_operators = 30;
  const ac::Circuit c = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const OperatorCensus census = OperatorCensus::of(c);
  const lowprec::FixedFormat fx{1, 15};
  const double expected = static_cast<double>(census.adders) * fixed_add_fj(16) +
                          static_cast<double>(census.multipliers) * fixed_mul_fj(16);
  EXPECT_DOUBLE_EQ(fixed_energy_fj(census, fx), expected);

  const lowprec::FloatFormat fl{8, 13};
  const double expected_fl = static_cast<double>(census.adders) * float_add_fj(13) +
                             static_cast<double>(census.multipliers) * float_mul_fj(13);
  EXPECT_DOUBLE_EQ(float_energy_fj(census, fl), expected_fl);
}

TEST(CircuitEnergy, Float32ReferenceUsesM23) {
  OperatorCensus census;
  census.adders = 10;
  census.multipliers = 5;
  EXPECT_DOUBLE_EQ(float32_reference_fj(census),
                   10 * float_add_fj(23) + 5 * float_mul_fj(23));
}

TEST(CircuitEnergy, NarrowFixedBeats32bFloat) {
  // The headline claim of Table 2: selected low-precision fixed point is
  // well below the 32-bit float reference on the same circuit.
  OperatorCensus census;
  census.adders = 100;
  census.multipliers = 100;
  const double fixed16 = fixed_energy_fj(census, lowprec::FixedFormat{1, 15});
  EXPECT_LT(fixed16, 0.5 * float32_reference_fj(census));
}

TEST(CircuitEnergy, UnitConversion) {
  EXPECT_DOUBLE_EQ(fj_to_nj(1e6), 1.0);
}

}  // namespace
}  // namespace problp::energy
