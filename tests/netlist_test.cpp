#include <gtest/gtest.h>

#include "hw/netlist.hpp"

namespace problp::hw {
namespace {

TEST(Netlist, BuildsStagedPipeline) {
  Netlist n({2});
  const WireId a = n.add_indicator_input(0, 0, "a");
  const WireId b = n.add_constant_input(0.5, "b");
  EXPECT_EQ(n.wire(a).stage, 0);
  const WireId p = n.add_operator(CellKind::kMul, a, b, "p");
  EXPECT_EQ(n.wire(p).stage, 1);
  const WireId d = n.add_register(b, "b_d1");
  EXPECT_EQ(n.wire(d).stage, 1);
  const WireId s = n.add_operator(CellKind::kAdd, p, d, "s");
  EXPECT_EQ(n.wire(s).stage, 2);
  n.set_output(s);
  EXPECT_EQ(n.latency(), 2);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, RejectsMisalignedOperator) {
  Netlist n({2});
  const WireId a = n.add_indicator_input(0, 0, "a");
  const WireId b = n.add_constant_input(0.5, "b");
  const WireId p = n.add_operator(CellKind::kMul, a, b, "p");  // stage 1
  EXPECT_THROW(n.add_operator(CellKind::kAdd, p, a, "bad"), InvalidArgument);
}

TEST(Netlist, InputValidation) {
  Netlist n({2});
  EXPECT_THROW(n.add_indicator_input(1, 0, "x"), InvalidArgument);
  EXPECT_THROW(n.add_indicator_input(0, 5, "x"), InvalidArgument);
  const WireId a = n.add_indicator_input(0, 0, "a");
  EXPECT_THROW(n.add_operator(CellKind::kRegister, a, a, "r"), InvalidArgument);
  EXPECT_THROW(n.add_operator(CellKind::kAdd, a, 99, "bad"), InvalidArgument);
  EXPECT_THROW(n.set_output(99), InvalidArgument);
  EXPECT_THROW(n.latency(), InvalidArgument);  // no output yet
}

TEST(Netlist, StatsBreakdown) {
  Netlist n({2});
  const WireId a = n.add_indicator_input(0, 0, "a");
  const WireId b = n.add_constant_input(0.5, "b");
  const WireId p = n.add_operator(CellKind::kMul, a, b, "p");
  const WireId d1 = n.add_register(a, "a_d1");
  const WireId s = n.add_operator(CellKind::kMax, p, d1, "s");
  n.set_output(s);
  const NetlistStats stats = n.stats();
  EXPECT_EQ(stats.multipliers, 1u);
  EXPECT_EQ(stats.maxes, 1u);
  EXPECT_EQ(stats.adders, 0u);
  EXPECT_EQ(stats.alignment_registers, 1u);
  EXPECT_EQ(stats.pipeline_registers, 2u);  // one per operator
  EXPECT_EQ(stats.total_registers(), 3u);
  EXPECT_EQ(stats.latency_cycles, 2);
  EXPECT_EQ(stats.indicator_inputs, 1u);
  EXPECT_EQ(stats.constant_inputs, 1u);
}

}  // namespace
}  // namespace problp::hw
