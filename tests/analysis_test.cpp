#include <algorithm>

#include <gtest/gtest.h>

#include "ac/analysis.hpp"
#include "ac/evaluator.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

TEST(MaxAnalysis, EqualsAllIndicatorsOneEvaluation) {
  Rng rng(61);
  test::RandomCircuitSpec spec;
  spec.num_operators = 25;
  const Circuit c = test::make_random_circuit(spec, rng);
  const auto maxima = max_value_analysis(c);
  const auto direct = evaluate_all_double(c, all_indicators_one(c));
  ASSERT_EQ(maxima.size(), direct.size());
  for (std::size_t i = 0; i < maxima.size(); ++i) EXPECT_DOUBLE_EQ(maxima[i], direct[i]);
}

TEST(MaxAnalysis, DominatesEveryAssignment) {
  // Monotonicity (§3.1.1): node values under any indicator assignment never
  // exceed the all-ones evaluation.
  Rng rng(62);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = test::make_random_circuit(spec, rng);
    const auto maxima = max_value_analysis(c);
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const auto values = evaluate_all_double(c, a);
      for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_LE(values[i], maxima[i] + 1e-12) << "trial=" << trial << " node=" << i;
      }
    }
  }
}

TEST(MinAnalysis, LowerBoundsEveryPositiveValue) {
  // §3.1.4: the min analysis lower-bounds the smallest positive value any
  // node takes over all indicator assignments.
  Rng rng(63);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = test::make_random_circuit(spec, rng);
    const auto minima = min_value_analysis(c);
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const auto values = evaluate_all_double(c, a);
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] > 0.0) {
          EXPECT_GE(values[i], minima[i] * (1.0 - 1e-12))
              << "trial=" << trial << " node=" << i;
        }
      }
    }
  }
}

TEST(MinAnalysis, HandComputedExample) {
  // root = (λ0*0.2 + λ1*0.5): max = 0.7, min positive = 0.2.
  Circuit c({2});
  const NodeId p0 = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.2)});
  const NodeId p1 = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.5)});
  c.set_root(c.add_sum({p0, p1}));
  const RangeAnalysis r = analyze_range(c);
  EXPECT_DOUBLE_EQ(r.root_max, 0.7);
  EXPECT_DOUBLE_EQ(r.root_min, 0.2);
}

TEST(MinAnalysis, SkipsZeroParameters) {
  // A zero parameter cannot be the "smallest positive" term of a sum.
  Circuit c({2});
  const NodeId z = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.0)});
  const NodeId p = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.4)});
  c.set_root(c.add_sum({z, p}));
  const RangeAnalysis r = analyze_range(c);
  EXPECT_DOUBLE_EQ(r.root_min, 0.4);
}

TEST(MinAnalysis, MaxNodesLowerBoundSound) {
  Circuit c({2});
  const NodeId a = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.2)});
  const NodeId b = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.5)});
  c.set_root(c.add_max({a, b}));
  const auto minima = min_value_analysis(c);
  // The smallest positive value of the max node is attained when an
  // indicator zeroes the larger branch, leaving max = 0.2 — so the analysis
  // must report a lower bound <= 0.2 (min over positive child minima, not
  // max of minima).
  const auto full = test::all_partial_assignments(c.cardinalities());
  double smallest = std::numeric_limits<double>::infinity();
  for (const auto& a2 : full) {
    const double v = evaluate(c, a2);
    if (v > 0.0) smallest = std::min(smallest, v);
  }
  EXPECT_LE(minima[static_cast<std::size_t>(c.root())], smallest + 1e-15);
}

TEST(Analysis, BnCompiledRootIsOneAtAllOnes) {
  // For a network polynomial, the all-indicators-one evaluation is the sum
  // over all assignments == 1.
  Circuit c({2});
  const NodeId ph = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.7)});
  const NodeId pt = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.3)});
  c.set_root(c.add_sum({ph, pt}));
  EXPECT_DOUBLE_EQ(analyze_range(c).root_max, 1.0);
}

}  // namespace
}  // namespace problp::ac
