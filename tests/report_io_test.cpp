#include <algorithm>

#include <gtest/gtest.h>

#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "problp/report_io.hpp"
#include "util/strings.hpp"

namespace problp {
namespace {

std::vector<ReportRow> make_rows() {
  bn::RandomNetworkSpec spec;
  spec.num_variables = 5;
  Rng rng(161);
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const Framework framework(compile::compile_network(network));

  std::vector<ReportRow> rows;
  {
    ReportRow row;
    row.benchmark_name = "demo";
    row.analysis = framework.analyze(
        {errormodel::QueryType::kMarginal, errormodel::ToleranceKind::kAbsolute, 0.01});
    row.observed_max_error = 1.5e-4;
    row.netlist_energy_nj = 0.123;
    rows.push_back(row);
  }
  {
    ReportRow row;
    row.benchmark_name = "demo";
    row.analysis = framework.analyze(
        {errormodel::QueryType::kConditional, errormodel::ToleranceKind::kRelative, 0.01});
    rows.push_back(row);  // unmeasured: no observed/netlist values
  }
  return rows;
}

TEST(ReportIo, CsvShape) {
  const std::string csv = to_csv(make_rows());
  const auto lines = split(trim(csv), '\n');
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  EXPECT_TRUE(starts_with(lines[0], "benchmark,query,tolerance_kind"));
  // Every row has exactly 15 commas (16 columns).
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), 15) << lines[i];
  }
  EXPECT_NE(csv.find("demo,marginal,absolute,0.01,1,"), std::string::npos);
  // The conditional+relative row must mark fixed infeasible.
  EXPECT_NE(csv.find("demo,conditional,relative,0.01,0,"), std::string::npos);
}

TEST(ReportIo, CsvOmitsUnmeasuredValues) {
  const std::string csv = to_csv(make_rows());
  const auto lines = split(trim(csv), '\n');
  // Second data row carries empty observed/netlist cells (trailing ",,").
  EXPECT_NE(lines[2].find("float,,"), std::string::npos);
}

TEST(ReportIo, MarkdownShape) {
  const std::string md = to_markdown(make_rows());
  const auto lines = split(trim(md), '\n');
  ASSERT_EQ(lines.size(), 4u);  // header, rule, 2 rows
  EXPECT_TRUE(starts_with(lines[0], "| AC |"));
  EXPECT_TRUE(starts_with(lines[1], "|---"));
  EXPECT_NE(md.find("**fixed**"), std::string::npos);
  EXPECT_NE(md.find("**float**"), std::string::npos);
  EXPECT_NE(md.find("1.5e-04"), std::string::npos);
}

}  // namespace
}  // namespace problp
