#include <gtest/gtest.h>

#include "ac/dot.hpp"
#include "ac/evaluator.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

// The network polynomial of a coin: root = λ_h * 0.7 + λ_t * 0.3.
Circuit make_coin_circuit() {
  Circuit c({2});
  const NodeId ph = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.7)});
  const NodeId pt = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.3)});
  c.set_root(c.add_sum({ph, pt}));
  return c;
}

TEST(Evaluator, CoinQueries) {
  const Circuit c = make_coin_circuit();
  PartialAssignment unobserved(1);
  EXPECT_DOUBLE_EQ(evaluate(c, unobserved), 1.0);
  PartialAssignment heads(1);
  heads[0] = 0;
  EXPECT_DOUBLE_EQ(evaluate(c, heads), 0.7);
  PartialAssignment tails(1);
  tails[0] = 1;
  EXPECT_DOUBLE_EQ(evaluate(c, tails), 0.3);
}

TEST(Evaluator, IndicatorSemantics) {
  PartialAssignment a(2);
  a[0] = 1;
  EXPECT_FALSE(indicator_is_one(a, 0, 0));
  EXPECT_TRUE(indicator_is_one(a, 0, 1));
  EXPECT_TRUE(indicator_is_one(a, 1, 0));  // unobserved: all indicators 1
}

TEST(Evaluator, MaxNodes) {
  Circuit c({2});
  const NodeId a = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.6)});
  const NodeId b = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.4)});
  c.set_root(c.add_max({a, b}));
  PartialAssignment unobserved(1);
  EXPECT_DOUBLE_EQ(evaluate(c, unobserved), 0.6);
  PartialAssignment second(1);
  second[0] = 1;
  EXPECT_DOUBLE_EQ(evaluate(c, second), 0.4);
}

TEST(Evaluator, AllNodesReturned) {
  const Circuit c = make_coin_circuit();
  const auto values = evaluate_all_double(c, all_indicators_one(c));
  EXPECT_EQ(values.size(), c.num_nodes());
  EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(c.root())], 1.0);
}

TEST(Evaluator, SizeMismatchRejected) {
  const Circuit c = make_coin_circuit();
  EXPECT_THROW(evaluate(c, PartialAssignment(3)), InvalidArgument);
}

TEST(Evaluator, NaryFoldMatchesPairwise) {
  // A 4-ary sum must equal the chained binary sums.
  Circuit c(std::vector<int>(4, 2));
  std::vector<NodeId> kids;
  for (int v = 0; v < 4; ++v) {
    kids.push_back(c.add_prod({c.add_indicator(v, 0), c.add_parameter(0.1 * (v + 1))}));
  }
  const NodeId nary = c.add_sum(kids);
  c.set_root(nary);
  PartialAssignment a(4);
  EXPECT_NEAR(evaluate(c, a), 0.1 + 0.2 + 0.3 + 0.4, 1e-15);
}

TEST(Dot, ContainsNodesAndEdges) {
  const Circuit c = make_coin_circuit();
  const std::string dot = to_dot(c, {"Coin"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lambda"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("Coin"), std::string::npos);
}

}  // namespace
}  // namespace problp::ac
