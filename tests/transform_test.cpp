#include <gtest/gtest.h>

#include "ac/analysis.hpp"
#include "ac/evaluator.hpp"
#include "ac/transform.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

TEST(Binarize, ProducesBinaryCircuit) {
  Rng rng(71);
  test::RandomCircuitSpec spec;
  spec.max_fanin = 6;
  spec.num_operators = 30;
  const Circuit c = test::make_random_circuit(spec, rng);
  for (auto style : {DecompositionStyle::kBalanced, DecompositionStyle::kChain}) {
    const BinarizeResult r = binarize(c, style);
    EXPECT_TRUE(r.circuit.is_binary());
    EXPECT_EQ(r.node_map.size(), c.num_nodes());
  }
}

TEST(Binarize, PreservesSemantics) {
  Rng rng(72);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.max_fanin = 5;
  spec.num_operators = 25;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = test::make_random_circuit(spec, rng);
    const Circuit balanced = binarize(c, DecompositionStyle::kBalanced).circuit;
    const Circuit chain = binarize(c, DecompositionStyle::kChain).circuit;
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const double expected = evaluate(c, a);
      EXPECT_NEAR(evaluate(balanced, a), expected, 1e-12 * (1.0 + expected));
      EXPECT_NEAR(evaluate(chain, a), expected, 1e-12 * (1.0 + expected));
    }
  }
}

TEST(Binarize, BalancedShallowerThanChain) {
  // A single 8-ary sum: balanced depth 3, chain depth 7.
  Circuit c(std::vector<int>(8, 2));
  std::vector<NodeId> kids;
  for (int v = 0; v < 8; ++v) kids.push_back(c.add_indicator(v, 0));
  c.set_root(c.add_sum(kids));
  const Circuit balanced = binarize(c, DecompositionStyle::kBalanced).circuit;
  const Circuit chain = binarize(c, DecompositionStyle::kChain).circuit;
  EXPECT_EQ(balanced.stats().depth, 3);
  EXPECT_EQ(chain.stats().depth, 7);
  // Same operator count either way: fanin-1 two-input operators.
  EXPECT_EQ(balanced.stats().num_sums, 7u);
  EXPECT_EQ(chain.stats().num_sums, 7u);
}

TEST(Binarize, FixedPointOfBinaryCircuit) {
  // Binarizing an already-binary circuit changes nothing structural.
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId t = c.add_parameter(0.5);
  c.set_root(c.add_prod({x, t}));
  const Circuit again = binarize(c).circuit;
  EXPECT_EQ(again.num_nodes(), c.num_nodes());
  EXPECT_EQ(again.stats().depth, c.stats().depth);
}

TEST(ToMaxCircuit, ReplacesSumsWithMaxes) {
  Circuit c({2});
  const NodeId p0 = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.3)});
  const NodeId p1 = c.add_prod({c.add_indicator(0, 1), c.add_parameter(0.7)});
  c.set_root(c.add_sum({p0, p1}));
  const Circuit m = to_max_circuit(c);
  const CircuitStats s = m.stats();
  EXPECT_EQ(s.num_sums, 0u);
  EXPECT_EQ(s.num_maxes, 1u);
  // Max-evaluation with all indicators one = the largest single term.
  EXPECT_DOUBLE_EQ(evaluate(m, all_indicators_one(m)), 0.7);
}

TEST(ToMaxCircuit, MpeOfNetworkPolynomial) {
  // Coin-pair polynomial: MPE value = max joint probability.
  Circuit c({2, 2});
  std::vector<NodeId> terms;
  const double p[2][2] = {{0.42, 0.18}, {0.28, 0.12}};  // independent 0.7/0.3 x 0.6/0.4
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      terms.push_back(c.add_prod(
          {c.add_indicator(0, i), c.add_indicator(1, j), c.add_parameter(p[i][j])}));
    }
  }
  c.set_root(c.add_sum(terms));
  const Circuit m = to_max_circuit(c);
  EXPECT_DOUBLE_EQ(evaluate(m, all_indicators_one(m)), 0.42);
  PartialAssignment a(2);
  a[0] = 1;  // condition on first coin = tails
  EXPECT_DOUBLE_EQ(evaluate(m, a), 0.28);
}

}  // namespace
}  // namespace problp::ac
