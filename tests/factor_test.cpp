#include <gtest/gtest.h>

#include "bn/factor.hpp"

namespace problp::bn {
namespace {

using F = FactorTable<double>;

TEST(FactorTable, ScalarBasics) {
  const F f = F::scalar(3.5);
  EXPECT_TRUE(f.is_scalar());
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], 3.5);
}

TEST(FactorTable, IndexingLastVarFastest) {
  F f({0, 1}, {2, 3});
  EXPECT_EQ(f.size(), 6u);
  // at({a, b}) with b fastest: index = a*3 + b.
  f.at({1, 2}) = 7.0;
  EXPECT_DOUBLE_EQ(f[5], 7.0);
  f.at({0, 1}) = 2.0;
  EXPECT_DOUBLE_EQ(f[1], 2.0);
}

TEST(FactorTable, IndexOfFullAssignment) {
  F f({0, 2}, {2, 2});
  const std::vector<int> full = {1, 99, 0};  // var 1 not in scope
  EXPECT_EQ(f.index_of(full), 2u);           // 1*2 + 0
}

TEST(FactorTable, RejectsUnsortedVars) {
  EXPECT_THROW(F({1, 0}, {2, 2}), InvalidArgument);
  EXPECT_THROW(F({0, 0}, {2, 2}), InvalidArgument);
}

TEST(FactorTable, ProductDisjointScopes) {
  F a({0}, {2});
  a.at({0}) = 2.0;
  a.at({1}) = 3.0;
  F b({1}, {2});
  b.at({0}) = 5.0;
  b.at({1}) = 7.0;
  const F p = F::product(a, b, [](double x, double y) { return x * y; });
  ASSERT_EQ(p.vars().size(), 2u);
  EXPECT_DOUBLE_EQ(p.at({0, 0}), 10.0);
  EXPECT_DOUBLE_EQ(p.at({0, 1}), 14.0);
  EXPECT_DOUBLE_EQ(p.at({1, 0}), 15.0);
  EXPECT_DOUBLE_EQ(p.at({1, 1}), 21.0);
}

TEST(FactorTable, ProductSharedScope) {
  F a({0, 1}, {2, 2});
  F b({1, 2}, {2, 2});
  for (int i = 0; i < 4; ++i) {
    a[static_cast<std::size_t>(i)] = i + 1.0;        // a(x0,x1) = 1..4
    b[static_cast<std::size_t>(i)] = 10.0 * (i + 1);  // b(x1,x2) = 10..40
  }
  const F p = F::product(a, b, [](double x, double y) { return x * y; });
  ASSERT_EQ(p.vars().size(), 3u);
  // p(x0=1, x1=0, x2=1) = a(1,0) * b(0,1) = 3 * 20 = 60.
  EXPECT_DOUBLE_EQ(p.at({1, 0, 1}), 60.0);
  // p(x0=0, x1=1, x2=0) = a(0,1) * b(1,0) = 2 * 30 = 60.
  EXPECT_DOUBLE_EQ(p.at({0, 1, 0}), 60.0);
}

TEST(FactorTable, ProductWithScalar) {
  F a({0}, {3});
  a.at({0}) = 1.0;
  a.at({1}) = 2.0;
  a.at({2}) = 3.0;
  const F p = F::product(F::scalar(10.0), a, [](double x, double y) { return x * y; });
  EXPECT_DOUBLE_EQ(p.at({2}), 30.0);
}

TEST(FactorTable, ProductCardinalityClash) {
  F a({0}, {2});
  F b({0}, {3});
  EXPECT_THROW(F::product(a, b, [](double x, double y) { return x * y; }), InvalidArgument);
}

TEST(FactorTable, EliminateMiddleVariable) {
  F f({0, 1, 2}, {2, 3, 2});
  // f(a, b, c) = 100a + 10b + c
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 2; ++c) f.at({a, b, c}) = 100.0 * a + 10.0 * b + c;
  const F g = f.eliminate(1, [](std::span<const double> grp) {
    double s = 0.0;
    for (double x : grp) s += x;
    return s;
  });
  ASSERT_EQ(g.vars().size(), 2u);
  // sum_b f(a, b, c) = 3*(100a + c) + 30.
  EXPECT_DOUBLE_EQ(g.at({0, 0}), 30.0);
  EXPECT_DOUBLE_EQ(g.at({1, 1}), 333.0);
}

TEST(FactorTable, EliminateToScalar) {
  F f({4}, {3});
  f.at({0}) = 1.0;
  f.at({1}) = 2.0;
  f.at({2}) = 4.0;
  const F g = f.eliminate(4, [](std::span<const double> grp) {
    double s = 0.0;
    for (double x : grp) s += x;
    return s;
  });
  EXPECT_TRUE(g.is_scalar());
  EXPECT_DOUBLE_EQ(g[0], 7.0);
}

TEST(FactorTable, GroupOrderIsStateOrder) {
  // eliminate() must present group[s] == entry with var = state s.
  F f({0}, {3});
  f.at({0}) = 5.0;
  f.at({1}) = 6.0;
  f.at({2}) = 7.0;
  const F g = f.eliminate(0, [](std::span<const double> grp) {
    EXPECT_DOUBLE_EQ(grp[0], 5.0);
    EXPECT_DOUBLE_EQ(grp[1], 6.0);
    EXPECT_DOUBLE_EQ(grp[2], 7.0);
    return grp[2];
  });
  EXPECT_DOUBLE_EQ(g[0], 7.0);
}

TEST(FactorTable, RestrictVar) {
  F f({0, 1}, {2, 3});
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 3; ++b) f.at({a, b}) = 10.0 * a + b;
  const F g = f.restrict_var(1, 2);
  ASSERT_EQ(g.vars().size(), 1u);
  EXPECT_DOUBLE_EQ(g.at({0}), 2.0);
  EXPECT_DOUBLE_EQ(g.at({1}), 12.0);
  EXPECT_THROW(f.restrict_var(1, 3), InvalidArgument);
  EXPECT_THROW(f.restrict_var(7, 0), InvalidArgument);
}

TEST(FactorTable, NodeIdInstantiation) {
  // The compiler instantiates FactorTable with non-arithmetic payloads.
  FactorTable<int> f({0}, {2});
  f.at({0}) = 42;
  f.at({1}) = 43;
  const auto g = f.eliminate(0, [](std::span<const int> grp) { return grp[0] + grp[1]; });
  EXPECT_EQ(g[0], 85);
}

}  // namespace
}  // namespace problp::bn
