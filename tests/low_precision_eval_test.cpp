#include <cmath>

#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace problp::ac {
namespace {

using lowprec::FixedFormat;
using lowprec::FloatFormat;

TEST(LowPrecisionEval, HighPrecisionMatchesDoubleClosely) {
  Rng rng(51);
  test::RandomCircuitSpec spec;
  spec.num_operators = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = test::make_random_circuit(spec, rng);
    const auto assignments = test::all_partial_assignments(c.cardinalities());
    for (const auto& a : assignments) {
      const double exact = evaluate(c, a);
      if (exact > 1e3) continue;  // fixed range in this test is I=12
      const auto fx = evaluate_fixed(c, a, FixedFormat{12, 48});
      EXPECT_NEAR(fx.value, exact, 1e-9);
      const auto fl = evaluate_float(c, a, FloatFormat{11, 52});
      EXPECT_NEAR(fl.value, exact, std::abs(exact) * 1e-12 + 1e-300);
    }
  }
}

TEST(LowPrecisionEval, FlagsReportOverflow) {
  Circuit c({2});
  const NodeId t = c.add_parameter(1.9);
  c.set_root(c.add_prod({t, c.add_parameter(1.8)}));  // 3.42 overflows I=1
  const auto r = evaluate_fixed(c, PartialAssignment(1), FixedFormat{1, 8});
  EXPECT_TRUE(r.flags.overflow);
}

TEST(LowPrecisionEval, FlagsReportUnderflow) {
  Circuit c({2});
  const NodeId t = c.add_parameter(1e-3);
  c.set_root(c.add_prod({t, t}));  // 1e-6 underflows E=4 (min normal 2^-6)
  const auto r = evaluate_float(c, PartialAssignment(1), FloatFormat{4, 8});
  EXPECT_TRUE(r.flags.underflow);
}

TEST(LowPrecisionEval, IndicatorsExact) {
  // A bare indicator chain evaluates exactly in any format.
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  c.set_root(c.add_sum({x, y}));
  PartialAssignment a(1);
  a[0] = 0;
  const auto fx = evaluate_fixed(c, a, FixedFormat{1, 2});
  EXPECT_DOUBLE_EQ(fx.value, 1.0);
  EXPECT_FALSE(fx.flags.any());
  const auto fl = evaluate_float(c, a, FloatFormat{4, 2});
  EXPECT_DOUBLE_EQ(fl.value, 1.0);
  EXPECT_FALSE(fl.flags.any());
}

TEST(LowPrecisionEval, CoarseFixedQuantisesLeaves) {
  Circuit c({2});
  c.set_root(c.add_parameter(0.3));
  // F=2: 0.3 rounds to 0.25.
  const auto r = evaluate_fixed(c, PartialAssignment(1), FixedFormat{1, 2});
  EXPECT_DOUBLE_EQ(r.value, 0.25);
}

TEST(LowPrecisionEval, ErrorsGrowAsBitsShrink) {
  Rng rng(52);
  test::RandomCircuitSpec spec;
  spec.num_operators = 40;
  spec.p_sum = 0.6;
  const Circuit c = test::make_random_circuit(spec, rng);
  const auto a = all_indicators_one(c);
  const double exact = evaluate(c, a);
  double prev_err = std::numeric_limits<double>::infinity();
  // Mean over several formats must be monotone-ish; check endpoints only to
  // avoid flakiness: F=6 error >= F=30 error.
  const double err6 = std::abs(evaluate_fixed(c, a, FixedFormat{14, 6}).value - exact);
  const double err30 = std::abs(evaluate_fixed(c, a, FixedFormat{14, 30}).value - exact);
  EXPECT_LE(err30, err6 + 1e-12);
  (void)prev_err;
}

}  // namespace
}  // namespace problp::ac
