#include <cmath>

#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"
#include "hw/simulator.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

ac::Circuit compile_random_net(std::uint64_t seed, int num_vars = 6) {
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_vars;
  spec.max_parents = 2;
  Rng rng(seed);
  return compile::compile_network(bn::make_random_network(spec, rng));
}

TEST(Framework, AnalyzeMarginalAbsolute) {
  const Framework framework(compile_random_net(1));
  const AnalysisReport report =
      framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);
  ASSERT_TRUE(report.fixed_plan.feasible);
  ASSERT_TRUE(report.float_plan.feasible);
  EXPECT_LE(report.fixed_plan.predicted_bound, 0.01);
  EXPECT_LE(report.float_plan.predicted_bound, 0.01);
  // Selection = lower predicted energy.
  if (report.fixed_energy_nj <= report.float_energy_nj) {
    EXPECT_EQ(report.selected.kind, Representation::Kind::kFixed);
  } else {
    EXPECT_EQ(report.selected.kind, Representation::Kind::kFloat);
  }
  // Both candidates beat the 32-bit float reference.
  EXPECT_LT(std::min(report.fixed_energy_nj, report.float_energy_nj),
            report.float32_reference_nj);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(Framework, ConditionalRelativeAlwaysSelectsFloat) {
  // §3.2.2: "ProbLP will always choose float-pt for relative error in
  // conditional probability."
  const Framework framework(compile_random_net(2));
  const AnalysisReport report =
      framework.analyze({QueryType::kConditional, ToleranceKind::kRelative, 0.01});
  ASSERT_TRUE(report.any_feasible);
  EXPECT_FALSE(report.fixed_plan.feasible);
  EXPECT_EQ(report.selected.kind, Representation::Kind::kFloat);
  EXPECT_TRUE(std::isinf(report.fixed_energy_nj));
}

TEST(Framework, MpeUsesMaxCircuit) {
  const Framework framework(compile_random_net(3));
  const AnalysisReport report =
      framework.analyze({QueryType::kMpe, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);
  // The max-circuit has no adders; census must reflect maxes instead.
  EXPECT_EQ(report.census.adders, 0u);
  EXPECT_GT(report.census.maxes, 0u);
}

TEST(Framework, ObservedErrorsWithinTolerance) {
  const ac::Circuit circuit = compile_random_net(4, 5);
  const Framework framework(circuit);
  const double tol = 1e-3;
  const AnalysisReport report =
      framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, tol});
  ASSERT_TRUE(report.any_feasible);
  const auto assignments = test::all_partial_assignments(circuit.cardinalities());
  const ObservedError observed =
      measure_marginal_error(framework.binary_circuit(), assignments, report.selected);
  EXPECT_LE(observed.max_abs, tol);
  EXPECT_FALSE(observed.flags.overflow);
  EXPECT_GT(observed.count, 0u);
  EXPECT_LE(observed.mean_abs, observed.max_abs);
}

TEST(Framework, HardwareGenerationEndToEnd) {
  const ac::Circuit circuit = compile_random_net(5, 5);
  const Framework framework(circuit);
  const AnalysisReport report =
      framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);
  const HardwareReport hardware = framework.generate_hardware(report);
  EXPECT_FALSE(hardware.verilog.empty());
  EXPECT_GT(hardware.netlist_energy_nj, 0.0);
  EXPECT_EQ(hardware.stats.adders + hardware.stats.multipliers + hardware.stats.maxes,
            report.census.total());

  // The generated netlist computes exactly what the analysed circuit does.
  ASSERT_EQ(report.selected.kind, Representation::Kind::kFixed);
  hw::FixedNetlistSimulator sim(hardware.netlist, report.selected.fixed);
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    ac::PartialAssignment a(static_cast<std::size_t>(circuit.num_variables()));
    for (int v = 0; v < circuit.num_variables(); ++v) {
      if (rng.coin(0.5)) {
        a[static_cast<std::size_t>(v)] =
            rng.uniform_int(0, circuit.cardinalities()[static_cast<std::size_t>(v)] - 1);
      }
    }
    EXPECT_EQ(sim.evaluate(a),
              ac::evaluate_fixed(framework.binary_circuit(), a, report.selected.fixed).value);
  }
}

TEST(Framework, GenerateHardwareRejectsInfeasible) {
  const Framework framework(compile_random_net(6, 4));
  errormodel::SearchOptions search;
  search.max_fraction_bits = 4;
  search.max_mantissa_bits = 4;
  FrameworkOptions options;
  options.search = search;
  const Framework strict(compile_random_net(6, 4), options);
  const AnalysisReport report =
      strict.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-9});
  EXPECT_FALSE(report.any_feasible);
  EXPECT_THROW(strict.generate_hardware(report), InvalidArgument);
}

TEST(Framework, ChainDecompositionOptionRespected) {
  FrameworkOptions options;
  options.decomposition = ac::DecompositionStyle::kChain;
  const ac::Circuit circuit = compile_random_net(7, 5);
  const Framework chain(circuit, options);
  const Framework balanced(circuit);
  EXPECT_GE(chain.binary_circuit().stats().depth, balanced.binary_circuit().stats().depth);
}

TEST(Validation, ConditionalMeasurement) {
  const ac::Circuit circuit = compile_random_net(8, 5);
  const Framework framework(circuit);
  const AnalysisReport report =
      framework.analyze({QueryType::kConditional, ToleranceKind::kAbsolute, 1e-3});
  ASSERT_TRUE(report.any_feasible);
  std::vector<ac::PartialAssignment> evidences;
  for (const auto& a : test::all_partial_assignments(circuit.cardinalities())) {
    if (!a[0].has_value()) evidences.push_back(a);
    if (evidences.size() >= 50) break;
  }
  const ObservedError observed =
      measure_conditional_error(framework.binary_circuit(), 0, evidences, report.selected);
  EXPECT_GT(observed.count, 0u);
  EXPECT_LE(observed.max_abs, 1e-3);
}

TEST(Validation, RejectsObservedQueryVariable) {
  const ac::Circuit circuit = compile_random_net(9, 4);
  const Framework framework(circuit);
  ac::PartialAssignment a(static_cast<std::size_t>(circuit.num_variables()));
  a[0] = 0;
  Representation repr;
  repr.kind = Representation::Kind::kFixed;
  repr.fixed = lowprec::FixedFormat{1, 10};
  EXPECT_THROW(measure_conditional_error(framework.binary_circuit(), 0, {a}, repr),
               InvalidArgument);
}

}  // namespace
}  // namespace problp
