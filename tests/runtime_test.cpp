// The unified inference runtime: CompiledModel + InferenceSession.
//
// Contract under test (ISSUE 2 acceptance): session results are
// bit-identical to the pre-refactor evaluation paths — the ac/evaluator.hpp
// interpreter for exact queries, the one-shot evaluate_fixed/evaluate_float
// for low-precision queries (value AND sticky flags), in both single and
// batched forms, over random circuits, VE-compiled circuits, and
// NB-compiled circuits; the artifact survives a serialize -> load round
// trip; and many sessions can share one CompiledModel across threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "ac/evaluator.hpp"
#include "ac/low_precision_eval.hpp"
#include "ac/serialize.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "compile/naive_bayes_compiler.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"
#include "runtime/session.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;
using runtime::CompiledModel;
using runtime::InferenceSession;
using runtime::SessionOptions;

bool flags_equal(const lowprec::ArithFlags& a, const lowprec::ArithFlags& b) {
  return a.overflow == b.overflow && a.underflow == b.underflow &&
         a.invalid_input == b.invalid_input;
}

// A small VE-compiled circuit (the generic compiler's shapes).
ac::Circuit small_ve_circuit(std::uint64_t seed, int num_variables = 6) {
  Rng rng(seed);
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_variables;
  return compile::compile_network(bn::make_random_network(spec, rng));
}

// A small NB-compiled circuit (the paper's classifier shape).
ac::Circuit small_nb_circuit(std::uint64_t seed, int num_features = 4) {
  Rng rng(seed);
  bn::BayesianNetwork network;
  const int cls = network.add_variable("C", 3);
  network.set_cpt(cls, {}, rng.dirichlet(3, 1.0));
  for (int f = 0; f < num_features; ++f) {
    const int var = network.add_variable("F" + std::to_string(f), 2);
    std::vector<double> cpt;
    for (int c = 0; c < 3; ++c) {
      for (double v : rng.dirichlet(2, 1.0)) cpt.push_back(v);
    }
    network.set_cpt(var, {cls}, cpt);
  }
  network.validate();
  return compile::compile_naive_bayes(network, cls);
}

std::vector<ac::PartialAssignment> sampled_assignments(const std::vector<int>& cards,
                                                       std::size_t count, double p_observe,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ac::PartialAssignment> out;
  for (std::size_t i = 0; i < count; ++i) {
    ac::PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (rng.coin(p_observe)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

// ---- the Framework facade stays pinned to the pre-refactor pipeline -------

TEST(CompiledModel, FrameworkFacadeMatchesPreRefactorBinarization) {
  const ac::Circuit circuit = small_ve_circuit(11);
  const Framework framework(circuit);
  EXPECT_EQ(ac::to_text(framework.binary_circuit()),
            ac::to_text(ac::binarize(circuit, ac::DecompositionStyle::kBalanced).circuit));
  EXPECT_EQ(ac::to_text(framework.binary_max_circuit()),
            ac::to_text(ac::binarize(ac::to_max_circuit(circuit),
                                     ac::DecompositionStyle::kBalanced)
                            .circuit));
}

TEST(CompiledModel, CompileMatchesFrameworkAnalysis) {
  const ac::Circuit circuit = small_ve_circuit(12);
  const Framework framework(circuit);
  const auto model = CompiledModel::compile(circuit);
  for (const QuerySpec spec : {QuerySpec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01},
                               QuerySpec{QueryType::kConditional, ToleranceKind::kRelative, 0.01},
                               QuerySpec{QueryType::kMpe, ToleranceKind::kAbsolute, 0.01}}) {
    const AnalysisReport a = framework.analyze(spec);
    const AnalysisReport b = model->analyze(spec);
    EXPECT_EQ(a.any_feasible, b.any_feasible);
    EXPECT_EQ(a.fixed_plan.feasible, b.fixed_plan.feasible);
    EXPECT_EQ(a.float_plan.feasible, b.float_plan.feasible);
    EXPECT_EQ(a.fixed_plan.format, b.fixed_plan.format);
    EXPECT_EQ(a.float_plan.format, b.float_plan.format);
    EXPECT_EQ(a.fixed_energy_nj, b.fixed_energy_nj);
    EXPECT_EQ(a.float_energy_nj, b.float_energy_nj);
    EXPECT_EQ(a.to_string(), b.to_string());
  }
}

// ---- exact parity ----------------------------------------------------------

TEST(InferenceSession, ExactParityOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    test::RandomCircuitSpec spec;
    spec.num_variables = 3;
    spec.num_operators = 25;
    const ac::Circuit circuit = test::make_random_circuit(spec, rng);
    const auto model = CompiledModel::wrap(circuit);  // evaluate this arena verbatim
    InferenceSession session(model);

    const auto assignments = test::all_partial_assignments(circuit.cardinalities());
    // Single-query path: bit-identical to the interpreter.
    for (const auto& a : assignments) {
      EXPECT_EQ(session.marginal(a), ac::evaluate(circuit, a));
      EXPECT_FALSE(session.last_flags().any());
    }
    // Batched path: bit-identical to the singles.
    const std::vector<double>& batched = session.marginal(assignments);
    ASSERT_EQ(batched.size(), assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      EXPECT_EQ(batched[i], ac::evaluate(circuit, assignments[i]));
    }
  }
}

TEST(InferenceSession, ExactParityOnCompiledCircuits) {
  for (const ac::Circuit& source : {small_ve_circuit(21), small_nb_circuit(22)}) {
    const auto model = CompiledModel::compile(source);
    InferenceSession session(model);
    const auto assignments =
        sampled_assignments(source.cardinalities(), 64, 0.5, /*seed=*/33);
    const std::vector<double> batched = session.marginal(assignments);
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      const double expected = ac::evaluate(model->binary_circuit(), assignments[i]);
      EXPECT_EQ(session.marginal(assignments[i]), expected);
      EXPECT_EQ(batched[i], expected);
    }
  }
}

// ---- low-precision parity (values and sticky flags) ------------------------

TEST(InferenceSession, LowPrecisionParityIncludingFlags) {
  const ac::Circuit source = small_ve_circuit(31);
  const auto model = CompiledModel::compile(source);
  const ac::Circuit& binary = model->binary_circuit();
  const auto assignments = sampled_assignments(source.cardinalities(), 48, 0.5, 44);

  // Formats from comfortable to aggressive; the tiny ones force
  // overflow/underflow so flag parity is exercised, not vacuous.
  for (const lowprec::FixedFormat fmt :
       {lowprec::FixedFormat{1, 18}, lowprec::FixedFormat{1, 4}, lowprec::FixedFormat{0, 3}}) {
    InferenceSession lp(model, SessionOptions::low_precision(Representation::of(fmt)));
    lowprec::ArithFlags batch_flags;
    for (const auto& a : assignments) {
      const ac::LowPrecisionResult expected = ac::evaluate_fixed(binary, a, fmt);
      EXPECT_EQ(lp.marginal(a), expected.value);
      EXPECT_TRUE(flags_equal(lp.last_flags(), expected.flags));
      batch_flags.merge(expected.flags);
    }
    // Batched overload: values per query, flags merged across the batch.
    const std::vector<double> batched = lp.marginal(assignments);
    EXPECT_TRUE(flags_equal(lp.last_flags(), batch_flags));
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      EXPECT_EQ(batched[i], ac::evaluate_fixed(binary, assignments[i], fmt).value);
    }
  }
  for (const lowprec::FloatFormat fmt :
       {lowprec::FloatFormat{8, 12}, lowprec::FloatFormat{3, 4}, lowprec::FloatFormat{2, 2}}) {
    InferenceSession lp(model, SessionOptions::low_precision(Representation::of(fmt)));
    for (const auto& a : assignments) {
      const ac::LowPrecisionResult expected = ac::evaluate_float(binary, a, fmt);
      EXPECT_EQ(lp.marginal(a), expected.value);
      EXPECT_TRUE(flags_equal(lp.last_flags(), expected.flags));
    }
  }
}

TEST(InferenceSession, TruncateRoundingParity) {
  const ac::Circuit source = small_nb_circuit(35);
  const auto model = CompiledModel::compile(source);
  const lowprec::FixedFormat fmt{1, 9};
  InferenceSession lp(model, SessionOptions::low_precision(Representation::of(fmt),
                                                           lowprec::RoundingMode::kTruncate));
  const auto assignments = sampled_assignments(source.cardinalities(), 32, 0.5, 55);
  for (const auto& a : assignments) {
    EXPECT_EQ(lp.marginal(a),
              ac::evaluate_fixed(model->binary_circuit(), a, fmt,
                                 lowprec::RoundingMode::kTruncate)
                  .value);
  }
}

// ---- conditional and MPE queries -------------------------------------------

TEST(InferenceSession, ConditionalMatchesManualRatios) {
  const ac::Circuit source = small_nb_circuit(41);
  const auto model = CompiledModel::compile(source);
  const ac::Circuit& binary = model->binary_circuit();
  const int query_var = 0;  // the NB class variable
  auto assignments = sampled_assignments(source.cardinalities(), 32, 0.6, 66);
  for (auto& a : assignments) a[query_var].reset();

  InferenceSession exact(model);
  const lowprec::FloatFormat fmt{6, 8};
  InferenceSession lp(model, SessionOptions::low_precision(Representation::of(fmt)));

  for (const auto& e : assignments) {
    const double pe = ac::evaluate(binary, e);
    const std::vector<double> posterior = exact.conditional(query_var, e);
    const std::vector<double> lp_posterior = lp.conditional(query_var, e);
    if (!(pe > 0.0)) {
      EXPECT_TRUE(posterior.empty());
      continue;
    }
    const double pe_lp = ac::evaluate_float(binary, e, fmt).value;
    ASSERT_EQ(posterior.size(), static_cast<std::size_t>(source.cardinalities()[0]));
    for (int q = 0; q < source.cardinalities()[0]; ++q) {
      auto qe = e;
      qe[static_cast<std::size_t>(query_var)] = q;
      EXPECT_EQ(posterior[static_cast<std::size_t>(q)], ac::evaluate(binary, qe) / pe);
      if (pe_lp > 0.0) {
        ASSERT_FALSE(lp_posterior.empty());
        EXPECT_EQ(lp_posterior[static_cast<std::size_t>(q)],
                  ac::evaluate_float(binary, qe, fmt).value / pe_lp);
      }
    }
  }
  // Batched conditional == singles.
  const auto batched = exact.conditional(query_var, assignments);
  ASSERT_EQ(batched.size(), assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    EXPECT_EQ(batched[i], exact.conditional(query_var, assignments[i]));
  }
}

TEST(InferenceSession, ConditionalRejectsObservedQueryVar) {
  const auto model = CompiledModel::compile(small_nb_circuit(42));
  InferenceSession session(model);
  ac::PartialAssignment e(static_cast<std::size_t>(model->num_variables()));
  e[0] = 0;
  EXPECT_THROW(session.conditional(0, e), InvalidArgument);
  EXPECT_THROW(session.conditional(-1, e), InvalidArgument);
  EXPECT_THROW(session.conditional(model->num_variables(), e), InvalidArgument);
}

TEST(InferenceSession, MpeParityOnMaxCircuit) {
  const ac::Circuit source = small_ve_circuit(51);
  const auto model = CompiledModel::compile(source);
  // The maximiser derivation is pinned to the pre-refactor formula.
  EXPECT_EQ(ac::to_text(model->binary_max_circuit()),
            ac::to_text(ac::binarize(ac::to_max_circuit(source),
                                     ac::DecompositionStyle::kBalanced)
                            .circuit));
  InferenceSession session(model);
  const auto assignments = sampled_assignments(source.cardinalities(), 32, 0.4, 77);
  const std::vector<double> batched = session.mpe(assignments);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const double expected = ac::evaluate(model->binary_max_circuit(), assignments[i]);
    EXPECT_EQ(session.mpe(assignments[i]), expected);
    EXPECT_EQ(batched[i], expected);
  }
  // Low-precision MPE runs the same engines on the max tape.
  const lowprec::FixedFormat fmt{1, 10};
  InferenceSession lp(model, SessionOptions::low_precision(Representation::of(fmt)));
  for (const auto& a : assignments) {
    const ac::LowPrecisionResult expected =
        ac::evaluate_fixed(model->binary_max_circuit(), a, fmt);
    EXPECT_EQ(lp.mpe(a), expected.value);
    EXPECT_TRUE(flags_equal(lp.last_flags(), expected.flags));
  }
}

// ---- the validation wrappers stay bit-identical ----------------------------

// Pre-refactor reference: interpreter ground truth + one-shot low-precision
// evaluation, accumulated exactly the way problp/validation.cpp always did.
ObservedError reference_marginal_error(const ac::Circuit& binary,
                                       const std::vector<ac::PartialAssignment>& assignments,
                                       const Representation& repr) {
  ObservedError err;
  for (const auto& a : assignments) {
    const ac::LowPrecisionResult approx =
        repr.kind == Representation::Kind::kFixed ? ac::evaluate_fixed(binary, a, repr.fixed)
                                                  : ac::evaluate_float(binary, a, repr.flt);
    err.flags.merge(approx.flags);
    const double exact = ac::evaluate(binary, a);
    const double abs_err = std::abs(approx.value - exact);
    err.max_abs = std::max(err.max_abs, abs_err);
    err.mean_abs += abs_err;
    if (exact > 0.0) {
      const double rel = abs_err / exact;
      err.max_rel = std::max(err.max_rel, rel);
      err.mean_rel += rel;
    }
    err.count += 1;
  }
  if (err.count > 0) {
    err.mean_abs /= static_cast<double>(err.count);
    err.mean_rel /= static_cast<double>(err.count);
  }
  return err;
}

TEST(Validation, MeasureMarginalErrorBitIdenticalToReference) {
  const ac::Circuit source = small_ve_circuit(61);
  const ac::Circuit binary = ac::binarize(source).circuit;
  const auto assignments = sampled_assignments(source.cardinalities(), 40, 0.5, 88);
  for (const Representation& repr :
       {Representation::of(lowprec::FixedFormat{1, 12}),
        Representation::of(lowprec::FixedFormat{0, 3}),
        Representation::of(lowprec::FloatFormat{5, 7}),
        Representation::of(lowprec::FloatFormat{2, 2})}) {
    const ObservedError got = measure_marginal_error(binary, assignments, repr);
    const ObservedError want = reference_marginal_error(binary, assignments, repr);
    EXPECT_EQ(got.max_abs, want.max_abs);
    EXPECT_EQ(got.mean_abs, want.mean_abs);
    EXPECT_EQ(got.max_rel, want.max_rel);
    EXPECT_EQ(got.mean_rel, want.mean_rel);
    EXPECT_EQ(got.count, want.count);
    EXPECT_TRUE(flags_equal(got.flags, want.flags));
  }
}

TEST(Validation, MeasureConditionalErrorBitIdenticalToReference) {
  const ac::Circuit source = small_nb_circuit(62);
  const ac::Circuit binary = ac::binarize(source).circuit;
  const int query_var = 0;
  auto assignments = sampled_assignments(source.cardinalities(), 40, 0.6, 99);
  for (auto& a : assignments) a[query_var].reset();
  const Representation repr = Representation::of(lowprec::FloatFormat{6, 9});

  // Pre-refactor reference, verbatim accumulation order.
  ObservedError want;
  const int card = binary.cardinalities()[0];
  for (const auto& e : assignments) {
    const ac::LowPrecisionResult approx_pe = ac::evaluate_float(binary, e, repr.flt);
    want.flags.merge(approx_pe.flags);
    const double exact_pe = ac::evaluate(binary, e);
    if (exact_pe <= 0.0 || approx_pe.value <= 0.0) continue;
    for (int q = 0; q < card; ++q) {
      auto qe = e;
      qe[0] = q;
      const ac::LowPrecisionResult approx_qe = ac::evaluate_float(binary, qe, repr.flt);
      want.flags.merge(approx_qe.flags);
      const double abs_err =
          std::abs(approx_qe.value / approx_pe.value - ac::evaluate(binary, qe) / exact_pe);
      want.max_abs = std::max(want.max_abs, abs_err);
      want.mean_abs += abs_err;
      const double exact_ratio = ac::evaluate(binary, qe) / exact_pe;
      if (exact_ratio > 0.0) {
        want.max_rel = std::max(want.max_rel, abs_err / exact_ratio);
        want.mean_rel += abs_err / exact_ratio;
      }
      want.count += 1;
    }
  }
  if (want.count > 0) {
    want.mean_abs /= static_cast<double>(want.count);
    want.mean_rel /= static_cast<double>(want.count);
  }

  const ObservedError got = measure_conditional_error(binary, query_var, assignments, repr);
  EXPECT_EQ(got.max_abs, want.max_abs);
  EXPECT_EQ(got.mean_abs, want.mean_abs);
  EXPECT_EQ(got.max_rel, want.max_rel);
  EXPECT_EQ(got.mean_rel, want.mean_rel);
  EXPECT_EQ(got.count, want.count);
  EXPECT_TRUE(flags_equal(got.flags, want.flags));
}

// ---- artifact persistence --------------------------------------------------

TEST(CompiledModel, SaveLoadRoundTrip) {
  const ac::Circuit source = small_ve_circuit(71);
  const auto model = CompiledModel::compile(source);
  const std::string path = ::testing::TempDir() + "problp_runtime_roundtrip.pm";
  model->save(path);
  const auto loaded = CompiledModel::load(path);
  std::remove(path.c_str());

  // Structure round-trips exactly (ids may be rebuilt, semantics must not).
  EXPECT_EQ(ac::to_text(model->binary_circuit()), ac::to_text(loaded->binary_circuit()));
  EXPECT_EQ(ac::to_text(model->binary_max_circuit()),
            ac::to_text(loaded->binary_max_circuit()));
  EXPECT_EQ(loaded->options().decomposition, model->options().decomposition);

  // Query results are bit-identical across the round trip, all backends.
  InferenceSession a(model);
  InferenceSession b(loaded);
  const auto assignments = sampled_assignments(source.cardinalities(), 32, 0.5, 111);
  for (const auto& e : assignments) {
    EXPECT_EQ(a.marginal(e), b.marginal(e));
    EXPECT_EQ(a.mpe(e), b.mpe(e));
  }
  const lowprec::FixedFormat fmt{1, 8};
  InferenceSession lp_a(model, SessionOptions::low_precision(Representation::of(fmt)));
  InferenceSession lp_b(loaded, SessionOptions::low_precision(Representation::of(fmt)));
  for (const auto& e : assignments) {
    EXPECT_EQ(lp_a.marginal(e), lp_b.marginal(e));
    EXPECT_TRUE(flags_equal(lp_a.last_flags(), lp_b.last_flags()));
  }

  // The analysis on the loaded artifact matches (same binarised circuit).
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  EXPECT_EQ(model->analyze(spec).to_string(), loaded->analyze(spec).to_string());
}

TEST(CompiledModel, LoadRejectsCorruptArtifacts) {
  EXPECT_THROW(CompiledModel::from_text("bogus"), Error);
  EXPECT_THROW(CompiledModel::from_text("problp-model 1\ndecomposition sideways\n"), Error);
  EXPECT_THROW(CompiledModel::from_text("problp-model 1\ndecomposition balanced\ncircuit 99\nx"),
               Error);
}

// ---- concurrency: many sessions, one model ---------------------------------

TEST(InferenceSession, ConcurrentSessionsShareOneModel) {
  const ac::Circuit source = small_ve_circuit(81);
  const auto model = CompiledModel::compile(source);
  auto assignments = sampled_assignments(source.cardinalities(), 48, 0.4, 222);
  const int query_var = 0;
  for (auto& a : assignments) a[static_cast<std::size_t>(query_var)].reset();

  // Serial reference results (computed before any lazy state exists on the
  // threads' model, so the workers also race the lazy max-tape/analysis
  // initialisation).
  std::vector<double> want_marginal;
  std::vector<double> want_mpe;
  std::vector<std::vector<double>> want_posterior;
  {
    const auto reference_model = CompiledModel::compile(source);
    InferenceSession reference(reference_model);
    for (const auto& e : assignments) {
      want_marginal.push_back(reference.marginal(e));
      want_mpe.push_back(reference.mpe(e));
      want_posterior.push_back(reference.conditional(query_var, e));
    }
  }
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const std::string want_report = CompiledModel::compile(source)->analyze(spec).to_string();

  constexpr int kThreads = 8;
  std::vector<int> failures(kThreads, 0);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        InferenceSession session(model);  // one session per thread
        int bad = 0;
        for (int round = 0; round < 3; ++round) {
          for (std::size_t i = 0; i < assignments.size(); ++i) {
            if (session.marginal(assignments[i]) != want_marginal[i]) ++bad;
            if (session.mpe(assignments[i]) != want_mpe[i]) ++bad;
            if (session.conditional(query_var, assignments[i]) != want_posterior[i]) ++bad;
          }
          // Batched overloads and the cached analysis race too.
          const std::vector<double>& batched = session.marginal(assignments);
          for (std::size_t i = 0; i < assignments.size(); ++i) {
            if (batched[i] != want_marginal[i]) ++bad;
          }
          if (model->analyze(spec).to_string() != want_report) ++bad;
        }
        failures[static_cast<std::size_t>(t)] = bad;
      });
    }
    for (auto& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

// ---- session construction from an analysis ---------------------------------

TEST(InferenceSession, SessionFromReportUsesSelectedRepresentation) {
  const ac::Circuit source = small_ve_circuit(91);
  const auto model = CompiledModel::compile(source);
  const AnalysisReport report =
      model->analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);

  InferenceSession from_report(model, report);
  EXPECT_TRUE(from_report.low_precision());
  InferenceSession explicit_repr(model, SessionOptions::low_precision(report.selected));
  const auto assignments = sampled_assignments(source.cardinalities(), 24, 0.5, 333);
  for (const auto& e : assignments) {
    EXPECT_EQ(from_report.marginal(e), explicit_repr.marginal(e));
  }

  // An infeasible report selected no datapath: constructing from it must
  // refuse rather than silently run ground-truth double arithmetic.
  FrameworkOptions strict;
  strict.search.max_fraction_bits = 2;
  strict.search.max_mantissa_bits = 2;
  const auto strict_model = CompiledModel::compile(source, strict);
  const AnalysisReport infeasible =
      strict_model->analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-12});
  ASSERT_FALSE(infeasible.any_feasible);
  EXPECT_THROW(InferenceSession(strict_model, infeasible), InvalidArgument);

  // The exact fallback is still reachable, but only as an explicit opt-in —
  // and it really is the exact backend (interpreter-identical, clean flags).
  InferenceSession exact_fallback(strict_model, infeasible, /*allow_exact_fallback=*/true);
  EXPECT_FALSE(exact_fallback.low_precision());
  for (const auto& e : sampled_assignments(source.cardinalities(), 8, 0.5, 444)) {
    EXPECT_EQ(exact_fallback.marginal(e), ac::evaluate(strict_model->binary_circuit(), e));
    EXPECT_FALSE(exact_fallback.last_flags().any());
  }
}

TEST(InferenceSession, BatchOptionsValidatedAtConstruction) {
  const auto model = CompiledModel::compile(small_nb_circuit(43));
  // A negative thread count used to explode lazily in the batched engine's
  // constructor on the first batched query; the session constructor rejects
  // it at setup time.  block == 0 is the cache-aware auto-size (the
  // default), not a misconfiguration.
  SessionOptions auto_block;
  auto_block.batch.block = 0;
  InferenceSession auto_session(model, auto_block);
  const auto probe = sampled_assignments(model->cardinalities(), 4, 0.5, 99);
  EXPECT_EQ(auto_session.marginal(probe).size(), probe.size());
  SessionOptions bad_threads;
  bad_threads.batch.num_threads = -1;
  EXPECT_THROW(InferenceSession(model, bad_threads), InvalidArgument);
  // A forced kernel ISA this build/CPU cannot run is a setup-time error too.
  std::optional<ac::simd::Level> unsupported;
  for (const auto level : {ac::simd::Level::kNeon, ac::simd::Level::kAvx512}) {
    if (!ac::simd::level_supported(level)) unsupported = level;
  }
  if (unsupported) {
    SessionOptions bad_simd;
    bad_simd.batch.simd = *unsupported;
    EXPECT_THROW(InferenceSession(model, bad_simd), InvalidArgument);
  }
  // A valid shape still constructs and serves batches.
  SessionOptions ok;
  ok.batch.block = 4;
  ok.batch.num_threads = 2;
  InferenceSession session(model, ok);
  const auto assignments = sampled_assignments(model->cardinalities(), 8, 0.5, 777);
  EXPECT_EQ(session.marginal(assignments).size(), assignments.size());
}

TEST(InferenceSession, BatchedLowPrecisionMatchesSinglesAcrossThreads) {
  const ac::Circuit source = small_ve_circuit(36);
  const auto model = CompiledModel::compile(source);
  const auto assignments = sampled_assignments(source.cardinalities(), 33, 0.5, 555);
  for (const Representation& repr : {Representation::of(lowprec::FixedFormat{1, 10}),
                                     Representation::of(lowprec::FloatFormat{4, 6})}) {
    for (const int threads : {1, 4}) {
      SessionOptions options = SessionOptions::low_precision(repr);
      options.batch.num_threads = threads;
      options.batch.block = 8;
      InferenceSession batched(model, options);
      InferenceSession singles(model, SessionOptions::low_precision(repr));

      const std::vector<double> got = batched.marginal(assignments);
      const lowprec::ArithFlags got_flags = batched.last_flags();
      lowprec::ArithFlags want_flags;
      for (std::size_t i = 0; i < assignments.size(); ++i) {
        EXPECT_EQ(got[i], singles.marginal(assignments[i])) << "threads=" << threads;
        want_flags.merge(singles.last_flags());
      }
      EXPECT_TRUE(flags_equal(got_flags, want_flags));

      const std::vector<double> got_mpe = batched.mpe(assignments);
      for (std::size_t i = 0; i < assignments.size(); ++i) {
        EXPECT_EQ(got_mpe[i], singles.mpe(assignments[i])) << "threads=" << threads;
      }
    }
  }
}

TEST(InferenceSession, BatchedConditionalCoalescedScatter) {
  // A circuit where evidence can be structurally impossible: var0 = 1 has no
  // indicator support, so Pr(e) == 0 there — those posteriors come back
  // empty while the surviving sets' coalesced numerators scatter back to
  // their own slots, bit-identical to the single-query path on both
  // backends.
  ac::Circuit c({2, 2});
  const ac::NodeId i00 = c.add_indicator(0, 0);
  const ac::NodeId t0 = c.add_prod({c.add_indicator(1, 0), c.add_parameter(0.3)});
  const ac::NodeId t1 = c.add_prod({c.add_indicator(1, 1), c.add_parameter(0.7)});
  c.set_root(c.add_prod({i00, c.add_sum({t0, t1})}));
  const auto model = CompiledModel::wrap(c);
  const int query_var = 1;

  std::vector<ac::PartialAssignment> evidence;
  for (const int obs : {0, 1, 0, 1, -1}) {  // -1 = var0 unobserved
    ac::PartialAssignment e(2);
    if (obs >= 0) e[0] = obs;
    evidence.push_back(std::move(e));
  }

  InferenceSession exact(model);
  InferenceSession lp(model, SessionOptions::low_precision(
                                 Representation::of(lowprec::FixedFormat{2, 12})));
  for (InferenceSession* session : {&exact, &lp}) {
    const auto batched = session->conditional(query_var, evidence);
    ASSERT_EQ(batched.size(), evidence.size());
    for (std::size_t i = 0; i < evidence.size(); ++i) {
      EXPECT_EQ(batched[i], session->conditional(query_var, evidence[i])) << "i=" << i;
    }
    EXPECT_TRUE(batched[1].empty());  // Pr(var0 = 1) == 0
    EXPECT_TRUE(batched[3].empty());
    ASSERT_EQ(batched[0].size(), 2u);  // survivors keep their slots
    EXPECT_EQ(batched[0], batched[2]);
  }
}

}  // namespace
}  // namespace problp
