#include <gtest/gtest.h>

#include "ac/transform.hpp"
#include "helpers.hpp"
#include "hw/generator.hpp"
#include "hw/resource_report.hpp"

namespace problp::hw {
namespace {

using ac::Circuit;
using ac::NodeId;

TEST(ResourceReport, StageHistogram) {
  // root = (a*b) + delayed c: stage 1 holds one multiplier and one aligner,
  // stage 2 the adder.
  Circuit c(std::vector<int>(3, 2));
  const NodeId a = c.add_indicator(0, 0);
  const NodeId b = c.add_indicator(1, 0);
  const NodeId d = c.add_indicator(2, 0);
  c.set_root(c.add_sum({c.add_prod({a, b}), d}));
  const Netlist netlist = generate_netlist(c);
  const ResourceReport report = analyze_resources(netlist, 8);
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].multipliers, 1u);
  EXPECT_EQ(report.stages[0].alignment_registers, 1u);
  EXPECT_EQ(report.stages[0].adders, 0u);
  EXPECT_EQ(report.stages[1].adders, 1u);
  EXPECT_EQ(report.peak_stage_operators, 1u);
  // Storage: 2 pipeline regs + 1 aligner, 8 bits each.
  EXPECT_EQ(report.storage_bits, 3u * 8u);
  EXPECT_NE(report.to_string().find("stage"), std::string::npos);
}

TEST(ResourceReport, TotalsMatchNetlistStats) {
  Rng rng(181);
  test::RandomCircuitSpec spec;
  spec.num_operators = 35;
  spec.max_fanin = 5;
  const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const Netlist netlist = generate_netlist(binary);
  const NetlistStats stats = netlist.stats();
  const ResourceReport report = analyze_resources(netlist, 16);
  std::size_t adders = 0;
  std::size_t muls = 0;
  std::size_t aligners = 0;
  for (const StageUsage& usage : report.stages) {
    adders += usage.adders;
    muls += usage.multipliers;
    aligners += usage.alignment_registers;
  }
  EXPECT_EQ(adders, stats.adders);
  EXPECT_EQ(muls, stats.multipliers);
  EXPECT_EQ(aligners, stats.alignment_registers);
  EXPECT_EQ(report.storage_bits, stats.total_registers() * 16u);
  EXPECT_GE(report.peak_stage_operators, 1u);
  EXPECT_GT(report.mean_stage_operators, 0.0);
}

TEST(ResourceReport, Validation) {
  Circuit c({2});
  c.set_root(c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.5)}));
  const Netlist netlist = generate_netlist(c);
  EXPECT_THROW(analyze_resources(netlist, 0), InvalidArgument);
}

}  // namespace
}  // namespace problp::hw
