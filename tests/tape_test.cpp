// CircuitTape / BatchEvaluator parity and contract tests.
//
// The tape engine's correctness claim is *bit-identical* results to the
// per-query interpreter — same fold order, same arithmetic — so every parity
// check below uses exact equality on doubles, never tolerances.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "ac/analysis.hpp"
#include "ac/batch_eval.hpp"
#include "ac/batch_lowprec.hpp"
#include "ac/kernel_schedule.hpp"
#include "ac/low_precision_eval.hpp"
#include "ac/simd_sweep.hpp"
#include "ac/tape.hpp"
#include "ac/tape_layout.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "compile/naive_bayes_compiler.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

// Interpreter vs single-query tape vs generic tape evaluator vs batched tape
// on every given assignment; all-node values and roots must match exactly.
void expect_parity(const Circuit& circuit, const std::vector<PartialAssignment>& assignments) {
  ASSERT_NE(circuit.root(), kInvalidNode);
  const CircuitTape tape = CircuitTape::compile(circuit);
  ASSERT_EQ(tape.num_nodes(), circuit.num_nodes());

  TapeEvaluator<ExactOps> generic(tape, ExactOps{});
  std::vector<double> tape_values;
  for (const auto& a : assignments) {
    const std::vector<double> interp = evaluate_all_double(circuit, a);
    tape.evaluate_all_double(a, tape_values);
    ASSERT_EQ(interp, tape_values);
    ASSERT_EQ(interp, generic.evaluate_all(a));
  }

  for (const int threads : {1, 3}) {
    for (const std::size_t block : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      BatchEvaluator::Options opts;
      opts.num_threads = threads;
      opts.block = block;
      BatchEvaluator batch(tape, opts);
      const std::vector<double>& roots = batch.evaluate(assignments);
      ASSERT_EQ(roots.size(), assignments.size());
      for (std::size_t i = 0; i < assignments.size(); ++i) {
        ASSERT_EQ(roots[i], evaluate(circuit, assignments[i]))
            << "threads=" << threads << " block=" << block << " query=" << i;
      }
    }
  }
}

std::vector<PartialAssignment> random_assignments(const std::vector<int>& cards,
                                                  std::size_t count, double p_observe,
                                                  Rng& rng) {
  std::vector<PartialAssignment> out;
  for (std::size_t i = 0; i < count; ++i) {
    PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (rng.coin(p_observe)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

// A random probability row of `card` entries.
std::vector<double> random_row(int card, Rng& rng) {
  std::vector<double> row;
  double total = 0.0;
  for (int s = 0; s < card; ++s) {
    row.push_back(rng.uniform(0.05, 1.0));
    total += row.back();
  }
  for (double& v : row) v /= total;
  return row;
}

// A small Naive-Bayes-shaped network: class var 0 is the sole parent of
// every feature — the one structure both compilers accept.
bn::BayesianNetwork make_nb_network(int num_features, Rng& rng) {
  bn::BayesianNetwork network;
  const int class_card = rng.uniform_int(2, 3);
  const int class_var = network.add_variable("C", class_card);
  network.set_cpt(class_var, {}, random_row(class_card, rng));
  for (int f = 0; f < num_features; ++f) {
    const int card = rng.uniform_int(2, 4);
    const int var = network.add_variable("F" + std::to_string(f), card);
    std::vector<double> rows;
    for (int c = 0; c < class_card; ++c) {
      for (double v : random_row(card, rng)) rows.push_back(v);
    }
    network.set_cpt(var, {class_var}, rows);
  }
  network.validate();
  return network;
}

TEST(Tape, Parity50RandomCircuits) {
  // 30 syntactically arbitrary circuits + 20 VE-compiled random networks:
  // 50 distinct DAGs through interpreter, tape, generic tape and batch.
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    test::RandomCircuitSpec spec;
    spec.num_variables = 2 + (i % 4);
    spec.num_operators = 10 + i;
    spec.max_fanin = 2 + (i % 3);
    const Circuit circuit = test::make_random_circuit(spec, rng);
    expect_parity(circuit, random_assignments(circuit.cardinalities(), 9, 0.5, rng));
  }
  for (int i = 0; i < 20; ++i) {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 4 + (i % 4);
    const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
    const Circuit circuit = compile::compile_network(network);
    expect_parity(circuit, random_assignments(circuit.cardinalities(), 9, 0.4, rng));
  }
}

TEST(Tape, ParityBothCompilersOnNaiveBayes) {
  // The same NB networks through both compilers; each circuit shape gets the
  // full parity treatment.
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    const bn::BayesianNetwork network = make_nb_network(3 + (i % 3), rng);
    const Circuit nb = compile::compile_naive_bayes(network, 0);
    const Circuit ve = compile::compile_network(network);
    const auto assignments = random_assignments(nb.cardinalities(), 9, 0.5, rng);
    expect_parity(nb, assignments);
    expect_parity(ve, assignments);
  }
}

TEST(Tape, EmptyAndFullEvidence) {
  Rng rng(3);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 5;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const Circuit circuit = compile::compile_network(network);
  const auto& cards = circuit.cardinalities();

  std::vector<PartialAssignment> assignments;
  assignments.push_back(PartialAssignment(cards.size()));  // empty evidence
  const auto full = test::all_full_assignments(cards);
  assignments.insert(assignments.end(), full.begin(), full.end());
  expect_parity(circuit, assignments);

  // Empty evidence sums the network polynomial to 1; full assignments to
  // their joint probabilities, which sum to 1 as well.
  const CircuitTape tape = CircuitTape::compile(circuit);
  BatchEvaluator batch(tape);
  const std::vector<double>& roots = batch.evaluate(assignments);
  EXPECT_NEAR(roots[0], 1.0, 1e-12);
  double total = 0.0;
  for (std::size_t i = 1; i < roots.size(); ++i) total += roots[i];
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Tape, MaxCircuitParity) {
  // MPE circuits: every SUM rewritten to MAX, batched root = max_x Pr(x, e).
  Rng rng(5);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 4;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const Circuit mpe = to_max_circuit(compile::compile_network(network));
  expect_parity(mpe, random_assignments(mpe.cardinalities(), 16, 0.5, rng));

  // Against the brute-force oracle the comparison is numeric, not bitwise:
  // the oracle multiplies CPT entries in variable order, the circuit in
  // wiring order.
  const CircuitTape tape = CircuitTape::compile(mpe);
  std::vector<double> scratch;
  const bn::Evidence none = network.empty_evidence();
  EXPECT_NEAR(tape.evaluate(compile::to_assignment(none), scratch),
              test::brute_force_mpe(network, none), 1e-12);
}

TEST(Tape, LowPrecisionTapeParityIncludingFlags) {
  Rng rng(13);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 5;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const BinarizeResult bin = binarize(compile::compile_network(network));
  const CircuitTape tape = CircuitTape::compile(bin.circuit);
  const auto assignments = random_assignments(bin.circuit.cardinalities(), 24, 0.5, rng);

  for (const auto mode : {lowprec::RoundingMode::kNearestEven, lowprec::RoundingMode::kTruncate}) {
    const lowprec::FixedFormat fx{2, 9};
    FixedTapeEvaluator fixed_eval(tape, fx, mode);
    const lowprec::FloatFormat fl{5, 7};
    FloatTapeEvaluator float_eval(tape, fl, mode);
    for (const auto& a : assignments) {
      const LowPrecisionResult fx_ref = evaluate_fixed(bin.circuit, a, fx, mode);
      const LowPrecisionResult fx_tape = fixed_eval.evaluate(a);
      EXPECT_EQ(fx_tape.value, fx_ref.value);
      EXPECT_EQ(fx_tape.flags.overflow, fx_ref.flags.overflow);
      EXPECT_EQ(fx_tape.flags.underflow, fx_ref.flags.underflow);
      EXPECT_EQ(fx_tape.flags.invalid_input, fx_ref.flags.invalid_input);

      const LowPrecisionResult fl_ref = evaluate_float(bin.circuit, a, fl, mode);
      const LowPrecisionResult fl_tape = float_eval.evaluate(a);
      EXPECT_EQ(fl_tape.value, fl_ref.value);
      EXPECT_EQ(fl_tape.flags.overflow, fl_ref.flags.overflow);
      EXPECT_EQ(fl_tape.flags.underflow, fl_ref.flags.underflow);
      EXPECT_EQ(fl_tape.flags.invalid_input, fl_ref.flags.invalid_input);
    }
  }
}

// Scoped PROBLP_SIMD override — the env hook the evaluators read at
// construction (the same hook CI and operators use).  Restores the prior
// value on exit so an externally forced level (PROBLP_SIMD=... ./tape_test)
// still governs the rest of the suite.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prev = std::getenv("PROBLP_SIMD");
    if (prev != nullptr) previous_ = prev;
    setenv("PROBLP_SIMD", value, /*overwrite=*/1);
  }
  ~ScopedSimdEnv() {
    if (previous_.has_value()) {
      setenv("PROBLP_SIMD", previous_->c_str(), /*overwrite=*/1);
    } else {
      unsetenv("PROBLP_SIMD");
    }
  }

 private:
  std::optional<std::string> previous_;
};

TEST(Tape, BatchedLowPrecExhaustiveParity) {
  // The batched SoA raw-word engine's full parity matrix: fixed and float
  // formats (including overflow/underflow-raising ones) x rounding modes x
  // thread counts x batch sizes straddling the SoA block boundary — bitwise
  // on values AND per-query sticky flags against the per-query evaluators
  // (which are themselves bit-identical to the one-shot evaluate_*).
  Rng rng(23);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 6;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const BinarizeResult bin = binarize(compile::compile_network(network));
  const CircuitTape tape = CircuitTape::compile(bin.circuit);
  const auto assignments = random_assignments(bin.circuit.cardinalities(), 512, 0.5, rng);
  const std::vector<std::size_t> batch_sizes = {1, 15, 16, 17, 512};

  const auto check_counts = [&](auto& batch_eval, const std::vector<LowPrecisionResult>& ref,
                                const char* what, const std::vector<std::size_t>& counts) {
    for (const std::size_t count : counts) {
      const std::vector<double>& roots = batch_eval.evaluate(assignments.data(), count);
      ASSERT_EQ(roots.size(), count);
      ASSERT_EQ(batch_eval.flags().size(), count);
      lowprec::ArithFlags want_merged;
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(roots[i], ref[i].value)
            << what << " threads=" << batch_eval.options().num_threads << " count=" << count
            << " query=" << i;
        const lowprec::ArithFlags& got = batch_eval.flags()[i];
        ASSERT_EQ(got.overflow, ref[i].flags.overflow) << what << " query=" << i;
        ASSERT_EQ(got.underflow, ref[i].flags.underflow) << what << " query=" << i;
        ASSERT_EQ(got.invalid_input, ref[i].flags.invalid_input) << what << " query=" << i;
        want_merged.merge(ref[i].flags);
      }
      const lowprec::ArithFlags merged = batch_eval.merged_flags();
      EXPECT_EQ(merged.overflow, want_merged.overflow);
      EXPECT_EQ(merged.underflow, want_merged.underflow);
      EXPECT_EQ(merged.invalid_input, want_merged.invalid_input);
    }
  };
  const auto check = [&](auto& batch_eval, const std::vector<LowPrecisionResult>& ref,
                         const char* what) {
    check_counts(batch_eval, ref, what, batch_sizes);
  };

  for (const auto mode :
       {lowprec::RoundingMode::kNearestEven, lowprec::RoundingMode::kTruncate}) {
    // {1, 4} is comfortable; {0, 3} cannot even hold the indicator 1 and
    // must overflow, so the flag half of the parity check is not vacuous.
    for (const lowprec::FixedFormat fmt :
         {lowprec::FixedFormat{2, 12}, lowprec::FixedFormat{1, 4}, lowprec::FixedFormat{0, 3}}) {
      FixedTapeEvaluator single(tape, fmt, mode);
      std::vector<LowPrecisionResult> ref;
      ref.reserve(assignments.size());
      for (const auto& a : assignments) ref.push_back(single.evaluate(a));
      if (fmt.integer_bits == 0) {
        ASSERT_TRUE(ref.front().flags.overflow);
      }
      for (const int threads : {1, 4}) {
        BatchEvaluator::Options opts;
        opts.num_threads = threads;
        FixedBatchEvaluator batch(tape, fmt, mode, opts);
        check(batch, ref, fmt.to_string().c_str());
      }
    }
    // {6, 8} is comfortable; {2, 2}'s one-binade range flushes small
    // products to zero (underflow) and saturates large sums (overflow).
    for (const lowprec::FloatFormat fmt :
         {lowprec::FloatFormat{6, 8}, lowprec::FloatFormat{3, 4}, lowprec::FloatFormat{2, 2}}) {
      FloatTapeEvaluator single(tape, fmt, mode);
      std::vector<LowPrecisionResult> ref;
      ref.reserve(assignments.size());
      for (const auto& a : assignments) ref.push_back(single.evaluate(a));
      for (const int threads : {1, 4}) {
        BatchEvaluator::Options opts;
        opts.num_threads = threads;
        FloatBatchEvaluator batch(tape, fmt, mode, opts);
        check(batch, ref, fmt.to_string().c_str());
      }
    }
  }

  // Narrow/wide boundary matrix: fixed widths straddling the narrow-word
  // eligibility cutoff (29/30 narrow, 31/32 wide), each at a comfortable
  // and an overflow-saturating integer width, x rounding modes x every
  // supported kernel ISA (via the PROBLP_SIMD env hook) x thread counts.
  // Three engines per cell — the default (lane-parallel u32 for narrow
  // formats), the forced-wide u128 schedule path and the u128 generic
  // fold — must all match the per-query evaluator bitwise, values and
  // per-query flags alike.
  const std::vector<std::size_t> boundary_counts = {1, 17, 512};
  for (const auto mode :
       {lowprec::RoundingMode::kNearestEven, lowprec::RoundingMode::kTruncate}) {
    for (const int total_bits : {29, 30, 31, 32}) {
      for (const lowprec::FixedFormat fmt : {lowprec::FixedFormat{2, total_bits - 2},
                                             lowprec::FixedFormat{0, total_bits}}) {
        FixedTapeEvaluator single(tape, fmt, mode);
        std::vector<LowPrecisionResult> ref;
        ref.reserve(assignments.size());
        for (const auto& a : assignments) ref.push_back(single.evaluate(a));
        if (fmt.integer_bits == 0) {
          // I = 0 cannot hold the indicator 1: the flag half of the parity
          // check saturates for real.
          ASSERT_TRUE(ref.front().flags.overflow);
        }
        const std::string what = fmt.to_string() +
                                 (mode == lowprec::RoundingMode::kTruncate ? " trunc" : "");
        for (const simd::Level level : simd::supported_levels()) {
          ScopedSimdEnv env(simd::level_name(level));
          for (const int threads : {1, 4}) {
            BatchEvaluator::Options opts;
            opts.num_threads = threads;

            FixedBatchEvaluator dflt(tape, fmt, mode, opts);
            EXPECT_EQ(dflt.narrow_datapath(), fmt.fits_narrow_word());
            EXPECT_EQ(dflt.simd_level(), level);
            check_counts(dflt, ref, (what + " default").c_str(), boundary_counts);

            BatchEvaluator::Options wide_opts = opts;
            wide_opts.force_wide_raw = true;
            FixedBatchEvaluator wide(tape, fmt, mode, wide_opts);
            EXPECT_FALSE(wide.narrow_datapath());
            check_counts(wide, ref, (what + " wide").c_str(), boundary_counts);

            BatchEvaluator::Options generic_opts = opts;
            generic_opts.force_generic = true;
            generic_opts.block = 16;
            FixedBatchEvaluator generic(tape, fmt, mode, generic_opts);
            EXPECT_FALSE(generic.narrow_datapath());
            check_counts(generic, ref, (what + " generic").c_str(), boundary_counts);
          }
        }
      }
    }
  }
}

TEST(Tape, BatchedFloatLaneBoundaryParity) {
  // The decomposed float datapath's boundary matrix: mantissas straddling
  // the u32-significand eligibility cutoff (27/28) and the u64 cutoff
  // (31/32), each at a comfortable and a one-binade-tight exponent width
  // (the tight one saturates sums and flushes products to zero, so the flag
  // half of the parity is not vacuous), x rounding modes x every supported
  // kernel ISA x thread counts.  Three engines per cell — the default
  // (decomposed lanes where eligible), the forced interleaved FloatRaw
  // schedule path and the generic fold — must all match the per-query
  // evaluator bitwise, values and per-query sticky flags alike.
  Rng rng(47);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 6;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const BinarizeResult bin = binarize(compile::compile_network(network));
  const CircuitTape tape = CircuitTape::compile(bin.circuit);
  const auto assignments = random_assignments(bin.circuit.cardinalities(), 512, 0.5, rng);
  const std::vector<std::size_t> counts = {1, 17, 512};

  const auto check_counts = [&](auto& batch_eval, const std::vector<LowPrecisionResult>& ref,
                                const std::string& what) {
    for (const std::size_t count : counts) {
      const std::vector<double>& roots = batch_eval.evaluate(assignments.data(), count);
      ASSERT_EQ(roots.size(), count);
      ASSERT_EQ(batch_eval.flags().size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(roots[i], ref[i].value) << what << " query=" << i;
        const lowprec::ArithFlags& got = batch_eval.flags()[i];
        ASSERT_EQ(got.overflow, ref[i].flags.overflow) << what << " query=" << i;
        ASSERT_EQ(got.underflow, ref[i].flags.underflow) << what << " query=" << i;
        ASSERT_EQ(got.invalid_input, ref[i].flags.invalid_input) << what << " query=" << i;
      }
    }
  };

  for (const auto mode :
       {lowprec::RoundingMode::kNearestEven, lowprec::RoundingMode::kTruncate}) {
    for (const int mantissa : {27, 28, 31, 32}) {
      for (const int exponent : {6, 2}) {
        const lowprec::FloatFormat fmt{exponent, mantissa};
        FloatTapeEvaluator single(tape, fmt, mode);
        std::vector<LowPrecisionResult> ref;
        ref.reserve(assignments.size());
        for (const auto& a : assignments) ref.push_back(single.evaluate(a));
        if (exponent == 2) {
          // One binade of headroom: the reference sweep must actually raise
          // saturation / flush flags somewhere in the 512 queries.
          lowprec::ArithFlags seen;
          for (const auto& r : ref) seen.merge(r.flags);
          ASSERT_TRUE(seen.overflow || seen.underflow);
        }
        const int want_lanes = mantissa <= 27 ? 32 : (mantissa <= 31 ? 64 : 0);
        const std::string what =
            fmt.to_string() + (mode == lowprec::RoundingMode::kTruncate ? " trunc" : "");
        for (const simd::Level level : simd::supported_levels()) {
          ScopedSimdEnv env(simd::level_name(level));
          for (const int threads : {1, 4}) {
            BatchEvaluator::Options opts;
            opts.num_threads = threads;

            FloatBatchEvaluator dflt(tape, fmt, mode, opts);
            EXPECT_EQ(dflt.float_lane_bits(), want_lanes);
            EXPECT_EQ(dflt.simd_level(), level);
            check_counts(dflt, ref, what + " default");

            BatchEvaluator::Options wide_opts = opts;
            wide_opts.force_wide_raw = true;
            FloatBatchEvaluator wide(tape, fmt, mode, wide_opts);
            EXPECT_EQ(wide.float_lane_bits(), 0);
            check_counts(wide, ref, what + " wide");

            BatchEvaluator::Options generic_opts = opts;
            generic_opts.force_generic = true;
            generic_opts.block = 16;
            FloatBatchEvaluator generic(tape, fmt, mode, generic_opts);
            EXPECT_EQ(generic.float_lane_bits(), 0);
            check_counts(generic, ref, what + " generic");
          }
        }
      }
    }
  }
}

TEST(Tape, RangeAnalysisRunsOnTape) {
  // Max analysis == ExactOps sweep, min analysis == MinValueOps sweep, both
  // with all indicators at 1 — on the tape, node for node.
  Rng rng(17);
  test::RandomCircuitSpec spec;
  spec.num_operators = 40;
  const Circuit circuit = test::make_random_circuit(spec, rng);
  const CircuitTape tape = CircuitTape::compile(circuit);
  const PartialAssignment all_ones = all_indicators_one(circuit);

  TapeEvaluator<ExactOps> max_eval(tape, ExactOps{});
  EXPECT_EQ(max_eval.evaluate_all(all_ones), max_value_analysis(circuit));
  TapeEvaluator<MinValueOps> min_eval(tape, MinValueOps{});
  EXPECT_EQ(min_eval.evaluate_all(all_ones), min_value_analysis(circuit));
}

TEST(Tape, ContractViolationsRejected) {
  Circuit no_root({2});
  no_root.add_indicator(0, 0);
  EXPECT_THROW(CircuitTape::compile(no_root), InvalidArgument);

  // Operator nodes without children cannot be built in the first place.
  Circuit c({2});
  EXPECT_THROW(c.add_sum({}), InvalidArgument);
  EXPECT_THROW(c.add_prod({}), InvalidArgument);
  EXPECT_THROW(c.add_max({}), InvalidArgument);

  // Assignment arity and state range are validated per query, identically
  // by both engines (-1 is the internal "unobserved" sentinel and must not
  // be forgeable through a negative observed state).
  Circuit coin({2});
  coin.set_root(coin.add_sum({coin.add_indicator(0, 0), coin.add_indicator(0, 1)}));
  const CircuitTape tape = CircuitTape::compile(coin);
  std::vector<double> scratch;
  EXPECT_THROW(tape.evaluate(PartialAssignment(3), scratch), InvalidArgument);
  BatchEvaluator batch(tape);
  EXPECT_THROW(batch.evaluate({PartialAssignment(3)}), InvalidArgument);
  PartialAssignment negative(1);
  negative[0] = -2;
  PartialAssignment too_large(1);
  too_large[0] = 2;
  EXPECT_THROW(tape.evaluate(negative, scratch), InvalidArgument);
  EXPECT_THROW(tape.evaluate(too_large, scratch), InvalidArgument);
  EXPECT_THROW(evaluate(coin, negative), InvalidArgument);
  EXPECT_THROW(evaluate(coin, too_large), InvalidArgument);

  // A malformed assignment deep inside a *threaded* batch must surface as
  // the same catchable error (worker exceptions are rethrown on the
  // caller), never std::terminate — on both batched engines.
  BatchEvaluator::Options mt;
  mt.num_threads = 4;
  std::vector<PartialAssignment> poisoned(64, PartialAssignment(1));
  poisoned[37] = PartialAssignment(3);  // wrong arity
  BatchEvaluator exact_mt(tape, mt);
  EXPECT_THROW(exact_mt.evaluate(poisoned), InvalidArgument);
  FixedBatchEvaluator lowprec_mt(tape, lowprec::FixedFormat{1, 8},
                                 lowprec::RoundingMode::kNearestEven, mt);
  EXPECT_THROW(lowprec_mt.evaluate(poisoned), InvalidArgument);
}

TEST(KernelSchedule, SegmentsReplayTheOperatorScheduleExactly) {
  // Random circuits (mixed fanin), their binarised forms (pure fanin-2) and
  // VE output: concatenating the segments in order must visit every op of
  // the compiled-over schedule exactly once, with fanin-2 ops in the flat
  // out/lhs/rhs arrays and everything else in the self-contained generic-op
  // arrays — under both the identity layout (rows are node ids) and the
  // tape layout (rows renamed through slot_of, op order re-emitted).
  Rng rng(31);
  std::vector<Circuit> circuits;
  for (int i = 0; i < 6; ++i) {
    test::RandomCircuitSpec spec;
    spec.num_operators = 20 + 7 * i;
    spec.max_fanin = 2 + (i % 4);
    circuits.push_back(test::make_random_circuit(spec, rng));
    circuits.push_back(binarize(circuits.back()).circuit);
  }
  bn::RandomNetworkSpec nspec;
  nspec.num_variables = 6;
  circuits.push_back(compile::compile_network(bn::make_random_network(nspec, rng)));

  for (const Circuit& circuit : circuits) {
    const CircuitTape tape = CircuitTape::compile(circuit);
    const auto& offsets = tape.child_offsets();
    const auto& children = tape.children();

    const auto check = [&](const KernelSchedule& schedule, const auto& ops,
                           const std::int32_t* slot_of, std::size_t want_rows) {
      ASSERT_EQ(schedule.num_ops(), ops.size());
      ASSERT_EQ(schedule.num_fanin2_ops() + schedule.num_generic_ops(), schedule.num_ops());
      ASSERT_EQ(schedule.num_rows(), want_rows);
      const auto row = [&](NodeId id) {
        return slot_of == nullptr ? static_cast<std::int32_t>(id)
                                  : slot_of[static_cast<std::size_t>(id)];
      };
      std::size_t pos = 0;   // walk of `ops`
      std::size_t flat = 0;  // walk of out()/lhs()/rhs()
      std::size_t gen = 0;   // walk of the generic-op arrays
      for (const KernelSegment& seg : schedule.segments()) {
        ASSERT_LT(seg.begin, seg.end);
        if (seg.kind == KernelSegment::Kind::kGeneric) {
          ASSERT_EQ(seg.begin, gen);
          for (std::uint32_t g = seg.begin; g < seg.end; ++g, ++pos, ++gen) {
            const NodeId id = ops[pos];
            const std::size_t i = static_cast<std::size_t>(id);
            const std::int32_t cb = offsets[i];
            const std::int32_t ce = offsets[i + 1];
            EXPECT_NE(ce - cb, 2) << "fanin-2 op left in generic segment";
            EXPECT_EQ(schedule.gen_kinds()[g], tape.kinds()[i]);
            EXPECT_EQ(schedule.gen_out()[g], row(id));
            ASSERT_EQ(schedule.gen_offsets()[g + 1] - schedule.gen_offsets()[g], ce - cb);
            for (std::int32_t k = cb; k < ce; ++k) {
              EXPECT_EQ(schedule.gen_children()[static_cast<std::size_t>(
                            schedule.gen_offsets()[g] + (k - cb))],
                        row(children[static_cast<std::size_t>(k)]));
            }
          }
          continue;
        }
        ASSERT_EQ(seg.begin, flat);
        for (std::uint32_t k = seg.begin; k < seg.end; ++k, ++pos, ++flat) {
          const NodeId id = ops[pos];
          const std::size_t i = static_cast<std::size_t>(id);
          ASSERT_EQ(offsets[i + 1] - offsets[i], 2);
          EXPECT_EQ(schedule.out()[k], row(id));
          EXPECT_EQ(schedule.lhs()[k], row(children[static_cast<std::size_t>(offsets[i])]));
          EXPECT_EQ(schedule.rhs()[k],
                    row(children[static_cast<std::size_t>(offsets[i]) + 1]));
          const KernelSegment::Kind want = tape.kinds()[i] == NodeKind::kSum
                                               ? KernelSegment::Kind::kSum2
                                               : tape.kinds()[i] == NodeKind::kProd
                                                     ? KernelSegment::Kind::kProd2
                                                     : KernelSegment::Kind::kMax2;
          EXPECT_EQ(seg.kind, want);
        }
      }
      EXPECT_EQ(pos, ops.size());
      EXPECT_EQ(flat, schedule.num_fanin2_ops());
      EXPECT_EQ(gen, schedule.num_generic_ops());
    };

    check(KernelSchedule::compile(tape), tape.op_ids(), nullptr, tape.num_nodes());
    const TapeLayout& layout = tape.layout();
    check(KernelSchedule::compile(tape, layout), layout.op_order(), layout.slot_of().data(),
          layout.num_slots());
  }
}

TEST(Simd, DispatchLevelsAndEnvOverride) {
  // scalar always exists; the env hook selects exactly the named level and
  // rejects garbage or unsupported names loudly.
  const std::vector<simd::Level> levels = simd::supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  for (const simd::Level level : levels) {
    ScopedSimdEnv env(simd::level_name(level));
    EXPECT_EQ(simd::dispatch_level(), level);
  }
  {
    ScopedSimdEnv env("auto");
    EXPECT_EQ(simd::dispatch_level(), levels.back());
  }
  {
    ScopedSimdEnv env("pentium");
    EXPECT_THROW(simd::dispatch_level(), InvalidArgument);
    EXPECT_THROW(BatchEvaluator(CircuitTape::compile([] {
                                  Circuit c({2});
                                  c.set_root(c.add_parameter(0.5));
                                  return c;
                                }())),
                 InvalidArgument);
  }
  for (const simd::Level level :
       {simd::Level::kNeon, simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (simd::level_supported(level)) continue;
    ScopedSimdEnv env(simd::level_name(level));
    EXPECT_THROW(simd::dispatch_level(), InvalidArgument);
  }
}

TEST(Simd, AutoBlockSizeIsCacheAwareAndOverridable) {
  // Multiples of the widest SIMD width, shrinking with circuit size, both
  // engines; explicit block requests are honoured verbatim.
  EXPECT_EQ(auto_block_size(100, sizeof(double)), 64u);       // tiny circuit: cap
  EXPECT_EQ(auto_block_size(3312, sizeof(double)), 32u);      // ALARM-sized
  EXPECT_EQ(auto_block_size(97311, sizeof(double)), 8u);      // ve36-sized: floor
  EXPECT_GE(auto_block_size(3312, 16), 8u);                   // raw-word slots
  EXPECT_EQ(auto_block_size(3312, 16) % 8, 0u);
  // The relayout policy: doubled target, 32-lane floor (the compacted
  // buffer shares cache with the schedule's index streams), min_block
  // raises the floor further (the u32 narrow engine's 16).
  EXPECT_EQ(auto_block_size(100, sizeof(double), true), 64u);
  EXPECT_EQ(auto_block_size(9887, sizeof(double), true), 32u);   // ve36 post-layout
  EXPECT_EQ(auto_block_size(97311, sizeof(double), true), 32u);  // floor even when huge
  EXPECT_EQ(auto_block_size(97311, sizeof(std::uint32_t), false, 16), 16u);

  Rng rng(41);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 5;
  const Circuit circuit = compile::compile_network(bn::make_random_network(spec, rng));
  const CircuitTape tape = CircuitTape::compile(circuit);
  // Auto-sizing keys on the *post-layout* row footprint: max-live slots
  // under the default relayout, the full node count when it is off.
  BatchEvaluator auto_sized(tape);
  EXPECT_TRUE(auto_sized.relayout_engaged());
  EXPECT_EQ(auto_sized.num_rows(), tape.layout().num_slots());
  EXPECT_EQ(auto_sized.options().block,
            auto_block_size(auto_sized.num_rows(), sizeof(double), /*relayout=*/true));
  BatchEvaluator::Options no_relayout;
  no_relayout.relayout = false;
  BatchEvaluator identity_sized(tape, no_relayout);
  EXPECT_FALSE(identity_sized.relayout_engaged());
  EXPECT_EQ(identity_sized.num_rows(), tape.num_nodes());
  EXPECT_EQ(identity_sized.options().block,
            auto_block_size(tape.num_nodes(), sizeof(double)));
  BatchEvaluator::Options explicit_block;
  explicit_block.block = 7;
  EXPECT_EQ(BatchEvaluator(tape, explicit_block).options().block, 7u);
  // Narrow fixed formats size their blocks for the 4-byte u32 slots of the
  // lane-parallel datapath (with its 16-lane vector-fill floor); wide ones
  // (and forced-wide) for the u128 slots.
  FixedBatchEvaluator lowprec_auto(tape, lowprec::FixedFormat{2, 10});
  EXPECT_TRUE(lowprec_auto.narrow_datapath());
  EXPECT_EQ(lowprec_auto.options().block,
            auto_block_size(lowprec_auto.num_rows(), sizeof(std::uint32_t),
                            /*relayout=*/true, /*min_block=*/16));
  FixedBatchEvaluator lowprec_wide_auto(tape, lowprec::FixedFormat{2, 40});
  EXPECT_FALSE(lowprec_wide_auto.narrow_datapath());
  EXPECT_EQ(lowprec_wide_auto.options().block,
            auto_block_size(lowprec_wide_auto.num_rows(), sizeof(u128), /*relayout=*/true));
}

TEST(Tape, LowPrecEvaluatorValidatesFormatAtConstruction) {
  // An unemulatable format must fail loudly when the evaluator is built —
  // even through the raw-ops constructor that used to rely on the
  // "operands <= 62 bits" comment in fx_mul_raw (whose u128 product would
  // otherwise silently wrap).
  Rng rng(43);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 4;
  const Circuit circuit = compile::compile_network(bn::make_random_network(spec, rng));
  const CircuitTape tape = CircuitTape::compile(circuit);

  EXPECT_THROW(FixedBatchEvaluator(tape, lowprec::FixedFormat{2, 61}), InvalidArgument);
  EXPECT_THROW(LowPrecBatchEvaluator<FixedRawOps>(
                   tape, FixedRawOps{lowprec::FixedFormat{2, 61},
                                     lowprec::RoundingMode::kNearestEven}),
               InvalidArgument);
  EXPECT_THROW(LowPrecBatchEvaluator<FloatRawOps>(
                   tape, FloatRawOps{lowprec::FloatFormat{1, 4},
                                     lowprec::RoundingMode::kNearestEven}),
               InvalidArgument);
  // Unrepresentable float widths on either axis fail identically.
  EXPECT_THROW(FloatBatchEvaluator(tape, lowprec::FloatFormat{8, 61}), InvalidArgument);
  EXPECT_THROW(FloatBatchEvaluator(tape, lowprec::FloatFormat{29, 8}), InvalidArgument);
  // The widest emulatable formats still construct (and are wide-path).
  FixedBatchEvaluator widest(tape, lowprec::FixedFormat{2, 60});
  EXPECT_FALSE(widest.narrow_datapath());
  FloatBatchEvaluator widest_fl(tape, lowprec::FloatFormat{28, 60});
  EXPECT_EQ(widest_fl.float_lane_bits(), 0);
  // Lane-width election straddles both significand cutoffs.
  EXPECT_EQ(FloatBatchEvaluator(tape, lowprec::FloatFormat{8, 27}).float_lane_bits(), 32);
  EXPECT_EQ(FloatBatchEvaluator(tape, lowprec::FloatFormat{8, 28}).float_lane_bits(), 64);
  EXPECT_EQ(FloatBatchEvaluator(tape, lowprec::FloatFormat{8, 31}).float_lane_bits(), 64);
  EXPECT_EQ(FloatBatchEvaluator(tape, lowprec::FloatFormat{8, 32}).float_lane_bits(), 0);
}

TEST(Simd, ForcedLevelParityMatrixExactAndLowPrec) {
  // The full dispatch matrix: every supported kernel ISA forced via the
  // PROBLP_SIMD env hook x {exact, fixed lowprec, float lowprec} x batch
  // sizes straddling the SoA block boundary x thread counts — bitwise value
  // AND ArithFlags equality against the generic CSR sweep.  Two circuit
  // shapes: a binarised VE circuit (pure fanin-2 segments) and the raw
  // n-ary VE output (mixed fanin, exercising the generic fallback segment
  // interleaved with fanin-2 runs).
  Rng rng(29);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 7;
  const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  const Circuit nary = compile::compile_network(network);
  const Circuit binary = binarize(nary).circuit;
  const std::vector<std::size_t> batch_sizes = {1, 7, 16, 17, 512};
  const lowprec::FixedFormat fx{2, 12};
  const lowprec::FloatFormat fl{4, 6};

  for (const Circuit* circuit : {&binary, &nary}) {
    const CircuitTape tape = CircuitTape::compile(*circuit);
    const auto assignments = random_assignments(circuit->cardinalities(), 512, 0.5, rng);

    // Generic-engine references, computed once per circuit.
    BatchEvaluator::Options generic;
    generic.force_generic = true;
    generic.block = 16;
    BatchEvaluator generic_exact(tape, generic);
    const std::vector<double> want_exact = generic_exact.evaluate(assignments);
    FixedBatchEvaluator generic_fx(tape, fx, lowprec::RoundingMode::kNearestEven, generic);
    const std::vector<double> want_fx = generic_fx.evaluate(assignments);
    const std::vector<lowprec::ArithFlags> want_fx_flags = generic_fx.flags();
    FloatBatchEvaluator generic_fl(tape, fl, lowprec::RoundingMode::kNearestEven, generic);
    const std::vector<double> want_fl = generic_fl.evaluate(assignments);
    const std::vector<lowprec::ArithFlags> want_fl_flags = generic_fl.flags();

    for (const simd::Level level : simd::supported_levels()) {
      ScopedSimdEnv env(simd::level_name(level));
      for (const int threads : {1, 4}) {
        for (const std::size_t count : batch_sizes) {
          BatchEvaluator::Options opts;
          opts.num_threads = threads;
          const std::string where = std::string(" level=") + simd::level_name(level) +
                                    " threads=" + std::to_string(threads) +
                                    " count=" + std::to_string(count) +
                                    (circuit == &binary ? " binary" : " nary");

          BatchEvaluator exact(tape, opts);
          EXPECT_EQ(exact.simd_level(), level);
          const std::vector<double>& exact_roots = exact.evaluate(assignments.data(), count);
          ASSERT_EQ(exact_roots.size(), count);
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(exact_roots[i], want_exact[i]) << "exact query " << i << where;
          }

          FixedBatchEvaluator fixed(tape, fx, lowprec::RoundingMode::kNearestEven, opts);
          const std::vector<double>& fx_roots = fixed.evaluate(assignments.data(), count);
          ASSERT_EQ(fx_roots.size(), count);
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(fx_roots[i], want_fx[i]) << "fixed query " << i << where;
            ASSERT_EQ(fixed.flags()[i].overflow, want_fx_flags[i].overflow) << where;
            ASSERT_EQ(fixed.flags()[i].underflow, want_fx_flags[i].underflow) << where;
            ASSERT_EQ(fixed.flags()[i].invalid_input, want_fx_flags[i].invalid_input) << where;
          }

          FloatBatchEvaluator flt(tape, fl, lowprec::RoundingMode::kNearestEven, opts);
          const std::vector<double>& fl_roots = flt.evaluate(assignments.data(), count);
          ASSERT_EQ(fl_roots.size(), count);
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(fl_roots[i], want_fl[i]) << "float query " << i << where;
            ASSERT_EQ(flt.flags()[i].overflow, want_fl_flags[i].overflow) << where;
            ASSERT_EQ(flt.flags()[i].underflow, want_fl_flags[i].underflow) << where;
            ASSERT_EQ(flt.flags()[i].invalid_input, want_fl_flags[i].invalid_input) << where;
          }
        }
      }
    }
  }
}

TEST(Simd, RelayoutParityMatrixAcrossCircuits) {
  // Layout invariance: the cache-shaped re-layout (re-ordered op schedule +
  // recycled slots) must be *bitwise* invisible in results.  Random mixed-
  // fanin circuits, VE output and an NB circuit x {exact, fixed lowprec,
  // float lowprec} x relayout {off, on} x every supported kernel ISA x
  // threads {1, 4} x batch sizes {1, 17, 512} — values and per-query sticky
  // flags all compared against the relayout-off O(nodes) reference.
  Rng rng(59);
  std::vector<Circuit> circuits;
  {
    test::RandomCircuitSpec spec;
    spec.num_operators = 60;
    spec.max_fanin = 4;
    circuits.push_back(test::make_random_circuit(spec, rng));
  }
  {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 7;
    circuits.push_back(compile::compile_network(bn::make_random_network(spec, rng)));
  }
  circuits.push_back(compile::compile_naive_bayes(make_nb_network(4, rng), 0));

  const lowprec::FixedFormat fx{2, 12};
  const lowprec::FloatFormat fl{4, 6};
  const std::vector<std::size_t> batch_sizes = {1, 17, 512};

  for (const Circuit& circuit : circuits) {
    const CircuitTape tape = CircuitTape::compile(circuit);
    const auto assignments = random_assignments(circuit.cardinalities(), 512, 0.5, rng);

    // Relayout-off references (identity O(nodes) layout), once per circuit.
    BatchEvaluator::Options ref;
    ref.relayout = false;
    BatchEvaluator ref_exact(tape, ref);
    const std::vector<double> want_exact = ref_exact.evaluate(assignments);
    FixedBatchEvaluator ref_fx(tape, fx, lowprec::RoundingMode::kNearestEven, ref);
    const std::vector<double> want_fx = ref_fx.evaluate(assignments);
    const std::vector<lowprec::ArithFlags> want_fx_flags = ref_fx.flags();
    FloatBatchEvaluator ref_fl(tape, fl, lowprec::RoundingMode::kNearestEven, ref);
    const std::vector<double> want_fl = ref_fl.evaluate(assignments);
    const std::vector<lowprec::ArithFlags> want_fl_flags = ref_fl.flags();

    for (const simd::Level level : simd::supported_levels()) {
      ScopedSimdEnv env(simd::level_name(level));
      for (const bool relayout : {false, true}) {
        for (const int threads : {1, 4}) {
          for (const std::size_t count : batch_sizes) {
            BatchEvaluator::Options opts;
            opts.relayout = relayout;
            opts.num_threads = threads;
            const std::string where = std::string(" level=") + simd::level_name(level) +
                                      " relayout=" + (relayout ? "on" : "off") +
                                      " threads=" + std::to_string(threads) +
                                      " count=" + std::to_string(count);

            BatchEvaluator exact(tape, opts);
            EXPECT_EQ(exact.relayout_engaged(), relayout);
            if (relayout) EXPECT_LE(exact.num_rows(), tape.num_nodes());
            const std::vector<double>& roots = exact.evaluate(assignments.data(), count);
            ASSERT_EQ(roots.size(), count);
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(roots[i], want_exact[i]) << "exact query " << i << where;
            }

            FixedBatchEvaluator fixed(tape, fx, lowprec::RoundingMode::kNearestEven, opts);
            const std::vector<double>& fx_roots = fixed.evaluate(assignments.data(), count);
            ASSERT_EQ(fx_roots.size(), count);
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(fx_roots[i], want_fx[i]) << "fixed query " << i << where;
              ASSERT_EQ(fixed.flags()[i].overflow, want_fx_flags[i].overflow) << where;
              ASSERT_EQ(fixed.flags()[i].underflow, want_fx_flags[i].underflow) << where;
              ASSERT_EQ(fixed.flags()[i].invalid_input, want_fx_flags[i].invalid_input)
                  << where;
            }

            // The wide (u128) schedule path under the same layout matrix.
            BatchEvaluator::Options wide = opts;
            wide.force_wide_raw = true;
            FixedBatchEvaluator fixed_wide(tape, fx, lowprec::RoundingMode::kNearestEven,
                                           wide);
            EXPECT_FALSE(fixed_wide.narrow_datapath());
            const std::vector<double>& fxw_roots =
                fixed_wide.evaluate(assignments.data(), count);
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(fxw_roots[i], want_fx[i]) << "fixed-wide query " << i << where;
              ASSERT_EQ(fixed_wide.flags()[i].overflow, want_fx_flags[i].overflow) << where;
            }

            FloatBatchEvaluator flt(tape, fl, lowprec::RoundingMode::kNearestEven, opts);
            const std::vector<double>& fl_roots = flt.evaluate(assignments.data(), count);
            ASSERT_EQ(fl_roots.size(), count);
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(fl_roots[i], want_fl[i]) << "float query " << i << where;
              ASSERT_EQ(flt.flags()[i].overflow, want_fl_flags[i].overflow) << where;
              ASSERT_EQ(flt.flags()[i].underflow, want_fl_flags[i].underflow) << where;
              ASSERT_EQ(flt.flags()[i].invalid_input, want_fl_flags[i].invalid_input)
                  << where;
            }
          }
        }
      }
    }
  }
}

TEST(Simd, SharedEvidenceTemplateBatches) {
  // The shared-evidence hoist and the whole-block evidence-template fast
  // path: batches repeating one template across whole blocks (composing,
  // then memcpy-restoring, the per-worker template image — across evaluate
  // calls too), switching templates, and alternating within a block must
  // agree bitwise with the per-query references on every engine — the
  // cached resolution and the cached image may only ever be reused for an
  // identical assignment at an identical block width.
  Rng rng(37);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 6;
  const Circuit circuit = compile::compile_network(bn::make_random_network(spec, rng));
  const CircuitTape tape = CircuitTape::compile(circuit);
  const auto distinct = random_assignments(circuit.cardinalities(), 4, 0.6, rng);

  // At block 8: three full uniform blocks of template 0 (compose once,
  // restore twice), a partial uniform tail, alternating blocks, then a full
  // uniform block of a *different* template (must invalidate, not reuse).
  std::vector<PartialAssignment> batch;
  for (int rep = 0; rep < 27; ++rep) batch.push_back(distinct[0]);
  for (int rep = 0; rep < 9; ++rep) {
    batch.push_back(distinct[1]);
    batch.push_back(distinct[2]);
  }
  batch.push_back(distinct[3]);
  for (int rep = 0; rep < 8; ++rep) batch.push_back(distinct[1]);

  for (const bool force_generic : {false, true}) {
    BatchEvaluator::Options opts;
    opts.force_generic = force_generic;
    opts.block = 8;
    BatchEvaluator batched(tape, opts);
    EXPECT_TRUE(batched.uses_evidence_template());
    for (int round = 0; round < 2; ++round) {
      const std::vector<double>& roots = batched.evaluate(batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(roots[i], evaluate(circuit, batch[i]))
            << "force_generic=" << force_generic << " round=" << round << " query=" << i;
      }
    }
  }

  // The low-precision engines share the same fast path on every datapath:
  // fixed narrow u32, float u32/u64 lanes and the wide interleaved float.
  const auto check_lowprec = [&](auto& batched, auto& single, const std::string& what) {
    for (int round = 0; round < 2; ++round) {
      const std::vector<double>& roots = batched.evaluate(batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const LowPrecisionResult want = single.evaluate(batch[i]);
        ASSERT_EQ(roots[i], want.value) << what << " round=" << round << " query=" << i;
        ASSERT_EQ(batched.flags()[i].overflow, want.flags.overflow) << what << " query=" << i;
        ASSERT_EQ(batched.flags()[i].underflow, want.flags.underflow)
            << what << " query=" << i;
      }
    }
  };
  for (const int threads : {1, 2}) {
    BatchEvaluator::Options opts;
    opts.block = 8;
    opts.num_threads = threads;
    const std::string where = " threads=" + std::to_string(threads);

    const lowprec::FixedFormat fx{2, 12};
    FixedTapeEvaluator fx_single(tape, fx);
    FixedBatchEvaluator fx_batched(tape, fx, lowprec::RoundingMode::kNearestEven, opts);
    EXPECT_TRUE(fx_batched.narrow_datapath());
    check_lowprec(fx_batched, fx_single, "fixed" + where);

    for (const lowprec::FloatFormat fl :
         {lowprec::FloatFormat{5, 7}, lowprec::FloatFormat{8, 30},
          lowprec::FloatFormat{8, 35}}) {
      FloatTapeEvaluator fl_single(tape, fl);
      FloatBatchEvaluator fl_batched(tape, fl, lowprec::RoundingMode::kNearestEven, opts);
      EXPECT_EQ(fl_batched.float_lane_bits(),
                fl.mantissa_bits <= 27 ? 32 : (fl.mantissa_bits <= 31 ? 64 : 0));
      check_lowprec(fl_batched, fl_single, fl.to_string() + where);
    }
  }
}

TEST(Tape, LeafRootAndSteadyStateReuse) {
  // A parameter-only circuit: the sweep has no operators, the root row comes
  // straight from the base pattern.
  Circuit c({2});
  c.set_root(c.add_parameter(0.25));
  const CircuitTape tape = CircuitTape::compile(c);
  std::vector<double> scratch;
  EXPECT_EQ(tape.evaluate(PartialAssignment(1), scratch), 0.25);

  BatchEvaluator batch(tape);
  const std::vector<PartialAssignment> queries(40, PartialAssignment(1));
  for (int round = 0; round < 3; ++round) {
    const std::vector<double>& roots = batch.evaluate(queries);
    for (double r : roots) EXPECT_EQ(r, 0.25);
  }
}

}  // namespace
}  // namespace problp::ac
