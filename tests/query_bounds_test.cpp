#include <cmath>

#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "errormodel/query_bounds.hpp"
#include "helpers.hpp"

namespace problp::errormodel {
namespace {

using ac::Circuit;
using lowprec::FixedFormat;
using lowprec::FloatFormat;

struct CompiledNet {
  bn::BayesianNetwork network;
  Circuit binary;
  CircuitErrorModel model;
};

CompiledNet compile_random(std::uint64_t seed, int num_vars = 6) {
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_vars;
  spec.max_parents = 2;
  Rng rng(seed);
  CompiledNet out{bn::make_random_network(spec, rng), Circuit({1}), {}};
  out.binary = ac::binarize(compile::compile_network(out.network)).circuit;
  out.model = CircuitErrorModel::build(out.binary);
  return out;
}

TEST(QueryBounds, FixedConditionalRelativeUnsupported) {
  const CompiledNet net = compile_random(1);
  const QuerySpec spec{QueryType::kConditional, ToleranceKind::kRelative, 0.01};
  EXPECT_TRUE(std::isinf(fixed_query_bound(net.binary, net.model, spec, FixedFormat{1, 40})));
}

TEST(QueryBounds, FixedMarginalAbsoluteIsRootBound) {
  const CompiledNet net = compile_random(2);
  const FixedFormat fmt{1, 12};
  const QuerySpec abs_spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const QuerySpec rel_spec{QueryType::kMarginal, ToleranceKind::kRelative, 0.01};
  const double abs_bound = fixed_query_bound(net.binary, net.model, abs_spec, fmt);
  const double rel_bound = fixed_query_bound(net.binary, net.model, rel_spec, fmt);
  EXPECT_GT(abs_bound, 0.0);
  // Relative = absolute / min-positive root value (eq. 14 denominator).
  EXPECT_NEAR(rel_bound, abs_bound / net.model.range.root_min, 1e-12 * rel_bound);
  EXPECT_GT(rel_bound, abs_bound);  // root_min < 1 for any real network
}

TEST(QueryBounds, FloatMarginalBounds) {
  const CompiledNet net = compile_random(3);
  const FloatFormat fmt{11, 13};
  const QuerySpec abs_spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const QuerySpec rel_spec{QueryType::kMarginal, ToleranceKind::kRelative, 0.01};
  const double rel = float_query_bound(net.model, rel_spec, fmt);
  const double abs = float_query_bound(net.model, abs_spec, fmt);
  EXPECT_NEAR(rel, float_relative_bound(net.model.float_counts.root_count, fmt), 1e-15);
  EXPECT_NEAR(abs, net.model.range.root_max * rel, 1e-15 * abs);
}

TEST(QueryBounds, FloatConditionalUsesRatioBound) {
  const CompiledNet net = compile_random(4);
  const FloatFormat fmt{11, 13};
  const QuerySpec cond{QueryType::kConditional, ToleranceKind::kRelative, 0.01};
  const QuerySpec marg{QueryType::kMarginal, ToleranceKind::kRelative, 0.01};
  // Ratio of two noisy evaluations is worse than one evaluation.
  EXPECT_GT(float_query_bound(net.model, cond, fmt), float_query_bound(net.model, marg, fmt));
}

TEST(QueryBounds, BoundsShrinkWithMoreBits) {
  const CompiledNet net = compile_random(5);
  const QuerySpec spec{QueryType::kConditional, ToleranceKind::kAbsolute, 0.01};
  double prev_fx = std::numeric_limits<double>::infinity();
  double prev_fl = std::numeric_limits<double>::infinity();
  for (int bits = 6; bits <= 36; bits += 6) {
    const double fx = fixed_query_bound(net.binary, net.model, spec, FixedFormat{1, bits});
    const double fl = float_query_bound(net.model, spec, FloatFormat{11, bits});
    EXPECT_LT(fx, prev_fx);
    EXPECT_LT(fl, prev_fl);
    prev_fx = fx;
    prev_fl = fl;
  }
}

// Conditional-bound soundness: observed conditional-probability errors stay
// within the query bound, exhaustively over small networks.
class ConditionalSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConditionalSoundness, FixedAbsolute) {
  const CompiledNet net = compile_random(GetParam(), 5);
  const FixedFormat fmt{1, 20};
  const QuerySpec spec{QueryType::kConditional, ToleranceKind::kAbsolute, 0.0};
  const double bound = fixed_query_bound(net.binary, net.model, spec, fmt);
  ASSERT_TRUE(std::isfinite(bound));
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 20; ++i) {
    bn::Evidence e = test::random_evidence(net.network, 0.5, rng);
    e[0] = std::nullopt;
    const auto ea = compile::to_assignment(e);
    const double exact_pe = ac::evaluate(net.binary, ea);
    if (exact_pe <= 0.0) continue;
    const auto approx_pe = ac::evaluate_fixed(net.binary, ea, fmt);
    ASSERT_FALSE(approx_pe.flags.overflow);
    if (approx_pe.value <= 0.0) continue;
    for (int q = 0; q < net.network.cardinality(0); ++q) {
      auto qa = ea;
      qa[0] = q;
      const double exact = ac::evaluate(net.binary, qa) / exact_pe;
      const auto approx_qe = ac::evaluate_fixed(net.binary, qa, fmt);
      const double approx = approx_qe.value / approx_pe.value;
      EXPECT_LE(std::abs(approx - exact), bound * (1.0 + 1e-9));
    }
  }
}

TEST_P(ConditionalSoundness, FloatRelative) {
  const CompiledNet net = compile_random(GetParam(), 5);
  const FloatFormat fmt{13, 12};
  const QuerySpec spec{QueryType::kConditional, ToleranceKind::kRelative, 0.0};
  const double bound = float_query_bound(net.model, spec, fmt);
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 20; ++i) {
    bn::Evidence e = test::random_evidence(net.network, 0.5, rng);
    e[0] = std::nullopt;
    const auto ea = compile::to_assignment(e);
    const double exact_pe = ac::evaluate(net.binary, ea);
    if (exact_pe <= 0.0) continue;
    const auto approx_pe = ac::evaluate_float(net.binary, ea, fmt);
    ASSERT_FALSE(approx_pe.flags.any());
    for (int q = 0; q < net.network.cardinality(0); ++q) {
      auto qa = ea;
      qa[0] = q;
      const double exact_joint = ac::evaluate(net.binary, qa);
      if (exact_joint <= 0.0) continue;
      const double exact = exact_joint / exact_pe;
      const auto approx_qe = ac::evaluate_float(net.binary, qa, fmt);
      const double approx = approx_qe.value / approx_pe.value;
      EXPECT_LE(std::abs(approx - exact) / exact, bound * (1.0 + 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionalSoundness, ::testing::Values(11, 22, 33, 44, 55));

TEST(QueryBounds, MpeUsesMaxCircuit) {
  // MPE bound on the max-circuit is finite and the max-circuit evaluation
  // respects it.
  const CompiledNet net = compile_random(6, 5);
  const Circuit max_binary = ac::binarize(ac::to_max_circuit(net.binary)).circuit;
  const CircuitErrorModel model = CircuitErrorModel::build(max_binary);
  const FixedFormat fmt{1, 16};
  const QuerySpec spec{QueryType::kMpe, ToleranceKind::kAbsolute, 0.0};
  const double bound = fixed_query_bound(max_binary, model, spec, fmt);
  ASSERT_TRUE(std::isfinite(bound));
  Rng rng(61);
  for (int i = 0; i < 30; ++i) {
    const auto a = compile::to_assignment(test::random_evidence(net.network, 0.5, rng));
    const double exact = ac::evaluate(max_binary, a);
    const auto approx = ac::evaluate_fixed(max_binary, a, fmt);
    EXPECT_LE(std::abs(approx.value - exact), bound * (1.0 + 1e-9));
  }
  // Max nodes round nothing: the MPE bound never exceeds the marginal one.
  const QuerySpec marg{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.0};
  EXPECT_LE(bound, fixed_query_bound(net.binary, net.model, marg, fmt) * (1.0 + 1e-12));
}

}  // namespace
}  // namespace problp::errormodel
