#include "helpers.hpp"

#include <algorithm>

namespace problp::test {

namespace {

// Calls fn(assignment) for every full assignment consistent with evidence.
template <class Fn>
void for_each_consistent(const bn::BayesianNetwork& network, const bn::Evidence& evidence,
                         Fn&& fn) {
  const int n = network.num_variables();
  std::vector<int> a(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    if (evidence[static_cast<std::size_t>(v)].has_value()) {
      a[static_cast<std::size_t>(v)] = *evidence[static_cast<std::size_t>(v)];
    }
  }
  while (true) {
    fn(a);
    int v = n - 1;
    for (; v >= 0; --v) {
      if (evidence[static_cast<std::size_t>(v)].has_value()) continue;
      if (++a[static_cast<std::size_t>(v)] < network.cardinality(v)) break;
      a[static_cast<std::size_t>(v)] = 0;
    }
    if (v < 0) return;
  }
}

double joint_probability(const bn::BayesianNetwork& network, const std::vector<int>& a) {
  double p = 1.0;
  for (int v = 0; v < network.num_variables(); ++v) {
    std::vector<int> pstates;
    for (int par : network.parents(v)) pstates.push_back(a[static_cast<std::size_t>(par)]);
    p *= network.cpt_value(v, a[static_cast<std::size_t>(v)], pstates);
  }
  return p;
}

}  // namespace

double brute_force_probability(const bn::BayesianNetwork& network, const bn::Evidence& evidence) {
  double total = 0.0;
  for_each_consistent(network, evidence,
                      [&](const std::vector<int>& a) { total += joint_probability(network, a); });
  return total;
}

double brute_force_mpe(const bn::BayesianNetwork& network, const bn::Evidence& evidence) {
  double best = 0.0;
  for_each_consistent(network, evidence, [&](const std::vector<int>& a) {
    best = std::max(best, joint_probability(network, a));
  });
  return best;
}

std::vector<ac::PartialAssignment> all_partial_assignments(const std::vector<int>& cards) {
  std::vector<ac::PartialAssignment> out;
  ac::PartialAssignment cur(cards.size());
  // Odometer over (card+1) options per variable: nullopt, 0, ..., card-1.
  std::vector<int> digit(cards.size(), 0);
  while (true) {
    for (std::size_t v = 0; v < cards.size(); ++v) {
      cur[v] = (digit[v] == 0) ? std::nullopt : std::optional<int>(digit[v] - 1);
    }
    out.push_back(cur);
    std::size_t v = cards.size();
    while (v > 0) {
      --v;
      if (++digit[v] <= cards[v]) break;
      digit[v] = 0;
      if (v == 0) return out;
    }
    if (cards.empty()) return out;
  }
}

std::vector<ac::PartialAssignment> all_full_assignments(const std::vector<int>& cards) {
  std::vector<ac::PartialAssignment> out;
  ac::PartialAssignment cur(cards.size());
  std::vector<int> digit(cards.size(), 0);
  while (true) {
    for (std::size_t v = 0; v < cards.size(); ++v) cur[v] = digit[v];
    out.push_back(cur);
    std::size_t v = cards.size();
    while (v > 0) {
      --v;
      if (++digit[v] < cards[v]) break;
      digit[v] = 0;
      if (v == 0) return out;
    }
    if (cards.empty()) return out;
  }
}

ac::Circuit make_random_circuit(const RandomCircuitSpec& spec, Rng& rng) {
  std::vector<int> cards;
  for (int v = 0; v < spec.num_variables; ++v) {
    cards.push_back(rng.uniform_int(2, spec.max_cardinality));
  }
  ac::Circuit circuit(cards);
  std::vector<ac::NodeId> pool;
  // Leaves: every indicator plus a few parameters.
  for (int v = 0; v < spec.num_variables; ++v) {
    for (int s = 0; s < cards[static_cast<std::size_t>(v)]; ++s) {
      pool.push_back(circuit.add_indicator(v, s));
    }
  }
  const int num_params = std::max(2, spec.num_variables * 2);
  for (int i = 0; i < num_params; ++i) {
    pool.push_back(circuit.add_parameter(rng.uniform(1e-3, spec.max_parameter)));
  }
  for (int i = 0; i < spec.num_operators; ++i) {
    const int fanin = rng.uniform_int(2, spec.max_fanin);
    std::vector<ac::NodeId> children;
    for (int k = 0; k < fanin; ++k) {
      children.push_back(pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(pool.size()) - 1))]);
    }
    const ac::NodeId id = rng.coin(spec.p_sum) ? circuit.add_sum(std::move(children))
                                               : circuit.add_prod(std::move(children));
    pool.push_back(id);
  }
  circuit.set_root(pool.back());
  return circuit;
}

bn::Evidence random_evidence(const bn::BayesianNetwork& network, double p_observe, Rng& rng) {
  bn::Evidence e = network.empty_evidence();
  for (int v = 0; v < network.num_variables(); ++v) {
    if (rng.coin(p_observe)) {
      e[static_cast<std::size_t>(v)] = rng.uniform_int(0, network.cardinality(v) - 1);
    }
  }
  return e;
}

}  // namespace problp::test
