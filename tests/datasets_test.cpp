#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ac/evaluator.hpp"
#include "datasets/benchmark_suite.hpp"
#include "datasets/discretize.hpp"
#include "datasets/naive_bayes.hpp"
#include "datasets/synthetic.hpp"

namespace problp::datasets {
namespace {

TEST(Synthetic, DeterministicPerSeed) {
  const Dataset a = generate_synthetic(har_like_spec());
  const Dataset b = generate_synthetic(har_like_spec());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features.front(), b.features.front());
}

TEST(Synthetic, ShapesMatchSpecs) {
  const SyntheticSpec spec = har_like_spec();
  const Dataset d = generate_synthetic(spec);
  EXPECT_EQ(static_cast<int>(d.size()), spec.num_samples);
  EXPECT_EQ(d.num_features(), spec.num_features);
  EXPECT_EQ(d.num_classes, spec.num_classes);
  std::set<int> seen(d.labels.begin(), d.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), spec.num_classes);  // all classes present
}

TEST(Synthetic, SplitProportionsAndDisjointness) {
  const Dataset d = generate_synthetic(unimib_like_spec());
  const Split s = split_dataset(d, 0.6, 7);
  EXPECT_EQ(s.train.size() + s.test.size(), d.size());
  EXPECT_NEAR(static_cast<double>(s.train.size()) / static_cast<double>(d.size()), 0.6, 0.01);
  EXPECT_THROW(split_dataset(d, 1.5, 7), InvalidArgument);
}

TEST(Discretizer, BinsWithinRange) {
  const Dataset d = generate_synthetic(uiwads_like_spec());
  const EqualWidthDiscretizer disc(d, 4);
  for (const auto& row : d.features) {
    for (int b : disc.transform(row)) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, 4);
    }
  }
}

TEST(Discretizer, OutOfRangeClampsToEdgeBins) {
  Dataset train;
  train.num_classes = 2;
  train.features = {{0.0}, {1.0}};
  train.labels = {0, 1};
  const EqualWidthDiscretizer disc(train, 4);
  EXPECT_EQ(disc.transform_value(0, -100.0), 0);
  EXPECT_EQ(disc.transform_value(0, +100.0), 3);
  EXPECT_EQ(disc.transform_value(0, 0.1), 0);
  EXPECT_EQ(disc.transform_value(0, 0.9), 3);
}

TEST(Discretizer, ConstantFeatureSafe) {
  Dataset train;
  train.num_classes = 2;
  train.features = {{5.0}, {5.0}};
  train.labels = {0, 1};
  const EqualWidthDiscretizer disc(train, 3);
  EXPECT_EQ(disc.transform_value(0, 5.0), 0);
}

TEST(NaiveBayes, LearnsValidNetwork) {
  const Dataset d = generate_synthetic(uiwads_like_spec());
  const EqualWidthDiscretizer disc(d, 3);
  const bn::BayesianNetwork nb =
      learn_naive_bayes(disc.transform_all(d), d.labels, d.num_classes, 3);
  EXPECT_NO_THROW(nb.validate());
  EXPECT_EQ(nb.num_variables(), d.num_features() + 1);
  // Laplace smoothing: every parameter strictly positive.
  for (int v = 0; v < nb.num_variables(); ++v) {
    for (double p : nb.cpt(v).values) EXPECT_GT(p, 0.0);
  }
}

TEST(NaiveBayes, LearnsSeparableData) {
  // A trivially separable dataset: feature bin == label.
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({i % 2});
    labels.push_back(i % 2);
  }
  const bn::BayesianNetwork nb = learn_naive_bayes(rows, labels, 2, 2);
  // P(f0 = 0 | class = 0) must dominate.
  EXPECT_GT(nb.cpt_value(1, 0, {0}), 0.9);
  EXPECT_LT(nb.cpt_value(1, 0, {1}), 0.1);
}

TEST(NaiveBayes, EvidenceFromRow) {
  const Dataset d = generate_synthetic(uiwads_like_spec());
  const EqualWidthDiscretizer disc(d, 3);
  const bn::BayesianNetwork nb =
      learn_naive_bayes(disc.transform_all(d), d.labels, d.num_classes, 3);
  const auto row = disc.transform(d.features.front());
  const bn::Evidence e = evidence_from_row(nb, row);
  EXPECT_FALSE(e[0].has_value());  // class unobserved
  for (std::size_t f = 0; f < row.size(); ++f) EXPECT_EQ(*e[f + 1], row[f]);
}

TEST(BenchmarkSuite, AllFourAssemble) {
  const auto benchmarks = make_all_benchmarks(1);
  ASSERT_EQ(benchmarks.size(), 4u);
  EXPECT_EQ(benchmarks[0].name, "HAR");
  EXPECT_EQ(benchmarks[3].name, "Alarm");
  for (const auto& b : benchmarks) {
    EXPECT_NO_THROW(b.network.validate());
    EXPECT_FALSE(b.test_evidence.empty());
    EXPECT_GE(b.query_var, 0);
    // Circuit root must sum to ~1 with all indicators one (network poly).
    EXPECT_NEAR(ac::evaluate(b.circuit, ac::all_indicators_one(b.circuit)), 1.0, 1e-9)
        << b.name;
    // Query variable unobserved in all test evidence.
    for (const auto& e : b.test_evidence) {
      EXPECT_FALSE(e[static_cast<std::size_t>(b.query_var)].has_value());
    }
  }
}

TEST(BenchmarkSuite, SizesKeepPaperOrdering) {
  // Predicted-energy ordering in Table 2 (HAR > UNIMIB > UIWADS) follows
  // from circuit size; keep that shape.
  const auto har = make_har_benchmark(1);
  const auto unimib = make_unimib_benchmark(1);
  const auto uiwads = make_uiwads_benchmark(1);
  EXPECT_GT(har.circuit.stats().num_prods, unimib.circuit.stats().num_prods);
  EXPECT_GT(unimib.circuit.stats().num_prods, uiwads.circuit.stats().num_prods);
}

TEST(BenchmarkSuite, AlarmEvidenceOnLeavesOnly) {
  const auto alarm = make_alarm_benchmark(1, 50);
  EXPECT_EQ(alarm.test_evidence.size(), 50u);
  for (const auto& e : alarm.test_evidence) {
    for (int v = 0; v < alarm.network.num_variables(); ++v) {
      if (e[static_cast<std::size_t>(v)].has_value()) {
        EXPECT_TRUE(alarm.network.children(v).empty()) << "evidence on non-leaf " << v;
      }
    }
  }
  // Query variable is a root.
  EXPECT_TRUE(alarm.network.parents(alarm.query_var).empty());
}

}  // namespace
}  // namespace problp::datasets
