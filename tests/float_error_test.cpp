#include <cmath>

#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "errormodel/float_error.hpp"
#include "helpers.hpp"

namespace problp::errormodel {
namespace {

using ac::Circuit;
using ac::NodeId;
using lowprec::FloatFormat;

TEST(FloatError, CounterRules) {
  Circuit c({2});
  const NodeId lam = c.add_indicator(0, 0);
  const NodeId t1 = c.add_parameter(0.3);
  const NodeId t2 = c.add_parameter(0.4);
  const NodeId p = c.add_prod({t1, t2});   // 1 + 1 + 1 = 3 (eq. 12)
  const NodeId s = c.add_sum({p, lam});    // max(3, 0) + 1 = 4 (eq. 10)
  const NodeId m = c.add_max({s, t1});     // max(4, 1) = 4 (exact compare)
  c.set_root(m);
  const auto fl = propagate_float_error(c);
  EXPECT_EQ(fl.node_count[static_cast<std::size_t>(lam)], 0);
  EXPECT_EQ(fl.node_count[static_cast<std::size_t>(t1)], 1);
  EXPECT_EQ(fl.node_count[static_cast<std::size_t>(p)], 3);
  EXPECT_EQ(fl.node_count[static_cast<std::size_t>(s)], 4);
  EXPECT_EQ(fl.node_count[static_cast<std::size_t>(m)], 4);
  EXPECT_EQ(fl.root_count, 4);
}

TEST(FloatError, RelativeBoundFormula) {
  const FloatFormat fmt{8, 10};
  const double eps = fmt.epsilon();
  EXPECT_NEAR(float_relative_bound(1, fmt), eps, eps * 1e-9);
  EXPECT_NEAR(float_relative_bound(3, fmt), std::pow(1.0 + eps, 3) - 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(float_relative_bound(0, fmt), 0.0);
  // Truncation doubles epsilon.
  EXPECT_NEAR(float_relative_bound(1, fmt, lowprec::RoundingMode::kTruncate), 2.0 * eps,
              eps * 1e-9);
}

TEST(FloatError, LargeCountStable) {
  const FloatFormat fmt{8, 23};
  const double b = float_relative_bound(1000000, fmt);
  EXPECT_GT(b, 0.0);
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_NEAR(b, std::expm1(1000000 * std::log1p(fmt.epsilon())), 1e-12);
}

TEST(FloatError, RequiresBinaryCircuit) {
  Circuit c({2});
  const NodeId a = c.add_parameter(0.1);
  const NodeId b = c.add_parameter(0.2);
  const NodeId d = c.add_parameter(0.3);
  c.set_root(c.add_sum({a, b, d}));
  EXPECT_THROW(propagate_float_error(c), InvalidArgument);
}

TEST(FloatError, CountersGrowTowardRoot) {
  Rng rng(95);
  test::RandomCircuitSpec spec;
  spec.num_operators = 40;
  const Circuit c = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const auto fl = propagate_float_error(c);
  for (std::size_t i = 0; i < c.num_nodes(); ++i) {
    const auto& n = c.node(static_cast<NodeId>(i));
    for (NodeId child : n.children) {
      EXPECT_GE(fl.node_count[i], fl.node_count[static_cast<std::size_t>(child)]);
    }
  }
}

// Soundness (Fig. 5b's "observed <= bound"): the observed float relative
// error never exceeds (1+eps)^C - 1, across mantissa widths and circuits.
class FloatErrorSoundness : public ::testing::TestWithParam<int> {};

TEST_P(FloatErrorSoundness, ObservedWithinBound) {
  const int m = GetParam();
  Rng rng(800 + m);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 25;
  spec.p_sum = 0.6;
  const FloatFormat fmt{11, m};  // wide exponent: no under/overflow
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit c = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
    const auto fl = propagate_float_error(c);
    const double bound = float_relative_bound(fl.root_count, fmt);
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const double exact = ac::evaluate(c, a);
      if (exact <= 0.0) continue;
      const auto approx = ac::evaluate_float(c, a, fmt);
      ASSERT_FALSE(approx.flags.any());
      EXPECT_LE(std::abs(approx.value - exact) / exact, bound * (1.0 + 1e-12))
          << "trial=" << trial << " M=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MantissaBits, FloatErrorSoundness, ::testing::Values(2, 4, 8, 13, 20));

}  // namespace
}  // namespace problp::errormodel
