#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/int_math.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace problp {
namespace {

TEST(IntMath, MsbIndex) {
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(2), 1);
  EXPECT_EQ(msb_index(3), 1);
  EXPECT_EQ(msb_index(u128_pow2(100)), 100);
  EXPECT_EQ(msb_index(u128_pow2(100) + 5), 100);
}

TEST(IntMath, BitWidth) {
  EXPECT_EQ(bit_width_u128(0), 0);
  EXPECT_EQ(bit_width_u128(1), 1);
  EXPECT_EQ(bit_width_u128(255), 8);
  EXPECT_EQ(bit_width_u128(256), 9);
}

TEST(IntMath, FloorCeilLog2U64) {
  EXPECT_EQ(floor_log2_u64(1), 0);
  EXPECT_EQ(floor_log2_u64(7), 2);
  EXPECT_EQ(floor_log2_u64(8), 3);
  EXPECT_EQ(ceil_log2_u64(1), 0);
  EXPECT_EQ(ceil_log2_u64(7), 3);
  EXPECT_EQ(ceil_log2_u64(8), 3);
  EXPECT_EQ(ceil_log2_u64(9), 4);
}

TEST(IntMath, FloorCeilLog2Double) {
  EXPECT_EQ(floor_log2_double(1.0), 0);
  EXPECT_EQ(floor_log2_double(0.5), -1);
  EXPECT_EQ(floor_log2_double(0.75), -1);
  EXPECT_EQ(floor_log2_double(3.0), 1);
  EXPECT_EQ(ceil_log2_double(1.0), 0);
  EXPECT_EQ(ceil_log2_double(1.5), 1);
  EXPECT_EQ(ceil_log2_double(0.25), -2);
  EXPECT_EQ(ceil_log2_double(0.3), -1);
  EXPECT_THROW(floor_log2_double(0.0), InvalidArgument);
  EXPECT_THROW(floor_log2_double(-1.0), InvalidArgument);
}

TEST(IntMath, Pow2) {
  EXPECT_DOUBLE_EQ(pow2(0), 1.0);
  EXPECT_DOUBLE_EQ(pow2(10), 1024.0);
  EXPECT_DOUBLE_EQ(pow2(-1), 0.5);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, CategoricalRespectsZeros) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(Rng, CategoricalProportions) {
  Rng rng(123);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<std::size_t>(rng.categorical({1.0, 3.0}))];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), InvalidArgument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), InvalidArgument);
}

TEST(Rng, DirichletOnSimplex) {
  Rng rng(5);
  for (double alpha : {0.3, 1.0, 5.0}) {
    const auto v = rng.dirichlet(4, alpha);
    ASSERT_EQ(v.size(), 4u);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Strings, TrimSplit) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, StartsWithToLower) {
  EXPECT_TRUE(starts_with("probability", "prob"));
  EXPECT_FALSE(starts_with("pro", "prob"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Strings, Format) {
  EXPECT_EQ(str_format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(sci(5.9e-4, 1), "5.9e-04");
}

TEST(Strings, VerilogIdent) {
  EXPECT_EQ(verilog_ident("lambda v0.s1"), "lambda_v0_s1");
  EXPECT_EQ(verilog_ident("9abc"), "n9abc");
  EXPECT_EQ(verilog_ident(""), "n");
}

TEST(Table, Renders) {
  TextTable t({"a", "bbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a    bbb"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

}  // namespace
}  // namespace problp
