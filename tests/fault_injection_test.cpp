// The robustness layer (ISSUE 9): fault injection + precision escalation.
//
// Contract under test: every registered fault site fires deterministically
// and drives its *real* error path — a failed artifact write leaves no
// debris, a failed mmap falls back to the heap read with identical views, a
// short read / flipped checksum / post-open truncation is rejected with a
// problp::Error (never UB), a registry load failure leaves the registry
// table untouched and the next get() succeeds, and an exception escaping a
// batched worker thread surfaces as problp::Error, never std::terminate.
// On top: the precision-escalation fallback re-serves exactly the flagged
// queries on wider rungs, bitwise-equal to what the wider backend computes
// stand-alone, while clean queries keep their base-format answers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"
#include "runtime/artifact.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/session.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace problp {
namespace {

using runtime::ArtifactWriter;
using runtime::CompiledModel;
using runtime::FallbackPolicy;
using runtime::InferenceSession;
using runtime::MappedArtifact;
using runtime::ModelRegistry;
using runtime::QueryProvenance;
using runtime::SessionOptions;
using util::FaultInjector;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "problp_fault_test_" + name;
}

ac::Circuit test_circuit(std::uint64_t seed, int num_variables = 8) {
  Rng rng(seed);
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_variables;
  return compile::compile_network(bn::make_random_network(spec, rng));
}

std::vector<ac::PartialAssignment> sampled_assignments(const std::vector<int>& cards,
                                                       std::size_t count, double p_observe,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ac::PartialAssignment> out;
  for (std::size_t i = 0; i < count; ++i) {
    ac::PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (rng.coin(p_observe)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::size_t flagged_count(const std::vector<lowprec::ArithFlags>& flags) {
  std::size_t n = 0;
  for (const auto& f : flags) n += f.any() ? 1u : 0u;
  return n;
}

// A float format under which `batch` on `model` raises flags for some but
// not all queries — the interesting regime for escalation (an all-flagged
// or all-clean batch would vacuously pass the scatter checks).
std::optional<Representation> mixed_flag_format(const std::shared_ptr<const CompiledModel>& model,
                                                const std::vector<ac::PartialAssignment>& batch) {
  for (int exponent_bits : {4, 5, 6, 7}) {
    lowprec::FloatFormat format;
    format.exponent_bits = exponent_bits;
    format.mantissa_bits = 4;
    const Representation repr = Representation::of(format);
    InferenceSession probe(model, SessionOptions::low_precision(repr));
    probe.marginal(batch);
    const std::size_t flagged = flagged_count(probe.last_query_flags());
    if (flagged > 0 && flagged < batch.size()) return repr;
  }
  return std::nullopt;
}

// Every fault-site test arms through this fixture so a failing assertion
// can never leak an armed site into the next test.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

// ---- the injector itself ---------------------------------------------------

TEST_F(FaultInjection, ArmedSiteFiresOnNthHitExactlyOnce) {
  FaultInjector& inj = FaultInjector::instance();
  EXPECT_FALSE(util::fault_point("unit.test"));  // unarmed: never fires
  EXPECT_EQ(inj.hits("unit.test"), 0u);          // ...and unarmed hits don't count

  inj.arm("unit.test", 3);
  EXPECT_FALSE(util::fault_point("unit.test"));
  EXPECT_FALSE(util::fault_point("unit.test"));
  EXPECT_TRUE(util::fault_point("unit.test"));   // the 3rd hit
  EXPECT_FALSE(util::fault_point("unit.test"));  // single-shot
  EXPECT_TRUE(inj.fired("unit.test"));
  EXPECT_EQ(inj.hits("unit.test"), 4u);

  inj.arm("unit.test");  // re-arming resets the counter
  EXPECT_EQ(inj.hits("unit.test"), 0u);
  EXPECT_FALSE(inj.fired("unit.test"));
  EXPECT_TRUE(util::fault_point("unit.test"));

  inj.reset();
  EXPECT_FALSE(util::fault_point("unit.test"));
  EXPECT_EQ(inj.hits("unit.test"), 0u);
}

TEST_F(FaultInjection, DisarmStopsFiringKeepsHistory) {
  FaultInjector& inj = FaultInjector::instance();
  inj.arm("unit.disarm", 2);
  EXPECT_FALSE(util::fault_point("unit.disarm"));
  inj.disarm("unit.disarm");
  EXPECT_FALSE(util::fault_point("unit.disarm"));  // would have been the 2nd hit
  EXPECT_FALSE(inj.fired("unit.disarm"));
}

// ---- artifact sites --------------------------------------------------------

TEST_F(FaultInjection, ArtifactWriteFailureLeavesNoDebris) {
  const std::string path = temp_path("write_fault.pm");
  std::filesystem::remove(path);
  ArtifactWriter writer("write-fault");
  const std::vector<std::int32_t> payload = {1, 2, 3};
  writer.add_array(7, payload);

  FaultInjector::instance().arm("artifact.write");
  EXPECT_THROW(writer.write(path), Error);
  EXPECT_TRUE(FaultInjector::instance().fired("artifact.write"));

  // The failed save left nothing behind — no target, no temp debris.
  EXPECT_FALSE(std::filesystem::exists(path));
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  const std::string stem = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().rfind(stem, 0), std::string::npos)
        << "debris: " << entry.path();
  }

  // The writer is still usable once the fault clears.
  FaultInjector::instance().reset();
  writer.write(path);
  const MappedArtifact art = MappedArtifact::open(path);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), art.array<std::int32_t>(7).begin()));
}

TEST_F(FaultInjection, MmapFailureFallsBackToHeapReadWithIdenticalViews) {
  const std::string path = temp_path("mmap_fault.pm");
  ArtifactWriter writer("mmap-fault");
  const std::vector<double> payload = {0.25, -1e300, 3.5};
  writer.add_array(9, payload);
  writer.write(path);
  if (!MappedArtifact::open(path).mapped()) GTEST_SKIP() << "no mmap on this platform";

  FaultInjector::instance().arm("artifact.mmap");
  const MappedArtifact art = MappedArtifact::open(path);
  EXPECT_TRUE(FaultInjector::instance().fired("artifact.mmap"));
  EXPECT_FALSE(art.mapped());  // heap fallback engaged...
  EXPECT_TRUE(                 // ...with the same validated views
      std::equal(payload.begin(), payload.end(), art.array<double>(9).begin()));
}

TEST_F(FaultInjection, ShortReadRejected) {
  const std::string path = temp_path("short_read.pm");
  ArtifactWriter writer("short-read");
  writer.add_text(11, "payload");
  writer.write(path);

  // Force the heap-read path (mmap fault), then come up short on the read.
  FaultInjector::instance().arm("artifact.mmap");
  FaultInjector::instance().arm("artifact.short_read");
  EXPECT_THROW(MappedArtifact::open(path), Error);
  EXPECT_TRUE(FaultInjector::instance().fired("artifact.short_read"));
}

TEST_F(FaultInjection, ChecksumFlipRejected) {
  const std::string path = temp_path("checksum.pm");
  ArtifactWriter writer("checksum");
  writer.add_text(11, "payload");
  writer.write(path);

  FaultInjector::instance().arm("artifact.checksum");
  EXPECT_THROW(MappedArtifact::open(path), Error);
  EXPECT_TRUE(FaultInjector::instance().fired("artifact.checksum"));
  FaultInjector::instance().reset();
  EXPECT_NO_THROW(MappedArtifact::open(path));  // the file itself is fine
}

TEST_F(FaultInjection, SizeRecheckRejectsPostOpenTruncation) {
  const std::string path = temp_path("size_recheck.pm");
  ArtifactWriter writer("size-recheck");
  writer.add_text(11, "payload");
  writer.write(path);
  if (!MappedArtifact::open(path).mapped()) GTEST_SKIP() << "no mmap on this platform";

  FaultInjector::instance().arm("artifact.size_recheck");
  try {
    MappedArtifact::open(path);
    FAIL() << "truncation-after-open must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("changed size"), std::string::npos) << e.what();
  }

  // read_copy mode never reaches the re-check — it holds no fd to re-stat
  // and no mapping to be torn; the armed site stays cold.
  FaultInjector::instance().arm("artifact.size_recheck");
  const MappedArtifact copy = MappedArtifact::open(path, /*read_copy=*/true);
  EXPECT_FALSE(copy.mapped());
  EXPECT_FALSE(FaultInjector::instance().fired("artifact.size_recheck"));
  EXPECT_EQ(FaultInjector::instance().hits("artifact.size_recheck"), 0u);
}

// ---- read-copy mode --------------------------------------------------------

TEST_F(FaultInjection, ReadCopyModelLoadsUnmappedWithBitwiseParity) {
  const std::string path = temp_path("read_copy.pm");
  const ac::Circuit circuit = test_circuit(91);
  CompiledModel::compile(circuit)->save(path);

  const auto mapped = CompiledModel::load(path);
  FrameworkOptions copy_options;
  copy_options.artifact_read_copy = true;
  const auto copied = CompiledModel::load(path, copy_options);
  EXPECT_FALSE(copied->memory_mapped());

  const auto batch = sampled_assignments(circuit.cardinalities(), 32, 0.5, 92);
  InferenceSession a(mapped), b(copied);
  const std::vector<double> va = a.marginal(batch);
  const std::vector<double> vb = b.marginal(batch);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(bits(va[i]), bits(vb[i]));

  // A registry configured for read-copy owns every resident byte.
  ModelRegistry::Options options;
  options.model_options.artifact_read_copy = true;
  ModelRegistry registry(options);
  EXPECT_FALSE(registry.get(path)->memory_mapped());
}

// ---- registry sites --------------------------------------------------------

TEST_F(FaultInjection, RegistryLoadFailureLeavesTableUnchanged) {
  const std::string path = temp_path("registry_load.pm");
  CompiledModel::compile(test_circuit(101))->save(path);

  ModelRegistry registry;
  FaultInjector::instance().arm("registry.load");
  EXPECT_THROW(registry.get(path), Error);

  // The failed load counted as a miss but inserted nothing.
  ModelRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.live_models, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);

  // The next get() recovers: a clean cold load, then hits.
  const auto model = registry.get(path);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(registry.get(path), model);
  stats = registry.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.live_models, 1u);
}

TEST_F(FaultInjection, RegistryEvictionRaceSurvivesInjectedLoadFailure) {
  const std::string path_a = temp_path("race_a.pm");
  const std::string path_b = temp_path("race_b.pm");
  const ac::Circuit circuit_a = test_circuit(111);
  const ac::Circuit circuit_b = test_circuit(112);
  CompiledModel::compile(circuit_a)->save(path_a);
  CompiledModel::compile(circuit_b)->save(path_b);

  // A cap below two artifacts keeps the registry evicting, so gets alternate
  // between hits on live weak refs and cold re-loads under contention.
  ModelRegistry::Options options;
  options.max_resident_bytes = std::filesystem::file_size(path_a) + 1;
  ModelRegistry registry(options);

  // One of the cold loads — whichever thread gets there — fails by
  // injection; everything else must stay coherent.
  FaultInjector::instance().arm("registry.load", 3);

  constexpr int kThreads = 8;
  constexpr int kIterations = 24;
  std::atomic<int> injected_errors{0};
  std::atomic<int> wrong_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string& path = ((t + i) % 2 == 0) ? path_a : path_b;
        try {
          const auto model = registry.get(path);
          InferenceSession session(model);
          ac::PartialAssignment empty(static_cast<std::size_t>(model->num_variables()));
          session.marginal(empty);
        } catch (const Error&) {
          injected_errors.fetch_add(1);
        } catch (...) {
          wrong_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(injected_errors.load(), 1);  // the armed site fired exactly once
  EXPECT_EQ(wrong_errors.load(), 0);     // ...and only as problp::Error

  // Invariants hold afterwards: both models still load and serve.
  const auto model_a = registry.get(path_a);
  const auto model_b = registry.get(path_b);
  EXPECT_NE(model_a, model_b);
  const ModelRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.live_models, 2u);
}

// ---- batched worker site ---------------------------------------------------

TEST_F(FaultInjection, WorkerThrowSurfacesAsErrorAcrossBackendsAndThreadCounts) {
  const ac::Circuit circuit = test_circuit(121);
  const auto model = CompiledModel::compile(circuit);
  const auto batch = sampled_assignments(circuit.cardinalities(), 48, 0.5, 122);

  lowprec::FloatFormat format;
  format.exponent_bits = 8;
  format.mantissa_bits = 10;

  for (const int num_threads : {1, 4}) {
    // Exact batched engine.
    SessionOptions exact_options;
    exact_options.batch.num_threads = num_threads;
    InferenceSession exact(model, exact_options);
    FaultInjector::instance().arm("batch.worker");
    EXPECT_THROW(exact.marginal(batch), Error) << "threads=" << num_threads;
    EXPECT_TRUE(FaultInjector::instance().fired("batch.worker"));

    // The session survives the failed sweep: the next batch serves answers
    // bit-identical to the single-query path.
    FaultInjector::instance().reset();
    const std::vector<double> batched = exact.marginal(batch);
    InferenceSession singles(model);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(bits(batched[i]), bits(singles.marginal(batch[i])));
    }

    // Low-precision batched engine (the other parallel_blocks caller).
    SessionOptions lp_options = SessionOptions::low_precision(Representation::of(format));
    lp_options.batch.num_threads = num_threads;
    InferenceSession lowprec(model, lp_options);
    FaultInjector::instance().arm("batch.worker");
    EXPECT_THROW(lowprec.marginal(batch), Error) << "threads=" << num_threads;
    FaultInjector::instance().reset();
    EXPECT_NO_THROW(lowprec.marginal(batch));
  }
}

// ---- precision escalation --------------------------------------------------

TEST(Escalation, ToExactServesFlaggedQueriesBitwiseExact) {
  const ac::Circuit circuit = test_circuit(131);
  const auto model = CompiledModel::compile(circuit);
  const auto batch = sampled_assignments(circuit.cardinalities(), 64, 0.5, 132);
  const auto repr = mixed_flag_format(model, batch);
  ASSERT_TRUE(repr.has_value()) << "no probe format produced a mixed-flag batch";

  // Three references: the base format with fallback off, the exact backend,
  // and the base format with escalate-to-exact.
  InferenceSession base(model, SessionOptions::low_precision(*repr));
  const std::vector<double> base_values = base.marginal(batch);
  const std::vector<lowprec::ArithFlags> base_flags = base.last_query_flags();

  InferenceSession exact(model);
  const std::vector<double> exact_values = exact.marginal(batch);

  SessionOptions options = SessionOptions::low_precision(*repr);
  options.fallback = FallbackPolicy::to_exact();
  InferenceSession escalating(model, options);
  const std::vector<double>& served = escalating.marginal(batch);
  const auto& flags = escalating.last_query_flags();
  const auto& provenance = escalating.last_provenance();
  ASSERT_EQ(served.size(), batch.size());
  ASSERT_EQ(flags.size(), batch.size());
  ASSERT_EQ(provenance.size(), batch.size());

  std::size_t escalated = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (base_flags[i].any()) {
      // Flagged at base: served from the exact backend, bitwise.
      ++escalated;
      EXPECT_EQ(bits(served[i]), bits(exact_values[i])) << "query " << i;
      EXPECT_EQ(provenance[i].escalations, 1) << "query " << i;
      EXPECT_FALSE(provenance[i].served_format.has_value()) << "query " << i;
      EXPECT_FALSE(flags[i].any()) << "query " << i;
    } else {
      // Clean at base: untouched by escalation, bitwise the base answer.
      EXPECT_EQ(bits(served[i]), bits(base_values[i])) << "query " << i;
      EXPECT_EQ(provenance[i].escalations, 0) << "query " << i;
      ASSERT_TRUE(provenance[i].served_format.has_value()) << "query " << i;
      EXPECT_EQ(provenance[i].served_format->flt, repr->flt) << "query " << i;
    }
  }
  EXPECT_GT(escalated, 0u);
  EXPECT_LT(escalated, batch.size());
  EXPECT_FALSE(escalating.last_flags().any());  // every flag was cured
}

TEST(Escalation, LadderRungServesWhatTheRungWouldServeStandAlone) {
  const ac::Circuit circuit = test_circuit(141);
  const auto model = CompiledModel::compile(circuit);
  const auto batch = sampled_assignments(circuit.cardinalities(), 64, 0.5, 142);
  const auto repr = mixed_flag_format(model, batch);
  ASSERT_TRUE(repr.has_value());

  lowprec::FloatFormat wide;
  wide.exponent_bits = 8;
  wide.mantissa_bits = 10;
  const Representation rung = Representation::of(wide);

  // Stand-alone references for every rung of the ladder.
  InferenceSession base(model, SessionOptions::low_precision(*repr));
  const std::vector<double> base_values = base.marginal(batch);
  const std::vector<lowprec::ArithFlags> base_flags = base.last_query_flags();
  InferenceSession at_rung(model, SessionOptions::low_precision(rung));
  const std::vector<double> rung_values = at_rung.marginal(batch);
  const std::vector<lowprec::ArithFlags> rung_flags = at_rung.last_query_flags();
  InferenceSession exact(model);
  const std::vector<double> exact_values = exact.marginal(batch);

  SessionOptions options = SessionOptions::low_precision(*repr);
  options.fallback = FallbackPolicy::via_ladder({rung}, /*exact_final=*/true);
  InferenceSession escalating(model, options);
  const std::vector<double>& served = escalating.marginal(batch);
  const auto& provenance = escalating.last_provenance();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!base_flags[i].any()) {
      EXPECT_EQ(bits(served[i]), bits(base_values[i])) << "query " << i;
      EXPECT_EQ(provenance[i].escalations, 0) << "query " << i;
    } else if (!rung_flags[i].any()) {
      // Cured on the ladder rung: the answer is what that format computes
      // stand-alone (batched per-query results are composition-independent).
      EXPECT_EQ(bits(served[i]), bits(rung_values[i])) << "query " << i;
      EXPECT_EQ(provenance[i].escalations, 1) << "query " << i;
      ASSERT_TRUE(provenance[i].served_format.has_value()) << "query " << i;
      EXPECT_EQ(provenance[i].served_format->flt, wide) << "query " << i;
    } else {
      // Survived the rung: the exact final serves it.
      EXPECT_EQ(bits(served[i]), bits(exact_values[i])) << "query " << i;
      EXPECT_EQ(provenance[i].escalations, 2) << "query " << i;
      EXPECT_FALSE(provenance[i].served_format.has_value()) << "query " << i;
    }
  }
  EXPECT_FALSE(escalating.last_flags().any());
}

TEST(Escalation, SingleQueryAndMpeEscalate) {
  const ac::Circuit circuit = test_circuit(151);
  const auto model = CompiledModel::compile(circuit);
  const auto batch = sampled_assignments(circuit.cardinalities(), 64, 0.5, 152);
  const auto repr = mixed_flag_format(model, batch);
  ASSERT_TRUE(repr.has_value());

  InferenceSession base(model, SessionOptions::low_precision(*repr));
  base.marginal(batch);
  const std::vector<lowprec::ArithFlags> base_flags = base.last_query_flags();
  std::size_t flagged_index = batch.size();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (base_flags[i].any()) {
      flagged_index = i;
      break;
    }
  }
  ASSERT_LT(flagged_index, batch.size());

  SessionOptions options = SessionOptions::low_precision(*repr);
  options.fallback = FallbackPolicy::to_exact();
  InferenceSession escalating(model, options);
  InferenceSession exact(model);

  // Single-query escalation goes through the tape evaluators, not the
  // batched engines — same contract.
  const double served = escalating.marginal(batch[flagged_index]);
  EXPECT_EQ(bits(served), bits(exact.marginal(batch[flagged_index])));
  ASSERT_EQ(escalating.last_provenance().size(), 1u);
  EXPECT_EQ(escalating.last_provenance()[0].escalations, 1);
  EXPECT_FALSE(escalating.last_flags().any());

  // MPE runs the maximiser tape through the same escalation machinery.
  const std::vector<double>& mpe_served = escalating.mpe(batch);
  const std::vector<double> mpe_exact = exact.mpe(batch);
  const auto& provenance = escalating.last_provenance();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (provenance[i].escalations > 0) {
      EXPECT_EQ(bits(mpe_served[i]), bits(mpe_exact[i])) << "query " << i;
    }
  }
  EXPECT_FALSE(escalating.last_flags().any());
}

TEST(Escalation, ConditionalMarksDenominatorUnderflowAndCuresIt) {
  const ac::Circuit circuit = test_circuit(161, 10);
  const auto model = CompiledModel::compile(circuit);
  const std::vector<int>& cards = circuit.cardinalities();

  // Dense evidence over a deeper circuit drives Pr(e) below the format's
  // smallest magnitude for some evidence sets: the posterior comes back
  // empty ("undefined") with the underflow flag distinguishing "flushed to
  // zero in this format" from "structurally zero".
  auto batch = sampled_assignments(cards, 48, 0.8, 162);
  const int query_var = 0;
  for (auto& a : batch) a[0] = std::nullopt;  // query var must be unobserved

  std::optional<Representation> repr;
  std::size_t underflowed = batch.size();
  for (int exponent_bits : {4, 5, 6, 7}) {
    lowprec::FloatFormat format;
    format.exponent_bits = exponent_bits;
    format.mantissa_bits = 4;
    const Representation candidate = Representation::of(format);
    InferenceSession probe(model, SessionOptions::low_precision(candidate));
    const auto posterior = probe.conditional(query_var, batch);
    const auto& flags = probe.last_query_flags();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (posterior[i].empty() && flags[i].underflow) {
        repr = candidate;
        underflowed = i;
        break;
      }
    }
    if (repr) break;
  }
  ASSERT_TRUE(repr.has_value()) << "no probe format underflowed a denominator";

  // Exact reference: the evidence is not structurally impossible — its
  // posterior exists, the narrow format just flushed Pr(e) to zero.
  InferenceSession exact(model);
  const auto exact_posterior = exact.conditional(query_var, batch);
  ASSERT_FALSE(exact_posterior[underflowed].empty());
  for (const auto& f : exact.last_query_flags()) EXPECT_FALSE(f.any());
  for (const auto& p : exact.last_provenance()) {
    EXPECT_FALSE(p.served_format.has_value());
    EXPECT_EQ(p.escalations, 0);
  }

  // With escalation the underflowed evidence set is re-served exactly:
  // the posterior reappears, bitwise the exact backend's.
  SessionOptions options = SessionOptions::low_precision(*repr);
  options.fallback = FallbackPolicy::to_exact();
  InferenceSession escalating(model, options);
  const auto served = escalating.conditional(query_var, batch);
  const auto& provenance = escalating.last_provenance();
  ASSERT_EQ(served.size(), batch.size());
  ASSERT_EQ(provenance.size(), batch.size());
  ASSERT_FALSE(served[underflowed].empty());
  ASSERT_EQ(served[underflowed].size(), exact_posterior[underflowed].size());
  for (std::size_t s = 0; s < served[underflowed].size(); ++s) {
    EXPECT_EQ(bits(served[underflowed][s]), bits(exact_posterior[underflowed][s]));
  }
  EXPECT_GT(provenance[underflowed].escalations, 0);
  EXPECT_FALSE(escalating.last_flags().any());
}

}  // namespace
}  // namespace problp
