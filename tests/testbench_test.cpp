#include <gtest/gtest.h>

#include "ac/transform.hpp"
#include "helpers.hpp"
#include "hw/generator.hpp"
#include "hw/testbench.hpp"

namespace problp::hw {
namespace {

using ac::Circuit;
using ac::NodeId;

Circuit make_small_circuit() {
  Circuit c({2, 2});
  const NodeId p = c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.5)});
  const NodeId q = c.add_prod({c.add_indicator(1, 1), c.add_parameter(0.25)});
  c.set_root(c.add_sum({p, q}));
  return c;
}

std::vector<ac::PartialAssignment> make_vectors() {
  std::vector<ac::PartialAssignment> out;
  ac::PartialAssignment a(2);
  out.push_back(a);  // all unobserved
  a[0] = 0;
  out.push_back(a);
  a[1] = 0;
  out.push_back(a);
  a[0] = 1;
  a[1] = 1;
  out.push_back(a);
  return out;
}

TEST(Testbench, FixedEmissionStructure) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::string tb =
      emit_fixed_testbench(netlist, lowprec::FixedFormat{1, 7}, make_vectors());
  EXPECT_NE(tb.find("module problp_ac_tb"), std::string::npos);
  EXPECT_NE(tb.find("problp_ac_top dut("), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  EXPECT_NE(tb.find("golden[3]"), std::string::npos);  // all four vectors present
  EXPECT_EQ(tb.find("golden[4]"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
  // Self-checking: compares against golden with !==.
  EXPECT_NE(tb.find("!=="), std::string::npos);
}

TEST(Testbench, FixedGoldenWordsMatchSimulator) {
  // The golden constant for the all-ones vector: root value = 0.75, which
  // at F=7 is raw 96 = 8'h60.
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::string tb =
      emit_fixed_testbench(netlist, lowprec::FixedFormat{1, 7}, make_vectors());
  EXPECT_NE(tb.find("golden[0] = 8'h60"), std::string::npos);
}

TEST(Testbench, FloatGoldenWordsEncodeZero) {
  // Vector (0 -> state 1, 1 -> state 0): both products die; golden must be
  // the all-zero float encoding.
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  ac::PartialAssignment kill(2);
  kill[0] = 1;
  kill[1] = 0;
  const std::string tb = emit_float_testbench(netlist, lowprec::FloatFormat{6, 9}, {kill});
  EXPECT_NE(tb.find("golden[0] = 15'h0000"), std::string::npos);
}

TEST(Testbench, LatencyAppearsInDrainLoop) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  const std::string tb =
      emit_fixed_testbench(netlist, lowprec::FixedFormat{1, 7}, make_vectors());
  // 4 vectors + latency 2 -> loop bound 6.
  EXPECT_NE(tb.find("t < 6"), std::string::npos);
}

TEST(Testbench, RejectsEmptyVectors) {
  const Circuit binary = ac::binarize(make_small_circuit()).circuit;
  const Netlist netlist = generate_netlist(binary);
  EXPECT_THROW(emit_fixed_testbench(netlist, lowprec::FixedFormat{1, 7}, {}), InvalidArgument);
}

}  // namespace
}  // namespace problp::hw
