#include <gtest/gtest.h>

#include "ac/evaluator.hpp"
#include "ac/optimize.hpp"
#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

TEST(FoldConstants, AllConstantOperatorBecomesLeaf) {
  Circuit c({2});
  const NodeId p = c.add_prod({c.add_parameter(0.5), c.add_parameter(0.25)});
  const NodeId s = c.add_sum({p, c.add_parameter(0.125)});
  c.set_root(s);
  OptimizeStats stats;
  const Circuit folded = fold_constants(c, &stats);
  EXPECT_EQ(stats.folded_operators, 2u);
  const Node& root = folded.node(folded.root());
  EXPECT_EQ(root.kind, NodeKind::kParameter);
  EXPECT_DOUBLE_EQ(root.value, 0.5 * 0.25 + 0.125);
}

TEST(FoldConstants, PartialConstantsCombine) {
  // prod(lambda, 0.5, 0.5) -> prod(lambda, 0.25): one multiplier saved.
  Circuit c({2});
  const NodeId lam = c.add_indicator(0, 0);
  c.set_root(c.add_prod({lam, c.add_parameter(0.5), c.add_parameter(0.5)}));
  const Circuit folded = fold_constants(c);
  const Node& root = folded.node(folded.root());
  ASSERT_EQ(root.kind, NodeKind::kProd);
  EXPECT_EQ(root.children.size(), 2u);
  PartialAssignment a(1);
  EXPECT_DOUBLE_EQ(evaluate(folded, a), 0.25);
}

TEST(FoldConstants, IdentityElements) {
  Circuit c({2});
  const NodeId lam = c.add_indicator(0, 0);
  const NodeId via_mul = c.add_prod({lam, c.add_parameter(1.0)});   // x*1 -> x
  const NodeId via_add = c.add_sum({via_mul, c.add_parameter(0.0)});  // x+0 -> x
  c.set_root(via_add);
  OptimizeStats stats;
  const Circuit folded = fold_constants(c, &stats);
  EXPECT_EQ(stats.identity_simplified, 2u);
  EXPECT_EQ(folded.node(folded.root()).kind, NodeKind::kIndicator);
}

TEST(FoldConstants, ZeroAnnihilatesProduct) {
  Circuit c({2});
  const NodeId lam = c.add_indicator(0, 0);
  c.set_root(c.add_prod({lam, c.add_parameter(0.0)}));
  const Circuit folded = fold_constants(c);
  const Node& root = folded.node(folded.root());
  EXPECT_EQ(root.kind, NodeKind::kParameter);
  EXPECT_DOUBLE_EQ(root.value, 0.0);
}

TEST(FoldConstants, MaxNodesFold) {
  Circuit c({2});
  c.set_root(c.add_max({c.add_parameter(0.3), c.add_parameter(0.8)}));
  const Circuit folded = fold_constants(c);
  EXPECT_DOUBLE_EQ(folded.node(folded.root()).value, 0.8);
}

TEST(PruneDeadNodes, DropsUnreachable) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  c.add_prod({x, y});  // dead
  c.set_root(c.add_prod({x, c.add_parameter(0.5)}));
  OptimizeStats stats;
  const Circuit pruned = prune_dead_nodes(c, &stats);
  EXPECT_EQ(stats.pruned_nodes, 2u);  // the dead product and the orphaned y
  EXPECT_EQ(pruned.num_nodes(), 3u);
}

TEST(Optimize, PreservesSemanticsOnRandomCircuits) {
  Rng rng(141);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 30;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = test::make_random_circuit(spec, rng);
    const Circuit opt = optimize(c);
    EXPECT_LE(opt.num_nodes(), c.num_nodes());
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const double expected = evaluate(c, a);
      EXPECT_NEAR(evaluate(opt, a), expected, 1e-12 * (1.0 + expected)) << "trial=" << trial;
    }
  }
}

TEST(Optimize, PreservesSemanticsOnCompiledNetworks) {
  Rng net_rng(142);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 7;
  const bn::BayesianNetwork network = make_random_network(spec, net_rng);
  const Circuit c = compile::compile_network(network);
  OptimizeStats stats;
  const Circuit opt = optimize(c, &stats);
  Rng rng(143);
  for (int i = 0; i < 30; ++i) {
    const auto a = compile::to_assignment(test::random_evidence(network, 0.5, rng));
    const double expected = evaluate(c, a);
    EXPECT_NEAR(evaluate(opt, a), expected, 1e-12 * (1.0 + expected));
  }
}

TEST(Optimize, ShrinksCircuitsWithDeterministicCpts) {
  // Strictly positive CPTs leave nothing to fold (every VE-trace operator
  // touches an indicator), but *deterministic* CPT entries — common in
  // relational/logical models — inject 0.0 and 1.0 parameters that
  // annihilate products and vanish from sums.
  bn::BayesianNetwork network;
  const int a = network.add_variable("a", 2);
  const int b = network.add_variable("b", 2);
  network.set_cpt(a, {}, {0.3, 0.7});
  network.set_cpt(b, {a}, {1.0, 0.0,    // b is a copy of a
                           0.0, 1.0});
  const Circuit c = compile::compile_network(network);
  OptimizeStats stats;
  const Circuit opt = optimize(c, &stats);
  EXPECT_GT(stats.folded_operators + stats.identity_simplified, 0u);
  EXPECT_LT(opt.stats().num_edges, c.stats().num_edges);
  // Semantics intact on every query.
  for (const auto& assignment : test::all_partial_assignments(c.cardinalities())) {
    EXPECT_NEAR(evaluate(opt, assignment), evaluate(c, assignment), 1e-15);
  }
}

}  // namespace
}  // namespace problp::ac
