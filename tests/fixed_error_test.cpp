#include <cmath>

#include <gtest/gtest.h>

#include "ac/analysis.hpp"
#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "errormodel/fixed_error.hpp"
#include "helpers.hpp"

namespace problp::errormodel {
namespace {

using ac::Circuit;
using ac::NodeId;
using lowprec::FixedFormat;
using lowprec::RoundingMode;

FixedErrorAnalysis run(const Circuit& binary, const FixedFormat& fmt,
                       const FixedErrorOptions& options = {}) {
  return propagate_fixed_error(binary, fmt, ac::max_value_analysis(binary), options);
}

TEST(FixedError, LeafModels) {
  Circuit c({2});
  const NodeId lam = c.add_indicator(0, 0);
  const NodeId theta = c.add_parameter(0.3);
  c.set_root(c.add_prod({lam, theta}));
  const FixedFormat fmt{1, 8};
  const auto fx = run(c, fmt);
  EXPECT_DOUBLE_EQ(fx.node_bound[static_cast<std::size_t>(lam)], 0.0);      // exact
  EXPECT_DOUBLE_EQ(fx.node_bound[static_cast<std::size_t>(theta)],
                   fmt.quantization_bound());                               // eq. 2
}

TEST(FixedError, AdderAccumulates) {
  // Eq. 3: Δ(a+b) = Δa + Δb, no new error.
  Circuit c({2});
  const NodeId t1 = c.add_parameter(0.3);
  const NodeId t2 = c.add_parameter(0.4);
  const NodeId s = c.add_sum({t1, t2});
  c.set_root(s);
  const FixedFormat fmt{1, 10};
  const auto fx = run(c, fmt);
  EXPECT_DOUBLE_EQ(fx.node_bound[static_cast<std::size_t>(s)], 2.0 * fmt.quantization_bound());
}

TEST(FixedError, MultiplierModel) {
  // Eq. 5 on a hand example, Fig. 3 style.
  Circuit c({2});
  const NodeId t1 = c.add_parameter(0.5);
  const NodeId t2 = c.add_parameter(0.25);
  const NodeId p = c.add_prod({t1, t2});
  c.set_root(p);
  const FixedFormat fmt{1, 8};
  const double q = fmt.quantization_bound();
  const auto fx = run(c, fmt);
  // a_max = 0.5, b_max = 0.25, Δa = Δb = q.
  EXPECT_DOUBLE_EQ(fx.node_bound[static_cast<std::size_t>(p)],
                   0.5 * q + 0.25 * q + q * q + q);
}

TEST(FixedError, MaxNodeTakesWorstChild) {
  Circuit c({2});
  const NodeId t1 = c.add_parameter(0.5);
  const NodeId t2 = c.add_parameter(0.25);
  const NodeId s = c.add_sum({t1, t2});  // Δ = 2q
  const NodeId m = c.add_max({s, t1});   // Δ = max(2q, q) = 2q
  c.set_root(m);
  const FixedFormat fmt{1, 8};
  const auto fx = run(c, fmt);
  EXPECT_DOUBLE_EQ(fx.node_bound[static_cast<std::size_t>(m)],
                   2.0 * fmt.quantization_bound());
}

TEST(FixedError, TruncationDoublesLeafTerm) {
  Circuit c({2});
  c.set_root(c.add_parameter(0.3));
  const FixedFormat fmt{1, 8};
  FixedErrorOptions trunc;
  trunc.rounding = RoundingMode::kTruncate;
  EXPECT_DOUBLE_EQ(run(c, fmt, trunc).root_bound, fmt.resolution());
  EXPECT_DOUBLE_EQ(run(c, fmt).root_bound, fmt.quantization_bound());
}

TEST(FixedError, TightenExactLeaves) {
  Circuit c({2});
  c.set_root(c.add_parameter(0.5));  // exactly representable at F >= 1
  const FixedFormat fmt{1, 8};
  FixedErrorOptions tight;
  tight.tighten_exact_leaves = true;
  EXPECT_DOUBLE_EQ(run(c, fmt, tight).root_bound, 0.0);
  EXPECT_GT(run(c, fmt).root_bound, 0.0);  // paper-faithful default keeps q
}

TEST(FixedError, RequiresBinaryCircuit) {
  Circuit c({2});
  const NodeId a = c.add_parameter(0.1);
  const NodeId b = c.add_parameter(0.2);
  const NodeId d = c.add_parameter(0.3);
  c.set_root(c.add_sum({a, b, d}));
  EXPECT_THROW(run(c, FixedFormat{1, 8}), InvalidArgument);
}

TEST(FixedError, BoundDecaysWithFractionBits) {
  Rng rng(91);
  test::RandomCircuitSpec spec;
  spec.num_operators = 40;
  const Circuit c = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  double prev = std::numeric_limits<double>::infinity();
  for (int f = 4; f <= 40; f += 4) {
    const double bound = run(c, FixedFormat{8, f}).root_bound;
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

// The central soundness property (Fig. 5a's "observed <= bound"): on random
// circuits, the observed fixed-point error never exceeds the propagated
// bound, for any query and any format.
class FixedErrorSoundness : public ::testing::TestWithParam<int> {};

TEST_P(FixedErrorSoundness, ObservedWithinBound) {
  const int f = GetParam();
  Rng rng(700 + f);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 25;
  spec.p_sum = 0.6;
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit c = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
    const auto maxima = ac::max_value_analysis(c);
    // Size I from the max analysis so overflow cannot occur.
    double need = 0.0;
    for (double m : maxima) need = std::max(need, m);
    const int ibits = std::max(1, ceil_log2_double(need + 1.0));
    const FixedFormat fmt{ibits, f};
    if (fmt.total_bits() > 62) continue;
    const auto fx = propagate_fixed_error(c, fmt, maxima);
    for (const auto& a : test::all_partial_assignments(c.cardinalities())) {
      const double exact = ac::evaluate(c, a);
      const auto approx = ac::evaluate_fixed(c, a, fmt);
      ASSERT_FALSE(approx.flags.overflow);
      EXPECT_LE(std::abs(approx.value - exact), fx.root_bound * (1.0 + 1e-12))
          << "trial=" << trial << " F=" << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FractionBits, FixedErrorSoundness, ::testing::Values(3, 6, 10, 16, 24));

}  // namespace
}  // namespace problp::errormodel
