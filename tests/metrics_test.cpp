#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "datasets/metrics.hpp"
#include "problp/framework.hpp"

namespace problp::datasets {
namespace {

TEST(Metrics, ConfusionMatrixBasics) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 2);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_THROW(cm.add(3, 0), InvalidArgument);
  EXPECT_THROW(cm.add(0, -1), InvalidArgument);
  EXPECT_NE(cm.to_string().find("accuracy: 0.7500"), std::string::npos);
}

TEST(Metrics, ArgmaxAndAgreement) {
  EXPECT_EQ(argmax({0.1, 0.7, 0.2}), 1);
  EXPECT_EQ(argmax({0.5, 0.5}), 0);  // deterministic tie-break
  EXPECT_THROW(argmax({}), InvalidArgument);
  EXPECT_DOUBLE_EQ(agreement({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
  EXPECT_THROW(agreement({1}, {1, 2}), InvalidArgument);
}

TEST(Metrics, LowPrecisionClassifierAgreesWithExact) {
  // Application-level claim of the paper's intro: with a certified 0.01
  // posterior tolerance, argmax decisions rarely (here: never, outside
  // threshold bands) differ between exact and low-precision inference.
  const Benchmark benchmark = make_uiwads_benchmark(1);
  const Framework framework(benchmark.circuit);
  const AnalysisReport report = framework.analyze(
      {errormodel::QueryType::kConditional, errormodel::ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);

  const ac::Circuit& binary = framework.binary_circuit();
  const int classes = binary.cardinalities()[0];
  std::vector<int> exact_pred;
  std::vector<int> lowprec_pred;
  for (std::size_t i = 0; i < benchmark.test_evidence.size() && i < 200; ++i) {
    const auto e = compile::to_assignment(benchmark.test_evidence[i]);
    std::vector<double> exact_scores;
    std::vector<double> lowprec_scores;
    for (int q = 0; q < classes; ++q) {
      auto qe = e;
      qe[0] = q;
      exact_scores.push_back(ac::evaluate(binary, qe));
      lowprec_scores.push_back(
          report.selected.kind == Representation::Kind::kFixed
              ? ac::evaluate_fixed(binary, qe, report.selected.fixed).value
              : ac::evaluate_float(binary, qe, report.selected.flt).value);
    }
    exact_pred.push_back(argmax(exact_scores));
    lowprec_pred.push_back(argmax(lowprec_scores));
  }
  EXPECT_GE(agreement(exact_pred, lowprec_pred), 0.99);
}

}  // namespace
}  // namespace problp::datasets
