// End-to-end integration: miniature versions of the paper's experiments
// (fast enough for CI; the full-size runs live in bench/).
#include <cmath>

#include <gtest/gtest.h>

#include "bn/alarm.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "helpers.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

std::vector<ac::PartialAssignment> to_assignments(const std::vector<bn::Evidence>& evidence,
                                                  std::size_t limit) {
  std::vector<ac::PartialAssignment> out;
  for (std::size_t i = 0; i < evidence.size() && i < limit; ++i) {
    out.push_back(compile::to_assignment(evidence[i]));
  }
  return out;
}

// Fig. 5 in miniature: on the ALARM AC, for a few bit widths, the observed
// max error over sampled evidence stays below the analytical bound, and the
// bound decays as bits grow.
TEST(Integration, Fig5BoundValidationMiniature) {
  const auto benchmark = datasets::make_alarm_benchmark(1, 60);
  const Framework framework(benchmark.circuit);
  const auto assignments = to_assignments(benchmark.test_evidence, 60);
  const auto& model_range = errormodel::CircuitErrorModel::build(framework.binary_circuit());

  double prev_bound = std::numeric_limits<double>::infinity();
  for (int f : {8, 16, 24}) {
    const lowprec::FixedFormat fmt{1, f};
    const double bound = errormodel::fixed_query_bound(
        framework.binary_circuit(), model_range,
        {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.0}, fmt);
    Representation repr;
    repr.kind = Representation::Kind::kFixed;
    repr.fixed = fmt;
    const ObservedError observed =
        measure_marginal_error(framework.binary_circuit(), assignments, repr);
    EXPECT_FALSE(observed.flags.overflow) << "F=" << f;
    EXPECT_LE(observed.max_abs, bound) << "F=" << f;
    EXPECT_LT(bound, prev_bound);
    prev_bound = bound;
  }

  prev_bound = std::numeric_limits<double>::infinity();
  for (int m : {8, 16, 24}) {
    const lowprec::FloatFormat fmt{8, m};
    const double bound = errormodel::float_query_bound(
        model_range, {QueryType::kMarginal, ToleranceKind::kRelative, 0.0}, fmt);
    Representation repr;
    repr.kind = Representation::Kind::kFloat;
    repr.flt = fmt;
    const ObservedError observed =
        measure_marginal_error(framework.binary_circuit(), assignments, repr);
    EXPECT_FALSE(observed.flags.any()) << "M=" << m;
    EXPECT_LE(observed.max_rel, bound) << "M=" << m;
    EXPECT_LT(bound, prev_bound);
    prev_bound = bound;
  }
}

// Table 2 in miniature on the smallest benchmark (UIWADS): run the full
// framework for two query/tolerance combinations and check every reported
// property the paper claims.
TEST(Integration, Table2RowMiniature) {
  const auto benchmark = datasets::make_uiwads_benchmark(1);
  const Framework framework(benchmark.circuit);
  const auto assignments = to_assignments(benchmark.test_evidence, 100);

  // Row 1: marginal, absolute 0.01 — fixed point should win on energy.
  {
    const AnalysisReport report =
        framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
    ASSERT_TRUE(report.fixed_plan.feasible);
    ASSERT_TRUE(report.float_plan.feasible);
    EXPECT_EQ(report.selected.kind, Representation::Kind::kFixed);
    const ObservedError observed =
        measure_marginal_error(framework.binary_circuit(), assignments, report.selected);
    EXPECT_LE(observed.max_abs, 0.01);
    EXPECT_LT(report.fixed_energy_nj, report.float32_reference_nj);
  }

  // Row 2: conditional, relative 0.01 — float is the only candidate.
  {
    const AnalysisReport report =
        framework.analyze({QueryType::kConditional, ToleranceKind::kRelative, 0.01});
    ASSERT_TRUE(report.any_feasible);
    EXPECT_EQ(report.selected.kind, Representation::Kind::kFloat);
    const ObservedError observed = measure_conditional_error(
        framework.binary_circuit(), benchmark.query_var, assignments, report.selected);
    EXPECT_LE(observed.max_rel, 0.01);
    EXPECT_FALSE(observed.flags.any());
  }
}

// The post-synthesis stand-in tracks the operator-model prediction within a
// factor of ~2 (the paper: "matches well").
TEST(Integration, NetlistEnergyTracksPrediction) {
  const auto benchmark = datasets::make_uiwads_benchmark(1);
  const Framework framework(benchmark.circuit);
  const AnalysisReport report =
      framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);
  const HardwareReport hardware = framework.generate_hardware(report);
  const double predicted = (report.selected.kind == Representation::Kind::kFixed)
                               ? report.fixed_energy_nj
                               : report.float_energy_nj;
  EXPECT_GT(hardware.netlist_energy_nj, 0.3 * predicted);
  EXPECT_LT(hardware.netlist_energy_nj, 3.0 * predicted);
}

// MPE extension: bounds hold on the ALARM max-circuit too.
TEST(Integration, MpeBoundsOnAlarm) {
  const auto benchmark = datasets::make_alarm_benchmark(2, 40);
  const Framework framework(benchmark.circuit);
  const AnalysisReport report =
      framework.analyze({QueryType::kMpe, ToleranceKind::kAbsolute, 0.01});
  ASSERT_TRUE(report.any_feasible);
  const auto assignments = to_assignments(benchmark.test_evidence, 40);
  const ObservedError observed =
      measure_mpe_error(framework.binary_max_circuit(), assignments, report.selected);
  EXPECT_LE(observed.max_abs, 0.01);
}

// The error-tolerance contract the paper's abstract makes: for *every*
// benchmark, the framework-selected representation keeps the observed
// test-set error within the user tolerance.
TEST(Integration, AllBenchmarksMeetTolerance) {
  for (const auto& benchmark : datasets::make_all_benchmarks(3)) {
    const Framework framework(benchmark.circuit);
    const AnalysisReport report =
        framework.analyze({QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01});
    ASSERT_TRUE(report.any_feasible) << benchmark.name;
    const auto assignments = to_assignments(benchmark.test_evidence, 50);
    const ObservedError observed =
        measure_marginal_error(framework.binary_circuit(), assignments, report.selected);
    EXPECT_LE(observed.max_abs, 0.01) << benchmark.name;
    EXPECT_FALSE(observed.flags.any()) << benchmark.name;
  }
}

}  // namespace
}  // namespace problp
