#include <gtest/gtest.h>

#include "bn/alarm.hpp"
#include "bn/likelihood_weighting.hpp"
#include "bn/random_network.hpp"
#include "bn/variable_elimination.hpp"
#include "helpers.hpp"

namespace problp::bn {
namespace {

TEST(LikelihoodWeighting, NoEvidenceGivesOne) {
  Rng net_rng(151);
  RandomNetworkSpec spec;
  spec.num_variables = 6;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  Rng rng(1);
  const auto r = estimate_evidence_probability(network, network.empty_evidence(), 100, rng);
  EXPECT_DOUBLE_EQ(r.estimate, 1.0);  // every weight is exactly 1
  EXPECT_NEAR(r.effective_samples, 100.0, 1e-9);
}

TEST(LikelihoodWeighting, ConvergesToExactEvidenceProbability) {
  Rng net_rng(152);
  RandomNetworkSpec spec;
  spec.num_variables = 7;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  const VariableElimination ve(network);
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Evidence e = test::random_evidence(network, 0.3, rng);
    const double exact = ve.probability_of_evidence(e);
    if (exact < 1e-4) continue;  // keep the variance manageable
    const auto r = estimate_evidence_probability(network, e, 40000, rng);
    EXPECT_NEAR(r.estimate, exact, 0.15 * exact + 1e-3) << "trial " << trial;
  }
}

TEST(LikelihoodWeighting, ConvergesToExactConditional) {
  Rng net_rng(153);
  RandomNetworkSpec spec;
  spec.num_variables = 6;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  const VariableElimination ve(network);
  Rng rng(3);
  Evidence e = test::random_evidence(network, 0.4, rng);
  e[0] = std::nullopt;
  const double pe = ve.probability_of_evidence(e);
  if (pe > 1e-4) {
    const double exact = ve.conditional(0, 0, e);
    const auto r = estimate_conditional(network, 0, 0, e, 40000, rng);
    EXPECT_NEAR(r.estimate, exact, 0.1 + 0.1 * exact);
  }
}

TEST(LikelihoodWeighting, WorksOnAlarmScale) {
  const BayesianNetwork alarm = make_alarm_network();
  Rng rng(4);
  Evidence e = alarm.empty_evidence();
  e[static_cast<std::size_t>(alarm.find_variable("HRBP"))] = 0;
  const auto r = estimate_evidence_probability(alarm, e, 2000, rng);
  EXPECT_GT(r.estimate, 0.0);
  EXPECT_LT(r.estimate, 1.0);
  EXPECT_GT(r.effective_samples, 10.0);
  EXPECT_EQ(r.samples, 2000u);
}

TEST(LikelihoodWeighting, Validation) {
  const BayesianNetwork alarm = make_alarm_network();
  Rng rng(5);
  EXPECT_THROW(estimate_evidence_probability(alarm, alarm.empty_evidence(), 0, rng),
               InvalidArgument);
  Evidence e = alarm.empty_evidence();
  e[0] = 0;
  EXPECT_THROW(estimate_conditional(alarm, 0, 0, e, 10, rng), InvalidArgument);
}

}  // namespace
}  // namespace problp::bn
