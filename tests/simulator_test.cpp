#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "helpers.hpp"
#include "hw/generator.hpp"
#include "hw/simulator.hpp"

namespace problp::hw {
namespace {

using ac::Circuit;
using lowprec::FixedFormat;
using lowprec::FloatFormat;

// The hardware-correctness theorem: for every input, the cycle-accurate
// netlist simulation equals the circuit-level low-precision evaluation
// bit for bit.
TEST(Simulator, FixedMatchesCircuitEvaluation) {
  Rng rng(121);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 30;
  spec.max_fanin = 4;
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
    const Netlist netlist = generate_netlist(binary);
    const FixedFormat fmt{10, 12};
    FixedNetlistSimulator sim(netlist, fmt);
    for (const auto& a : test::all_partial_assignments(binary.cardinalities())) {
      const double hw_value = sim.evaluate(a);
      const double sw_value = ac::evaluate_fixed(binary, a, fmt).value;
      EXPECT_EQ(hw_value, sw_value) << "trial=" << trial;
    }
  }
}

TEST(Simulator, FloatMatchesCircuitEvaluation) {
  Rng rng(122);
  test::RandomCircuitSpec spec;
  spec.num_variables = 3;
  spec.num_operators = 30;
  spec.max_fanin = 4;
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
    const Netlist netlist = generate_netlist(binary);
    const FloatFormat fmt{11, 13};
    FloatNetlistSimulator sim(netlist, fmt);
    for (const auto& a : test::all_partial_assignments(binary.cardinalities())) {
      const double hw_value = sim.evaluate(a);
      const double sw_value = ac::evaluate_float(binary, a, fmt).value;
      EXPECT_EQ(hw_value, sw_value) << "trial=" << trial;
    }
  }
}

TEST(Simulator, PipelineStreamsOneResultPerCycle) {
  // Feed N different inputs back-to-back; each result must match its own
  // input (initiation interval 1), not be polluted by neighbours.
  Rng rng(123);
  test::RandomCircuitSpec spec;
  spec.num_variables = 4;
  spec.num_operators = 35;
  const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const Netlist netlist = generate_netlist(binary);
  const FixedFormat fmt{10, 14};

  const auto all = test::all_partial_assignments(binary.cardinalities());
  std::vector<ac::PartialAssignment> stream;
  for (std::size_t i = 0; i < all.size() && i < 40; i += 3) stream.push_back(all[i]);

  FixedNetlistSimulator sim(netlist, fmt);
  const auto results = sim.evaluate_stream(stream);
  ASSERT_EQ(results.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(results[i], ac::evaluate_fixed(binary, stream[i], fmt).value) << "i=" << i;
  }
}

TEST(Simulator, FlagsMirrorCircuitFlags) {
  // A circuit that overflows I=1 must raise the same flag in hardware.
  Circuit c({2});
  const auto t = c.add_parameter(1.9);
  c.set_root(c.add_prod({t, c.add_parameter(1.8)}));
  const Netlist netlist = generate_netlist(c);
  FixedNetlistSimulator sim(netlist, FixedFormat{1, 8});
  sim.evaluate(ac::PartialAssignment(1));
  EXPECT_TRUE(sim.flags().overflow);
  sim.clear_flags();
  EXPECT_FALSE(sim.flags().any());
}

TEST(Simulator, EmptyStream) {
  Circuit c({2});
  c.set_root(c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.5)}));
  const Netlist netlist = generate_netlist(c);
  FixedNetlistSimulator sim(netlist, FixedFormat{1, 8});
  EXPECT_TRUE(sim.evaluate_stream({}).empty());
}

TEST(Simulator, ZeroLatencyPassthrough) {
  // Root is a primary input: latency 0, simulation still works.
  Circuit c({2});
  c.set_root(c.add_parameter(0.75));
  const Netlist netlist = generate_netlist(c);
  EXPECT_EQ(netlist.latency(), 0);
  FixedNetlistSimulator sim(netlist, FixedFormat{1, 8});
  EXPECT_DOUBLE_EQ(sim.evaluate(ac::PartialAssignment(1)), 0.75);
}

}  // namespace
}  // namespace problp::hw
