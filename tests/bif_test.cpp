#include <gtest/gtest.h>

#include "bn/alarm.hpp"
#include "bn/bif.hpp"
#include "bn/random_network.hpp"
#include "bn/variable_elimination.hpp"
#include "helpers.hpp"

namespace problp::bn {
namespace {

constexpr const char* kSampleBif = R"(
// a tiny two-node network
network tiny {
}
variable A {
  type discrete [ 2 ] { yes, no };
}
variable B {
  type discrete [ 3 ] { lo, mid, hi };
}
probability ( A ) {
  table 0.3, 0.7;
}
probability ( B | A ) {
  (yes) 0.1, 0.2, 0.7;
  (no) 0.5, 0.25, 0.25;
}
)";

TEST(Bif, ParsesSample) {
  const BayesianNetwork network = parse_bif(kSampleBif);
  EXPECT_EQ(network.num_variables(), 2);
  EXPECT_EQ(network.variable(0).name, "A");
  EXPECT_EQ(network.variable(1).state_names[2], "hi");
  EXPECT_DOUBLE_EQ(network.cpt_value(0, 1, {}), 0.7);
  EXPECT_DOUBLE_EQ(network.cpt_value(1, 2, {0}), 0.7);
  EXPECT_DOUBLE_EQ(network.cpt_value(1, 0, {1}), 0.5);
  EXPECT_NO_THROW(network.validate());
}

TEST(Bif, RoundTripPreservesSemantics) {
  Rng net_rng(41);
  RandomNetworkSpec spec;
  spec.num_variables = 8;
  const BayesianNetwork original = make_random_network(spec, net_rng);
  const BayesianNetwork reparsed = parse_bif(to_bif(original, "roundtrip"));
  ASSERT_EQ(reparsed.num_variables(), original.num_variables());
  const VariableElimination ve_a(original);
  const VariableElimination ve_b(reparsed);
  Rng rng(42);
  for (int i = 0; i < 25; ++i) {
    const Evidence e = test::random_evidence(original, 0.5, rng);
    EXPECT_NEAR(ve_b.probability_of_evidence(e), ve_a.probability_of_evidence(e), 1e-12);
  }
}

TEST(Bif, RoundTripAlarm) {
  const BayesianNetwork alarm = make_alarm_network(7);
  const BayesianNetwork reparsed = parse_bif(to_bif(alarm, "alarm"));
  ASSERT_EQ(reparsed.num_variables(), alarm.num_variables());
  for (int v = 0; v < alarm.num_variables(); ++v) {
    EXPECT_EQ(reparsed.variable(v).name, alarm.variable(v).name);
    EXPECT_EQ(reparsed.parents(v), alarm.parents(v));
    ASSERT_EQ(reparsed.cpt(v).values.size(), alarm.cpt(v).values.size());
    for (std::size_t i = 0; i < alarm.cpt(v).values.size(); ++i) {
      EXPECT_DOUBLE_EQ(reparsed.cpt(v).values[i], alarm.cpt(v).values[i]);
    }
  }
}

TEST(Bif, CommentsAndWhitespaceTolerated) {
  const std::string text = "network x {\n}\n// comment line\nvariable V { type discrete [ 2 ] "
                           "{ a , b } ; }\nprobability ( V ) { table 0.5 , 0.5 ; }\n";
  const BayesianNetwork network = parse_bif(text);
  EXPECT_EQ(network.num_variables(), 1);
}

TEST(Bif, ErrorsCarryLineNumbers) {
  try {
    parse_bif("network x {\n}\nvariable V {\n  type discrete [ 2 ] { a };\n}\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

TEST(Bif, RejectsUnknownVariableInProbability) {
  EXPECT_THROW(parse_bif("network x {\n}\nprobability ( Z ) { table 1.0; }\n"), ParseError);
}

TEST(Bif, RejectsIncompleteCpt) {
  const std::string text =
      "network x {\n}\nvariable A { type discrete [ 2 ] { a, b }; }\n"
      "variable B { type discrete [ 2 ] { c, d }; }\n"
      "probability ( B | A ) {\n  (a) 0.5, 0.5;\n}\n";
  EXPECT_THROW(parse_bif(text), ParseError);
}

TEST(Bif, RejectsBadNumbers) {
  EXPECT_THROW(
      parse_bif("network x {\n}\nvariable A { type discrete [ 2 ] { a, b }; }\n"
                "probability ( A ) { table 0.5, zebra; }\n"),
      ParseError);
}

TEST(Bif, FileIo) {
  const BayesianNetwork alarm = make_alarm_network(3);
  const std::string path = ::testing::TempDir() + "/alarm_roundtrip.bif";
  save_bif_file(alarm, path, "alarm");
  const BayesianNetwork loaded = load_bif_file(path);
  EXPECT_EQ(loaded.num_variables(), 37);
  EXPECT_THROW(load_bif_file("/nonexistent/path.bif"), InvalidArgument);
}

}  // namespace
}  // namespace problp::bn
