// The binary model artifact + the model registry (ISSUE 8).
//
// Contract under test: the mmap container round-trips a compiled model
// bitwise (exact, fixed and float query results identical between the
// in-memory model and the zero-copy loaded one); every corruption in the
// matrix — truncation anywhere, flipped payload bits, flipped table bits,
// foreign byte order, out-of-bounds section geometry, wrong version — is
// rejected with a problp::Error, never undefined behaviour; saves are
// atomic (temp + rename, no temp debris); the legacy text artifact still
// loads through the same entry point; and the registry shares one mapping
// per content hash, serves multiple models concurrently, and LRU-evicts
// pins without pulling live models out from under their sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "bn/random_network.hpp"
#include "helpers.hpp"
#include "runtime/artifact.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;
using runtime::ArtifactWriter;
using runtime::CompiledModel;
using runtime::InferenceSession;
using runtime::MappedArtifact;
using runtime::ModelRegistry;
using runtime::SessionOptions;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "problp_artifact_test_" + name;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bn::BayesianNetwork test_network(std::uint64_t seed, int num_variables = 8) {
  Rng rng(seed);
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_variables;
  bn::BayesianNetwork network = bn::make_random_network(spec, rng);
  network.set_name("testnet" + std::to_string(seed));
  return network;
}

std::vector<ac::PartialAssignment> test_evidence(const bn::BayesianNetwork& network, int count,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ac::PartialAssignment> out;
  for (int i = 0; i < count; ++i) {
    ac::PartialAssignment a(static_cast<std::size_t>(network.num_variables()));
    for (int v = 0; v < network.num_variables(); ++v) {
      if (rng.coin()) {
        a[static_cast<std::size_t>(v)] = rng.uniform_int(0, network.cardinality(v) - 1);
      }
    }
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<std::uint64_t> bits_of(const std::vector<double>& values) {
  std::vector<std::uint64_t> bits(values.size());
  std::memcpy(bits.data(), values.data(), values.size() * sizeof(double));
  return bits;
}

// ---- container layer -------------------------------------------------------

TEST(Artifact, ContainerRoundTrip) {
  const std::string path = temp_path("container.pm");
  ArtifactWriter writer("roundtrip-model");
  const std::vector<std::int32_t> ints = {1, -2, 3, 2000000000};
  const std::vector<double> doubles = {0.25, -1e300, 3.5};
  writer.add_array(7, ints);
  writer.add_array(9, doubles);
  writer.add_text(11, "hello sections");
  writer.write(path);

  ASSERT_TRUE(MappedArtifact::sniff(path));
  const runtime::ArtifactInfo info = MappedArtifact::peek(path);
  EXPECT_EQ(info.version, runtime::kArtifactVersion);
  EXPECT_EQ(info.name, "roundtrip-model");
  EXPECT_EQ(info.num_sections, 3u);
  EXPECT_EQ(info.file_size, read_file(path).size());

  const MappedArtifact art = MappedArtifact::open(path);
  EXPECT_EQ(art.info().content_hash, info.content_hash);
  EXPECT_TRUE(art.has(7));
  EXPECT_FALSE(art.has(8));
  const auto got_ints = art.array<std::int32_t>(7);
  ASSERT_EQ(got_ints.size(), ints.size());
  EXPECT_TRUE(std::equal(ints.begin(), ints.end(), got_ints.begin()));
  const auto got_doubles = art.array<double>(9);
  EXPECT_TRUE(std::equal(doubles.begin(), doubles.end(), got_doubles.begin()));
  EXPECT_EQ(art.text(11), "hello sections");
  // A section whose length is not a multiple of the element width must be
  // rejected (the 14-byte text section read as doubles), as must a missing
  // section id.
  EXPECT_THROW(art.array<double>(11), Error);
  EXPECT_THROW(art.array<std::int32_t>(12), Error);
}

TEST(Artifact, AtomicSaveLeavesNoTempDebris) {
  const std::string path = temp_path("atomic.pm");
  ArtifactWriter writer("atomic");
  const std::vector<std::int32_t> payload = {1, 2, 3};
  writer.add_array(1, payload);
  writer.write(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwriting an existing artifact goes through the same rename; the
  // destination is never a partially-written hybrid of old and new.
  ArtifactWriter writer2("atomic2");
  const std::vector<std::int32_t> payload2 = {9, 9, 9, 9};
  writer2.add_array(1, payload2);
  writer2.write(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const MappedArtifact art = MappedArtifact::open(path);
  EXPECT_EQ(art.info().name, "atomic2");
  EXPECT_EQ(art.array<std::int32_t>(1).size(), payload2.size());
}

TEST(Artifact, CorruptionMatrix) {
  const std::string path = temp_path("corrupt_src.pm");
  ArtifactWriter writer("corruptible");
  std::vector<std::int32_t> big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::int32_t>(i * 7);
  writer.add_array(1, big);
  writer.add_text(2, "decomposition balanced\n");
  writer.write(path);
  const std::vector<unsigned char> pristine = read_file(path);
  const std::string mutant = temp_path("corrupt_mut.pm");

  const auto expect_rejected = [&](std::vector<unsigned char> bytes, const char* what) {
    write_file(mutant, bytes);
    EXPECT_THROW(MappedArtifact::open(mutant), Error) << what;
  };

  // Truncations at every interesting boundary: mid-magic, mid-header,
  // mid-section-table, mid-payload, one byte short.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{60}, std::size_t{110}, pristine.size() / 2,
        pristine.size() - 1}) {
    expect_rejected({pristine.begin(), pristine.begin() + static_cast<long>(keep)},
                    "truncated file");
  }

  {  // Flipped payload bit -> section checksum mismatch.
    std::vector<unsigned char> bytes = pristine;
    bytes[bytes.size() - 100] ^= 0x40;
    expect_rejected(bytes, "flipped payload bit");
  }
  {  // Flipped checksum in the section table -> checksum mismatch.
    std::vector<unsigned char> bytes = pristine;
    bytes[104 + 24] ^= 0x01;  // first entry's checksum field
    expect_rejected(bytes, "flipped table checksum");
  }
  {  // Foreign byte order: the endianness tag reads back swapped.
    std::vector<unsigned char> bytes = pristine;
    std::swap(bytes[12], bytes[15]);
    std::swap(bytes[13], bytes[14]);
    expect_rejected(bytes, "endianness tag");
  }
  {  // Oversized section offset -> bounds rejection before any dereference.
    std::vector<unsigned char> bytes = pristine;
    bytes[104 + 8 + 6] = 0x7f;  // first entry's offset, high bytes
    expect_rejected(bytes, "oversized offset");
  }
  {  // Misaligned section offset.
    std::vector<unsigned char> bytes = pristine;
    bytes[104 + 8] ^= 0x01;
    expect_rejected(bytes, "misaligned offset");
  }
  {  // Oversized section length.
    std::vector<unsigned char> bytes = pristine;
    bytes[104 + 16 + 5] = 0x7f;
    expect_rejected(bytes, "oversized length");
  }
  {  // Bad magic: not this container at all.
    std::vector<unsigned char> bytes = pristine;
    bytes[0] = 'X';
    write_file(mutant, bytes);
    EXPECT_FALSE(MappedArtifact::sniff(mutant));
    EXPECT_THROW(MappedArtifact::open(mutant), Error);
  }
  {  // Wrong format version: the message names found and expected.
    std::vector<unsigned char> bytes = pristine;
    bytes[8] = 0x2a;  // version 42
    write_file(mutant, bytes);
    try {
      MappedArtifact::open(mutant);
      FAIL() << "version 42 artifact must not open";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("42"), std::string::npos) << what;
      EXPECT_NE(what.find(std::to_string(runtime::kArtifactVersion)), std::string::npos)
          << what;
      EXPECT_NE(what.find("version"), std::string::npos) << what;
    }
  }
  {  // Lied-about file size.
    std::vector<unsigned char> bytes = pristine;
    bytes[16] ^= 0x01;
    expect_rejected(bytes, "file size mismatch");
  }
}

// ---- model layer -----------------------------------------------------------

TEST(ModelArtifact, BinaryRoundTripIsBitwiseIdentical) {
  const std::string path = temp_path("model.pm");
  const bn::BayesianNetwork network = test_network(3);
  const auto model = CompiledModel::compile(network);
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const AnalysisReport report = model->analyze(spec);
  model->save(path);

  const auto loaded = CompiledModel::load(path);
  EXPECT_TRUE(loaded->memory_mapped());
  EXPECT_EQ(loaded->name(), network.name());
  EXPECT_EQ(loaded->artifact_version(), runtime::kArtifactVersion);
  EXPECT_EQ(loaded->cardinalities(), model->cardinalities());
  EXPECT_EQ(loaded->options().decomposition, model->options().decomposition);

  const auto evidence = test_evidence(network, 64, 11);
  const auto sweep = [&](const std::shared_ptr<const CompiledModel>& m,
                         const SessionOptions& options) {
    InferenceSession session(m, options);
    return bits_of(session.marginal(evidence));
  };
  // Exact, one fixed, one float format — all bit-identical to in-memory.
  EXPECT_EQ(sweep(model, {}), sweep(loaded, {}));
  const SessionOptions fixed =
      SessionOptions::low_precision(Representation::of(lowprec::FixedFormat{2, 22}));
  EXPECT_EQ(sweep(model, fixed), sweep(loaded, fixed));
  const SessionOptions flt =
      SessionOptions::low_precision(Representation::of(lowprec::FloatFormat{8, 23}));
  EXPECT_EQ(sweep(model, flt), sweep(loaded, flt));
  if (report.any_feasible) {
    // The analysis-selected format is the one whose quantised leaf cache
    // was persisted: the loaded side adopts the mapped cache instead of
    // re-quantising, and must still match bit for bit.
    const SessionOptions selected = SessionOptions::low_precision(report.selected);
    EXPECT_EQ(sweep(model, selected), sweep(loaded, selected));
  }
  {  // MPE rides the persisted max tape (no circuit parse needed).
    InferenceSession a(model);
    InferenceSession b(loaded);
    EXPECT_EQ(bits_of(a.mpe(evidence)), bits_of(b.mpe(evidence)));
  }

  // The report cache was persisted: re-analysing the saved spec must hand
  // back the identical row.
  EXPECT_EQ(loaded->analyze(spec).to_string(), report.to_string());

  // Lazy circuit materialisation: to_text() forces both text sections to
  // parse, and the arenas must match the originals node for node.
  EXPECT_EQ(loaded->to_text(), model->to_text());
}

TEST(ModelArtifact, LegacyTextArtifactLoadsThroughSameEntryPoint) {
  const std::string path = temp_path("model.txt.pm");
  const bn::BayesianNetwork network = test_network(5);
  const auto model = CompiledModel::compile(network);
  {
    std::ofstream out(path);
    out << model->to_text();
  }
  const auto loaded = CompiledModel::load(path);
  EXPECT_FALSE(loaded->memory_mapped());
  EXPECT_EQ(loaded->artifact_version(), 0u);
  const auto evidence = test_evidence(network, 32, 17);
  InferenceSession a(model);
  InferenceSession b(loaded);
  EXPECT_EQ(bits_of(a.marginal(evidence)), bits_of(b.marginal(evidence)));
}

TEST(ModelArtifact, CorruptModelArtifactNeverLoads) {
  const std::string path = temp_path("model_corrupt.pm");
  const auto model = CompiledModel::compile(test_network(7));
  model->save(path);
  std::vector<unsigned char> pristine = read_file(path);
  const std::string mutant = temp_path("model_corrupt_mut.pm");
  // Every fourth truncation point plus a handful of bit flips across the
  // file: the loader must throw problp::Error each time, never crash.
  for (std::size_t keep = 16; keep < pristine.size(); keep += pristine.size() / 11) {
    write_file(mutant, {pristine.begin(), pristine.begin() + static_cast<long>(keep)});
    EXPECT_THROW(CompiledModel::load(mutant), Error) << "truncated at " << keep;
  }
  for (std::size_t flip = 32; flip < pristine.size(); flip += pristine.size() / 7) {
    std::vector<unsigned char> bytes = pristine;
    bytes[flip] ^= 0x10;
    write_file(mutant, bytes);
    EXPECT_THROW(CompiledModel::load(mutant), Error) << "bit flip at " << flip;
  }
}

// ---- registry layer --------------------------------------------------------

TEST(ModelRegistry, SharesOneMappingPerContentHash) {
  const std::string path_a = temp_path("reg_a.pm");
  const std::string path_b = temp_path("reg_b.pm");
  CompiledModel::compile(test_network(21))->save(path_a);
  CompiledModel::compile(test_network(22))->save(path_b);

  ModelRegistry registry;
  const auto a1 = registry.get(path_a);
  const auto b1 = registry.get(path_b);
  EXPECT_NE(a1.get(), b1.get());
  EXPECT_EQ(registry.stats().misses, 2u);
  EXPECT_EQ(registry.stats().live_models, 2u);

  // Same path again: a hit on the live model, same instance.
  EXPECT_EQ(registry.get(path_a).get(), a1.get());
  // Same *content* through a different path: still the same instance —
  // identity is the artifact hash, not the file name.
  const std::string path_a2 = temp_path("reg_a_copy.pm");
  std::filesystem::copy_file(path_a, path_a2,
                             std::filesystem::copy_options::overwrite_existing);
  EXPECT_EQ(registry.get(path_a2).get(), a1.get());
  EXPECT_EQ(registry.stats().hits, 2u);
  EXPECT_EQ(registry.stats().misses, 2u);
}

TEST(ModelRegistry, LruEvictionDropsPinsNotLiveModels) {
  const std::string path_a = temp_path("lru_a.pm");
  const std::string path_b = temp_path("lru_b.pm");
  const bn::BayesianNetwork net_a = test_network(31);
  const bn::BayesianNetwork net_b = test_network(32);
  CompiledModel::compile(net_a)->save(path_a);
  CompiledModel::compile(net_b)->save(path_b);

  // Cap below the sum of both artifacts: pinning B must evict A's pin.
  ModelRegistry::Options options;
  options.max_resident_bytes =
      std::filesystem::file_size(path_a) + std::filesystem::file_size(path_b) - 1;
  ModelRegistry registry(options);

  auto a = registry.get(path_a);
  auto b = registry.get(path_b);
  EXPECT_GE(registry.stats().evictions, 1u);
  EXPECT_LE(registry.stats().resident_bytes, options.max_resident_bytes);
  // Both models stay alive: the registry dropped its pin, not our refs.
  EXPECT_EQ(registry.stats().live_models, 2u);

  const auto evidence = test_evidence(net_a, 16, 5);
  std::vector<std::uint64_t> want;
  {
    // The evicted model keeps serving queries through its session refs.
    InferenceSession session(a);
    want = bits_of(session.marginal(evidence));
    // Re-getting the evicted model while it is still alive re-pins the
    // same instance instead of re-mapping the file.
    EXPECT_EQ(registry.get(path_a).get(), a.get());
  }

  // Once every reference is gone the model dies and the next get() is a
  // fresh load — which must answer bit-identically to the dead one.
  const auto misses_before = registry.stats().misses;
  a.reset();
  b.reset();
  registry.clear();
  const auto a2 = registry.get(path_a);
  EXPECT_EQ(registry.stats().misses, misses_before + 1);
  InferenceSession fresh(a2);
  EXPECT_EQ(bits_of(fresh.marginal(evidence)), want);
}

TEST(ModelRegistry, ConcurrentGetAndQueryUnderEvictionPressure) {
  const std::string path_a = temp_path("mt_a.pm");
  const std::string path_b = temp_path("mt_b.pm");
  const bn::BayesianNetwork net_a = test_network(41);
  const bn::BayesianNetwork net_b = test_network(42);
  CompiledModel::compile(net_a)->save(path_a);
  CompiledModel::compile(net_b)->save(path_b);

  // A cap that fits only one artifact keeps the two models fighting for
  // the pin while every thread hammers get()+query.
  ModelRegistry::Options options;
  options.max_resident_bytes =
      std::max(std::filesystem::file_size(path_a), std::filesystem::file_size(path_b));
  ModelRegistry registry(options);

  const auto evidence_a = test_evidence(net_a, 8, 9);
  const auto evidence_b = test_evidence(net_b, 8, 9);
  const std::vector<std::uint64_t> want_a = [&] {
    InferenceSession s(CompiledModel::load(path_a));
    return bits_of(s.marginal(evidence_a));
  }();
  const std::vector<std::uint64_t> want_b = [&] {
    InferenceSession s(CompiledModel::load(path_b));
    return bits_of(s.marginal(evidence_b));
  }();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const bool use_a = (t + round) % 2 == 0;
        const auto model = registry.get(use_a ? path_a : path_b);
        InferenceSession session(model);
        const auto got = bits_of(session.marginal(use_a ? evidence_a : evidence_b));
        if (got != (use_a ? want_a : want_b)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // At least one model survives as the registry's own pin; dropping every
  // pin with all sessions gone leaves nothing alive.
  EXPECT_GE(registry.stats().live_models, 1u);
  registry.clear();
  EXPECT_EQ(registry.stats().live_models, 0u);
}

}  // namespace
}  // namespace problp
