#include <cmath>

#include <gtest/gtest.h>

#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "errormodel/bitwidth_search.hpp"
#include "helpers.hpp"

namespace problp::errormodel {
namespace {

using ac::Circuit;

struct CompiledNet {
  bn::BayesianNetwork network;
  Circuit binary;
  CircuitErrorModel model;
};

CompiledNet compile_random(std::uint64_t seed, int num_vars = 6) {
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_vars;
  spec.max_parents = 2;
  Rng rng(seed);
  CompiledNet out{bn::make_random_network(spec, rng), Circuit({1}), {}};
  out.binary = ac::binarize(compile::compile_network(out.network)).circuit;
  out.model = CircuitErrorModel::build(out.binary);
  return out;
}

TEST(BitwidthSearch, FixedPlanMeetsToleranceAndIsMinimal) {
  const CompiledNet net = compile_random(7);
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const FixedPlan plan = search_fixed_representation(net.binary, net.model, spec);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.predicted_bound, 0.01);
  // Minimality: one fraction bit fewer must violate the tolerance.
  lowprec::FixedFormat smaller{plan.format.integer_bits, plan.format.fraction_bits - 1};
  EXPECT_GT(fixed_query_bound(net.binary, net.model, spec, smaller), 0.01);
}

TEST(BitwidthSearch, FloatPlanMeetsToleranceAndIsMinimal) {
  const CompiledNet net = compile_random(8);
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kRelative, 0.01};
  const FloatPlan plan = search_float_representation(net.model, spec);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.predicted_bound, 0.01);
  lowprec::FloatFormat smaller{plan.format.exponent_bits, plan.format.mantissa_bits - 1};
  EXPECT_GT(float_query_bound(net.model, spec, smaller), 0.01);
}

TEST(BitwidthSearch, FixedIntegerBitsPreventOverflow) {
  // Whatever I the search picks, no test evaluation may overflow.
  for (std::uint64_t seed : {10u, 20u, 30u}) {
    const CompiledNet net = compile_random(seed, 5);
    const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.001};
    const FixedPlan plan = search_fixed_representation(net.binary, net.model, spec);
    ASSERT_TRUE(plan.feasible);
    for (const auto& a : test::all_partial_assignments(net.binary.cardinalities())) {
      const auto r = ac::evaluate_fixed(net.binary, a, plan.format);
      EXPECT_FALSE(r.flags.overflow) << "seed=" << seed;
    }
  }
}

TEST(BitwidthSearch, FloatExponentBitsPreventUnderflowOverflow) {
  for (std::uint64_t seed : {11u, 21u, 31u}) {
    const CompiledNet net = compile_random(seed, 5);
    const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kRelative, 0.001};
    const FloatPlan plan = search_float_representation(net.model, spec);
    ASSERT_TRUE(plan.feasible);
    for (const auto& a : test::all_partial_assignments(net.binary.cardinalities())) {
      const auto r = ac::evaluate_float(net.binary, a, plan.format);
      EXPECT_FALSE(r.flags.overflow) << "seed=" << seed;
      EXPECT_FALSE(r.flags.underflow) << "seed=" << seed;
    }
  }
}

TEST(BitwidthSearch, TighterToleranceNeedsMoreBits) {
  const CompiledNet net = compile_random(9);
  const QuerySpec loose{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const QuerySpec tight{QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-6};
  const FixedPlan f_loose = search_fixed_representation(net.binary, net.model, loose);
  const FixedPlan f_tight = search_fixed_representation(net.binary, net.model, tight);
  ASSERT_TRUE(f_loose.feasible && f_tight.feasible);
  EXPECT_GT(f_tight.format.fraction_bits, f_loose.format.fraction_bits);
  const FloatPlan g_loose = search_float_representation(net.model, loose);
  const FloatPlan g_tight = search_float_representation(net.model, tight);
  ASSERT_TRUE(g_loose.feasible && g_tight.feasible);
  EXPECT_GT(g_tight.format.mantissa_bits, g_loose.format.mantissa_bits);
}

TEST(BitwidthSearch, ConditionalRelativeFixedInfeasible) {
  // §3.2.2: ProbLP will always choose float here; fixed must be infeasible.
  const CompiledNet net = compile_random(12);
  const QuerySpec spec{QueryType::kConditional, ToleranceKind::kRelative, 0.01};
  EXPECT_FALSE(search_fixed_representation(net.binary, net.model, spec).feasible);
  EXPECT_TRUE(search_float_representation(net.model, spec).feasible);
}

TEST(BitwidthSearch, InfeasibleWhenCapTooLow) {
  const CompiledNet net = compile_random(13);
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-12};
  SearchOptions options;
  options.max_fraction_bits = 8;
  options.max_mantissa_bits = 8;
  EXPECT_FALSE(search_fixed_representation(net.binary, net.model, spec, options).feasible);
  EXPECT_FALSE(search_float_representation(net.model, spec, options).feasible);
}

TEST(BitwidthSearch, SearchStartsAtTwoBits) {
  // A trivial circuit meets a sloppy tolerance with the minimum 2 bits
  // (§3.3: "starting with 2 fraction bits and 2 mantissa bits").
  Circuit c({2});
  c.set_root(c.add_prod({c.add_indicator(0, 0), c.add_parameter(0.5)}));
  const Circuit binary = ac::binarize(c).circuit;
  const CircuitErrorModel model = CircuitErrorModel::build(binary);
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.5};
  const FixedPlan fx = search_fixed_representation(binary, model, spec);
  ASSERT_TRUE(fx.feasible);
  EXPECT_EQ(fx.format.fraction_bits, 2);
  EXPECT_EQ(fx.format.integer_bits, 1);
  const FloatPlan fl = search_float_representation(model, spec);
  ASSERT_TRUE(fl.feasible);
  EXPECT_EQ(fl.format.mantissa_bits, 2);
}

TEST(BitwidthSearch, CoarseMantissaStillPreventsUnderflow) {
  // Regression: with coarse mantissas the worst-case relative excursion
  // exceeds 100%, and a naive `1 - excursion` deflation bound goes negative,
  // silently dropping the underflow constraint on E.  A deep product chain
  // of tiny parameters must still get an exponent wide enough that no
  // evaluation underflows.
  Circuit c({2});
  ac::NodeId acc = c.add_parameter(1e-3);
  for (int i = 0; i < 7; ++i) {
    acc = c.add_prod({acc, c.add_parameter(1e-3)});  // min value reaches 1e-24
  }
  c.set_root(c.add_prod({acc, c.add_indicator(0, 0)}));
  const Circuit binary = ac::binarize(c).circuit;
  const CircuitErrorModel model = CircuitErrorModel::build(binary);
  // Sloppy relative tolerance so the search settles on a very coarse M.
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kRelative, 0.9};
  const FloatPlan plan = search_float_representation(model, spec);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.format.mantissa_bits, 6);  // genuinely coarse
  for (const auto& a : test::all_partial_assignments(binary.cardinalities())) {
    const auto r = ac::evaluate_float(binary, a, plan.format);
    EXPECT_FALSE(r.flags.underflow);
    EXPECT_FALSE(r.flags.overflow);
  }
}

TEST(BitwidthSearch, ObservedErrorsWithinTolerance) {
  // End-to-end: the found representations actually keep observed errors
  // within the user tolerance on exhaustive queries.
  const CompiledNet net = compile_random(14, 5);
  const double tol = 1e-4;
  const QuerySpec spec{QueryType::kMarginal, ToleranceKind::kAbsolute, tol};
  const FixedPlan fx = search_fixed_representation(net.binary, net.model, spec);
  const FloatPlan fl = search_float_representation(net.model, spec);
  ASSERT_TRUE(fx.feasible && fl.feasible);
  for (const auto& a : test::all_partial_assignments(net.binary.cardinalities())) {
    const double exact = ac::evaluate(net.binary, a);
    EXPECT_LE(std::abs(ac::evaluate_fixed(net.binary, a, fx.format).value - exact), tol);
    EXPECT_LE(std::abs(ac::evaluate_float(net.binary, a, fl.format).value - exact), tol);
  }
}

}  // namespace
}  // namespace problp::errormodel
