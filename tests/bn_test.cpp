#include <gtest/gtest.h>

#include "bn/network.hpp"
#include "bn/random_network.hpp"

namespace problp::bn {
namespace {

// The Fig. 1a network: A -> B, A -> C.
BayesianNetwork make_fig1_network() {
  BayesianNetwork network;
  const int a = network.add_variable("A", std::vector<std::string>{"a1", "a2"});
  const int b = network.add_variable("B", 2);
  const int c = network.add_variable("C", 3);
  network.set_cpt(a, {}, {0.6, 0.4});
  network.set_cpt(b, {a}, {0.2, 0.8, 0.7, 0.3});
  network.set_cpt(c, {a}, {0.1, 0.3, 0.6, 0.5, 0.25, 0.25});
  return network;
}

TEST(Network, BasicAccessors) {
  const BayesianNetwork network = make_fig1_network();
  EXPECT_EQ(network.num_variables(), 3);
  EXPECT_EQ(network.cardinality(0), 2);
  EXPECT_EQ(network.cardinality(2), 3);
  EXPECT_EQ(network.find_variable("B"), 1);
  EXPECT_EQ(network.find_variable("nope"), -1);
  EXPECT_EQ(network.variable(0).state_names[1], "a2");
  EXPECT_EQ(network.num_parameters(), 2u + 4u + 6u);
}

TEST(Network, ParentsChildren) {
  const BayesianNetwork network = make_fig1_network();
  EXPECT_TRUE(network.parents(0).empty());
  ASSERT_EQ(network.parents(1).size(), 1u);
  EXPECT_EQ(network.parents(1)[0], 0);
  const auto kids = network.children(0);
  EXPECT_EQ(kids.size(), 2u);
}

TEST(Network, CptValueIndexing) {
  const BayesianNetwork network = make_fig1_network();
  EXPECT_DOUBLE_EQ(network.cpt_value(0, 0, {}), 0.6);
  EXPECT_DOUBLE_EQ(network.cpt_value(1, 1, {0}), 0.8);  // P(b2 | a1)
  EXPECT_DOUBLE_EQ(network.cpt_value(1, 0, {1}), 0.7);  // P(b1 | a2)
  EXPECT_DOUBLE_EQ(network.cpt_value(2, 2, {0}), 0.6);  // P(c3 | a1)
  EXPECT_DOUBLE_EQ(network.cpt_value(2, 0, {1}), 0.5);  // P(c1 | a2)
}

TEST(Network, TopologicalOrder) {
  const BayesianNetwork network = make_fig1_network();
  const auto order = network.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // A precedes its children
}

TEST(Network, ValidatePasses) {
  EXPECT_NO_THROW(make_fig1_network().validate());
}

TEST(Network, ValidateCatchesBadRowSum) {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  network.set_cpt(a, {}, {0.6, 0.6});
  EXPECT_THROW(network.validate(), InvalidArgument);
}

TEST(Network, ValidateCatchesMissingCpt) {
  BayesianNetwork network;
  network.add_variable("A", 2);
  EXPECT_THROW(network.validate(), InvalidArgument);
}

TEST(Network, RejectsDuplicateNames) {
  BayesianNetwork network;
  network.add_variable("A", 2);
  EXPECT_THROW(network.add_variable("A", 3), InvalidArgument);
}

TEST(Network, RejectsWrongCptSize) {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  EXPECT_THROW(network.set_cpt(a, {}, {0.5, 0.25, 0.25}), InvalidArgument);
}

TEST(Network, RejectsSelfParent) {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  EXPECT_THROW(network.set_cpt(a, {a}, {0.5, 0.5, 0.5, 0.5}), InvalidArgument);
}

TEST(Network, CycleDetected) {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  const int b = network.add_variable("B", 2);
  network.set_cpt(a, {b}, {0.5, 0.5, 0.5, 0.5});
  network.set_cpt(b, {a}, {0.5, 0.5, 0.5, 0.5});
  EXPECT_THROW(network.topological_order(), InvalidArgument);
}

TEST(RandomNetwork, ValidAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    RandomNetworkSpec spec;
    spec.num_variables = 10;
    const BayesianNetwork network = make_random_network(spec, rng);
    EXPECT_NO_THROW(network.validate());
    EXPECT_EQ(network.num_variables(), 10);
  }
}

TEST(RandomNetwork, RespectsMaxParents) {
  Rng rng(3);
  RandomNetworkSpec spec;
  spec.num_variables = 12;
  spec.max_parents = 2;
  spec.edge_probability = 0.9;
  const BayesianNetwork network = make_random_network(spec, rng);
  for (int v = 0; v < network.num_variables(); ++v) {
    EXPECT_LE(network.parents(v).size(), 2u);
  }
}

}  // namespace
}  // namespace problp::bn
