#include <algorithm>

#include <gtest/gtest.h>

#include "bn/alarm.hpp"

namespace problp::bn {
namespace {

TEST(Alarm, StructureFacts) {
  const BayesianNetwork alarm = make_alarm_network();
  EXPECT_EQ(alarm.num_variables(), 37);
  std::size_t arcs = 0;
  int roots = 0;
  for (int v = 0; v < alarm.num_variables(); ++v) {
    arcs += alarm.parents(v).size();
    if (alarm.parents(v).empty()) ++roots;
  }
  EXPECT_EQ(arcs, 46u);  // the published ALARM arc count
  EXPECT_EQ(roots, 12);
  EXPECT_NO_THROW(alarm.validate());
}

TEST(Alarm, KnownArities) {
  const BayesianNetwork alarm = make_alarm_network();
  EXPECT_EQ(alarm.cardinality(alarm.find_variable("INTUBATION")), 3);
  EXPECT_EQ(alarm.cardinality(alarm.find_variable("VENTLUNG")), 4);
  EXPECT_EQ(alarm.cardinality(alarm.find_variable("CATECHOL")), 2);
  EXPECT_EQ(alarm.cardinality(alarm.find_variable("BP")), 3);
}

TEST(Alarm, KnownEdges) {
  const BayesianNetwork alarm = make_alarm_network();
  const int catechol = alarm.find_variable("CATECHOL");
  EXPECT_EQ(alarm.parents(catechol).size(), 4u);  // the famous 4-parent node
  const int hr = alarm.find_variable("HR");
  ASSERT_EQ(alarm.parents(hr).size(), 1u);
  EXPECT_EQ(alarm.parents(hr)[0], catechol);
}

TEST(Alarm, DeterministicPerSeed) {
  const BayesianNetwork a = make_alarm_network(99);
  const BayesianNetwork b = make_alarm_network(99);
  const BayesianNetwork c = make_alarm_network(100);
  EXPECT_EQ(a.cpt(0).values, b.cpt(0).values);
  EXPECT_NE(a.cpt(0).values, c.cpt(0).values);
}

TEST(Alarm, CptsStrictlyPositive) {
  // The min-value analysis is cleanest with positive parameters (DESIGN.md).
  const BayesianNetwork alarm = make_alarm_network();
  for (int v = 0; v < alarm.num_variables(); ++v) {
    for (double p : alarm.cpt(v).values) EXPECT_GT(p, 0.0);
  }
}

}  // namespace
}  // namespace problp::bn
