#include <cmath>

#include <gtest/gtest.h>

#include "lowprec/fixed_point.hpp"
#include "util/rng.hpp"

namespace problp::lowprec {
namespace {

TEST(FixedFormat, Accessors) {
  const FixedFormat fmt{1, 15};
  EXPECT_EQ(fmt.total_bits(), 16);
  EXPECT_DOUBLE_EQ(fmt.resolution(), std::ldexp(1.0, -15));
  EXPECT_DOUBLE_EQ(fmt.max_value(), 2.0 - std::ldexp(1.0, -15));
  EXPECT_DOUBLE_EQ(fmt.quantization_bound(), std::ldexp(1.0, -16));
}

TEST(FixedFormat, Validation) {
  EXPECT_NO_THROW((FixedFormat{1, 61}.validate()));
  EXPECT_THROW((FixedFormat{-1, 8}.validate()), InvalidArgument);
  EXPECT_THROW((FixedFormat{1, 62}.validate()), InvalidArgument);
  EXPECT_THROW((FixedFormat{0, 0}.validate()), InvalidArgument);
}

TEST(RoundShiftRight, NearestEvenBasics) {
  // 0b1011 >> 2: value 2.75 -> 3
  EXPECT_EQ((round_shift_right(11, 2, RoundingMode::kNearestEven)), 3u);
  // 0b1010 >> 2: value 2.5 (tie) -> 2 (even)
  EXPECT_EQ((round_shift_right(10, 2, RoundingMode::kNearestEven)), 2u);
  // 0b1110 >> 2: value 3.5 (tie) -> 4 (even)
  EXPECT_EQ((round_shift_right(14, 2, RoundingMode::kNearestEven)), 4u);
  // shift <= 0 is an exact left shift
  EXPECT_EQ((round_shift_right(3, -2, RoundingMode::kNearestEven)), 12u);
}

TEST(RoundShiftRight, Truncate) {
  EXPECT_EQ((round_shift_right(11, 2, RoundingMode::kTruncate)), 2u);
  EXPECT_EQ((round_shift_right(15, 2, RoundingMode::kTruncate)), 3u);
}

TEST(FixedPoint, ConversionErrorWithinBound) {
  Rng rng(11);
  for (int f : {2, 5, 8, 16, 30}) {
    const FixedFormat fmt{2, f};
    for (int i = 0; i < 500; ++i) {
      // Stay below max_value() even for the coarsest format (F=2 -> 3.75).
      const double v = rng.uniform(0.0, 3.6);
      ArithFlags flags;
      const FixedPoint x = FixedPoint::from_double(v, fmt, flags);
      EXPECT_FALSE(flags.any());
      EXPECT_LE(std::abs(x.to_double() - v), fmt.quantization_bound());
    }
  }
}

TEST(FixedPoint, TruncationErrorWithinResolution) {
  Rng rng(12);
  const FixedFormat fmt{1, 10};
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 1.9);
    ArithFlags flags;
    const FixedPoint x = FixedPoint::from_double(v, fmt, flags, RoundingMode::kTruncate);
    EXPECT_LE(x.to_double(), v);  // truncation rounds toward zero
    EXPECT_LT(v - x.to_double(), fmt.resolution());
  }
}

TEST(FixedPoint, ZeroAndOneExact) {
  for (int f : {2, 8, 40}) {
    const FixedFormat fmt{1, f};
    ArithFlags flags;
    EXPECT_DOUBLE_EQ(FixedPoint::from_double(0.0, fmt, flags).to_double(), 0.0);
    EXPECT_DOUBLE_EQ(FixedPoint::from_double(1.0, fmt, flags).to_double(), 1.0);
    EXPECT_FALSE(flags.any());
  }
}

TEST(FixedPoint, InvalidInputsFlagged) {
  const FixedFormat fmt{1, 8};
  {
    ArithFlags flags;
    FixedPoint::from_double(-0.25, fmt, flags);
    EXPECT_TRUE(flags.invalid_input);
  }
  {
    ArithFlags flags;
    FixedPoint::from_double(std::nan(""), fmt, flags);
    EXPECT_TRUE(flags.invalid_input);
  }
  {
    ArithFlags flags;
    const FixedPoint x =
        FixedPoint::from_double(std::numeric_limits<double>::infinity(), fmt, flags);
    EXPECT_TRUE(flags.invalid_input);
    EXPECT_DOUBLE_EQ(x.to_double(), fmt.max_value());
  }
}

TEST(FixedPoint, ConversionOverflowSaturates) {
  const FixedFormat fmt{1, 8};
  ArithFlags flags;
  const FixedPoint x = FixedPoint::from_double(5.0, fmt, flags);
  EXPECT_TRUE(flags.overflow);
  EXPECT_DOUBLE_EQ(x.to_double(), fmt.max_value());
}

TEST(FixedPoint, AdditionIsExact) {
  // Eq. 3: the adder adds no error of its own.
  Rng rng(13);
  const FixedFormat fmt{3, 20};
  for (int i = 0; i < 1000; ++i) {
    ArithFlags flags;
    const FixedPoint a = FixedPoint::from_double(rng.uniform(0.0, 3.0), fmt, flags);
    const FixedPoint b = FixedPoint::from_double(rng.uniform(0.0, 3.0), fmt, flags);
    const FixedPoint s = fx_add(a, b, flags);
    EXPECT_FALSE(flags.overflow);
    EXPECT_DOUBLE_EQ(s.to_double(), a.to_double() + b.to_double());
  }
}

TEST(FixedPoint, AdditionOverflowSaturatesAndFlags) {
  const FixedFormat fmt{1, 4};
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(1.5, fmt, flags);
  const FixedPoint b = FixedPoint::from_double(1.0, fmt, flags);
  ASSERT_FALSE(flags.any());
  const FixedPoint s = fx_add(a, b, flags);
  EXPECT_TRUE(flags.overflow);
  EXPECT_DOUBLE_EQ(s.to_double(), fmt.max_value());
}

TEST(FixedPoint, MultiplicationHalfUlpBound) {
  // Eq. 4: |rounding| <= 2^-(F+1) beyond the exact product of the operands.
  Rng rng(14);
  for (int f : {4, 8, 16, 24}) {
    const FixedFormat fmt{1, f};
    for (int i = 0; i < 500; ++i) {
      ArithFlags flags;
      const FixedPoint a = FixedPoint::from_double(rng.uniform(0.0, 1.0), fmt, flags);
      const FixedPoint b = FixedPoint::from_double(rng.uniform(0.0, 1.0), fmt, flags);
      const FixedPoint p = fx_mul(a, b, flags);
      EXPECT_FALSE(flags.overflow);
      const double exact = a.to_double() * b.to_double();
      EXPECT_LE(std::abs(p.to_double() - exact), fmt.quantization_bound());
    }
  }
}

TEST(FixedPoint, MultiplicationTiesToEven) {
  // With F=2, 0.25 * 0.5 = 0.125 sits exactly between 0.0 ulp grid points
  // {0.0, 0.25}... actually 0.125 = half of resolution 0.25: tie.
  const FixedFormat fmt{1, 2};
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(0.25, fmt, flags);
  const FixedPoint b = FixedPoint::from_double(0.5, fmt, flags);
  const FixedPoint p = fx_mul(a, b, flags);
  EXPECT_DOUBLE_EQ(p.to_double(), 0.0);  // ties to even: 0 is even, 0.25 is odd
  // 0.75 * 0.5 = 0.375: tie between 0.25 (odd) and 0.5 (even) -> 0.5.
  const FixedPoint c = FixedPoint::from_double(0.75, fmt, flags);
  const FixedPoint q = fx_mul(c, b, flags);
  EXPECT_DOUBLE_EQ(q.to_double(), 0.5);
}

TEST(FixedPoint, MultiplicationTruncation) {
  const FixedFormat fmt{1, 2};
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(0.75, fmt, flags);
  const FixedPoint b = FixedPoint::from_double(0.75, fmt, flags);
  // 0.5625 truncates to 0.5.
  const FixedPoint p = fx_mul(a, b, flags, RoundingMode::kTruncate);
  EXPECT_DOUBLE_EQ(p.to_double(), 0.5);
}

TEST(FixedPoint, WideFormatsExact) {
  // Near the emulation limit: products of 60-bit operands must be exact.
  const FixedFormat fmt{1, 60};
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(0.5, fmt, flags);
  const FixedPoint b = FixedPoint::from_double(0.25, fmt, flags);
  EXPECT_DOUBLE_EQ(fx_mul(a, b, flags).to_double(), 0.125);
  EXPECT_FALSE(flags.any());
}

TEST(FixedPoint, MinMax) {
  const FixedFormat fmt{1, 8};
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(0.5, fmt, flags);
  const FixedPoint b = FixedPoint::from_double(0.75, fmt, flags);
  EXPECT_DOUBLE_EQ(fx_min(a, b).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(fx_max(a, b).to_double(), 0.75);
}

TEST(FixedPoint, MixedFormatsRejected) {
  ArithFlags flags;
  const FixedPoint a = FixedPoint::from_double(0.5, FixedFormat{1, 8}, flags);
  const FixedPoint b = FixedPoint::from_double(0.5, FixedFormat{1, 9}, flags);
  EXPECT_THROW(fx_add(a, b, flags), InvalidArgument);
  EXPECT_THROW(fx_mul(a, b, flags), InvalidArgument);
}

// Property sweep: conversion + one multiply stays within the eq. 4/5 model
// across formats.
class FixedFormatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedFormatSweep, MulAccumulatedErrorWithinModel) {
  const int f = GetParam();
  const FixedFormat fmt{1, f};
  Rng rng(100 + f);
  const double q = fmt.quantization_bound();
  for (int i = 0; i < 200; ++i) {
    const double av = rng.uniform(0.0, 1.0);
    const double bv = rng.uniform(0.0, 1.0);
    ArithFlags flags;
    const FixedPoint a = FixedPoint::from_double(av, fmt, flags);
    const FixedPoint b = FixedPoint::from_double(bv, fmt, flags);
    const FixedPoint p = fx_mul(a, b, flags);
    // Eq. 5 with a_max = b_max = 1, Δa = Δb = q.
    const double bound = q + q + q * q + q;
    EXPECT_LE(std::abs(p.to_double() - av * bv), bound) << "F=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FixedFormatSweep, ::testing::Values(2, 4, 8, 12, 16, 24, 32, 40));

TEST(FixedFormat, NarrowWordClassification) {
  // The u64 lane-kernel eligibility cutoff sits exactly at 30 total bits.
  EXPECT_TRUE((FixedFormat{2, 28}.fits_narrow_word()));   // 30
  EXPECT_TRUE((FixedFormat{0, 30}.fits_narrow_word()));   // 30
  EXPECT_TRUE((FixedFormat{2, 22}.fits_narrow_word()));   // 24
  EXPECT_FALSE((FixedFormat{2, 29}.fits_narrow_word()));  // 31
  EXPECT_FALSE((FixedFormat{0, 31}.fits_narrow_word()));  // 31
  EXPECT_FALSE((FixedFormat{2, 30}.fits_narrow_word()));  // 32
  EXPECT_EQ(FixedFormat::kNarrowWordBits, 30);
}

// The u64 and u32 lane kernels against their u128 siblings, one word pair
// at a time: values AND overflow verdicts must agree bit for bit.  The u32
// kernels are what the batched narrow datapath actually stores and
// executes; the u64 ones remain the scalar reference.  `mul_u64`/`mul_u32`
// mirror the executor's instantiation rule (truncate also serves F == 0,
// where a shift-0 truncation is the exact product).
void expect_word_kernel_parity(const FixedFormat& fmt, RoundingMode mode, std::uint64_t a,
                               std::uint64_t b) {
  const std::uint64_t max_raw = static_cast<std::uint64_t>(fmt.max_raw());
  const std::uint64_t half =
      fmt.fraction_bits > 0 ? std::uint64_t{1} << (fmt.fraction_bits - 1) : 0;
  const auto mul_u64 = [&](std::uint64_t x, std::uint64_t y, std::uint64_t& ovf) {
    return mode == RoundingMode::kNearestEven && fmt.fraction_bits > 0
               ? fx_mul_raw_u64<RoundingMode::kNearestEven>(x, y, fmt.fraction_bits, half,
                                                            max_raw, ovf)
               : fx_mul_raw_u64<RoundingMode::kTruncate>(x, y, fmt.fraction_bits, half,
                                                         max_raw, ovf);
  };

  ArithFlags add_flags;
  const u128 want_add = fx_add_raw(a, b, fmt, add_flags);
  std::uint64_t add_ovf = 0;
  const std::uint64_t got_add = fx_add_raw_u64(a, b, max_raw, add_ovf);
  ASSERT_EQ(got_add, static_cast<std::uint64_t>(want_add))
      << fmt.to_string() << " add a=" << a << " b=" << b;
  ASSERT_EQ(add_ovf != 0, add_flags.overflow) << fmt.to_string() << " add flag";

  ArithFlags mul_flags;
  const u128 want_mul = fx_mul_raw(a, b, fmt, mul_flags, mode);
  std::uint64_t mul_ovf = 0;
  const std::uint64_t got_mul = mul_u64(a, b, mul_ovf);
  ASSERT_EQ(got_mul, static_cast<std::uint64_t>(want_mul))
      << fmt.to_string() << " mul a=" << a << " b=" << b
      << " mode=" << (mode == RoundingMode::kTruncate ? "trunc" : "nearest");
  ASSERT_EQ(mul_ovf != 0, mul_flags.overflow) << fmt.to_string() << " mul flag";

  ASSERT_EQ(fx_max_raw_u64(a, b), static_cast<std::uint64_t>(fx_max_raw(a, b)));

  // The u32 storage kernels: narrow raw words are < 2^30, so the casts
  // below are lossless and the wide results must re-narrow exactly.
  const std::uint32_t a32 = static_cast<std::uint32_t>(a);
  const std::uint32_t b32 = static_cast<std::uint32_t>(b);
  const std::uint32_t max32 = static_cast<std::uint32_t>(max_raw);
  const std::uint32_t half32 = static_cast<std::uint32_t>(half);
  std::uint32_t add32_ovf = 0;
  const std::uint32_t got_add32 = fx_add_raw_u32(a32, b32, max32, add32_ovf);
  ASSERT_EQ(got_add32, static_cast<std::uint32_t>(want_add))
      << fmt.to_string() << " add32 a=" << a << " b=" << b;
  ASSERT_EQ(add32_ovf != 0, add_flags.overflow) << fmt.to_string() << " add32 flag";
  std::uint32_t mul32_ovf = 0;
  const std::uint32_t got_mul32 =
      mode == RoundingMode::kNearestEven && fmt.fraction_bits > 0
          ? fx_mul_raw_u32<RoundingMode::kNearestEven>(a32, b32, fmt.fraction_bits, half32,
                                                       max32, mul32_ovf)
          : fx_mul_raw_u32<RoundingMode::kTruncate>(a32, b32, fmt.fraction_bits, half32,
                                                    max32, mul32_ovf);
  ASSERT_EQ(got_mul32, static_cast<std::uint32_t>(want_mul))
      << fmt.to_string() << " mul32 a=" << a << " b=" << b
      << " mode=" << (mode == RoundingMode::kTruncate ? "trunc" : "nearest");
  ASSERT_EQ(mul32_ovf != 0, mul_flags.overflow) << fmt.to_string() << " mul32 flag";
  ASSERT_EQ(fx_max_raw_u32(a32, b32), static_cast<std::uint32_t>(fx_max_raw(a, b)));
}

TEST(FixedPoint, NarrowWordKernelsExhaustiveAtSmallWidths) {
  // Every (a, b) raw pair of a handful of tiny formats, both rounding
  // modes — including F == 0 (pure integer, the truncate-instantiation
  // special case) and I == 0 (everything near saturation).
  for (const FixedFormat fmt :
       {FixedFormat{1, 3}, FixedFormat{0, 4}, FixedFormat{4, 0}, FixedFormat{2, 2}}) {
    const std::uint64_t max_raw = static_cast<std::uint64_t>(fmt.max_raw());
    for (const auto mode : {RoundingMode::kNearestEven, RoundingMode::kTruncate}) {
      for (std::uint64_t a = 0; a <= max_raw; ++a) {
        for (std::uint64_t b = 0; b <= max_raw; ++b) {
          expect_word_kernel_parity(fmt, mode, a, b);
        }
      }
    }
  }
}

TEST(FixedPoint, NarrowWordKernelsMatchWideAtBoundary) {
  // Randomised words at the widest narrow formats (29/30 total bits,
  // comfortable and saturating), plus the extreme corners — the regime
  // where the u64 product uses all 60 bits.
  Rng rng(59);
  for (const FixedFormat fmt :
       {FixedFormat{2, 27}, FixedFormat{2, 28}, FixedFormat{0, 30}, FixedFormat{30, 0}}) {
    const std::uint64_t max_raw = static_cast<std::uint64_t>(fmt.max_raw());
    for (const auto mode : {RoundingMode::kNearestEven, RoundingMode::kTruncate}) {
      for (const std::uint64_t corner : {std::uint64_t{0}, std::uint64_t{1}, max_raw - 1,
                                         max_raw}) {
        expect_word_kernel_parity(fmt, mode, corner, max_raw);
        expect_word_kernel_parity(fmt, mode, max_raw, corner);
      }
      for (int i = 0; i < 4000; ++i) {
        const std::uint64_t a =
            static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<int>(max_raw)));
        const std::uint64_t b =
            static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<int>(max_raw)));
        expect_word_kernel_parity(fmt, mode, a, b);
      }
    }
  }
}

}  // namespace
}  // namespace problp::lowprec
