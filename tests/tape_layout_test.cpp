// TapeLayout unit tests: the liveness/linear-scan slot allocator on
// hand-built tapes with known live ranges, plus structural invariants of the
// re-ordered schedule on compiler-grade circuits.  Value-level parity of the
// relayout datapaths is covered by tape_test.cpp's parity matrices; here we
// check the layout itself — dependency order, slot interference, pinned
// leaves, reuse — by direct simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ac/circuit.hpp"
#include "ac/kernel_schedule.hpp"
#include "ac/tape.hpp"
#include "ac/tape_layout.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"
#include "util/error.hpp"

namespace problp::ac {
namespace {

// Replays op_order over a simulated slot file: every operand must still be
// in its slot when consumed (no live value was overwritten), every child
// must be computed before its parent, and the root must survive to the end.
// This is the allocator's entire correctness contract, checked directly.
void expect_valid_layout(const CircuitTape& tape) {
  const TapeLayout& layout = tape.layout();
  const auto& slot_of = layout.slot_of();
  const auto& order = layout.op_order();
  ASSERT_EQ(slot_of.size(), tape.num_nodes());
  ASSERT_EQ(order.size(), tape.op_ids().size());
  ASSERT_EQ(layout.num_slots(), layout.stats().num_slots);
  ASSERT_LE(layout.num_slots(), tape.num_nodes());

  // op_order is a permutation of op_ids.
  {
    std::vector<NodeId> sorted_order(order.begin(), order.end());
    std::vector<NodeId> sorted_ops(tape.op_ids().begin(), tape.op_ids().end());
    std::sort(sorted_order.begin(), sorted_order.end());
    std::sort(sorted_ops.begin(), sorted_ops.end());
    EXPECT_EQ(sorted_order, sorted_ops);
  }

  // Leaves keep pinned slots [0, num_leaves) in id order.
  std::int32_t next_leaf_slot = 0;
  std::vector<bool> is_op(tape.num_nodes(), false);
  for (const NodeId id : tape.op_ids()) is_op[static_cast<std::size_t>(id)] = true;
  for (std::size_t i = 0; i < tape.num_nodes(); ++i) {
    if (!is_op[i]) EXPECT_EQ(slot_of[i], next_leaf_slot++) << "leaf " << i;
    ASSERT_GE(slot_of[i], 0);
    ASSERT_LT(static_cast<std::size_t>(slot_of[i]), layout.num_slots());
  }
  EXPECT_EQ(static_cast<std::size_t>(next_leaf_slot), layout.stats().num_leaves);

  // The simulation: slot s holds node `holder[s]` (or kInvalidNode).
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  std::vector<NodeId> holder(layout.num_slots(), kInvalidNode);
  for (std::size_t i = 0; i < tape.num_nodes(); ++i) {
    if (!is_op[i]) holder[static_cast<std::size_t>(slot_of[i])] = static_cast<NodeId>(i);
  }
  std::vector<bool> computed(tape.num_nodes(), false);
  for (const NodeId id : order) {
    const std::size_t i = static_cast<std::size_t>(id);
    for (std::int32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const NodeId c = children[static_cast<std::size_t>(k)];
      if (is_op[static_cast<std::size_t>(c)]) {
        ASSERT_TRUE(computed[static_cast<std::size_t>(c)])
            << "op " << id << " consumed op " << c << " before it was computed";
      }
      ASSERT_EQ(holder[static_cast<std::size_t>(slot_of[static_cast<std::size_t>(c)])], c)
          << "operand " << c << " of op " << id << " was overwritten in its slot";
      // The output slot never aliases an operand slot (__restrict contract).
      ASSERT_NE(slot_of[i], slot_of[static_cast<std::size_t>(c)]);
    }
    holder[static_cast<std::size_t>(slot_of[i])] = id;
    computed[i] = true;
  }
  EXPECT_EQ(holder[static_cast<std::size_t>(slot_of[static_cast<std::size_t>(tape.root())])],
            tape.root())
      << "root overwritten before the output gather";

  // Stats coherence.
  const TapeLayoutStats& stats = layout.stats();
  EXPECT_EQ(stats.num_nodes, tape.num_nodes());
  EXPECT_EQ(stats.num_leaves + stats.num_ops, stats.num_nodes);
  EXPECT_EQ(stats.max_live, stats.num_slots);
  EXPECT_EQ(stats.slots_saved, stats.num_nodes - stats.num_slots);
  std::size_t hist_total = 0;
  for (const std::size_t b : stats.fanin2_run_hist) hist_total += b;
  EXPECT_EQ(hist_total, stats.num_fanin2_runs);
}

TEST(TapeLayout, LongChainRunsInTwoPoolSlots) {
  // c_k = c_{k-1} + b: at any schedule point only the previous result and
  // the current one are live, so the operator pool must stay at exactly two
  // slots no matter how long the chain — the textbook case for the
  // linear-scan recycler (the identity layout would burn one row per op).
  for (const int len : {2, 3, 17, 200}) {
    Circuit c({2});
    const NodeId a = c.add_indicator(0, 0);
    const NodeId b = c.add_indicator(0, 1);
    NodeId acc = c.add_sum({a, b});
    for (int k = 1; k < len; ++k) acc = c.add_sum({acc, b});
    c.set_root(acc);
    const CircuitTape tape = CircuitTape::compile(c);
    expect_valid_layout(tape);
    EXPECT_EQ(tape.layout().num_slots(), tape.layout().stats().num_leaves + 2)
        << "chain length " << len;
  }
}

TEST(TapeLayout, DiamondHoldsBothArmsLive) {
  // root = (a*b) + (a+b): both arms are live when the join executes, and the
  // join's output cannot reuse either arm's slot (freed one position after
  // their last use), so the pool is exactly three.
  Circuit c({2});
  const NodeId a = c.add_indicator(0, 0);
  const NodeId b = c.add_indicator(0, 1);
  const NodeId prod = c.add_prod({a, b});
  const NodeId sum = c.add_sum({a, b});
  c.set_root(c.add_sum({prod, sum}));
  const CircuitTape tape = CircuitTape::compile(c);
  expect_valid_layout(tape);
  EXPECT_EQ(tape.layout().num_slots(), tape.layout().stats().num_leaves + 3);
}

TEST(TapeLayout, MaxChainsRecycleLikeSums) {
  // MAX ops flow through the same allocator and the same fanin-2 classing;
  // a max-reduction chain reuses slots exactly like the sum chain, and the
  // layout-aware kernel schedule emits it as kMax2 runs.
  Circuit c({4});
  const NodeId i0 = c.add_indicator(0, 0);
  const NodeId i1 = c.add_indicator(0, 1);
  const NodeId i2 = c.add_indicator(0, 2);
  const NodeId i3 = c.add_indicator(0, 3);
  NodeId acc = c.add_max({i0, i1});
  acc = c.add_max({acc, i2});
  acc = c.add_max({acc, i3});
  for (int k = 0; k < 40; ++k) acc = c.add_max({acc, i0});
  c.set_root(acc);
  const CircuitTape tape = CircuitTape::compile(c);
  expect_valid_layout(tape);
  EXPECT_EQ(tape.layout().num_slots(), tape.layout().stats().num_leaves + 2);
  const KernelSchedule schedule = KernelSchedule::compile(tape, tape.layout());
  ASSERT_FALSE(schedule.segments().empty());
  for (const KernelSegment& seg : schedule.segments()) {
    EXPECT_EQ(seg.kind, KernelSegment::Kind::kMax2);
  }
  EXPECT_EQ(schedule.num_rows(), tape.layout().num_slots());
}

TEST(TapeLayout, EmptyChildOperatorsNeverReachTheLayout) {
  // The structural invariant the liveness pass leans on (every operator has
  // >= 1 children) is enforced upstream: the circuit builder rejects
  // empty-child operators outright, so no tape — and hence no layout — can
  // ever see one.
  Circuit c({2});
  EXPECT_THROW(c.add_sum({}), InvalidArgument);
  EXPECT_THROW(c.add_prod({}), InvalidArgument);
  EXPECT_THROW(c.add_max({}), InvalidArgument);
}

TEST(TapeLayout, UnreachableOpsStillScheduledAndAllocated) {
  // Ops the root never reaches still execute in the generic engines (their
  // sticky flags are observable), so the layout must schedule and slot them
  // too — with trailing DFS priorities, after the reachable circuit.
  Circuit c({2});
  const NodeId a = c.add_indicator(0, 0);
  const NodeId b = c.add_indicator(0, 1);
  const NodeId reachable = c.add_sum({a, b});
  c.add_prod({a, b});  // dead: no parent, not the root
  c.add_sum({a, a});   // dead
  c.set_root(reachable);
  const CircuitTape tape = CircuitTape::compile(c);
  expect_valid_layout(tape);
  EXPECT_EQ(tape.layout().op_order().size(), 3u);
}

TEST(TapeLayout, SimulatedInterferenceOnCompilerCircuits) {
  // The full contract on real shapes: random mixed-fanin circuits (and
  // their binarised forms), VE output, and a naive-Bayes compilation.
  Rng rng(61);
  std::vector<Circuit> circuits;
  for (int i = 0; i < 6; ++i) {
    test::RandomCircuitSpec spec;
    spec.num_operators = 30 + 20 * i;
    spec.max_fanin = 2 + (i % 4);
    circuits.push_back(test::make_random_circuit(spec, rng));
    circuits.push_back(binarize(circuits.back()).circuit);
  }
  {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 8;
    circuits.push_back(compile::compile_network(bn::make_random_network(spec, rng)));
  }
  {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 9;
    spec.max_parents = 3;
    spec.edge_probability = 0.3;
    circuits.push_back(compile::compile_network(bn::make_random_network(spec, rng)));
  }
  for (const Circuit& circuit : circuits) {
    expect_valid_layout(CircuitTape::compile(circuit));
  }

  // VE output has a small live frontier: the relayout must actually save
  // slots there, not merely not crash.
  const CircuitTape ve_tape = CircuitTape::compile(circuits.back());
  EXPECT_LT(ve_tape.layout().num_slots(), ve_tape.num_nodes() / 2);
  EXPECT_GT(ve_tape.layout().stats().slots_saved, 0u);
}

}  // namespace
}  // namespace problp::ac
