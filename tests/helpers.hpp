// Shared fixtures for the ProbLP test suite: brute-force inference oracles,
// random circuit generation, and assignment enumeration used by the
// property-style tests.
#pragma once

#include <optional>
#include <vector>

#include "ac/circuit.hpp"
#include "ac/evaluator.hpp"
#include "bn/network.hpp"
#include "util/rng.hpp"

namespace problp::test {

/// Pr(e) by brute-force enumeration of all joint assignments (exponential;
/// keep networks small).
double brute_force_probability(const bn::BayesianNetwork& network, const bn::Evidence& evidence);

/// max_x Pr(x, e) by brute force.
double brute_force_mpe(const bn::BayesianNetwork& network, const bn::Evidence& evidence);

/// All partial assignments over `cardinalities` where each variable is
/// either unobserved or set to a state — exhaustive query enumeration for
/// small circuits ((card+1)^n entries).
std::vector<ac::PartialAssignment> all_partial_assignments(const std::vector<int>& cardinalities);

/// All *full* assignments.
std::vector<ac::PartialAssignment> all_full_assignments(const std::vector<int>& cardinalities);

struct RandomCircuitSpec {
  int num_variables = 3;
  int max_cardinality = 3;
  int num_operators = 20;
  double p_sum = 0.5;          ///< operator kind mix (rest are products)
  int max_fanin = 3;           ///< operators draw 2..max_fanin children
  double max_parameter = 1.0;  ///< parameter leaves are uniform in (0, max]
};

/// A random (syntactically arbitrary) circuit: not a network polynomial,
/// just a well-formed AC — exercises analyses on shapes compilers would
/// never emit.
ac::Circuit make_random_circuit(const RandomCircuitSpec& spec, Rng& rng);

/// Random evidence over a network's variables: each variable observed with
/// probability `p_observe`.
bn::Evidence random_evidence(const bn::BayesianNetwork& network, double p_observe, Rng& rng);

}  // namespace problp::test
