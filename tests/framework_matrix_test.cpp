// Parameterised sweep over the full (query type x tolerance kind x
// tolerance) matrix on one benchmark: every combination must produce a
// consistent report, and any feasible selection must empirically satisfy
// its contract on the test set.
#include <cmath>

#include <gtest/gtest.h>

#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "helpers.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

struct MatrixCase {
  QueryType query;
  ToleranceKind kind;
  double tolerance;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(errormodel::to_string(info.param.query)) + "_" +
         errormodel::to_string(info.param.kind) + "_tol" +
         std::to_string(static_cast<int>(-std::log10(info.param.tolerance)));
}

class FrameworkMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  static const datasets::Benchmark& benchmark() {
    static const datasets::Benchmark* b =
        new datasets::Benchmark(datasets::make_uiwads_benchmark(1));
    return *b;
  }
  static const Framework& framework() {
    static const Framework* f = new Framework(benchmark().circuit);
    return *f;
  }
};

TEST_P(FrameworkMatrix, ReportConsistentAndContractHolds) {
  const MatrixCase param = GetParam();
  const QuerySpec spec{param.query, param.kind, param.tolerance};
  const AnalysisReport report = framework().analyze(spec);

  // Structural consistency of the report.
  if (report.fixed_plan.feasible) {
    EXPECT_LE(report.fixed_plan.predicted_bound, spec.tolerance);
    EXPECT_GE(report.fixed_plan.format.integer_bits, 1);
    EXPECT_TRUE(std::isfinite(report.fixed_energy_nj));
  } else {
    EXPECT_TRUE(std::isinf(report.fixed_energy_nj));
  }
  if (report.float_plan.feasible) {
    EXPECT_LE(report.float_plan.predicted_bound, spec.tolerance);
    EXPECT_TRUE(std::isfinite(report.float_energy_nj));
  }
  // Fixed point can never certify conditional + relative (§3.2.2).
  if (param.query == QueryType::kConditional && param.kind == ToleranceKind::kRelative) {
    EXPECT_FALSE(report.fixed_plan.feasible);
  }
  if (!report.any_feasible) return;

  // Selection really is the energy argmin over feasible plans.
  const double selected_energy = report.selected.kind == Representation::Kind::kFixed
                                     ? report.fixed_energy_nj
                                     : report.float_energy_nj;
  EXPECT_LE(selected_energy, report.fixed_energy_nj);
  EXPECT_LE(selected_energy, report.float_energy_nj);

  // Empirical contract on the test set.
  std::vector<ac::PartialAssignment> assignments;
  for (std::size_t i = 0; i < benchmark().test_evidence.size() && i < 150; ++i) {
    assignments.push_back(compile::to_assignment(benchmark().test_evidence[i]));
  }
  ObservedError observed;
  switch (param.query) {
    case QueryType::kMarginal:
      observed = measure_marginal_error(framework().binary_circuit(), assignments,
                                        report.selected);
      break;
    case QueryType::kConditional:
      observed = measure_conditional_error(framework().binary_circuit(),
                                           benchmark().query_var, assignments, report.selected);
      break;
    case QueryType::kMpe:
      observed = measure_mpe_error(framework().binary_max_circuit(), assignments,
                                   report.selected);
      break;
  }
  EXPECT_FALSE(observed.flags.any());
  EXPECT_LE(observed.max_of(param.kind), spec.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, FrameworkMatrix,
    ::testing::Values(MatrixCase{QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-2},
                      MatrixCase{QueryType::kMarginal, ToleranceKind::kAbsolute, 1e-4},
                      MatrixCase{QueryType::kMarginal, ToleranceKind::kRelative, 1e-2},
                      MatrixCase{QueryType::kMarginal, ToleranceKind::kRelative, 1e-4},
                      MatrixCase{QueryType::kConditional, ToleranceKind::kAbsolute, 1e-2},
                      MatrixCase{QueryType::kConditional, ToleranceKind::kAbsolute, 1e-4},
                      MatrixCase{QueryType::kConditional, ToleranceKind::kRelative, 1e-2},
                      MatrixCase{QueryType::kConditional, ToleranceKind::kRelative, 1e-4},
                      MatrixCase{QueryType::kMpe, ToleranceKind::kAbsolute, 1e-2},
                      MatrixCase{QueryType::kMpe, ToleranceKind::kAbsolute, 1e-4},
                      MatrixCase{QueryType::kMpe, ToleranceKind::kRelative, 1e-2},
                      MatrixCase{QueryType::kMpe, ToleranceKind::kRelative, 1e-4}),
    case_name);

}  // namespace
}  // namespace problp
