#include <gtest/gtest.h>

#include "bn/alarm.hpp"
#include "bn/random_network.hpp"
#include "bn/variable_elimination.hpp"
#include "compile/naive_bayes_compiler.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/naive_bayes.hpp"
#include "helpers.hpp"

namespace problp::compile {
namespace {

using bn::BayesianNetwork;
using bn::EliminationHeuristic;
using bn::Evidence;

// The key compiler property: for every evidence, the compiled circuit with
// indicators set per the evidence evaluates to Pr(e).
void expect_circuit_matches_ve(const BayesianNetwork& network, const ac::Circuit& circuit,
                               int num_trials, Rng& rng) {
  const bn::VariableElimination ve(network);
  for (int i = 0; i < num_trials; ++i) {
    const Evidence e = test::random_evidence(network, 0.5, rng);
    const double expected = ve.probability_of_evidence(e);
    const double actual = ac::evaluate(circuit, to_assignment(e));
    EXPECT_NEAR(actual, expected, 1e-10 * (1.0 + expected));
  }
}

TEST(VeCompiler, MatchesVariableEliminationOnRandomNetworks) {
  Rng rng(81);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 8;
    spec.max_parents = 3;
    Rng net_rng(seed);
    const BayesianNetwork network = make_random_network(spec, net_rng);
    const ac::Circuit circuit = compile_network(network);
    expect_circuit_matches_ve(network, circuit, 15, rng);
  }
}

TEST(VeCompiler, AllHeuristicsProduceEquivalentCircuits) {
  Rng net_rng(82);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 9;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  Rng rng(83);
  for (auto h : {EliminationHeuristic::kMinFill, EliminationHeuristic::kMinDegree,
                 EliminationHeuristic::kTopological}) {
    CompileOptions options;
    options.heuristic = h;
    const ac::Circuit circuit = compile_network(network, options);
    expect_circuit_matches_ve(network, circuit, 10, rng);
  }
}

TEST(VeCompiler, RootSumsToOneWithNoEvidence) {
  Rng net_rng(84);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 10;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  const ac::Circuit circuit = compile_network(network);
  EXPECT_NEAR(ac::evaluate(circuit, ac::all_indicators_one(circuit)), 1.0, 1e-10);
}

TEST(VeCompiler, AlarmCompiles) {
  const BayesianNetwork alarm = bn::make_alarm_network();
  const ac::Circuit circuit = compile_network(alarm);
  const ac::CircuitStats stats = circuit.stats();
  EXPECT_GT(stats.num_sums, 100u);   // a real multiply-connected AC
  EXPECT_GT(stats.num_prods, 300u);
  EXPECT_NEAR(ac::evaluate(circuit, ac::all_indicators_one(circuit)), 1.0, 1e-9);
}

TEST(VeCompiler, AlarmSpotChecksAgainstVe) {
  const BayesianNetwork alarm = bn::make_alarm_network();
  const ac::Circuit circuit = compile_network(alarm);
  const bn::VariableElimination ve(alarm);
  Rng rng(85);
  for (int i = 0; i < 5; ++i) {
    const Evidence e = test::random_evidence(alarm, 0.3, rng);
    const double expected = ve.probability_of_evidence(e);
    EXPECT_NEAR(ac::evaluate(circuit, to_assignment(e)), expected, 1e-9 * (1.0 + expected));
  }
}

TEST(NaiveBayesCompiler, StructureCheck) {
  BayesianNetwork nb;
  const int cls = nb.add_variable("class", 2);
  const int f0 = nb.add_variable("f0", 2);
  nb.set_cpt(cls, {}, {0.5, 0.5});
  nb.set_cpt(f0, {cls}, {0.9, 0.1, 0.3, 0.7});
  EXPECT_TRUE(is_naive_bayes(nb, cls));
  EXPECT_FALSE(is_naive_bayes(nb, f0));
  EXPECT_FALSE(is_naive_bayes(nb, 7));

  BayesianNetwork chain;
  const int a = chain.add_variable("a", 2);
  const int b = chain.add_variable("b", 2);
  const int c = chain.add_variable("c", 2);
  chain.set_cpt(a, {}, {0.5, 0.5});
  chain.set_cpt(b, {a}, {0.5, 0.5, 0.5, 0.5});
  chain.set_cpt(c, {b}, {0.5, 0.5, 0.5, 0.5});
  EXPECT_FALSE(is_naive_bayes(chain, a));
  EXPECT_THROW(compile_naive_bayes(chain, a), InvalidArgument);
}

TEST(NaiveBayesCompiler, MatchesVeCompiler) {
  // Learn a small NB model, compile both ways, compare on every evidence.
  Rng rng(86);
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int y = rng.uniform_int(0, 2);
    labels.push_back(y);
    rows.push_back({rng.uniform_int(0, 2), rng.uniform_int(0, 1), rng.uniform_int(0, 2)});
  }
  const BayesianNetwork nb = datasets::learn_naive_bayes(rows, labels, 3, 3);
  const ac::Circuit direct = compile_naive_bayes(nb, 0);
  const ac::Circuit generic = compile_network(nb);
  int checked = 0;
  for (const auto& a : test::all_partial_assignments(direct.cardinalities())) {
    const double d = ac::evaluate(direct, a);
    const double g = ac::evaluate(generic, a);
    EXPECT_NEAR(d, g, 1e-12 * (1.0 + d));
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(NaiveBayesCompiler, CircuitShape) {
  BayesianNetwork nb;
  const int cls = nb.add_variable("class", 3);
  nb.set_cpt(cls, {}, {0.2, 0.3, 0.5});
  for (int f = 0; f < 4; ++f) {
    const int v = nb.add_variable("f" + std::to_string(f), 2);
    nb.set_cpt(v, {cls}, {0.1, 0.9, 0.5, 0.5, 0.8, 0.2});
  }
  const ac::Circuit circuit = compile_naive_bayes(nb, cls);
  const ac::CircuitStats s = circuit.stats();
  // Per class: 4 feature sums; plus the root sum.
  EXPECT_EQ(s.num_sums, 3u * 4u + 1u);
  EXPECT_EQ(s.num_indicators, 3u + 4u * 2u);
  EXPECT_NEAR(ac::evaluate(circuit, ac::all_indicators_one(circuit)), 1.0, 1e-12);
}

TEST(Compiler, MarginalAndConditionalQueriesViaIndicators) {
  // One compiled circuit answers joint marginals and conditionals (§2).
  Rng net_rng(87);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 6;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  const ac::Circuit circuit = compile_network(network);
  const bn::VariableElimination ve(network);
  Rng rng(88);
  for (int i = 0; i < 10; ++i) {
    Evidence e = test::random_evidence(network, 0.4, rng);
    e[0] = std::nullopt;  // keep the query variable free
    const double pe = ve.probability_of_evidence(e);
    if (pe <= 0.0) continue;
    for (int q = 0; q < network.cardinality(0); ++q) {
      Evidence qe = e;
      qe[0] = q;
      const double joint = ac::evaluate(circuit, to_assignment(qe));
      EXPECT_NEAR(joint / ac::evaluate(circuit, to_assignment(e)), ve.conditional(0, q, e),
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace problp::compile
