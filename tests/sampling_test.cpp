#include <gtest/gtest.h>

#include "bn/sampling.hpp"
#include "bn/variable_elimination.hpp"

namespace problp::bn {
namespace {

BayesianNetwork make_chain() {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  const int b = network.add_variable("B", 2);
  network.set_cpt(a, {}, {0.3, 0.7});
  network.set_cpt(b, {a}, {0.9, 0.1, 0.2, 0.8});
  return network;
}

TEST(Sampling, DeterministicPerSeed) {
  const BayesianNetwork network = make_chain();
  Rng r1(5);
  Rng r2(5);
  const auto d1 = sample_dataset(network, 50, r1);
  const auto d2 = sample_dataset(network, 50, r2);
  EXPECT_EQ(d1, d2);
}

TEST(Sampling, StatesInRange) {
  const BayesianNetwork network = make_chain();
  Rng rng(6);
  for (const auto& a : sample_dataset(network, 200, rng)) {
    ASSERT_EQ(a.size(), 2u);
    for (std::size_t v = 0; v < a.size(); ++v) {
      EXPECT_GE(a[v], 0);
      EXPECT_LT(a[v], network.cardinality(static_cast<int>(v)));
    }
  }
}

TEST(Sampling, FrequenciesMatchMarginals) {
  const BayesianNetwork network = make_chain();
  const VariableElimination ve(network);
  Evidence none = network.empty_evidence();
  Evidence b_obs = network.empty_evidence();
  b_obs[1] = 0;
  const double pb = ve.probability_of_evidence(b_obs);  // P(B = 0)

  Rng rng(7);
  const int n = 50000;
  int count_a0 = 0;
  int count_b0 = 0;
  for (const auto& a : sample_dataset(network, n, rng)) {
    count_a0 += (a[0] == 0);
    count_b0 += (a[1] == 0);
  }
  EXPECT_NEAR(static_cast<double>(count_a0) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(count_b0) / n, pb, 0.01);
}

TEST(Sampling, EvidenceFromAssignment) {
  const BayesianNetwork network = make_chain();
  const Assignment a = {1, 0};
  const Evidence e = evidence_from_assignment(network, a, {1});
  EXPECT_FALSE(e[0].has_value());
  ASSERT_TRUE(e[1].has_value());
  EXPECT_EQ(*e[1], 0);
  EXPECT_THROW(evidence_from_assignment(network, a, {5}), InvalidArgument);
}

}  // namespace
}  // namespace problp::bn
