#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "lowprec/soft_float.hpp"
#include "util/rng.hpp"

namespace problp::lowprec {
namespace {

TEST(FloatFormat, Accessors) {
  const FloatFormat fmt{8, 23};  // IEEE-single sized
  EXPECT_EQ(fmt.bias(), 127);
  EXPECT_EQ(fmt.min_exponent(), -126);
  EXPECT_EQ(fmt.max_exponent(), 128);  // no encodings reserved for inf/NaN
  EXPECT_DOUBLE_EQ(fmt.epsilon(), std::ldexp(1.0, -24));
  EXPECT_DOUBLE_EQ(fmt.min_normal(), std::ldexp(1.0, -126));
}

TEST(FloatFormat, Validation) {
  EXPECT_NO_THROW((FloatFormat{2, 1}.validate()));
  EXPECT_NO_THROW((FloatFormat{28, 60}.validate()));
  EXPECT_THROW((FloatFormat{1, 8}.validate()), InvalidArgument);
  EXPECT_THROW((FloatFormat{8, 0}.validate()), InvalidArgument);
  EXPECT_THROW((FloatFormat{8, 61}.validate()), InvalidArgument);
}

TEST(SoftFloat, ZeroAndOneExact) {
  for (int m : {1, 8, 23, 52}) {
    const FloatFormat fmt{8, m};
    ArithFlags flags;
    EXPECT_DOUBLE_EQ(SoftFloat::from_double(0.0, fmt, flags).to_double(), 0.0);
    EXPECT_DOUBLE_EQ(SoftFloat::from_double(1.0, fmt, flags).to_double(), 1.0);
    EXPECT_FALSE(flags.any());
  }
}

TEST(SoftFloat, ConversionRelativeErrorWithinEpsilon) {
  // Eq. 6: |Δa / a| <= 2^-(M+1).
  Rng rng(21);
  for (int m : {2, 5, 10, 20, 40}) {
    const FloatFormat fmt{11, m};
    for (int i = 0; i < 500; ++i) {
      const double v = std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-40, 40));
      ArithFlags flags;
      const SoftFloat x = SoftFloat::from_double(v, fmt, flags);
      ASSERT_FALSE(flags.any());
      EXPECT_LE(std::abs(x.to_double() - v) / v, fmt.epsilon()) << "M=" << m << " v=" << v;
    }
  }
}

TEST(SoftFloat, ConversionExactWhenRepresentable) {
  const FloatFormat fmt{8, 23};
  Rng rng(22);
  for (int i = 0; i < 500; ++i) {
    const float f = static_cast<float>(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-30, 30)));
    ArithFlags flags;
    const SoftFloat x = SoftFloat::from_double(static_cast<double>(f), fmt, flags);
    EXPECT_EQ(x.to_double(), static_cast<double>(f));
  }
}

TEST(SoftFloat, MulMatchesNativeSinglePrecision) {
  // Our E=8,M=23 format rounds exactly like IEEE binary32 for in-range
  // positive operands, so fl_mul must agree bit-for-bit with float*float.
  const FloatFormat fmt{8, 23};
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-20, 20)));
    const float b = static_cast<float>(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-20, 20)));
    ArithFlags flags;
    const SoftFloat sa = SoftFloat::from_double(a, fmt, flags);
    const SoftFloat sb = SoftFloat::from_double(b, fmt, flags);
    const SoftFloat p = fl_mul(sa, sb, flags);
    ASSERT_FALSE(flags.any());
    EXPECT_EQ(p.to_double(), static_cast<double>(a * b)) << a << " * " << b;
  }
}

TEST(SoftFloat, AddMatchesNativeSinglePrecision) {
  const FloatFormat fmt{8, 23};
  Rng rng(24);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-20, 20)));
    const float b = static_cast<float>(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-20, 20)));
    ArithFlags flags;
    const SoftFloat sa = SoftFloat::from_double(a, fmt, flags);
    const SoftFloat sb = SoftFloat::from_double(b, fmt, flags);
    const SoftFloat s = fl_add(sa, sb, flags);
    ASSERT_FALSE(flags.any());
    EXPECT_EQ(s.to_double(), static_cast<double>(a + b)) << a << " + " << b;
  }
}

TEST(SoftFloat, MulMatchesNativeDoubleAtM52) {
  const FloatFormat fmt{11, 52};
  Rng rng(25);
  for (int i = 0; i < 1000; ++i) {
    const double a = std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-100, 100));
    const double b = std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-100, 100));
    ArithFlags flags;
    const SoftFloat p =
        fl_mul(SoftFloat::from_double(a, fmt, flags), SoftFloat::from_double(b, fmt, flags), flags);
    ASSERT_FALSE(flags.any());
    EXPECT_EQ(p.to_double(), a * b);
  }
}

TEST(SoftFloat, AddMatchesNativeDoubleAtM52) {
  const FloatFormat fmt{11, 52};
  Rng rng(26);
  for (int i = 0; i < 1000; ++i) {
    const double a = std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-60, 60));
    const double b = std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-60, 60));
    ArithFlags flags;
    const SoftFloat s =
        fl_add(SoftFloat::from_double(a, fmt, flags), SoftFloat::from_double(b, fmt, flags), flags);
    ASSERT_FALSE(flags.any());
    EXPECT_EQ(s.to_double(), a + b);
  }
}

TEST(SoftFloat, AddWithZero) {
  const FloatFormat fmt{8, 10};
  ArithFlags flags;
  const SoftFloat z(fmt);
  const SoftFloat x = SoftFloat::from_double(0.375, fmt, flags);
  EXPECT_EQ(fl_add(z, x, flags), x);
  EXPECT_EQ(fl_add(x, z, flags), x);
  EXPECT_TRUE(fl_mul(x, z, flags).is_zero());
}

TEST(SoftFloat, AddFarApartOperandsRoundsCorrectly) {
  // b far below a's ulp: sum rounds back to a (sticky handling).
  const FloatFormat fmt{11, 10};
  ArithFlags flags;
  const SoftFloat a = SoftFloat::from_double(1.0, fmt, flags);
  const SoftFloat b = SoftFloat::from_double(std::ldexp(1.0, -40), fmt, flags);
  EXPECT_EQ(fl_add(a, b, flags), a);
  // Exactly half an ulp above a: tie breaks to even -> stays at a.
  const SoftFloat half_ulp = SoftFloat::from_double(std::ldexp(1.0, -11), fmt, flags);
  EXPECT_DOUBLE_EQ(fl_add(a, half_ulp, flags).to_double(), 1.0);
  // Slightly more than half an ulp: rounds up.
  const SoftFloat more =
      SoftFloat::from_double(std::ldexp(1.0, -11) + std::ldexp(1.0, -14), fmt, flags);
  EXPECT_GT(fl_add(a, more, flags).to_double(), 1.0);
}

TEST(SoftFloat, OverflowSaturatesAndFlags) {
  const FloatFormat fmt{4, 4};  // emax = 8, max = (2 - 2^-4) * 256 = 496
  ArithFlags flags;
  const SoftFloat big = SoftFloat::from_double(400.0, fmt, flags);
  ASSERT_FALSE(flags.any());
  const SoftFloat p = fl_mul(big, big, flags);
  EXPECT_TRUE(flags.overflow);
  EXPECT_DOUBLE_EQ(p.to_double(), fmt.max_value());
}

TEST(SoftFloat, UnderflowFlushesToZeroAndFlags) {
  const FloatFormat fmt{4, 4};  // emin = -6, min normal = 2^-6
  ArithFlags flags;
  const SoftFloat small = SoftFloat::from_double(std::ldexp(1.0, -5), fmt, flags);
  ASSERT_FALSE(flags.any());
  const SoftFloat p = fl_mul(small, small, flags);
  EXPECT_TRUE(flags.underflow);
  EXPECT_TRUE(p.is_zero());
}

TEST(SoftFloat, ConversionUnderOverflow) {
  const FloatFormat fmt{4, 4};
  {
    ArithFlags flags;
    SoftFloat::from_double(1e9, fmt, flags);
    EXPECT_TRUE(flags.overflow);
  }
  {
    ArithFlags flags;
    const SoftFloat x = SoftFloat::from_double(1e-9, fmt, flags);
    EXPECT_TRUE(flags.underflow);
    EXPECT_TRUE(x.is_zero());
  }
}

TEST(SoftFloat, InvalidInputsFlagged) {
  const FloatFormat fmt{8, 8};
  ArithFlags flags;
  SoftFloat::from_double(-1.0, fmt, flags);
  EXPECT_TRUE(flags.invalid_input);
  flags = {};
  SoftFloat::from_double(std::numeric_limits<double>::quiet_NaN(), fmt, flags);
  EXPECT_TRUE(flags.invalid_input);
}

TEST(SoftFloat, CompareAndMinMax) {
  const FloatFormat fmt{8, 8};
  ArithFlags flags;
  const SoftFloat z(fmt);
  const SoftFloat a = SoftFloat::from_double(0.5, fmt, flags);
  const SoftFloat b = SoftFloat::from_double(0.501953125, fmt, flags);  // one ulp up at M=8
  EXPECT_TRUE(fl_less(z, a));
  EXPECT_FALSE(fl_less(a, z));
  EXPECT_TRUE(fl_less(a, b));
  EXPECT_EQ(fl_min(a, b), a);
  EXPECT_EQ(fl_max(a, b), b);
  EXPECT_EQ(fl_max(z, a), a);
}

TEST(SoftFloat, TruncationModeRoundsTowardZero) {
  const FloatFormat fmt{8, 4};
  ArithFlags flags;
  Rng rng(27);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.5, 1.0);
    const double b = rng.uniform(0.5, 1.0);
    const SoftFloat sa = SoftFloat::from_double(a, fmt, flags, RoundingMode::kTruncate);
    const SoftFloat sb = SoftFloat::from_double(b, fmt, flags, RoundingMode::kTruncate);
    const SoftFloat p = fl_mul(sa, sb, flags, RoundingMode::kTruncate);
    EXPECT_LE(p.to_double(), sa.to_double() * sb.to_double());
    // Truncation loses at most one ulp relative to the exact product.
    EXPECT_GT(p.to_double(), sa.to_double() * sb.to_double() * (1.0 - 2.0 * fmt.epsilon()));
  }
}

// Per-op relative error property across mantissa widths (eqs. 9, 11).
class FloatFormatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FloatFormatSweep, SingleOpRelativeError) {
  const int m = GetParam();
  const FloatFormat fmt{11, m};
  Rng rng(200 + m);
  for (int i = 0; i < 300; ++i) {
    ArithFlags flags;
    const SoftFloat a =
        SoftFloat::from_double(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-8, 8)), fmt, flags);
    const SoftFloat b =
        SoftFloat::from_double(std::ldexp(rng.uniform(0.5, 1.0), rng.uniform_int(-8, 8)), fmt, flags);
    const double ea = a.to_double();
    const double eb = b.to_double();
    const SoftFloat s = fl_add(a, b, flags);
    const SoftFloat p = fl_mul(a, b, flags);
    ASSERT_FALSE(flags.any());
    EXPECT_LE(std::abs(s.to_double() - (ea + eb)) / (ea + eb), fmt.epsilon());
    EXPECT_LE(std::abs(p.to_double() - ea * eb) / (ea * eb), fmt.epsilon());
  }
}

INSTANTIATE_TEST_SUITE_P(Mantissas, FloatFormatSweep,
                         ::testing::Values(2, 4, 8, 13, 16, 23, 32, 40, 52));

// ---- decomposed lane-kernel parity ------------------------------------------
// The branch-free (exp, sig) lane kernels must replay the wide FloatRaw
// kernels bit for bit — values AND flag verdicts — at every eligible width.
// Exhaustive at small widths (every representable pair), randomized plus
// corners at the u32/u64 lane-width boundaries.

/// Runs add/mul/max through the u32 or u64 lane kernels and checks each
/// result word and sticky mask against the wide kernel's result and flags.
template <class Sig, RoundingMode Mode>
void expect_lane_kernel_parity_mode(const FloatFormat& fmt, const FloatRaw& a,
                                    const FloatRaw& b) {
  const int m = fmt.mantissa_bits;
  const auto ea = a.exp;
  const auto eb = b.exp;
  const Sig sa = static_cast<Sig>(a.sig);
  const Sig sb = static_cast<Sig>(b.sig);
  constexpr bool kU32 = sizeof(Sig) == sizeof(std::uint32_t);

  ArithFlags wf;
  const FloatRaw wadd = fl_add_raw(a, b, fmt, wf, Mode);
  std::int32_t re = 0;
  Sig rs = 0;
  Sig ovf = 0;
  Sig und = 0;
  if constexpr (kU32) {
    fl_add_raw_u32<Mode>(ea, sa, eb, sb, m, fmt.max_exponent(), re, rs, ovf);
  } else {
    fl_add_raw_u64<Mode>(ea, sa, eb, sb, m, fmt.max_exponent(), re, rs, ovf);
  }
  EXPECT_TRUE((FloatRaw{re, rs} == wadd))
      << "add (" << ea << "," << sa << ") + (" << eb << "," << sb << ") M=" << m;
  EXPECT_EQ(ovf != 0, wf.overflow) << "add ovf mask";
  EXPECT_FALSE(wf.underflow);  // adds cannot underflow

  wf = {};
  const FloatRaw wmul = fl_mul_raw(a, b, fmt, wf, Mode);
  ovf = 0;
  if constexpr (kU32) {
    fl_mul_raw_u32<Mode>(ea, sa, eb, sb, m, fmt.min_exponent(), fmt.max_exponent(), re, rs,
                         ovf, und);
  } else {
    fl_mul_raw_u64<Mode>(ea, sa, eb, sb, m, fmt.min_exponent(), fmt.max_exponent(), re, rs,
                         ovf, und);
  }
  EXPECT_TRUE((FloatRaw{re, rs} == wmul))
      << "mul (" << ea << "," << sa << ") * (" << eb << "," << sb << ") M=" << m;
  EXPECT_EQ(ovf != 0, wf.overflow) << "mul ovf mask";
  EXPECT_EQ(und != 0, wf.underflow) << "mul und mask";

  const FloatRaw wmax = fl_max_raw(a, b);
  if constexpr (kU32) {
    fl_max_raw_u32(ea, sa, eb, sb, re, rs);
  } else {
    fl_max_raw_u64(ea, sa, eb, sb, re, rs);
  }
  EXPECT_TRUE((FloatRaw{re, rs} == wmax)) << "max";
}

template <class Sig>
void expect_lane_kernel_parity(const FloatFormat& fmt, const FloatRaw& a, const FloatRaw& b) {
  expect_lane_kernel_parity_mode<Sig, RoundingMode::kNearestEven>(fmt, a, b);
  expect_lane_kernel_parity_mode<Sig, RoundingMode::kTruncate>(fmt, a, b);
}

TEST(SoftFloatLanes, Classification) {
  EXPECT_TRUE((FloatFormat{8, 23}.fits_narrow_word()));
  EXPECT_TRUE((FloatFormat{8, 27}.fits_narrow_word()));
  EXPECT_FALSE((FloatFormat{8, 28}.fits_narrow_word()));
  EXPECT_TRUE((FloatFormat{8, 28}.fits_lane_word()));
  EXPECT_TRUE((FloatFormat{8, 31}.fits_lane_word()));
  EXPECT_FALSE((FloatFormat{8, 32}.fits_lane_word()));
  EXPECT_FALSE((FloatFormat{11, 52}.fits_lane_word()));
}

TEST(SoftFloatLanes, ExhaustiveParityAtSmallWidths) {
  // Every representable (a, b) pair of each format, both rounding modes,
  // both lane widths: zero plus all (exp, sig) with exp in [emin, emax] and
  // sig in [2^M, 2^(M+1)).
  for (const FloatFormat fmt : {FloatFormat{2, 1}, FloatFormat{3, 2}, FloatFormat{2, 3}}) {
    std::vector<FloatRaw> values{FloatRaw{}};
    const std::uint64_t lo = std::uint64_t{1} << fmt.mantissa_bits;
    for (int e = fmt.min_exponent(); e <= fmt.max_exponent(); ++e) {
      for (std::uint64_t s = lo; s < 2 * lo; ++s) values.push_back(FloatRaw{e, s});
    }
    for (const FloatRaw& a : values) {
      for (const FloatRaw& b : values) {
        expect_lane_kernel_parity<std::uint32_t>(fmt, a, b);
        expect_lane_kernel_parity<std::uint64_t>(fmt, a, b);
      }
    }
  }
}

TEST(SoftFloatLanes, RandomizedParityAtLaneBoundaries) {
  // M = 27 is the last u32-significand width (the guard-extended sum carries
  // M+5 = 32 bits), M = 31 the last u64 one (the exact product carries
  // 2M+2 = 64); M = 28 straddles the cutover.  Random in-range pairs plus
  // exponent gaps around the sticky threshold d = M+4 and saturation /
  // flush corners at the exponent rails.
  Rng rng(91);
  for (const int m : {27, 28, 31}) {
    for (const int e : {4, 8}) {
      const FloatFormat fmt{e, m};
      const std::uint64_t lo = std::uint64_t{1} << m;
      const auto random_raw = [&](int emin, int emax) {
        // lo - 1 <= INT_MAX for every M <= 31, so one inclusive draw covers
        // the full significand range.
        const auto frac = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<int>(lo - 1)));
        return FloatRaw{rng.uniform_int(emin, emax), lo + frac};
      };
      std::vector<FloatRaw> corners{
          FloatRaw{},
          FloatRaw{fmt.min_exponent(), lo},
          FloatRaw{fmt.min_exponent(), 2 * lo - 1},
          FloatRaw{fmt.max_exponent(), lo},
          FloatRaw{fmt.max_exponent(), 2 * lo - 1},
          FloatRaw{0, lo},
          FloatRaw{0, 2 * lo - 1},
          FloatRaw{1, lo + 1},
      };
      for (const FloatRaw& a : corners) {
        for (const FloatRaw& b : corners) {
          if (m <= FloatFormat::kNarrowSigMantissaBits) {
            expect_lane_kernel_parity<std::uint32_t>(fmt, a, b);
          }
          expect_lane_kernel_parity<std::uint64_t>(fmt, a, b);
        }
      }
      for (int i = 0; i < 400; ++i) {
        const FloatRaw a = random_raw(fmt.min_exponent(), fmt.max_exponent());
        // Half the pairs probe the alignment/sticky ladder around d = M+4.
        FloatRaw b = random_raw(fmt.min_exponent(), fmt.max_exponent());
        if (i % 2 == 0) {
          const int d = rng.uniform_int(m + 2, m + 6);
          b.exp = std::max(fmt.min_exponent(), a.exp - d);
        }
        if (m <= FloatFormat::kNarrowSigMantissaBits) {
          expect_lane_kernel_parity<std::uint32_t>(fmt, a, b);
        }
        expect_lane_kernel_parity<std::uint64_t>(fmt, a, b);
      }
    }
  }
}

}  // namespace
}  // namespace problp::lowprec
