// The overload-safe async serving front-end (src/serve/).
//
// Contract under test (ISSUE 10 acceptance): the bounded submission queue
// never grows past capacity (reject vs block-with-timeout, both typed);
// per-request deadlines produce typed timeouts whether they expire before
// or after the flush — never a silent evaluation; the overload controller
// degrades admissions onto the configured rung (responses carry the rung's
// format and analytic error bound) and sheds past it; shutdown drains
// deterministically with every request completing exactly once — under
// injected enqueue/flush/worker faults and an 8-producer stress race too.
//
// All deadline behaviour runs against util::ManualClock: time moves only
// when a test calls advance(), so there is not a single sleep-and-hope in
// this file.  (The spin_until helper waits on *state*, with a very generous
// real-time cap purely as a hang breaker.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bn/random_network.hpp"
#include "compile/ve_compiler.hpp"
#include "runtime/session.hpp"
#include "serve/server.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace problp {
namespace {

using errormodel::QueryType;
using runtime::CompiledModel;
using runtime::InferenceSession;
using runtime::SessionOptions;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;
using serve::StatsSnapshot;
using serve::Status;
using serve::Tier;
using util::FaultInjector;
using util::ManualClock;

using ms = std::chrono::milliseconds;

std::shared_ptr<const CompiledModel> test_model(std::uint64_t seed = 7, int num_variables = 6) {
  Rng rng(seed);
  bn::RandomNetworkSpec spec;
  spec.num_variables = num_variables;
  return CompiledModel::compile(compile::compile_network(bn::make_random_network(spec, rng)));
}

/// Random evidence over the model's variables; `keep_free` is always left
/// unobserved so the same evidence works for conditional queries.
std::vector<ac::PartialAssignment> sampled_evidence(const CompiledModel& model, std::size_t count,
                                                    std::uint64_t seed, int keep_free = 0) {
  Rng rng(seed);
  const std::vector<int>& cards = model.cardinalities();
  std::vector<ac::PartialAssignment> out;
  for (std::size_t i = 0; i < count; ++i) {
    ac::PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (static_cast<int>(v) == keep_free) continue;
      if (rng.coin(0.4)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

Request marginal_request(ac::PartialAssignment evidence) {
  Request r;
  r.query = QueryType::kMarginal;
  r.evidence = std::move(evidence);
  return r;
}

/// One-way latch for holding a worker inside test_worker_hook.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Spins (yielding) until `pred` holds.  The predicate is driven by server
/// threads reacting to state we already set up, so this terminates promptly;
/// the 60 s cap only breaks an outright hang into a test failure.
bool spin_until(const std::function<bool()>& pred) {
  const auto cap = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < cap) {
    if (pred()) return true;
    std::this_thread::yield();
  }
  return pred();
}

void expect_accounting_identity(const StatsSnapshot& s) {
  EXPECT_EQ(s.submitted, s.total_completed());
  EXPECT_EQ(s.double_completions, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.producers_blocked, 0u);
}

// Every test arms faults through this fixture so a failing assertion can
// never leak an armed site into the next test.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

// ---- answers ---------------------------------------------------------------

TEST_F(ServeTest, ServedAnswersMatchDirectSession) {
  const auto model = test_model();
  ServerOptions options;
  options.workers = 2;
  options.batch_max = 8;
  options.flush_deadline = std::chrono::microseconds(200);
  Server server(model, options);

  const auto evidence = sampled_evidence(*model, 16, 11);
  std::vector<std::future<Response>> marginals;
  std::vector<std::future<Response>> conditionals;
  std::vector<std::future<Response>> mpes;
  for (const auto& e : evidence) {
    marginals.push_back(server.submit(marginal_request(e)));
    Request c;
    c.query = QueryType::kConditional;
    c.query_var = 0;
    c.evidence = e;
    conditionals.push_back(server.submit(std::move(c)));
    Request m;
    m.query = QueryType::kMpe;
    m.evidence = e;
    mpes.push_back(server.submit(std::move(m)));
  }
  server.shutdown(true);

  InferenceSession direct(model, SessionOptions{});
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    Response m = marginals[i].get();
    ASSERT_EQ(m.status, Status::kOk) << m.message;
    EXPECT_DOUBLE_EQ(m.value, direct.marginal(evidence[i]));
    EXPECT_EQ(m.tier, Tier::kNormal);
    EXPECT_FALSE(m.served_format.has_value());  // exact base tier: no format,
    EXPECT_FALSE(m.error_bound.has_value());    // no analytic bound
    EXPECT_TRUE(m.ok());

    Response c = conditionals[i].get();
    ASSERT_EQ(c.status, Status::kOk) << c.message;
    const std::vector<double> expected = direct.conditional(0, evidence[i]);
    ASSERT_EQ(c.posterior.size(), expected.size());
    for (std::size_t q = 0; q < expected.size(); ++q) {
      EXPECT_DOUBLE_EQ(c.posterior[q], expected[q]);
    }

    Response mpe = mpes[i].get();
    ASSERT_EQ(mpe.status, Status::kOk) << mpe.message;
    EXPECT_DOUBLE_EQ(mpe.value, direct.mpe(evidence[i]));
  }
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.submitted, 48u);
  EXPECT_EQ(s.completed_ok, 48u);
  expect_accounting_identity(s);
}

TEST_F(ServeTest, CallbackFlavourCompletesExactlyOnce) {
  const auto model = test_model();
  ServerOptions options;
  options.flush_deadline = std::chrono::microseconds(200);
  Server server(model, options);

  std::mutex mutex;
  std::vector<Response> responses;
  const auto evidence = sampled_evidence(*model, 8, 3);
  for (const auto& e : evidence) {
    server.submit(marginal_request(e), [&](Response r) {
      std::lock_guard<std::mutex> lock(mutex);
      responses.push_back(std::move(r));
    });
  }
  server.shutdown(true);
  ASSERT_EQ(responses.size(), 8u);
  for (const Response& r : responses) EXPECT_EQ(r.status, Status::kOk) << r.message;
  expect_accounting_identity(server.stats());
}

TEST_F(ServeTest, MalformedRequestsThrowSynchronouslyAndNeverQueue) {
  const auto model = test_model();
  Server server(model, ServerOptions{});

  Request wrong_size;
  wrong_size.query = QueryType::kMarginal;
  wrong_size.evidence.resize(static_cast<std::size_t>(model->num_variables()) + 1);
  EXPECT_THROW(server.submit(std::move(wrong_size)), InvalidArgument);

  Request bad_var;
  bad_var.query = QueryType::kConditional;
  bad_var.query_var = model->num_variables();  // out of range
  bad_var.evidence.resize(static_cast<std::size_t>(model->num_variables()));
  EXPECT_THROW(server.submit(std::move(bad_var)), InvalidArgument);

  Request observed_var;
  observed_var.query = QueryType::kConditional;
  observed_var.query_var = 0;
  observed_var.evidence.resize(static_cast<std::size_t>(model->num_variables()));
  observed_var.evidence[0] = 0;  // conditional on an observed variable
  EXPECT_THROW(server.submit(std::move(observed_var)), InvalidArgument);

  server.shutdown(true);
  EXPECT_EQ(server.stats().submitted, 0u);  // rejected before admission
}

TEST_F(ServeTest, MisconfigurationThrowsFoundVsExpected) {
  const auto model = test_model();
  {
    ServerOptions bad;
    bad.capacity = 0;
    EXPECT_THROW(Server(model, bad), InvalidArgument);
  }
  {
    ServerOptions bad;
    bad.capacity = 4;
    bad.batch_max = 8;  // batch larger than the queue it is cut from
    EXPECT_THROW(Server(model, bad), InvalidArgument);
  }
  {
    ServerOptions bad;
    bad.workers = 0;
    EXPECT_THROW(Server(model, bad), InvalidArgument);
  }
  {
    ServerOptions bad;
    bad.overload.degrade_depth = 8;  // threshold with no rung to degrade to
    EXPECT_THROW(Server(model, bad), InvalidArgument);
  }
}

// ---- backpressure ----------------------------------------------------------

// Stalls the whole pipeline deterministically: worker 1 held inside the
// test hook, one more flushed batch parked in the bounded batch queue, the
// submission queue full behind it.  ManualClock keeps the batcher from ever
// flushing on a deadline.
struct StalledPipeline {
  std::shared_ptr<ManualClock> clock = std::make_shared<ManualClock>();
  Gate gate;
  std::atomic<int> arrived{0};

  ServerOptions options(ServerOptions::FullPolicy policy) {
    ServerOptions o;
    o.capacity = 4;
    o.batch_max = 4;
    o.workers = 1;
    o.max_pending_batches = 1;
    o.full_policy = policy;
    o.block_timeout = ms(10);
    o.flush_deadline = ms(100);
    o.clock = clock;
    o.test_worker_hook = [this] {
      ++arrived;
      gate.wait();
    };
    return o;
  }

  /// 12 submissions: 4 held by the worker, 4 parked in the batch queue,
  /// 4 filling the submission queue.
  std::vector<std::future<Response>> fill(Server& server, const CompiledModel& model) {
    std::vector<std::future<Response>> futures;
    const auto evidence = sampled_evidence(model, 12, 5);
    for (int i = 0; i < 4; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
    EXPECT_TRUE(spin_until([&] { return arrived.load() >= 1; }));
    for (int i = 4; i < 8; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
    EXPECT_TRUE(spin_until([&] {
      const StatsSnapshot s = server.stats();
      return s.flushes_by_size == 2 && s.queue_depth == 0;
    }));
    for (int i = 8; i < 12; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
    EXPECT_TRUE(spin_until([&] { return server.stats().queue_depth == 4; }));
    return futures;
  }
};

TEST_F(ServeTest, FullQueueRejectsWithTypedResponse) {
  const auto model = test_model();
  StalledPipeline pipeline;
  Server server(model, pipeline.options(ServerOptions::FullPolicy::kReject));
  auto futures = pipeline.fill(server, *model);

  // The 13th request finds the queue at capacity and is rejected
  // immediately — a typed response, not a block and not unbounded growth.
  Response rejected = server.submit(marginal_request(sampled_evidence(*model, 1, 9)[0])).get();
  EXPECT_EQ(rejected.status, Status::kRejectedQueueFull);
  EXPECT_NE(rejected.message.find("full"), std::string::npos) << rejected.message;
  EXPECT_THROW(rejected.throw_if_failed(), serve::QueueFullError);

  pipeline.gate.open();
  server.shutdown(true);
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed_ok, 12u);
  EXPECT_EQ(s.rejected_queue_full, 1u);
  expect_accounting_identity(s);
}

TEST_F(ServeTest, FullQueueBlocksThenTimesOutOnManualClock) {
  const auto model = test_model();
  StalledPipeline pipeline;
  Server server(model, pipeline.options(ServerOptions::FullPolicy::kBlock));
  auto futures = pipeline.fill(server, *model);

  // Blocked producer, phase 1: nothing frees space, the manual clock moves
  // past block_timeout, and the producer gets the typed timeout rejection.
  std::future<Response> blocked = std::async(std::launch::async, [&] {
    return server.submit(marginal_request(sampled_evidence(*model, 1, 9)[0])).get();
  });
  ASSERT_TRUE(spin_until([&] { return server.stats().producers_blocked == 1; }));
  pipeline.clock->advance(ms(10));
  Response timed_out = blocked.get();
  EXPECT_EQ(timed_out.status, Status::kRejectedQueueFull);
  EXPECT_NE(timed_out.message.find("block timeout"), std::string::npos) << timed_out.message;
  EXPECT_EQ(server.stats().producers_blocked, 0u);

  // Phase 2: a new blocked producer is admitted as soon as draining the
  // pipeline frees a slot — backpressure, not rejection.
  std::future<Response> admitted = std::async(std::launch::async, [&] {
    return server.submit(marginal_request(sampled_evidence(*model, 1, 10)[0])).get();
  });
  ASSERT_TRUE(spin_until([&] { return server.stats().producers_blocked == 1; }));
  pipeline.gate.open();
  ASSERT_TRUE(spin_until([&] { return server.stats().producers_blocked == 0; }));
  // The admitted request sits alone in the queue with the clock frozen; the
  // drain shutdown flushes it.
  server.shutdown(true);
  EXPECT_EQ(admitted.get().status, Status::kOk);
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed_ok, 13u);
  EXPECT_EQ(s.rejected_queue_full, 1u);
  expect_accounting_identity(s);
}

// ---- deadlines -------------------------------------------------------------

TEST_F(ServeTest, DeadlineExpiryInQueueIsTypedTimeoutNeverEvaluated) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  ServerOptions options;
  options.batch_max = 8;
  options.flush_deadline = ms(100);
  options.clock = clock;
  Server server(model, options);

  Request request = marginal_request(sampled_evidence(*model, 1, 5)[0]);
  request.timeout = ms(5);
  std::future<Response> future = server.submit(std::move(request));
  ASSERT_TRUE(spin_until([&] { return server.stats().queue_depth == 1; }));

  clock->advance(ms(5));
  Response response = future.get();  // woken by the batcher's expiry sweep
  EXPECT_EQ(response.status, Status::kTimeout);
  EXPECT_NE(response.message.find("queued"), std::string::npos) << response.message;
  EXPECT_THROW(response.throw_if_failed(), serve::DeadlineExceededError);
  EXPECT_EQ(response.queue_wait, ms(5));

  server.shutdown(true);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.timed_out_after_flush, 0u);
  EXPECT_EQ(s.batches_evaluated, 0u);  // expired requests are never evaluated
  EXPECT_EQ(s.flushes_by_size + s.flushes_by_deadline, 0u);
  expect_accounting_identity(s);
}

TEST_F(ServeTest, DeadlineExpiryAfterFlushIsTypedTimeout) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  Gate gate;
  std::atomic<int> arrived{0};
  ServerOptions options;
  options.batch_max = 2;  // two submissions trigger a size flush
  options.flush_deadline = ms(100);
  options.workers = 1;
  options.clock = clock;
  options.test_worker_hook = [&] {
    ++arrived;
    gate.wait();
  };
  Server server(model, options);

  const auto evidence = sampled_evidence(*model, 2, 6);
  std::vector<std::future<Response>> futures;
  for (const auto& e : evidence) {
    Request r = marginal_request(e);
    r.timeout = ms(5);
    futures.push_back(server.submit(std::move(r)));
  }
  // The batch is flushed and picked up (hook entered) with deadlines still
  // live; the clock then expires them while the worker is held.
  ASSERT_TRUE(spin_until([&] { return arrived.load() >= 1; }));
  clock->advance(ms(6));
  gate.open();

  for (auto& f : futures) {
    Response r = f.get();
    EXPECT_EQ(r.status, Status::kTimeout);
    EXPECT_NE(r.message.find("after flush"), std::string::npos) << r.message;
  }
  server.shutdown(true);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.timed_out, 2u);
  EXPECT_EQ(s.timed_out_after_flush, 2u);
  EXPECT_EQ(s.batches_evaluated, 0u);  // the whole batch expired: no evaluation
  expect_accounting_identity(s);
}

// ---- overload controller ---------------------------------------------------

TEST_F(ServeTest, OverloadDegradesWithProvenanceThenSheds) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  const Representation rung = Representation::of(lowprec::FloatFormat{8, 16});
  ServerOptions options;
  options.capacity = 8;
  options.batch_max = 8;
  options.workers = 1;
  options.flush_deadline = ms(10);
  options.clock = clock;
  options.overload.degraded =
      serve::DegradedTier{rung, lowprec::RoundingMode::kNearestEven, 0.125};
  options.overload.degrade_depth = 2;
  options.overload.shed_depth = 4;
  Server server(model, options);

  const auto evidence = sampled_evidence(*model, 5, 8);
  std::vector<std::future<Response>> futures;
  for (const auto& e : evidence) futures.push_back(server.submit(marginal_request(e)));

  // Admission tiers at depths 0..4: normal, normal, degraded, degraded, shed.
  Response shed = futures[4].get();
  EXPECT_EQ(shed.status, Status::kRejectedOverload);
  EXPECT_NE(shed.message.find("shed"), std::string::npos) << shed.message;
  EXPECT_THROW(shed.throw_if_failed(), serve::OverloadShedError);

  clock->advance(ms(10));  // deadline flush of the four admitted requests
  server.shutdown(true);

  InferenceSession exact(model, SessionOptions{});
  InferenceSession degraded(model, SessionOptions::low_precision(rung));
  for (int i = 0; i < 2; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << r.message;
    EXPECT_EQ(r.tier, Tier::kNormal);
    EXPECT_FALSE(r.served_format.has_value());
    EXPECT_FALSE(r.error_bound.has_value());
    EXPECT_DOUBLE_EQ(r.value, exact.marginal(evidence[static_cast<std::size_t>(i)]));
  }
  for (int i = 2; i < 4; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << r.message;
    EXPECT_EQ(r.tier, Tier::kDegraded);
    // Provenance names the rung actually served, with its analytic bound.
    ASSERT_TRUE(r.served_format.has_value());
    EXPECT_EQ(r.served_format->kind, Representation::Kind::kFloat);
    EXPECT_EQ(r.served_format->flt.exponent_bits, rung.flt.exponent_bits);
    EXPECT_EQ(r.served_format->flt.mantissa_bits, rung.flt.mantissa_bits);
    ASSERT_TRUE(r.error_bound.has_value());
    EXPECT_EQ(*r.error_bound, 0.125);
    EXPECT_EQ(r.value, degraded.marginal(evidence[static_cast<std::size_t>(i)]));
  }
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.degraded_admitted, 2u);
  EXPECT_EQ(s.rejected_overload, 1u);
  EXPECT_EQ(s.completed_ok, 4u);
  expect_accounting_identity(s);
}

TEST_F(ServeTest, OverloadDegradesOnObservedP99) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  Gate gate;
  std::atomic<int> arrived{0};
  ServerOptions options;
  options.batch_max = 1;  // every submission flushes immediately
  options.workers = 1;
  options.clock = clock;
  options.overload.degraded = serve::DegradedTier{
      Representation::of(lowprec::FixedFormat{1, 20}), lowprec::RoundingMode::kNearestEven, 0.5};
  options.overload.degrade_p99 = ms(5);
  options.test_worker_hook = [&] {
    ++arrived;
    gate.wait();
  };
  Server server(model, options);

  // First request completes with a manually-inflated 10 ms latency...
  std::future<Response> slow = server.submit(marginal_request(sampled_evidence(*model, 1, 2)[0]));
  ASSERT_TRUE(spin_until([&] { return arrived.load() >= 1; }));
  clock->advance(ms(10));
  gate.open();
  Response first = slow.get();
  ASSERT_EQ(first.status, Status::kOk) << first.message;
  EXPECT_EQ(first.tier, Tier::kNormal);
  EXPECT_GE(first.latency, ms(10));

  // ...so the observed p99 now exceeds the trigger and the next admission
  // degrades even though the queue is empty.
  Response second = server.submit(marginal_request(sampled_evidence(*model, 1, 3)[0])).get();
  ASSERT_EQ(second.status, Status::kOk) << second.message;
  EXPECT_EQ(second.tier, Tier::kDegraded);
  ASSERT_TRUE(second.served_format.has_value());
  EXPECT_EQ(second.served_format->kind, Representation::Kind::kFixed);

  server.shutdown(true);
  expect_accounting_identity(server.stats());
}

// ---- shutdown --------------------------------------------------------------

TEST_F(ServeTest, DrainShutdownCompletesEverythingOnceUnderWorkerFault) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  Gate gate;
  std::atomic<int> arrived{0};
  ServerOptions options;
  options.batch_max = 2;
  options.workers = 1;
  options.flush_deadline = ms(100);
  options.clock = clock;
  options.test_worker_hook = [&] {
    ++arrived;
    gate.wait();
  };
  Server server(model, options);

  const auto evidence = sampled_evidence(*model, 5, 4);
  std::vector<std::future<Response>> futures;
  // Two in flight (held at the hook), three still queued.
  for (int i = 0; i < 2; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
  ASSERT_TRUE(spin_until([&] { return arrived.load() >= 1; }));
  for (int i = 2; i < 5; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));

  // The in-flight batch's evaluation throws (injected), the drain still
  // completes every request exactly once.
  FaultInjector::instance().arm("serve.worker");
  gate.open();
  server.shutdown(true);

  for (int i = 0; i < 2; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, Status::kError);
    EXPECT_NE(r.message.find("injected fault"), std::string::npos) << r.message;
  }
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status, Status::kOk);
  }
  EXPECT_TRUE(FaultInjector::instance().fired("serve.worker"));
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.errors, 2u);
  EXPECT_EQ(s.completed_ok, 3u);
  expect_accounting_identity(s);
}

TEST_F(ServeTest, CancelShutdownRejectsUnflushedEvaluatesInFlight) {
  const auto model = test_model();
  StalledPipeline pipeline;
  Server server(model, pipeline.options(ServerOptions::FullPolicy::kReject));
  // 4 held by the worker, 4 parked in the batch queue, 4 still unflushed.
  auto futures = pipeline.fill(server, *model);

  // Cancel-mode shutdown from another thread (it must block joining the
  // held worker); the queued-but-unflushed requests complete immediately
  // with typed shutdown rejections.
  std::thread shutter([&] { server.shutdown(false); });
  for (int i = 8; i < 12; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, Status::kRejectedShutdown);
    EXPECT_THROW(r.throw_if_failed(), serve::ShutdownError);
  }
  pipeline.gate.open();
  shutter.join();

  // The already-flushed batches still evaluate to completion.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status, Status::kOk);
  }
  // Admission after shutdown: immediate typed rejection.
  Response late = server.submit(marginal_request(sampled_evidence(*model, 1, 12)[0])).get();
  EXPECT_EQ(late.status, Status::kRejectedShutdown);

  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.rejected_shutdown, 5u);
  EXPECT_EQ(s.completed_ok, 8u);
  expect_accounting_identity(s);
}

// ---- fault sites -----------------------------------------------------------

TEST_F(ServeTest, EnqueueFaultForcesTypedQueueFullRejection) {
  const auto model = test_model();
  ServerOptions options;
  options.flush_deadline = std::chrono::microseconds(200);
  Server server(model, options);

  FaultInjector::instance().arm("serve.enqueue");
  const auto evidence = sampled_evidence(*model, 2, 13);
  Response rejected = server.submit(marginal_request(evidence[0])).get();
  EXPECT_EQ(rejected.status, Status::kRejectedQueueFull);
  EXPECT_NE(rejected.message.find("serve.enqueue"), std::string::npos) << rejected.message;
  EXPECT_TRUE(FaultInjector::instance().fired("serve.enqueue"));

  // Single-shot: the next submission takes the normal path.
  std::future<Response> ok = server.submit(marginal_request(evidence[1]));
  server.shutdown(true);
  EXPECT_EQ(ok.get().status, Status::kOk);
  expect_accounting_identity(server.stats());
}

TEST_F(ServeTest, FlushFaultFailsWholeBatchWithTypedErrors) {
  const auto model = test_model();
  const auto clock = std::make_shared<ManualClock>();
  ServerOptions options;
  options.batch_max = 2;
  options.workers = 1;
  options.flush_deadline = ms(100);
  options.clock = clock;
  Server server(model, options);

  FaultInjector::instance().arm("serve.flush");
  const auto evidence = sampled_evidence(*model, 4, 14);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 2; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
  for (int i = 0; i < 2; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, Status::kError);
    EXPECT_NE(r.message.find("serve.flush"), std::string::npos) << r.message;
  }
  EXPECT_TRUE(FaultInjector::instance().fired("serve.flush"));

  // The batcher survives a failed dispatch: the next flush serves normally.
  for (int i = 2; i < 4; ++i) futures.push_back(server.submit(marginal_request(evidence[i])));
  server.shutdown(true);
  for (int i = 2; i < 4; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status, Status::kOk);
  }
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.errors, 2u);
  EXPECT_EQ(s.completed_ok, 2u);
  expect_accounting_identity(s);
}

// ---- stress ----------------------------------------------------------------

TEST_F(ServeTest, EightProducerStressCompletesEveryRequestExactlyOnce) {
  const auto model = test_model(21, 5);
  ServerOptions options;
  options.capacity = 128;
  options.batch_max = 16;
  options.flush_deadline = std::chrono::microseconds(500);
  options.workers = 3;
  options.full_policy = ServerOptions::FullPolicy::kBlock;
  options.block_timeout = std::chrono::seconds(5);
  options.overload.degraded = serve::DegradedTier{
      Representation::of(lowprec::FloatFormat{8, 20}), lowprec::RoundingMode::kNearestEven, 0.25};
  options.overload.degrade_depth = 64;
  Server server(model, options);

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 40;
  std::vector<std::vector<std::future<Response>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto evidence =
          sampled_evidence(*model, kPerProducer, 100 + static_cast<std::uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        Request r;
        r.evidence = evidence[static_cast<std::size_t>(i)];
        switch (i % 3) {
          case 0:
            r.query = QueryType::kMarginal;
            break;
          case 1:
            r.query = QueryType::kConditional;
            r.query_var = 0;
            break;
          default:
            r.query = QueryType::kMpe;
            break;
        }
        // Every 7th request carries an already-expired deadline — it must
        // come back as a typed timeout, not a silent answer or a hang.
        if (i % 7 == 3) r.timeout = std::chrono::nanoseconds(0);
        futures[static_cast<std::size_t>(p)].push_back(server.submit(std::move(r)));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.shutdown(true);

  std::uint64_t ok = 0, timed_out = 0, rejected = 0, degraded = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      Response r = f.get();  // ready: shutdown drained everything
      switch (r.status) {
        case Status::kOk:
          ++ok;
          if (r.tier == Tier::kDegraded) {
            ++degraded;
            EXPECT_TRUE(r.served_format.has_value());
            EXPECT_TRUE(r.error_bound.has_value());
          }
          break;
        case Status::kTimeout:
          ++timed_out;
          break;
        case Status::kRejectedQueueFull:  // legitimate under saturation
          ++rejected;
          break;
        default:
          ADD_FAILURE() << "unexpected terminal status: " << serve::to_string(r.status) << " — "
                        << r.message;
      }
    }
  }
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(ok + timed_out + rejected, s.submitted);
  EXPECT_EQ(s.completed_ok, ok);
  EXPECT_EQ(s.timed_out, timed_out);
  EXPECT_GE(timed_out, 1u);  // the pre-expired deadlines really do time out
  expect_accounting_identity(s);
}

}  // namespace
}  // namespace problp
