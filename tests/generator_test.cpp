#include <gtest/gtest.h>

#include "ac/transform.hpp"
#include "energy/circuit_energy.hpp"
#include "helpers.hpp"
#include "hw/generator.hpp"

namespace problp::hw {
namespace {

using ac::Circuit;
using ac::NodeId;

// The Fig. 4 scenario: a 5-input operator F over B..E plus A -> G, where A's
// path to G is shorter than F's decomposition tree.
Circuit make_fig4_circuit() {
  Circuit c(std::vector<int>(6, 2));
  const NodeId a = c.add_indicator(0, 0);
  std::vector<NodeId> f_kids;
  for (int v = 1; v <= 5; ++v) f_kids.push_back(c.add_indicator(v, 0));
  const NodeId f = c.add_prod(f_kids);  // 5-ary
  c.set_root(c.add_sum({a, f}));        // G
  return c;
}

TEST(Generator, Fig4DecompositionAndBalancing) {
  const Circuit binary = ac::binarize(make_fig4_circuit()).circuit;
  EXPECT_TRUE(binary.is_binary());
  const Netlist netlist = generate_netlist(binary);
  const NetlistStats stats = netlist.stats();
  // 5-ary product -> 4 two-input multipliers (Fig. 4 shows 3 for 4 inputs;
  // 5 inputs need 4), plus the root adder.
  EXPECT_EQ(stats.multipliers, 4u);
  EXPECT_EQ(stats.adders, 1u);
  // Balanced 5-input tree is 3 levels deep, so the root adder fires at
  // stage 4.  Path-mismatch registers (the Fig. 4 "multiple registers due
  // to a mismatch in path timings"): the odd fifth leaf waits 2 cycles to
  // meet the pair tree at stage 2, and A waits 3 cycles to meet F at the
  // root adder -> 5 alignment registers in total.
  EXPECT_EQ(stats.latency_cycles, 4);
  EXPECT_EQ(stats.alignment_registers, 5u);
}

TEST(Generator, OperatorCountMatchesCensus) {
  Rng rng(111);
  test::RandomCircuitSpec spec;
  spec.num_operators = 40;
  spec.max_fanin = 4;
  const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const Netlist netlist = generate_netlist(binary);
  const auto census = energy::OperatorCensus::of(binary);
  const NetlistStats stats = netlist.stats();
  EXPECT_EQ(stats.adders, census.adders);
  EXPECT_EQ(stats.multipliers, census.multipliers);
  EXPECT_EQ(stats.maxes, census.maxes);
}

TEST(Generator, LatencyEqualsCircuitDepth) {
  Rng rng(112);
  test::RandomCircuitSpec spec;
  spec.num_operators = 30;
  const Circuit binary = ac::binarize(test::make_random_circuit(spec, rng)).circuit;
  const Netlist netlist = generate_netlist(binary);
  EXPECT_EQ(netlist.latency(), binary.stats().depth);
}

TEST(Generator, SharedAlignmentChains) {
  // Two consumers needing the same delayed signal share one register chain.
  Circuit c(std::vector<int>(4, 2));
  const NodeId x = c.add_indicator(0, 0);
  const NodeId a = c.add_indicator(1, 0);
  const NodeId b = c.add_indicator(2, 0);
  const NodeId d = c.add_indicator(3, 0);
  const NodeId deep = c.add_prod({c.add_prod({a, b}), d});  // depth 2
  const NodeId u = c.add_sum({deep, x});                    // x needs delay 2
  const NodeId w = c.add_prod({deep, x});                   // x needs delay 2 again
  c.set_root(c.add_sum({u, w}));
  GeneratorOptions shared;
  shared.share_alignment_chains = true;
  GeneratorOptions privately;
  privately.share_alignment_chains = false;
  const auto s1 = generate_netlist(ac::binarize(c).circuit, shared).stats();
  const auto s2 = generate_netlist(ac::binarize(c).circuit, privately).stats();
  EXPECT_LT(s1.alignment_registers, s2.alignment_registers);
}

TEST(Generator, DeadNodesNotInstantiated) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  c.add_prod({x, y});  // dead
  const NodeId t = c.add_parameter(0.5);
  c.set_root(c.add_prod({x, t}));
  const Netlist netlist = generate_netlist(c);
  EXPECT_EQ(netlist.stats().multipliers, 1u);
  EXPECT_EQ(netlist.stats().indicator_inputs, 1u);  // y unused
}

TEST(Generator, RequiresBinaryCircuit) {
  Circuit c({2});
  const NodeId a = c.add_parameter(0.1);
  const NodeId b = c.add_parameter(0.2);
  const NodeId d = c.add_parameter(0.3);
  c.set_root(c.add_sum({a, b, d}));
  EXPECT_THROW(generate_netlist(c), InvalidArgument);
}

TEST(Generator, ChainDecompositionCostsMoreLatency) {
  Rng rng(113);
  test::RandomCircuitSpec spec;
  spec.num_operators = 25;
  spec.max_fanin = 6;
  const Circuit c = test::make_random_circuit(spec, rng);
  const auto balanced = generate_netlist(ac::binarize(c, ac::DecompositionStyle::kBalanced).circuit);
  const auto chain = generate_netlist(ac::binarize(c, ac::DecompositionStyle::kChain).circuit);
  EXPECT_LE(balanced.latency(), chain.latency());
}

}  // namespace
}  // namespace problp::hw
