// Exhaustive verification of the number emulators on small formats: for
// EVERY pair of representable values, the emulated operator must equal
// "compute exactly in double, then convert with a single rounding".  This
// is sound as an oracle because small-format values have few significant
// bits, so exact sums/products are themselves exactly representable in
// double, and correctly-rounded ops are defined as round(exact result).
#include <vector>

#include <gtest/gtest.h>

#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::lowprec {
namespace {

std::vector<double> all_fixed_values(const FixedFormat& fmt) {
  std::vector<double> out;
  for (u128 raw = 0; raw <= fmt.max_raw(); ++raw) {
    out.push_back(FixedPoint::from_raw(raw, fmt).to_double());
  }
  return out;
}

std::vector<double> all_float_values(const FloatFormat& fmt) {
  std::vector<double> out = {0.0};
  for (int e = fmt.min_exponent(); e <= fmt.max_exponent(); ++e) {
    const auto lo = std::uint64_t{1} << fmt.mantissa_bits;
    for (std::uint64_t sig = lo; sig < 2 * lo; ++sig) {
      out.push_back(SoftFloat::from_parts(e, sig, fmt).to_double());
    }
  }
  return out;
}

TEST(ExhaustiveFixed, AddAndMulMatchOracle) {
  const FixedFormat fmt{2, 3};  // 32 values -> 1024 pairs
  const auto values = all_fixed_values(fmt);
  ASSERT_EQ(values.size(), 32u);
  for (double a : values) {
    for (double b : values) {
      ArithFlags flags;
      const FixedPoint fa = FixedPoint::from_double(a, fmt, flags);
      const FixedPoint fb = FixedPoint::from_double(b, fmt, flags);
      ASSERT_FALSE(flags.any());

      // Addition: exact when in range; saturates + flags when not.
      ArithFlags add_flags;
      const FixedPoint sum = fx_add(fa, fb, add_flags);
      if (a + b <= fmt.max_value()) {
        EXPECT_FALSE(add_flags.overflow);
        EXPECT_DOUBLE_EQ(sum.to_double(), a + b);
      } else {
        EXPECT_TRUE(add_flags.overflow);
        EXPECT_DOUBLE_EQ(sum.to_double(), fmt.max_value());
      }

      // Multiplication: round-to-nearest-even of the exact product.
      ArithFlags mul_flags;
      const FixedPoint prod = fx_mul(fa, fb, mul_flags);
      ArithFlags conv_flags;
      const FixedPoint oracle = FixedPoint::from_double(a * b, fmt, conv_flags);
      EXPECT_EQ(mul_flags.overflow, conv_flags.overflow) << a << " * " << b;
      EXPECT_DOUBLE_EQ(prod.to_double(), oracle.to_double()) << a << " * " << b;
    }
  }
}

TEST(ExhaustiveFixed, TruncationMatchesOracle) {
  const FixedFormat fmt{1, 4};
  const auto values = all_fixed_values(fmt);
  for (double a : values) {
    for (double b : values) {
      ArithFlags flags;
      const FixedPoint fa = FixedPoint::from_double(a, fmt, flags, RoundingMode::kTruncate);
      const FixedPoint fb = FixedPoint::from_double(b, fmt, flags, RoundingMode::kTruncate);
      ArithFlags mul_flags;
      const FixedPoint prod = fx_mul(fa, fb, mul_flags, RoundingMode::kTruncate);
      if (mul_flags.overflow) continue;
      ArithFlags conv_flags;
      const FixedPoint oracle =
          FixedPoint::from_double(a * b, fmt, conv_flags, RoundingMode::kTruncate);
      EXPECT_DOUBLE_EQ(prod.to_double(), oracle.to_double()) << a << " * " << b;
    }
  }
}

TEST(ExhaustiveFloat, AddMatchesOracle) {
  const FloatFormat fmt{3, 2};  // 7 exponents x 4 significands + zero = 29 values
  const auto values = all_float_values(fmt);
  ASSERT_EQ(values.size(), 29u);
  for (double a : values) {
    for (double b : values) {
      ArithFlags flags;
      const SoftFloat fa = SoftFloat::from_double(a, fmt, flags);
      const SoftFloat fb = SoftFloat::from_double(b, fmt, flags);
      ASSERT_FALSE(flags.any()) << a << " " << b;
      ArithFlags add_flags;
      const SoftFloat sum = fl_add(fa, fb, add_flags);
      ArithFlags conv_flags;
      const SoftFloat oracle = SoftFloat::from_double(a + b, fmt, conv_flags);
      EXPECT_EQ(add_flags.overflow, conv_flags.overflow) << a << " + " << b;
      if (!add_flags.overflow) {
        EXPECT_EQ(sum.to_double(), oracle.to_double()) << a << " + " << b;
      }
    }
  }
}

TEST(ExhaustiveFloat, MulMatchesOracle) {
  const FloatFormat fmt{3, 2};
  const auto values = all_float_values(fmt);
  for (double a : values) {
    for (double b : values) {
      ArithFlags flags;
      const SoftFloat fa = SoftFloat::from_double(a, fmt, flags);
      const SoftFloat fb = SoftFloat::from_double(b, fmt, flags);
      ArithFlags mul_flags;
      const SoftFloat prod = fl_mul(fa, fb, mul_flags);
      ArithFlags conv_flags;
      const SoftFloat oracle = SoftFloat::from_double(a * b, fmt, conv_flags);
      EXPECT_EQ(mul_flags.overflow, conv_flags.overflow) << a << " * " << b;
      EXPECT_EQ(mul_flags.underflow, conv_flags.underflow) << a << " * " << b;
      if (!mul_flags.overflow && !mul_flags.underflow) {
        EXPECT_EQ(prod.to_double(), oracle.to_double()) << a << " * " << b;
      }
    }
  }
}

TEST(ExhaustiveFloat, MinMaxTotalOrder) {
  const FloatFormat fmt{3, 2};
  const auto values = all_float_values(fmt);
  ArithFlags flags;
  for (double a : values) {
    for (double b : values) {
      const SoftFloat fa = SoftFloat::from_double(a, fmt, flags);
      const SoftFloat fb = SoftFloat::from_double(b, fmt, flags);
      EXPECT_DOUBLE_EQ(fl_min(fa, fb).to_double(), std::min(a, b));
      EXPECT_DOUBLE_EQ(fl_max(fa, fb).to_double(), std::max(a, b));
      EXPECT_EQ(fl_less(fa, fb), a < b);
    }
  }
}

}  // namespace
}  // namespace problp::lowprec
