#include <gtest/gtest.h>

#include "ac/derivatives.hpp"
#include "ac/transform.hpp"
#include "bn/random_network.hpp"
#include "bn/variable_elimination.hpp"
#include "compile/ve_compiler.hpp"
#include "helpers.hpp"

namespace problp::ac {
namespace {

TEST(Derivatives, HandComputedExample) {
  // f = λ0*0.7 + λ1*0.3: ∂f/∂λ0 = 0.7, ∂f/∂λ1 = 0.3.
  Circuit c({2});
  const NodeId l0 = c.add_indicator(0, 0);
  const NodeId l1 = c.add_indicator(0, 1);
  const NodeId p0 = c.add_prod({l0, c.add_parameter(0.7)});
  const NodeId p1 = c.add_prod({l1, c.add_parameter(0.3)});
  c.set_root(c.add_sum({p0, p1}));
  const DifferentialResult r = evaluate_with_derivatives(c, all_indicators_one(c));
  EXPECT_DOUBLE_EQ(r.root_value, 1.0);
  EXPECT_DOUBLE_EQ(r.derivative[static_cast<std::size_t>(l0)], 0.7);
  EXPECT_DOUBLE_EQ(r.derivative[static_cast<std::size_t>(l1)], 0.3);
}

TEST(Derivatives, MatchesFiniteDifferences) {
  // ∂f/∂θ numerically: perturb one parameter leaf and re-evaluate.
  Rng rng(171);
  test::RandomCircuitSpec spec;
  spec.num_operators = 20;
  spec.p_sum = 0.6;
  const Circuit c = binarize(test::make_random_circuit(spec, rng)).circuit;
  const auto a = all_indicators_one(c);
  const DifferentialResult r = evaluate_with_derivatives(c, a);
  // Pick a few parameter leaves and validate with central differences by
  // rebuilding the circuit with theta +- h.
  for (std::size_t i = 0; i < c.num_nodes(); ++i) {
    const Node& n = c.node(static_cast<NodeId>(i));
    if (n.kind != NodeKind::kParameter) continue;
    const double h = 1e-6;
    auto rebuild = [&](double delta) {
      Circuit copy(c.cardinalities());
      std::vector<NodeId> map(c.num_nodes());
      for (std::size_t j = 0; j < c.num_nodes(); ++j) {
        const Node& m = c.node(static_cast<NodeId>(j));
        if (m.kind == NodeKind::kIndicator) {
          map[j] = copy.add_indicator(m.var, m.state);
        } else if (m.kind == NodeKind::kParameter) {
          // Perturb only the target leaf; avoid hash-consing collisions by
          // adding a distinct tiny offset per leaf id.
          map[j] = copy.add_parameter(m.value + (j == i ? delta : 0.0) +
                                      static_cast<double>(j) * 1e-15);
        } else {
          std::vector<NodeId> kids;
          for (NodeId k : m.children) kids.push_back(map[static_cast<std::size_t>(k)]);
          map[j] = (m.kind == NodeKind::kSum) ? copy.add_sum(kids) : copy.add_prod(kids);
        }
      }
      copy.set_root(map[static_cast<std::size_t>(c.root())]);
      return evaluate(copy, a);
    };
    const double numeric = (rebuild(h) - rebuild(-h)) / (2.0 * h);
    EXPECT_NEAR(r.derivative[i], numeric, 1e-4 * (1.0 + std::abs(numeric))) << "leaf " << i;
    break;  // one leaf is enough per circuit; the sweep below covers breadth
  }
}

TEST(Derivatives, JointMarginalsMatchVariableElimination) {
  // The central identity: ∂f/∂λ_{X=x}(e) == Pr(x, e \ X).
  Rng net_rng(172);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    bn::RandomNetworkSpec spec;
    spec.num_variables = 6;
    spec.max_parents = 2;
    Rng one_rng(seed);
    const bn::BayesianNetwork network = bn::make_random_network(spec, one_rng);
    const Circuit binary = binarize(compile::compile_network(network)).circuit;
    const bn::VariableElimination ve(network);
    Rng rng(200 + seed);
    for (int i = 0; i < 5; ++i) {
      const bn::Evidence e = test::random_evidence(network, 0.4, rng);
      const auto marginals = all_joint_marginals(binary, compile::to_assignment(e));
      for (int v = 0; v < network.num_variables(); ++v) {
        bn::Evidence e_minus = e;
        e_minus[static_cast<std::size_t>(v)] = std::nullopt;
        for (int s = 0; s < network.cardinality(v); ++s) {
          const double expected = ve.joint_marginal(v, s, e_minus);
          EXPECT_NEAR(marginals[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)],
                      expected, 1e-9 * (1.0 + expected))
              << "seed=" << seed << " var=" << v << " state=" << s;
        }
      }
    }
  }
}

TEST(Derivatives, PosteriorMatchesVe) {
  Rng net_rng(173);
  bn::RandomNetworkSpec spec;
  spec.num_variables = 7;
  const bn::BayesianNetwork network = bn::make_random_network(spec, net_rng);
  const Circuit binary = binarize(compile::compile_network(network)).circuit;
  const bn::VariableElimination ve(network);
  Rng rng(174);
  for (int i = 0; i < 10; ++i) {
    bn::Evidence e = test::random_evidence(network, 0.5, rng);
    e[0] = std::nullopt;
    if (ve.probability_of_evidence(e) <= 0.0) continue;
    const auto post = posterior_from_derivatives(binary, 0, compile::to_assignment(e));
    const auto expected = ve.posterior(0, e);
    ASSERT_EQ(post.size(), expected.size());
    for (std::size_t s = 0; s < post.size(); ++s) {
      EXPECT_NEAR(post[s], expected[s], 1e-9);
    }
  }
}

TEST(Derivatives, Validation) {
  Circuit c({2});
  const NodeId m = c.add_max({c.add_parameter(0.1), c.add_parameter(0.2)});
  c.set_root(m);
  EXPECT_THROW(evaluate_with_derivatives(c, PartialAssignment(1)), InvalidArgument);

  Circuit nary({2});
  const NodeId a = nary.add_parameter(0.1);
  const NodeId b = nary.add_parameter(0.2);
  const NodeId d = nary.add_parameter(0.3);
  nary.set_root(nary.add_sum({a, b, d}));
  EXPECT_THROW(evaluate_with_derivatives(nary, PartialAssignment(1)), InvalidArgument);

  Circuit ok({2});
  ok.set_root(ok.add_prod({ok.add_indicator(0, 0), ok.add_parameter(0.5)}));
  PartialAssignment observed(1);
  observed[0] = 0;
  EXPECT_THROW(posterior_from_derivatives(ok, 0, observed), InvalidArgument);
}

}  // namespace
}  // namespace problp::ac
