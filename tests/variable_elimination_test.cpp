#include <gtest/gtest.h>

#include "bn/random_network.hpp"
#include "bn/variable_elimination.hpp"
#include "helpers.hpp"

namespace problp::bn {
namespace {

BayesianNetwork make_sprinkler() {
  // Classic rain/sprinkler/grass network with known posteriors.
  BayesianNetwork network;
  const int rain = network.add_variable("rain", 2);          // 0 = yes, 1 = no
  const int sprinkler = network.add_variable("sprinkler", 2);
  const int grass = network.add_variable("grass_wet", 2);
  network.set_cpt(rain, {}, {0.2, 0.8});
  network.set_cpt(sprinkler, {rain}, {0.01, 0.99, 0.4, 0.6});
  // P(grass | sprinkler, rain): rows (s, r) in row-major, r fastest.
  network.set_cpt(grass, {sprinkler, rain},
                  {0.99, 0.01, 0.9, 0.1, 0.8, 0.2, 0.0, 1.0});
  return network;
}

TEST(VariableElimination, EvidenceProbabilityMatchesBruteForce) {
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const Evidence e = test::random_evidence(network, 0.5, rng);
    EXPECT_NEAR(ve.probability_of_evidence(e), test::brute_force_probability(network, e), 1e-12);
  }
}

TEST(VariableElimination, NoEvidenceSumsToOne) {
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  EXPECT_NEAR(ve.probability_of_evidence(network.empty_evidence()), 1.0, 1e-12);
}

TEST(VariableElimination, SprinklerPosterior) {
  // Wikipedia's worked example: P(rain | grass wet) ~= 0.3577.
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  Evidence e = network.empty_evidence();
  e[2] = 0;  // grass wet
  EXPECT_NEAR(ve.conditional(0, 0, e), 0.3577, 5e-4);
}

TEST(VariableElimination, PosteriorNormalises) {
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  Evidence e = network.empty_evidence();
  e[2] = 1;
  const auto post = ve.posterior(0, e);
  EXPECT_NEAR(post[0] + post[1], 1.0, 1e-12);
}

TEST(VariableElimination, MpeMatchesBruteForce) {
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  Rng rng(32);
  for (int i = 0; i < 30; ++i) {
    const Evidence e = test::random_evidence(network, 0.4, rng);
    EXPECT_NEAR(ve.mpe_value(e), test::brute_force_mpe(network, e), 1e-12);
  }
}

TEST(VariableElimination, RandomNetworksMatchBruteForce) {
  Rng rng(33);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    RandomNetworkSpec spec;
    spec.num_variables = 7;
    spec.max_parents = 3;
    Rng net_rng(seed);
    const BayesianNetwork network = make_random_network(spec, net_rng);
    const VariableElimination ve(network);
    for (int i = 0; i < 10; ++i) {
      const Evidence e = test::random_evidence(network, 0.4, rng);
      EXPECT_NEAR(ve.probability_of_evidence(e), test::brute_force_probability(network, e), 1e-10)
          << "seed=" << seed;
      EXPECT_NEAR(ve.mpe_value(e), test::brute_force_mpe(network, e), 1e-10) << "seed=" << seed;
    }
  }
}

TEST(VariableElimination, HeuristicsAgree) {
  Rng net_rng(9);
  RandomNetworkSpec spec;
  spec.num_variables = 9;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  const VariableElimination mf(network, EliminationHeuristic::kMinFill);
  const VariableElimination md(network, EliminationHeuristic::kMinDegree);
  const VariableElimination topo(network, EliminationHeuristic::kTopological);
  Rng rng(34);
  for (int i = 0; i < 20; ++i) {
    const Evidence e = test::random_evidence(network, 0.5, rng);
    const double p = mf.probability_of_evidence(e);
    EXPECT_NEAR(md.probability_of_evidence(e), p, 1e-10);
    EXPECT_NEAR(topo.probability_of_evidence(e), p, 1e-10);
  }
}

TEST(VariableElimination, ConditionalRequiresPositiveEvidence) {
  BayesianNetwork network;
  const int a = network.add_variable("A", 2);
  const int b = network.add_variable("B", 2);
  network.set_cpt(a, {}, {1.0, 0.0});
  network.set_cpt(b, {a}, {1.0, 0.0, 0.0, 1.0});
  const VariableElimination ve(network);
  Evidence e = network.empty_evidence();
  e[1] = 1;  // B = b2 impossible given A = a1 a.s.
  EXPECT_THROW(ve.conditional(0, 0, e), InvalidArgument);
}

TEST(VariableElimination, JointMarginalRejectsObservedQuery) {
  const BayesianNetwork network = make_sprinkler();
  const VariableElimination ve(network);
  Evidence e = network.empty_evidence();
  e[0] = 0;
  EXPECT_THROW(ve.joint_marginal(0, 1, e), InvalidArgument);
}

TEST(EliminationOrder, CoversAllVariables) {
  Rng net_rng(10);
  RandomNetworkSpec spec;
  spec.num_variables = 12;
  const BayesianNetwork network = make_random_network(spec, net_rng);
  for (auto h : {EliminationHeuristic::kMinFill, EliminationHeuristic::kMinDegree,
                 EliminationHeuristic::kTopological}) {
    auto order = elimination_order(network, h);
    std::sort(order.begin(), order.end());
    for (int v = 0; v < 12; ++v) EXPECT_EQ(order[static_cast<std::size_t>(v)], v);
  }
}

}  // namespace
}  // namespace problp::bn
