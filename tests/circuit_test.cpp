#include <gtest/gtest.h>

#include "ac/circuit.hpp"
#include "ac/serialize.hpp"

namespace problp::ac {
namespace {

TEST(Circuit, IndicatorSharingAndValidation) {
  Circuit c({2, 3});
  const NodeId a = c.add_indicator(0, 1);
  const NodeId b = c.add_indicator(0, 1);
  EXPECT_EQ(a, b);  // one shared node per (var, state)
  EXPECT_NE(a, c.add_indicator(1, 1));
  EXPECT_EQ(c.find_indicator(0, 1), a);
  EXPECT_EQ(c.find_indicator(1, 2), kInvalidNode);
  EXPECT_THROW(c.add_indicator(2, 0), InvalidArgument);
  EXPECT_THROW(c.add_indicator(1, 3), InvalidArgument);
}

TEST(Circuit, ParameterSharingByValue) {
  Circuit c({2});
  EXPECT_EQ(c.add_parameter(0.25), c.add_parameter(0.25));
  EXPECT_NE(c.add_parameter(0.25), c.add_parameter(0.75));
  EXPECT_THROW(c.add_parameter(-0.5), InvalidArgument);
  EXPECT_THROW(c.add_parameter(std::numeric_limits<double>::infinity()), InvalidArgument);
}

TEST(Circuit, StructuralHashingSharesOperators) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  const NodeId s1 = c.add_sum({x, y});
  const NodeId s2 = c.add_sum({y, x});  // commutative: same node
  EXPECT_EQ(s1, s2);
  const NodeId p = c.add_prod({x, y});
  EXPECT_NE(p, s1);  // different kind, different node
  const NodeId m = c.add_max({x, y});
  EXPECT_NE(m, s1);
  EXPECT_NE(m, p);
}

TEST(Circuit, SingleChildCollapses) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  EXPECT_EQ(c.add_sum({x}), x);
  EXPECT_EQ(c.add_prod({x}), x);
}

TEST(Circuit, OperatorValidation) {
  Circuit c({2});
  EXPECT_THROW(c.add_sum({}), InvalidArgument);
  EXPECT_THROW(c.add_sum({42}), InvalidArgument);  // child does not exist
}

TEST(Circuit, StatsAndDepths) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  const NodeId t = c.add_parameter(0.5);
  const NodeId p1 = c.add_prod({x, t});
  const NodeId p2 = c.add_prod({y, t});
  const NodeId root = c.add_sum({p1, p2});
  c.set_root(root);
  const CircuitStats s = c.stats();
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_sums, 1u);
  EXPECT_EQ(s.num_prods, 2u);
  EXPECT_EQ(s.num_indicators, 2u);
  EXPECT_EQ(s.num_parameters, 1u);
  EXPECT_EQ(s.num_edges, 6u);
  EXPECT_EQ(s.depth, 2);
  EXPECT_EQ(s.max_fanin, 2);
  const auto depths = c.node_depths();
  EXPECT_EQ(depths[static_cast<std::size_t>(x)], 0);
  EXPECT_EQ(depths[static_cast<std::size_t>(p1)], 1);
  EXPECT_EQ(depths[static_cast<std::size_t>(root)], 2);
}

TEST(Circuit, Reachability) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  const NodeId dead = c.add_prod({x, y});  // never used by the root
  const NodeId t = c.add_parameter(0.5);
  const NodeId root = c.add_prod({x, t});
  c.set_root(root);
  const auto live = c.reachable_from_root();
  EXPECT_TRUE(live[static_cast<std::size_t>(x)]);
  EXPECT_TRUE(live[static_cast<std::size_t>(t)]);
  EXPECT_TRUE(live[static_cast<std::size_t>(root)]);
  EXPECT_FALSE(live[static_cast<std::size_t>(dead)]);
  EXPECT_FALSE(live[static_cast<std::size_t>(y)]);
}

TEST(Circuit, IsBinary) {
  Circuit c({2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(0, 1);
  const NodeId t = c.add_parameter(0.3);
  EXPECT_TRUE(c.is_binary());
  c.add_sum({x, y, t});
  EXPECT_FALSE(c.is_binary());
}

TEST(Serialize, RoundTrip) {
  Circuit c({2, 2});
  const NodeId x = c.add_indicator(0, 0);
  const NodeId y = c.add_indicator(1, 1);
  const NodeId t = c.add_parameter(0.123456789012345);
  const NodeId p = c.add_prod({x, y, t});
  const NodeId s = c.add_sum({p, t});
  c.set_root(s);

  const Circuit back = from_text(to_text(c));
  EXPECT_EQ(back.num_variables(), 2);
  EXPECT_EQ(back.cardinalities(), c.cardinalities());
  const CircuitStats sa = c.stats();
  const CircuitStats sb = back.stats();
  EXPECT_EQ(sa.num_nodes, sb.num_nodes);
  EXPECT_EQ(sa.num_edges, sb.num_edges);
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW(from_text("not a circuit"), ParseError);
  EXPECT_THROW(from_text("problp-ac 2\n"), ParseError);
  EXPECT_THROW(from_text("problp-ac 1\nvars 1 2\nnodes 1\nsum 2 0 1\nroot 0\n"), ParseError);
}

}  // namespace
}  // namespace problp::ac
