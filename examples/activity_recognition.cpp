// Activity recognition on the HAR-like benchmark — the paper's motivating
// application (§1): a smartphone classifier that accepts an activity only
// when its posterior clears a confidence threshold, so a bounded output
// error of 0.01 only perturbs decisions in a 0.02-wide band around the
// threshold.
//
// This example trains the Naive Bayes classifier, lets ProbLP pick the
// representation for conditional queries, and shows that low-precision
// classification decisions match double precision outside the band.
//
// Build & run:  ./build/examples/activity_recognition
#include <cstdio>

#include "ac/low_precision_eval.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"

int main() {
  using namespace problp;
  const double kThreshold = 0.60;  // the paper's example threshold
  const double kTolerance = 0.01;

  std::printf("Training HAR-like Naive Bayes classifier (60/40 split)...\n");
  const datasets::Benchmark benchmark = datasets::make_har_benchmark();
  std::printf("AC: %s\n", benchmark.circuit.stats().to_string().c_str());

  const Framework framework(benchmark.circuit);
  const errormodel::QuerySpec spec{errormodel::QueryType::kConditional,
                                   errormodel::ToleranceKind::kAbsolute, kTolerance};
  const AnalysisReport report = framework.analyze(spec);
  std::printf("\nProbLP: %s\n", report.to_string().c_str());

  const ac::Circuit& binary = framework.binary_circuit();
  const int num_classes =
      binary.cardinalities()[static_cast<std::size_t>(benchmark.query_var)];

  auto low_precision_pr = [&](const ac::PartialAssignment& a) {
    return report.selected.kind == Representation::Kind::kFixed
               ? ac::evaluate_fixed(binary, a, report.selected.fixed).value
               : ac::evaluate_float(binary, a, report.selected.flt).value;
  };

  int decisions = 0;
  int agreements = 0;
  int in_band = 0;
  double worst_error = 0.0;
  const std::size_t n = std::min<std::size_t>(benchmark.test_evidence.size(), 300);
  for (std::size_t i = 0; i < n; ++i) {
    const auto e = compile::to_assignment(benchmark.test_evidence[i]);
    const double exact_pe = ac::evaluate(binary, e);
    const double approx_pe = low_precision_pr(e);
    if (exact_pe <= 0.0 || approx_pe <= 0.0) continue;
    for (int q = 0; q < num_classes; ++q) {
      auto qe = e;
      qe[static_cast<std::size_t>(benchmark.query_var)] = q;
      const double exact = ac::evaluate(binary, qe) / exact_pe;
      const double approx = low_precision_pr(qe) / approx_pe;
      worst_error = std::max(worst_error, std::abs(approx - exact));
      ++decisions;
      agreements += ((exact >= kThreshold) == (approx >= kThreshold));
      in_band += (std::abs(exact - kThreshold) < kTolerance);
    }
  }

  std::printf("\nThreshold decisions on %d posterior evaluations:\n", decisions);
  std::printf("  worst |Pr_lowprec - Pr_exact|  = %.3e (tolerance %.2f)\n", worst_error,
              kTolerance);
  std::printf("  decision agreement             = %d / %d\n", agreements, decisions);
  std::printf("  posteriors inside the +-%.2f band (only place decisions may legally "
              "flip): %d\n",
              kTolerance, in_band);
  std::printf("\nEnergy: selected %.3g nJ/eval vs 32b float %.3g nJ/eval (%.1fx saving)\n",
              report.selected.kind == Representation::Kind::kFixed ? report.fixed_energy_nj
                                                                   : report.float_energy_nj,
              report.float32_reference_nj,
              report.float32_reference_nj /
                  (report.selected.kind == Representation::Kind::kFixed
                       ? report.fixed_energy_nj
                       : report.float_energy_nj));
  return 0;
}
