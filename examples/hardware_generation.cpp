// Hardware generation walkthrough — the paper's Fig. 4 scenario.
//
// Builds a toy AC containing a 5-input operator, decomposes it into 2-input
// operators, pipelines it with path-balancing registers, prints the full
// generated Verilog, and proves (via the cycle-accurate netlist simulator)
// that the pipelined datapath computes exactly what the circuit-level
// low-precision evaluation computes — at one result per clock cycle.
//
// Build & run:  ./build/examples/hardware_generation
#include <cstdio>

#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "hw/generator.hpp"
#include "hw/netlist_energy.hpp"
#include "hw/simulator.hpp"
#include "hw/verilog.hpp"

int main() {
  using namespace problp;

  // Fig. 4's left side: G = A + F(B, C, D, E, ...) with a 5-input product F.
  ac::Circuit circuit(std::vector<int>(6, 2));
  const ac::NodeId node_a = circuit.add_prod(
      {circuit.add_indicator(0, 0), circuit.add_parameter(0.9)});
  std::vector<ac::NodeId> f_inputs;
  for (int v = 1; v <= 5; ++v) {
    f_inputs.push_back(circuit.add_prod(
        {circuit.add_indicator(v, 0), circuit.add_parameter(0.1 + 0.15 * v)}));
  }
  const ac::NodeId node_f = circuit.add_prod(f_inputs);  // the 5-ary F
  circuit.set_root(circuit.add_sum({node_a, node_f}));   // G

  std::printf("Input AC:        %s\n", circuit.stats().to_string().c_str());

  // Stage 1 (§3.4): decompose operators with >2 inputs into 2-input trees.
  const ac::Circuit binary = ac::binarize(circuit).circuit;
  std::printf("After binarize:  %s\n", binary.stats().to_string().c_str());

  // Stage 2: pipeline registers after every operator + path balancing.
  const hw::Netlist netlist = hw::generate_netlist(binary);
  std::printf("Pipelined HW:    %s\n\n", netlist.stats().to_string().c_str());

  const lowprec::FixedFormat fmt{1, 7};
  const auto energy = hw::fixed_netlist_energy(netlist, fmt);
  std::printf("Netlist energy at %s: operators %.1f fJ + registers %.1f fJ = %.1f fJ/eval\n\n",
              fmt.to_string().c_str(), energy.operator_fj, energy.register_fj,
              energy.total_fj());

  // Prove hardware == circuit semantics, streaming one input per cycle.
  hw::FixedNetlistSimulator sim(netlist, fmt);
  std::vector<ac::PartialAssignment> stream;
  for (int pattern = 0; pattern < 8; ++pattern) {
    ac::PartialAssignment a(6);
    for (int v = 0; v < 6; ++v) a[static_cast<std::size_t>(v)] = (pattern >> (v % 3)) & 1;
    stream.push_back(a);
  }
  const auto results = sim.evaluate_stream(stream);
  std::printf("Streaming %zu inputs through the %d-stage pipeline:\n", stream.size(),
              netlist.latency());
  bool all_match = true;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const double expected = ac::evaluate_fixed(binary, stream[i], fmt).value;
    all_match &= (results[i] == expected);
    std::printf("  input %zu -> hw %.8f  sw %.8f  %s\n", i, results[i], expected,
                results[i] == expected ? "match" : "MISMATCH");
  }
  std::printf("Hardware %s the bit-exact software evaluation.\n\n",
              all_match ? "reproduces" : "DIVERGES FROM");

  // The deliverable: Verilog.
  std::printf("---------------- generated Verilog ----------------\n%s",
              hw::emit_fixed_verilog(netlist, fmt).c_str());
  return 0;
}
