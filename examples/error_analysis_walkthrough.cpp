// Error-analysis walkthrough — the paper's Fig. 3, reproduced numerically.
//
// Builds a small AC, propagates the fixed-point error models (eqs. 2-5)
// node by node, prints the per-node (max value, error bound) pairs the
// propagation maintains, then samples every indicator assignment to show
// the observed error really stays below the analytical bound — and how both
// change across fraction widths and rounding modes.
//
// Build & run:  ./build/examples/error_analysis_walkthrough
#include <cmath>
#include <cstdio>

#include "ac/analysis.hpp"
#include "ac/low_precision_eval.hpp"
#include "ac/transform.hpp"
#include "errormodel/fixed_error.hpp"
#include "errormodel/float_error.hpp"
#include "helpers_example.hpp"

int main() {
  using namespace problp;

  // A two-level AC like Fig. 3: root = (λ0·θa) * (λ1·θb + λ2·θc).
  ac::Circuit circuit({2, 3});
  const ac::NodeId p0 = circuit.add_prod(
      {circuit.add_indicator(0, 0), circuit.add_parameter(0.8)});
  const ac::NodeId p1 = circuit.add_prod(
      {circuit.add_indicator(1, 0), circuit.add_parameter(0.35)});
  const ac::NodeId p2 = circuit.add_prod(
      {circuit.add_indicator(1, 1), circuit.add_parameter(0.55)});
  const ac::NodeId s = circuit.add_sum({p1, p2});
  circuit.set_root(circuit.add_prod({p0, s}));

  const ac::Circuit binary = ac::binarize(circuit).circuit;
  const auto maxima = ac::max_value_analysis(binary);

  const lowprec::FixedFormat fmt{1, 8};
  const auto fixed = errormodel::propagate_fixed_error(binary, fmt, maxima);
  const auto counters = errormodel::propagate_float_error(binary);

  std::printf("Per-node error propagation at %s (eqs. 2-5) and float counters "
              "(eqs. 6-12):\n", fmt.to_string().c_str());
  std::printf("  %-4s %-7s %-10s %-12s %-6s\n", "id", "kind", "max value", "fx bound",
              "fl count");
  for (std::size_t i = 0; i < binary.num_nodes(); ++i) {
    std::printf("  %-4zu %-7s %-10.6f %-12.3e %lld\n", i,
                ac::to_string(binary.node(static_cast<ac::NodeId>(i)).kind), maxima[i],
                fixed.node_bound[i],
                static_cast<long long>(counters.node_count[i]));
  }

  // Observed vs bound, across widths and rounding modes.
  std::printf("\n%-6s %-22s %-12s %-12s %-12s\n", "F", "rounding", "bound", "max observed",
              "mean observed");
  for (const auto mode : {lowprec::RoundingMode::kNearestEven, lowprec::RoundingMode::kTruncate}) {
    for (int f : {4, 8, 12, 16, 20}) {
      const lowprec::FixedFormat sweep_fmt{1, f};
      errormodel::FixedErrorOptions options;
      options.rounding = mode;
      const auto bounds = errormodel::propagate_fixed_error(binary, sweep_fmt, maxima, options);
      double max_err = 0.0;
      double sum_err = 0.0;
      std::size_t count = 0;
      for (const auto& a : example::all_partial_assignments(binary.cardinalities())) {
        const double exact = ac::evaluate(binary, a);
        const double approx = ac::evaluate_fixed(binary, a, sweep_fmt, mode).value;
        max_err = std::max(max_err, std::abs(approx - exact));
        sum_err += std::abs(approx - exact);
        ++count;
      }
      std::printf("%-6d %-22s %-12.3e %-12.3e %-12.3e %s\n", f,
                  mode == lowprec::RoundingMode::kNearestEven ? "round-to-nearest-even"
                                                              : "truncate",
                  bounds.root_bound, max_err, sum_err / static_cast<double>(count),
                  max_err <= bounds.root_bound ? "(within bound)" : "(VIOLATION!)");
    }
  }
  std::printf("\nNote how truncation needs ~1 extra fraction bit for the same bound, and\n"
              "the analytical bound always dominates the observed worst case.\n");
  return 0;
}
