// Patient monitoring with the ALARM network — the paper's fourth benchmark.
//
// Demonstrates the BIF round-trip (export the network the way standard BN
// tools ship it), conditional diagnosis queries on sampled sensor readings,
// and the fixed-vs-float decision for two different tolerance types on the
// same circuit.
//
// Build & run:  ./build/examples/patient_monitoring
#include <cstdio>

#include "ac/low_precision_eval.hpp"
#include "bn/bif.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"

int main() {
  using namespace problp;

  const datasets::Benchmark benchmark = datasets::make_alarm_benchmark(/*seed=*/1,
                                                                       /*num_test_samples=*/200);
  const bn::BayesianNetwork& alarm = benchmark.network;
  std::printf("ALARM: %d variables, %zu parameters; query node '%s'\n", alarm.num_variables(),
              alarm.num_parameters(),
              alarm.variable(benchmark.query_var).name.c_str());
  std::printf("AC compiled via min-fill VE trace: %s\n",
              benchmark.circuit.stats().to_string().c_str());

  // Standard-format export, as distributed in BN repositories.
  const std::string bif_path = "/tmp/problp_alarm.bif";
  bn::save_bif_file(alarm, bif_path, "alarm");
  std::printf("Exported network to %s (%zu bytes of BIF)\n", bif_path.c_str(),
              bn::to_bif(alarm).size());

  const Framework framework(benchmark.circuit);

  // Two user requirements on the same circuit (Table 2's ALARM rows).
  for (const auto& spec : {errormodel::QuerySpec{errormodel::QueryType::kMarginal,
                                                 errormodel::ToleranceKind::kAbsolute, 0.01},
                           errormodel::QuerySpec{errormodel::QueryType::kConditional,
                                                 errormodel::ToleranceKind::kRelative, 0.01}}) {
    const AnalysisReport report = framework.analyze(spec);
    std::printf("\n%s\n", report.to_string().c_str());

    std::vector<ac::PartialAssignment> assignments;
    for (const auto& e : benchmark.test_evidence) {
      assignments.push_back(compile::to_assignment(e));
    }
    const ObservedError observed =
        spec.query == errormodel::QueryType::kConditional
            ? measure_conditional_error(framework.binary_circuit(), benchmark.query_var,
                                        assignments, report.selected)
            : measure_marginal_error(framework.binary_circuit(), assignments, report.selected);
    std::printf("  observed on 200 sampled cases: max abs %.3e, max rel %.3e (flags: %s)\n",
                observed.max_abs, observed.max_rel, observed.flags.any() ? "RAISED" : "clean");
  }

  // One concrete diagnosis: posterior of the query node given the first
  // sampled sensor reading, low precision vs exact.
  const AnalysisReport report = framework.analyze(
      {errormodel::QueryType::kConditional, errormodel::ToleranceKind::kRelative, 0.01});
  const auto e = compile::to_assignment(benchmark.test_evidence.front());
  const double pe = ac::evaluate(framework.binary_circuit(), e);
  const double pe_lp =
      ac::evaluate_float(framework.binary_circuit(), e, report.selected.flt).value;
  std::printf("\nPosterior of %s given the first sensor snapshot:\n",
              alarm.variable(benchmark.query_var).name.c_str());
  for (int q = 0; q < alarm.cardinality(benchmark.query_var); ++q) {
    auto qe = e;
    qe[static_cast<std::size_t>(benchmark.query_var)] = q;
    const double exact = ac::evaluate(framework.binary_circuit(), qe) / pe;
    const double approx =
        ac::evaluate_float(framework.binary_circuit(), qe, report.selected.flt).value / pe_lp;
    std::printf("  state %-10s exact %.6f   %s %.6f\n",
                alarm.variable(benchmark.query_var).state_names[static_cast<std::size_t>(q)].c_str(),
                exact, report.selected.to_string().c_str(), approx);
  }
  return 0;
}
