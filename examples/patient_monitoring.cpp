// Patient monitoring with the ALARM network — the paper's fourth benchmark.
//
// Demonstrates the BIF round-trip (export the network the way standard BN
// tools ship it), one shared CompiledModel answering conditional diagnosis
// queries through InferenceSessions, and the fixed-vs-float decision for
// two different tolerance types on the same circuit.
//
// Build & run:  ./build/examples/patient_monitoring
#include <cstdio>

#include "bn/bif.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "problp/validation.hpp"
#include "runtime/session.hpp"

int main() {
  using namespace problp;

  const datasets::Benchmark benchmark = datasets::make_alarm_benchmark(/*seed=*/1,
                                                                       /*num_test_samples=*/200);
  const bn::BayesianNetwork& alarm = benchmark.network;
  std::printf("ALARM: %d variables, %zu parameters; query node '%s'\n", alarm.num_variables(),
              alarm.num_parameters(),
              alarm.variable(benchmark.query_var).name.c_str());
  std::printf("AC compiled via min-fill VE trace: %s\n",
              benchmark.circuit.stats().to_string().c_str());

  // Standard-format export, as distributed in BN repositories.
  const std::string bif_path = "/tmp/problp_alarm.bif";
  bn::save_bif_file(alarm, bif_path, "alarm");
  std::printf("Exported network to %s (%zu bytes of BIF)\n", bif_path.c_str(),
              bn::to_bif(alarm).size());

  // One compiled model shared by every session below.
  const auto model = runtime::CompiledModel::compile(benchmark.circuit);

  // Two user requirements on the same circuit (Table 2's ALARM rows).
  for (const auto& spec : {errormodel::QuerySpec{errormodel::QueryType::kMarginal,
                                                 errormodel::ToleranceKind::kAbsolute, 0.01},
                           errormodel::QuerySpec{errormodel::QueryType::kConditional,
                                                 errormodel::ToleranceKind::kRelative, 0.01}}) {
    const AnalysisReport report = model->analyze(spec);
    std::printf("\n%s\n", report.to_string().c_str());

    std::vector<ac::PartialAssignment> assignments;
    for (const auto& e : benchmark.test_evidence) {
      assignments.push_back(compile::to_assignment(e));
    }
    const ObservedError observed =
        spec.query == errormodel::QueryType::kConditional
            ? measure_conditional_error(model, benchmark.query_var, assignments,
                                        report.selected)
            : measure_marginal_error(model, assignments, report.selected);
    std::printf("  observed on 200 sampled cases: max abs %.3e, max rel %.3e (flags: %s)\n",
                observed.max_abs, observed.max_rel, observed.flags.any() ? "RAISED" : "clean");
  }

  // One concrete diagnosis: posterior of the query node given the first
  // sampled sensor reading, low precision vs exact — both straight through
  // the session API.
  const AnalysisReport report = model->analyze(
      {errormodel::QueryType::kConditional, errormodel::ToleranceKind::kRelative, 0.01});
  // A report-backed session refuses an infeasible report (no silent exact
  // fallback), so guard like a real caller would.
  require(report.any_feasible, "no representation meets the tolerance within the search caps");
  runtime::InferenceSession exact_session(model);
  runtime::InferenceSession lp_session(model, report);
  const auto e = compile::to_assignment(benchmark.test_evidence.front());
  const std::vector<double> exact_posterior = exact_session.conditional(benchmark.query_var, e);
  const std::vector<double> lp_posterior = lp_session.conditional(benchmark.query_var, e);
  // conditional() returns empty when Pr(e) vanished (the sampled snapshot
  // makes that impossible exactly, but quantisation could flush it to 0).
  require(!exact_posterior.empty() && !lp_posterior.empty(),
          "Pr(first snapshot) vanished; posterior undefined");
  std::printf("\nPosterior of %s given the first sensor snapshot:\n",
              alarm.variable(benchmark.query_var).name.c_str());
  for (int q = 0; q < alarm.cardinality(benchmark.query_var); ++q) {
    std::printf("  state %-10s exact %.6f   %s %.6f\n",
                alarm.variable(benchmark.query_var).state_names[static_cast<std::size_t>(q)].c_str(),
                exact_posterior[static_cast<std::size_t>(q)],
                report.selected.to_string().c_str(), lp_posterior[static_cast<std::size_t>(q)]);
  }
  return 0;
}
