// Quickstart: the paper's Fig. 1 network (A -> B, A -> C) through the whole
// ProbLP pipeline in ~80 lines:
//
//   build BN -> compile once into a shared CompiledModel -> ask ProbLP for
//   a representation meeting an error tolerance -> inspect the chosen bit
//   widths, energy, and bound -> answer the query through InferenceSessions
//   (exact and low-precision) -> generate the hardware.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "bn/network.hpp"
#include "bn/variable_elimination.hpp"
#include "runtime/session.hpp"

int main() {
  using namespace problp;

  // ---- 1. The Bayesian network of Fig. 1a. -------------------------------
  bn::BayesianNetwork network;
  const int a = network.add_variable("A", std::vector<std::string>{"a1", "a2"});
  const int b = network.add_variable("B", std::vector<std::string>{"b1", "b2"});
  const int c = network.add_variable("C", std::vector<std::string>{"c1", "c2", "c3"});
  network.set_cpt(a, {}, {0.6, 0.4});
  network.set_cpt(b, {a}, {0.2, 0.8,    // P(B | a1)
                           0.7, 0.3});  // P(B | a2)
  network.set_cpt(c, {a}, {0.1, 0.3, 0.6,      // P(C | a1)
                           0.5, 0.25, 0.25});  // P(C | a2)
  network.validate();

  // ---- 2. Compile once: BN -> AC -> binarised circuit -> flattened tape. -
  const auto model = runtime::CompiledModel::compile(network);
  std::printf("Compiled model: %s\n", model->binary_circuit().stats().to_string().c_str());

  // ---- 3. Ask ProbLP for the cheapest representation meeting a tolerance.-
  const errormodel::QuerySpec spec{errormodel::QueryType::kMarginal,
                                   errormodel::ToleranceKind::kAbsolute, 0.01};
  const AnalysisReport report = model->analyze(spec);
  std::printf("\nProbLP analysis (marginal query, absolute tolerance 0.01):\n  %s\n",
              report.to_string().c_str());
  if (!report.any_feasible) {
    // A report-backed session refuses an infeasible report (no silent exact
    // fallback), so bail out explicitly like a real caller would.
    std::printf("no representation meets the tolerance within the search caps\n");
    return 1;
  }

  // ---- 4. Answer the example query Pr(A=a1, C=c3) through sessions. ------
  ac::PartialAssignment evidence(static_cast<std::size_t>(network.num_variables()));
  evidence[static_cast<std::size_t>(a)] = 0;  // A = a1
  evidence[static_cast<std::size_t>(c)] = 2;  // C = c3

  runtime::InferenceSession exact_session(model);      // exact double backend
  runtime::InferenceSession lp_session(model, report); // the selected datapath
  const double exact = exact_session.marginal(evidence);
  const bn::VariableElimination ve(network);
  std::printf("\nPr(A=a1, C=c3): exact session = %.10f (VE cross-check %.10f)\n",
              exact, ve.probability_of_evidence(evidence));

  const double approx = lp_session.marginal(evidence);
  std::printf("Low-precision (%s) session     = %.10f  (|error| = %.3e, bound %.3e, flags %s)\n",
              report.selected.to_string().c_str(), approx, std::abs(approx - exact),
              report.selected.kind == Representation::Kind::kFixed
                  ? report.fixed_plan.predicted_bound
                  : report.float_plan.predicted_bound,
              lp_session.last_flags().any() ? "RAISED" : "clean");

  // ---- 5. Generate the hardware. ------------------------------------------
  const HardwareReport hardware = model->generate_hardware(report);
  std::printf("\nGenerated hardware: %s\n", hardware.stats.to_string().c_str());
  std::printf("Netlist (\"post-synthesis\") energy estimate: %.4g nJ/evaluation\n",
              hardware.netlist_energy_nj);
  std::printf("Verilog: %zu bytes (print with examples/hardware_generation)\n",
              hardware.verilog.size());
  return 0;
}
