// problp_cli — the framework as a command-line tool, the way a hardware
// team would actually consume it:
//
//   problp_cli <network.bif> [--query marginal|conditional|mpe]
//              [--tolerance-kind abs|rel] [--tolerance 0.01]
//              [--evidence var=state,...] [--query-var <name>]
//              [--infer] [--batch N] [--fallback off|exact]
//              [--save-model out.pm] [--load-model in.pm]
//              [--registry dir --model name]
//              [--serve N] [--serve-capacity K] [--serve-batch B]
//              [--serve-workers W]
//              [--verilog out.v] [--testbench out_tb.v]
//              [--dot out.dot] [--circuit out.ac]
//
// Reads a Bayesian network in BIF format, compiles it once into a
// runtime::CompiledModel, runs the ProbLP analysis, prints the
// Table-2-style report — and, with --infer, answers the actual query
// through runtime::InferenceSession, both in exact double and under the
// representation the analysis selected.  --batch N samples N evidence sets
// and reports session throughput.  --save-model/--load-model persist the
// compiled artifact (binary, mmap-able) so repeated invocations skip BN
// compilation; --registry serves <dir>/<name>.pm through a
// runtime::ModelRegistry (content-hash keyed, shared mappings).
//
// --fallback exact arms the session's precision-escalation fallback: flagged
// low-precision queries re-serve on the exact double backend, and the CLI
// prints a per-query flag/escalation summary.  Scripted deployments can
// gate on the exit status: 3 means sticky flags survived on at least one
// served answer (flags raised with --fallback off, or — impossible with the
// exact rung — surviving the ladder), 0 means every served answer was
// computed flag-clean.
//
// --serve N pushes N sampled requests through the overload-safe async
// front-end (src/serve/, docs/serving.md): a bounded queue, a coalescing
// batcher, worker session pools, and an overload controller whose degrade
// rung is the analysis' selected representation — degraded answers carry
// that format and its analytic error bound.  Exit codes follow the same
// contract as the rest of the CLI: any typed rejection/timeout/error among
// the completions exits 3 (like surviving flags), a misconfigured queue
// (e.g. --serve-batch larger than --serve-capacity) exits 2 with a
// found-vs-expected message in the artifact-mismatch style, and a clean
// run exits 0.
//
// Try it on the bundled ALARM export:
//   ./build/examples/patient_monitoring            # writes /tmp/problp_alarm.bif
//   ./build/examples/problp_cli /tmp/problp_alarm.bif --query conditional
//       --tolerance-kind rel --query-var HYPOVOLEMIA
//       --evidence HRBP=HIGH,HREKG=HIGH --infer --batch 512   (one line)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ac/dot.hpp"
#include "ac/serialize.hpp"
#include "bn/bif.hpp"
#include "bn/sampling.hpp"
#include "compile/ve_compiler.hpp"
#include "hw/testbench.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/session.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <network.bif> [--query marginal|conditional|mpe]\n"
               "          [--tolerance-kind abs|rel] [--tolerance <float>]\n"
               "          [--evidence var=state,...] [--query-var <name>]\n"
               "          [--infer] [--batch <N>] [--fallback off|exact]\n"
               "          [--save-model <out.pm>] [--load-model <in.pm>]\n"
               "          [--registry <dir> --model <name>]\n"
               "          [--serve <N>] [--serve-capacity <K>] [--serve-batch <B>]\n"
               "          [--serve-workers <W>]\n"
               "          [--verilog <out.v>] [--testbench <out_tb.v>]\n"
               "          [--dot <out.dot>] [--circuit <out.ac>]\n",
               argv0);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  problp::require(out.good(), "cannot open output file '" + path + "'");
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

// "HRBP=HIGH" -> variable / state ids; both sides accept names or indices.
int resolve_variable(const problp::bn::BayesianNetwork& network, const std::string& token) {
  const int by_name = network.find_variable(token);
  if (by_name >= 0) return by_name;
  try {
    const int v = std::stoi(token);
    if (v >= 0 && v < network.num_variables()) return v;
  } catch (...) {
  }
  throw problp::InvalidArgument("unknown variable '" + token + "'");
}

int resolve_state(const problp::bn::BayesianNetwork& network, int var, const std::string& token) {
  const auto& names = network.variable(var).state_names;
  for (std::size_t s = 0; s < names.size(); ++s) {
    if (names[s] == token) return static_cast<int>(s);
  }
  try {
    const int s = std::stoi(token);
    if (s >= 0 && s < network.cardinality(var)) return s;
  } catch (...) {
  }
  throw problp::InvalidArgument("variable '" + network.variable(var).name + "' has no state '" +
                                token + "'");
}

problp::ac::PartialAssignment parse_evidence(const problp::bn::BayesianNetwork& network,
                                             const std::string& spec) {
  problp::ac::PartialAssignment evidence(static_cast<std::size_t>(network.num_variables()));
  for (const std::string& item : problp::split(spec, ',')) {
    const std::string entry = problp::trim(item);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    problp::require(eq != std::string::npos, "evidence entry '" + entry + "' is not var=state");
    const int var = resolve_variable(network, problp::trim(entry.substr(0, eq)));
    const int state = resolve_state(network, var, problp::trim(entry.substr(eq + 1)));
    evidence[static_cast<std::size_t>(var)] = state;
  }
  return evidence;
}

std::string describe_evidence(const problp::bn::BayesianNetwork& network,
                              const problp::ac::PartialAssignment& evidence) {
  std::string out;
  for (std::size_t v = 0; v < evidence.size(); ++v) {
    if (!evidence[v].has_value()) continue;
    if (!out.empty()) out += ", ";
    out += network.variable(static_cast<int>(v)).name + "=" +
           network.variable(static_cast<int>(v))
               .state_names[static_cast<std::size_t>(*evidence[v])];
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace problp;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  std::string bif_path = argv[1];
  errormodel::QuerySpec spec{errormodel::QueryType::kMarginal,
                             errormodel::ToleranceKind::kAbsolute, 0.01};
  std::string verilog_path;
  std::string testbench_path;
  std::string dot_path;
  std::string circuit_path;
  std::string save_model_path;
  std::string load_model_path;
  std::string registry_dir;
  std::string model_name;
  std::string evidence_spec;
  std::string query_var_name;
  bool infer = false;
  long batch = 0;
  bool fallback_exact = false;
  long serve_requests = 0;
  long serve_capacity = 256;
  long serve_batch = 64;
  long serve_workers = 2;
  int exit_code = 0;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          usage(argv[0]);
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--query") {
        const std::string q = next();
        if (q == "marginal") {
          spec.query = errormodel::QueryType::kMarginal;
        } else if (q == "conditional") {
          spec.query = errormodel::QueryType::kConditional;
        } else if (q == "mpe") {
          spec.query = errormodel::QueryType::kMpe;
        } else {
          usage(argv[0]);
          return 2;
        }
      } else if (arg == "--tolerance-kind") {
        const std::string k = next();
        spec.kind = (k == "rel") ? errormodel::ToleranceKind::kRelative
                                 : errormodel::ToleranceKind::kAbsolute;
      } else if (arg == "--tolerance") {
        try {
          spec.tolerance = std::stod(next());
        } catch (const std::exception&) {
          throw InvalidArgument("--tolerance expects a number");
        }
      } else if (arg == "--evidence") {
        evidence_spec = next();
      } else if (arg == "--query-var") {
        query_var_name = next();
      } else if (arg == "--infer") {
        infer = true;
      } else if (arg == "--batch") {
        try {
          batch = std::stol(next());
        } catch (const std::exception&) {
          throw InvalidArgument("--batch expects an integer");
        }
      } else if (arg == "--fallback") {
        const std::string mode = next();
        if (mode == "exact") {
          fallback_exact = true;
        } else if (mode != "off") {
          throw InvalidArgument("--fallback expects off or exact");
        }
      } else if (arg == "--serve" || arg == "--serve-capacity" || arg == "--serve-batch" ||
                 arg == "--serve-workers") {
        long value = 0;
        try {
          value = std::stol(next());
        } catch (const std::exception&) {
          throw InvalidArgument(arg + " expects an integer");
        }
        if (arg == "--serve") {
          serve_requests = value;
        } else if (arg == "--serve-capacity") {
          serve_capacity = value;
        } else if (arg == "--serve-batch") {
          serve_batch = value;
        } else {
          serve_workers = value;
        }
      } else if (arg == "--save-model") {
        save_model_path = next();
      } else if (arg == "--load-model") {
        load_model_path = next();
      } else if (arg == "--registry") {
        registry_dir = next();
      } else if (arg == "--model") {
        model_name = next();
      } else if (arg == "--verilog") {
        verilog_path = next();
      } else if (arg == "--testbench") {
        testbench_path = next();
      } else if (arg == "--dot") {
        dot_path = next();
      } else if (arg == "--circuit") {
        circuit_path = next();
      } else {
        usage(argv[0]);
        return 2;
      }
    }

    std::printf("loading %s ...\n", bif_path.c_str());
    const bn::BayesianNetwork network = bn::load_bif_file(bif_path);
    std::printf("network: %d variables, %zu parameters\n", network.num_variables(),
                network.num_parameters());

    // The one compile (or artifact load) every query below shares.
    std::shared_ptr<const runtime::CompiledModel> model;
    if (!registry_dir.empty() || !model_name.empty()) {
      require(!registry_dir.empty() && !model_name.empty(),
              "--registry and --model must be given together");
      runtime::ModelRegistry registry;
      model = registry.get(registry_dir + "/" + model_name + ".pm");
      std::printf("registry: serving '%s' (%s, artifact v%u)\n", model_name.c_str(),
                  model->memory_mapped() ? "mmap" : "in-memory", model->artifact_version());
    } else if (!load_model_path.empty()) {
      model = runtime::CompiledModel::load(load_model_path);
      std::printf("loaded compiled model from %s (%s, recompilation skipped)\n",
                  load_model_path.c_str(), model->memory_mapped() ? "mmap" : "parsed");
    } else {
      model = runtime::CompiledModel::compile(network);
    }
    if (!registry_dir.empty() || !load_model_path.empty()) {
      // Evidence/query names resolve against the BIF network, so a model
      // compiled from a different network would silently answer the wrong
      // queries — reject anything whose variable layout disagrees, naming
      // both sides so the operator can see *which* artifact was wrong.
      std::vector<int> network_cards;
      for (int v = 0; v < network.num_variables(); ++v) {
        network_cards.push_back(network.cardinality(v));
      }
      const std::string artifact_name = model->name().empty() ? "<unnamed>" : model->name();
      const std::string network_name = network.name().empty() ? "<unnamed>" : network.name();
      require(model->cardinalities() == network_cards,
              str_format("loaded artifact does not match the network: artifact holds model "
                         "'%s' (format v%u, %d variables) but the BIF declares network '%s' "
                         "(%d variables) — different variable count or cardinalities",
                         artifact_name.c_str(), model->artifact_version(),
                         model->num_variables(), network_name.c_str(),
                         network.num_variables()));
    }

    if (model->artifact_version() == 0) {
      std::printf("compiled AC (binarised): %s\n",
                  model->binary_circuit().stats().to_string().c_str());
    }

    const AnalysisReport report = model->analyze(spec);
    if (!save_model_path.empty()) {
      // Saved after analyze() so the artifact carries this spec's report and
      // the quantised leaf cache of its selected format.
      model->save(save_model_path);
      std::printf("wrote %s (binary model artifact)\n", save_model_path.c_str());
    }
    std::printf("\n%s\n\n", report.to_string().c_str());
    if (!report.any_feasible) {
      std::printf("no representation meets the tolerance within the search caps\n");
      return 1;
    }

    // ---- online inference through the session API --------------------------
    if (infer || batch > 0) {
      ac::PartialAssignment evidence = evidence_spec.empty()
                                           ? ac::PartialAssignment(static_cast<std::size_t>(
                                                 network.num_variables()))
                                           : parse_evidence(network, evidence_spec);
      int query_var = -1;
      if (spec.query == errormodel::QueryType::kConditional) {
        require(!query_var_name.empty(), "--query conditional needs --query-var <name>");
        query_var = resolve_variable(network, query_var_name);
        require(!evidence[static_cast<std::size_t>(query_var)].has_value(),
                "--query-var must not appear in --evidence");
      }

      runtime::InferenceSession exact(model);
      runtime::SessionOptions lp_options = runtime::SessionOptions::low_precision(
          report.selected, report.selected.kind == Representation::Kind::kFixed
                               ? model->options().search.fixed_options.rounding
                               : model->options().search.float_rounding);
      if (fallback_exact) lp_options.fallback = runtime::FallbackPolicy::to_exact();
      runtime::InferenceSession lowprec(model, lp_options);

      // One per-query summary shape for both the single and the batched
      // paths; flips the exit status to 3 when flags survived on any served
      // answer so scripts can gate deployments on it.
      auto flag_summary = [&] {
        const std::vector<runtime::QueryProvenance>& prov = lowprec.last_provenance();
        std::size_t escalated = 0;
        std::size_t served_exact = 0;
        std::size_t survived = 0;
        int max_escalations = 0;
        for (const runtime::QueryProvenance& p : prov) {
          if (p.escalations > 0) ++escalated;
          if (!p.served_format) ++served_exact;
          if (p.flags.any()) ++survived;
          max_escalations = std::max(max_escalations, p.escalations);
        }
        std::printf("low-precision flag summary: %zu quer%s, %zu escalated, %zu served exact, "
                    "%zu with surviving flags (fallback %s)\n",
                    prov.size(), prov.size() == 1 ? "y" : "ies", escalated, served_exact,
                    survived, fallback_exact ? "exact" : "off");
        if (survived > 0) exit_code = 3;
      };

      if (infer) {
        std::printf("evidence: %s\n", describe_evidence(network, evidence).c_str());
        if (spec.query == errormodel::QueryType::kConditional) {
          const std::vector<double> exact_post = exact.conditional(query_var, evidence);
          const std::vector<double> lp_post = lowprec.conditional(query_var, evidence);
          require(!exact_post.empty(), "Pr(evidence) = 0: the conditional query is undefined");
          if (lp_post.empty()) {
            std::printf("note: %s flushed Pr(evidence) to 0 — low-precision posterior "
                        "undefined\n",
                        report.selected.to_string().c_str());
          }
          std::printf("posterior of %s (exact | %s):\n", network.variable(query_var).name.c_str(),
                      report.selected.to_string().c_str());
          for (int q = 0; q < network.cardinality(query_var); ++q) {
            const std::string lp_cell =
                lp_post.empty() ? std::string("undefined")
                                : str_format("%.8f", lp_post[static_cast<std::size_t>(q)]);
            std::printf("  %-16s %.8f | %s\n",
                        network.variable(query_var).state_names[static_cast<std::size_t>(q)]
                            .c_str(),
                        exact_post[static_cast<std::size_t>(q)], lp_cell.c_str());
          }
        } else if (spec.query == errormodel::QueryType::kMpe) {
          std::printf("MPE value max_x Pr(x, e): exact %.10g | %s %.10g\n",
                      exact.mpe(evidence), report.selected.to_string().c_str(),
                      lowprec.mpe(evidence));
        } else {
          std::printf("Pr(e): exact %.10g | %s %.10g\n", exact.marginal(evidence),
                      report.selected.to_string().c_str(), lowprec.marginal(evidence));
        }
        if (lowprec.last_flags().any()) {
          std::printf("  low-precision flags RAISED (overflow/underflow observed)\n");
        }
        flag_summary();
      }

      if (batch > 0) {
        // Quick throughput readout: N sampled evidence sets through the
        // batched session path, exact then low-precision.
        Rng rng(7);
        std::vector<ac::PartialAssignment> batch_evidence;
        batch_evidence.reserve(static_cast<std::size_t>(batch));
        for (const auto& sample :
             bn::sample_dataset(network, static_cast<int>(batch), rng)) {
          ac::PartialAssignment a(sample.begin(), sample.end());
          if (query_var >= 0) a[static_cast<std::size_t>(query_var)].reset();
          batch_evidence.push_back(std::move(a));
        }
        auto time_qps = [&](auto&& run) {
          const auto t0 = std::chrono::steady_clock::now();
          run();
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          return static_cast<double>(batch_evidence.size()) / secs;
        };
        double exact_qps = 0.0;
        double lp_qps = 0.0;
        if (spec.query == errormodel::QueryType::kConditional) {
          exact_qps = time_qps([&] { exact.conditional(query_var, batch_evidence); });
          lp_qps = time_qps([&] { lowprec.conditional(query_var, batch_evidence); });
        } else if (spec.query == errormodel::QueryType::kMpe) {
          exact_qps = time_qps([&] { exact.mpe(batch_evidence); });
          lp_qps = time_qps([&] { lowprec.mpe(batch_evidence); });
        } else {
          exact_qps = time_qps([&] { exact.marginal(batch_evidence); });
          lp_qps = time_qps([&] { lowprec.marginal(batch_evidence); });
        }
        std::printf("throughput over %zu sampled evidence sets: exact %.0f q/s, %s %.0f q/s\n",
                    batch_evidence.size(), exact_qps, report.selected.to_string().c_str(),
                    lp_qps);
        flag_summary();
      }
    }

    // ---- overload-safe serving smoke ---------------------------------------
    if (serve_requests > 0) {
      int query_var = -1;
      if (spec.query == errormodel::QueryType::kConditional) {
        require(!query_var_name.empty(), "--query conditional needs --query-var <name>");
        query_var = resolve_variable(network, query_var_name);
      }

      serve::ServerOptions sopts;
      sopts.capacity = static_cast<std::size_t>(serve_capacity);
      sopts.batch_max = static_cast<std::size_t>(serve_batch);
      sopts.workers = static_cast<int>(serve_workers);
      sopts.flush_deadline = std::chrono::milliseconds(1);
      sopts.full_policy = serve::ServerOptions::FullPolicy::kBlock;
      // The analysis' selected rung is the degrade tier: under pressure the
      // tail of a burst is served low-precision, and every degraded answer
      // carries the rung's format and analytic bound in its provenance.
      sopts.overload.degraded = serve::DegradedTier::from_report(*model, report);
      sopts.overload.degrade_depth = std::max<std::size_t>(1, sopts.capacity / 2);
      sopts.overload.shed_depth = std::max<std::size_t>(2, sopts.capacity * 3 / 4);

      std::unique_ptr<serve::Server> server;
      try {
        server = std::make_unique<serve::Server>(model, sopts);
      } catch (const InvalidArgument& e) {
        // Queue misconfiguration mirrors the artifact-mismatch contract: a
        // found-vs-expected message and exit 2, before any request queues.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      std::printf("serve: capacity %zu, batch_max %zu, %d worker(s), degrade rung %s "
                  "(analytic bound <= %.3g)\n",
                  sopts.capacity, sopts.batch_max, sopts.workers,
                  sopts.overload.degraded->repr.to_string().c_str(),
                  sopts.overload.degraded->error_bound);

      Rng rng(11);
      std::vector<ac::PartialAssignment> serve_evidence;
      serve_evidence.reserve(static_cast<std::size_t>(serve_requests));
      for (const auto& sample :
           bn::sample_dataset(network, static_cast<int>(serve_requests), rng)) {
        ac::PartialAssignment a(sample.begin(), sample.end());
        if (query_var >= 0) a[static_cast<std::size_t>(query_var)].reset();
        serve_evidence.push_back(std::move(a));
      }

      // Closed loop with a 64-wide window: below the default capacity's
      // degrade threshold, so a clean run exits 0 — while shrinking the
      // queue (e.g. --serve-capacity 8 --serve-batch 8) pushes the same
      // window across the degrade/shed depths, demonstrating the controller
      // (any typed rejection flips the exit status to 3).
      const std::size_t window = std::min<std::size_t>(sopts.capacity, 64);
      std::deque<std::future<serve::Response>> in_flight;
      std::uint64_t ok = 0;
      std::uint64_t degraded = 0;
      std::uint64_t timeouts = 0;
      std::uint64_t rejected = 0;
      std::uint64_t worker_errors = 0;
      std::optional<Representation> degraded_format;
      const auto consume = [&](serve::Response response) {
        switch (response.status) {
          case serve::Status::kOk:
            ++ok;
            if (response.tier == serve::Tier::kDegraded) {
              ++degraded;
              if (!degraded_format && response.served_format) {
                degraded_format = response.served_format;
              }
            }
            break;
          case serve::Status::kTimeout:
            ++timeouts;
            break;
          case serve::Status::kError:
            ++worker_errors;
            break;
          default:
            ++rejected;
            break;
        }
      };
      const auto t0 = std::chrono::steady_clock::now();
      for (ac::PartialAssignment& evidence : serve_evidence) {
        serve::Request request;
        request.query = spec.query;
        request.query_var = query_var;
        request.evidence = std::move(evidence);
        request.timeout = std::chrono::seconds(1);
        in_flight.push_back(server->submit(std::move(request)));
        while (in_flight.size() >= window) {
          consume(in_flight.front().get());
          in_flight.pop_front();
        }
      }
      while (!in_flight.empty()) {
        consume(in_flight.front().get());
        in_flight.pop_front();
      }
      server->shutdown(/*drain=*/true);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      const serve::StatsSnapshot stats = server->stats();
      std::printf("serve: %ld requests in %.3f s (%.0f q/s): %llu ok (%llu degraded), "
                  "%llu timeout, %llu rejected, %llu error; flushes %llu by size / %llu by "
                  "deadline, double completions %llu\n",
                  serve_requests, secs, static_cast<double>(serve_requests) / secs,
                  static_cast<unsigned long long>(ok), static_cast<unsigned long long>(degraded),
                  static_cast<unsigned long long>(timeouts),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(worker_errors),
                  static_cast<unsigned long long>(stats.flushes_by_size),
                  static_cast<unsigned long long>(stats.flushes_by_deadline),
                  static_cast<unsigned long long>(stats.double_completions));
      if (degraded_format) {
        std::printf("serve: degraded answers served on %s (analytic bound <= %.3g)\n",
                    degraded_format->to_string().c_str(),
                    sopts.overload.degraded->error_bound);
      }
      if (timeouts + rejected + worker_errors > 0) {
        // Typed non-ok completions gate scripts exactly like surviving
        // flags do: exit 3, with the counts above naming what happened.
        exit_code = 3;
      }
    }

    if (!verilog_path.empty() || !testbench_path.empty()) {
      const HardwareReport hardware = model->generate_hardware(report);
      std::printf("hardware: %s\n", hardware.stats.to_string().c_str());
      std::printf("netlist energy estimate: %.4g nJ/eval\n", hardware.netlist_energy_nj);
      if (!verilog_path.empty()) write_file(verilog_path, hardware.verilog);
      if (!testbench_path.empty()) {
        // Stimulus: 32 ancestral samples, observed on all variables except
        // the testbench drives the raw indicator ports, so full assignments
        // exercise realistic input patterns.
        Rng rng(1);
        std::vector<ac::PartialAssignment> vectors;
        for (const auto& sample : bn::sample_dataset(network, 32, rng)) {
          vectors.emplace_back(sample.begin(), sample.end());
        }
        const std::string tb =
            report.selected.kind == Representation::Kind::kFixed
                ? hw::emit_fixed_testbench(hardware.netlist, report.selected.fixed, vectors)
                : hw::emit_float_testbench(hardware.netlist, report.selected.flt, vectors);
        write_file(testbench_path, tb);
      }
    }
    if (!dot_path.empty()) {
      std::vector<std::string> names;
      for (int v = 0; v < network.num_variables(); ++v) names.push_back(network.variable(v).name);
      write_file(dot_path, ac::to_dot(model->binary_circuit(), names));
    }
    if (!circuit_path.empty()) {
      write_file(circuit_path, ac::to_text(model->binary_circuit()));
    }
  } catch (const std::exception& e) {
    // problp::Error and the std::stod/std::stol flag-parsing failures alike.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
