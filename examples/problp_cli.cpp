// problp_cli — the framework as a command-line tool, the way a hardware
// team would actually consume it:
//
//   problp_cli <network.bif> [--query marginal|conditional|mpe]
//              [--tolerance-kind abs|rel] [--tolerance 0.01]
//              [--verilog out.v] [--testbench out_tb.v]
//              [--dot out.dot] [--circuit out.ac]
//
// Reads a Bayesian network in BIF format, compiles it, runs the full ProbLP
// analysis, prints the Table-2-style report, and optionally writes the
// generated Verilog / a Graphviz rendering / the compiled circuit.
//
// Try it on the bundled ALARM export:
//   ./build/examples/patient_monitoring            # writes /tmp/problp_alarm.bif
//   ./build/examples/problp_cli /tmp/problp_alarm.bif --verilog /tmp/alarm.v
#include <cstdio>
#include <fstream>
#include <string>

#include "ac/dot.hpp"
#include "ac/serialize.hpp"
#include "bn/bif.hpp"
#include "bn/sampling.hpp"
#include "compile/ve_compiler.hpp"
#include "hw/testbench.hpp"
#include "problp/framework.hpp"
#include "util/rng.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <network.bif> [--query marginal|conditional|mpe]\n"
               "          [--tolerance-kind abs|rel] [--tolerance <float>]\n"
               "          [--verilog <out.v>] [--testbench <out_tb.v>]\n"
               "          [--dot <out.dot>] [--circuit <out.ac>]\n",
               argv0);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  problp::require(out.good(), "cannot open output file '" + path + "'");
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace problp;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  std::string bif_path = argv[1];
  errormodel::QuerySpec spec{errormodel::QueryType::kMarginal,
                             errormodel::ToleranceKind::kAbsolute, 0.01};
  std::string verilog_path;
  std::string testbench_path;
  std::string dot_path;
  std::string circuit_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      const std::string q = next();
      if (q == "marginal") {
        spec.query = errormodel::QueryType::kMarginal;
      } else if (q == "conditional") {
        spec.query = errormodel::QueryType::kConditional;
      } else if (q == "mpe") {
        spec.query = errormodel::QueryType::kMpe;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--tolerance-kind") {
      const std::string k = next();
      spec.kind = (k == "rel") ? errormodel::ToleranceKind::kRelative
                               : errormodel::ToleranceKind::kAbsolute;
    } else if (arg == "--tolerance") {
      spec.tolerance = std::stod(next());
    } else if (arg == "--verilog") {
      verilog_path = next();
    } else if (arg == "--testbench") {
      testbench_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--circuit") {
      circuit_path = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  try {
    std::printf("loading %s ...\n", bif_path.c_str());
    const bn::BayesianNetwork network = bn::load_bif_file(bif_path);
    std::printf("network: %d variables, %zu parameters\n", network.num_variables(),
                network.num_parameters());

    const ac::Circuit circuit = compile::compile_network(network);
    std::printf("compiled AC: %s\n", circuit.stats().to_string().c_str());

    const Framework framework(circuit);
    const AnalysisReport report = framework.analyze(spec);
    std::printf("\n%s\n\n", report.to_string().c_str());
    if (!report.any_feasible) {
      std::printf("no representation meets the tolerance within the search caps\n");
      return 1;
    }

    if (!verilog_path.empty() || !testbench_path.empty()) {
      const HardwareReport hardware = framework.generate_hardware(report);
      std::printf("hardware: %s\n", hardware.stats.to_string().c_str());
      std::printf("netlist energy estimate: %.4g nJ/eval\n", hardware.netlist_energy_nj);
      if (!verilog_path.empty()) write_file(verilog_path, hardware.verilog);
      if (!testbench_path.empty()) {
        // Stimulus: 32 ancestral samples, observed on all variables except
        // the testbench drives the raw indicator ports, so full assignments
        // exercise realistic input patterns.
        Rng rng(1);
        std::vector<ac::PartialAssignment> vectors;
        for (const auto& sample : bn::sample_dataset(network, 32, rng)) {
          vectors.emplace_back(sample.begin(), sample.end());
        }
        const std::string tb =
            report.selected.kind == Representation::Kind::kFixed
                ? hw::emit_fixed_testbench(hardware.netlist, report.selected.fixed, vectors)
                : hw::emit_float_testbench(hardware.netlist, report.selected.flt, vectors);
        write_file(testbench_path, tb);
      }
    }
    if (!dot_path.empty()) {
      std::vector<std::string> names;
      for (int v = 0; v < network.num_variables(); ++v) names.push_back(network.variable(v).name);
      write_file(dot_path, ac::to_dot(framework.binary_circuit(), names));
    }
    if (!circuit_path.empty()) {
      write_file(circuit_path, ac::to_text(framework.binary_circuit()));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
