// Small shared helper for the examples: exhaustive partial-assignment
// enumeration (kept out of the library because production code never needs
// exponential enumeration; examples use it to show worst cases honestly).
#pragma once

#include <optional>
#include <vector>

#include "ac/evaluator.hpp"

namespace problp::example {

inline std::vector<ac::PartialAssignment> all_partial_assignments(
    const std::vector<int>& cards) {
  std::vector<ac::PartialAssignment> out;
  ac::PartialAssignment cur(cards.size());
  std::vector<int> digit(cards.size(), 0);
  while (true) {
    for (std::size_t v = 0; v < cards.size(); ++v) {
      cur[v] = (digit[v] == 0) ? std::nullopt : std::optional<int>(digit[v] - 1);
    }
    out.push_back(cur);
    std::size_t v = cards.size();
    while (v > 0) {
      --v;
      if (++digit[v] <= cards[v]) break;
      digit[v] = 0;
      if (v == 0) return out;
    }
    if (cards.empty()) return out;
  }
}

}  // namespace problp::example
