// Reproduces Fig. 5: validation of the analytical error bounds on the AC
// compiled from the ALARM network, over a 1000-instance sampled test set
// (the paper's §4.1 setting).
//
//   (a) fixed point, marginal query: mean / max absolute error vs the
//       propagated bound, fraction bits 8..40, integer bits from the max
//       analysis (= 1, as in the paper);
//   (b) float point, marginal query: mean / max relative error vs the
//       (1+eps)^C - 1 bound, mantissa bits 8..40, exponent bits from the
//       max/min analysis.
//
// Expected shape (paper): both observed curves decay exponentially and stay
// 1-3 orders of magnitude below the analytical worst-case bound.
//
// The sweeps evaluate the same circuit (33 formats x 1000 evidence sets),
// so everything runs through the unified runtime: one shared CompiledModel,
// an exact InferenceSession for ground truth, and one low-precision session
// per swept format (parameters quantised once per format).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "ac/low_precision_eval.hpp"
#include "bench_common.hpp"
#include "errormodel/bitwidth_search.hpp"
#include "util/int_math.hpp"

namespace problp {
namespace {

struct Fig5Setup {
  datasets::Benchmark benchmark = datasets::make_alarm_benchmark(1, 1000);
  std::shared_ptr<const runtime::CompiledModel> model =
      runtime::CompiledModel::compile(benchmark.circuit);
  const errormodel::CircuitErrorModel& error_model =
      model->error_model(errormodel::QueryType::kMarginal);
  std::vector<ac::PartialAssignment> assignments = bench::to_assignments(benchmark.test_evidence);
  std::vector<double> exact = bench::exact_roots(model, assignments);
};

void run_fig5(const Fig5Setup& setup) {
  const ac::Circuit& circuit = setup.model->binary_circuit();
  std::printf("ALARM AC (binarised): %s\n", circuit.stats().to_string().c_str());
  std::printf("Test set: %zu sampled evidence instances (leaf sensors observed)\n\n",
              setup.assignments.size());

  // ---- (a) fixed point -----------------------------------------------------
  const int integer_bits =
      std::max(1, ceil_log2_double(setup.error_model.range.root_max + 1e-9));
  std::printf("=== Fig. 5a: fixed point, marginal query, I=%d (max analysis) ===\n",
              integer_bits);
  TextTable fx_table({"F bits", "mean abs err", "max abs err", "analytical bound", "sound?"});
  for (int f = 8; f <= 40; f += 2) {
    const lowprec::FixedFormat fmt{integer_bits, f};
    const double bound = errormodel::fixed_query_bound(
        circuit, setup.error_model,
        {errormodel::QueryType::kMarginal, errormodel::ToleranceKind::kAbsolute, 0.0}, fmt);
    runtime::InferenceSession lp(setup.model,
                                 runtime::SessionOptions::low_precision(Representation::of(fmt)));
    const std::vector<double>& approx = lp.marginal(setup.assignments);
    double max_err = 0.0;
    double sum_err = 0.0;
    for (std::size_t i = 0; i < setup.assignments.size(); ++i) {
      const double err = std::abs(approx[i] - setup.exact[i]);
      max_err = std::max(max_err, err);
      sum_err += err;
    }
    fx_table.add_row({str_format("%d", f),
                      sci(sum_err / static_cast<double>(setup.assignments.size())),
                      sci(max_err), sci(bound),
                      (max_err <= bound && !lp.last_flags().any()) ? "yes" : "VIOLATION"});
  }
  std::printf("%s\n", fx_table.to_string().c_str());

  // ---- (b) float point -----------------------------------------------------
  // Exponent width from the max/min analysis at the widest mantissa swept.
  const errormodel::FloatPlan eplan = errormodel::search_float_representation(
      setup.error_model,
      {errormodel::QueryType::kMarginal, errormodel::ToleranceKind::kRelative, 0.5});
  const int exponent_bits = eplan.feasible ? eplan.format.exponent_bits : 9;
  std::printf("=== Fig. 5b: float point, marginal query, E=%d (max/min analysis) ===\n",
              exponent_bits);
  TextTable fl_table({"M bits", "mean rel err", "max rel err", "analytical bound", "sound?"});
  for (int m = 8; m <= 40; m += 2) {
    const lowprec::FloatFormat fmt{exponent_bits, m};
    const double bound = errormodel::float_query_bound(
        setup.error_model,
        {errormodel::QueryType::kMarginal, errormodel::ToleranceKind::kRelative, 0.0}, fmt);
    runtime::InferenceSession lp(setup.model,
                                 runtime::SessionOptions::low_precision(Representation::of(fmt)));
    double max_err = 0.0;
    double sum_err = 0.0;
    std::size_t counted = 0;
    lowprec::ArithFlags flags;
    for (std::size_t i = 0; i < setup.assignments.size(); ++i) {
      const double exact = setup.exact[i];
      // Relative error (and the soundness verdict) is only defined where
      // the exact value is positive, so zero-probability evidence is
      // skipped before the low-precision pass runs.
      if (exact <= 0.0) continue;
      const double approx = lp.marginal(setup.assignments[i]);
      flags.merge(lp.last_flags());
      const double err = std::abs(approx - exact) / exact;
      max_err = std::max(max_err, err);
      sum_err += err;
      ++counted;
    }
    fl_table.add_row({str_format("%d", m), sci(sum_err / static_cast<double>(counted)),
                      sci(max_err), sci(bound),
                      (max_err <= bound && !flags.any()) ? "yes" : "VIOLATION"});
  }
  std::printf("%s\n", fl_table.to_string().c_str());
}

Fig5Setup& shared_setup() {
  static Fig5Setup* setup = new Fig5Setup();
  return *setup;
}

// Micro benchmark: one full low-precision upward pass over the ALARM AC —
// the unit of work every sweep point above repeats 1000x.
void BM_AlarmFixedEvaluation(benchmark::State& state) {
  Fig5Setup& setup = shared_setup();
  const lowprec::FixedFormat fmt{1, static_cast<int>(state.range(0))};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac::evaluate_fixed(setup.model->binary_circuit(),
                                                setup.assignments[i % setup.assignments.size()],
                                                fmt));
    ++i;
  }
}
BENCHMARK(BM_AlarmFixedEvaluation)->Arg(14)->Arg(32)->MinTime(0.05);

// The same pass through a low-precision InferenceSession (parameters
// pre-quantised, buffers reused) — the engine the sweeps above run on.
void BM_AlarmFixedSessionEvaluation(benchmark::State& state) {
  Fig5Setup& setup = shared_setup();
  const lowprec::FixedFormat fmt{1, static_cast<int>(state.range(0))};
  runtime::InferenceSession lp(setup.model,
                               runtime::SessionOptions::low_precision(Representation::of(fmt)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.marginal(setup.assignments[i % setup.assignments.size()]));
    ++i;
  }
}
BENCHMARK(BM_AlarmFixedSessionEvaluation)->Arg(14)->Arg(32)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::Fig5Setup setup;
  problp::run_fig5(setup);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
