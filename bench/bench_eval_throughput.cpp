// End-to-end query throughput: per-query interpreter vs flattened tape vs
// batched tape vs the InferenceSession runtime API, on the ALARM AC and a
// synthetic VE-compiled circuit.
//
// This is the perf trajectory anchor for the evaluation engine: every run
// prints one machine-readable JSON line per circuit (scripts/bench.sh
// appends them to BENCH_eval.json) of the form
//
//   {"bench":"eval_throughput","circuit":"alarm","nodes":...,"edges":...,
//    "batch":512,"interpreter_qps":...,"tape_qps":...,"batched_qps":...,
//    "batched_mt_qps":...,"session_qps":...,"session_batched_qps":...,
//    "lowprec_qps":...,"lowprec_batched_qps":...,"lowprec_batched_mt_qps":...,
//    "speedup_tape":...,"speedup_batched":...,"speedup_session_batched":...,
//    "speedup_lowprec_batched":...}
//
// qps = evidence-set evaluations per second (full upward pass per query).
// The acceptance bar for the tape engine is speedup_batched >= 3 on ALARM
// with >= 256 evidence sets, and the session API must track the raw batched
// engine within noise (it is the same sweep behind one non-virtual call).
// The lowprec_* trio measures the emulated datapath behind the same session
// API — singles on the per-query Fixed/FloatTapeEvaluator, batches on the
// SoA raw-word engine (ac/batch_lowprec.hpp) — on a representative 24-bit
// fixed format; the bar there is speedup_lowprec_batched >= 2 over the
// query-at-a-time session path.  The run fails loudly when parity between
// any pair of engines is violated.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "bn/random_network.hpp"
#include "util/rng.hpp"

namespace problp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<ac::PartialAssignment> sample_evidence(const std::vector<int>& cards,
                                                   std::size_t count, double p_observe,
                                                   Rng& rng) {
  std::vector<ac::PartialAssignment> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ac::PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (rng.coin(p_observe)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

// Runs `sweep` (which evaluates the whole evidence set once) until at least
// `min_seconds` have elapsed; returns evidence-set evaluations per second.
template <class Sweep>
double measure_qps(std::size_t batch_size, double min_seconds, Sweep&& sweep) {
  sweep();  // warm-up: buffers reach steady state, caches warm
  std::size_t passes = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    sweep();
    ++passes;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  return static_cast<double>(passes * batch_size) / elapsed;
}

struct ThroughputResult {
  double interpreter_qps = 0.0;
  double tape_qps = 0.0;
  double batched_qps = 0.0;
  double batched_mt_qps = 0.0;
  double session_qps = 0.0;
  double session_batched_qps = 0.0;
  double lowprec_qps = 0.0;
  double lowprec_batched_qps = 0.0;
  double lowprec_batched_mt_qps = 0.0;
};

ThroughputResult run_circuit(const char* name, const ac::Circuit& circuit,
                             const std::vector<ac::PartialAssignment>& assignments,
                             double min_seconds) {
  const ac::CircuitTape tape = ac::CircuitTape::compile(circuit);
  const std::size_t batch_size = assignments.size();

  // The checksums both guard parity and keep every sweep observable — no
  // DoNotOptimize on the accumulators (gcc 12's "+m,r" inline-asm constraint
  // corrupts a double that lives across several asm statements in one
  // frame), and every evaluate call is opaque behind the static library, so
  // nothing here can be elided or hoisted.
  ThroughputResult r;
  double interp_checksum = 0.0;
  r.interpreter_qps = measure_qps(batch_size, min_seconds, [&] {
    interp_checksum = 0.0;
    for (const auto& a : assignments) interp_checksum += ac::evaluate(circuit, a);
  });

  std::vector<double> scratch;
  double tape_checksum = 0.0;
  r.tape_qps = measure_qps(batch_size, min_seconds, [&] {
    tape_checksum = 0.0;
    for (const auto& a : assignments) tape_checksum += tape.evaluate(a, scratch);
  });

  ac::BatchEvaluator batched(tape);
  double batched_checksum = 0.0;
  r.batched_qps = measure_qps(batch_size, min_seconds, [&] {
    batched_checksum = 0.0;
    for (const double v : batched.evaluate(assignments)) batched_checksum += v;
  });

  ac::BatchEvaluator::Options mt_opts;
  mt_opts.num_threads = 0;  // one per hardware core
  ac::BatchEvaluator batched_mt(tape, mt_opts);
  double mt_checksum = 0.0;
  r.batched_mt_qps = measure_qps(batch_size, min_seconds, [&] {
    mt_checksum = 0.0;
    for (const double v : batched_mt.evaluate(assignments)) mt_checksum += v;
  });

  // The unified runtime: same sweeps behind the InferenceSession API.  wrap()
  // evaluates the given arena verbatim, so results must stay bit-identical
  // to the raw engines and the overhead must be one non-virtual call.
  const auto model = runtime::CompiledModel::wrap(circuit);
  runtime::InferenceSession session(model);
  double session_checksum = 0.0;
  r.session_qps = measure_qps(batch_size, min_seconds, [&] {
    session_checksum = 0.0;
    for (const auto& a : assignments) session_checksum += session.marginal(a);
  });

  double session_batched_checksum = 0.0;
  r.session_batched_qps = measure_qps(batch_size, min_seconds, [&] {
    session_batched_checksum = 0.0;
    for (const double v : session.marginal(assignments)) session_batched_checksum += v;
  });

  // The emulated low-precision datapath behind the same session API, on a
  // representative 24-bit fixed format (the shape the ALARM analyses
  // select).  Singles run the per-query Fixed/FloatTapeEvaluator — the
  // pre-batching serving path — batches the SoA raw-word engine, single-
  // and multi-threaded.
  const lowprec::FixedFormat lp_fmt{2, 22};
  runtime::InferenceSession lp_session(
      model, runtime::SessionOptions::low_precision(Representation::of(lp_fmt)));
  double lp_checksum = 0.0;
  r.lowprec_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_checksum = 0.0;
    for (const auto& a : assignments) lp_checksum += lp_session.marginal(a);
  });

  double lp_batched_checksum = 0.0;
  r.lowprec_batched_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_batched_checksum = 0.0;
    for (const double v : lp_session.marginal(assignments)) lp_batched_checksum += v;
  });

  runtime::SessionOptions lp_mt_options =
      runtime::SessionOptions::low_precision(Representation::of(lp_fmt));
  lp_mt_options.batch.num_threads = 0;  // one per hardware core
  runtime::InferenceSession lp_mt_session(model, lp_mt_options);
  double lp_mt_checksum = 0.0;
  r.lowprec_batched_mt_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_mt_checksum = 0.0;
    for (const double v : lp_mt_session.marginal(assignments)) lp_mt_checksum += v;
  });

  // The engines are bit-identical by construction; a drifting checksum
  // means the bench is measuring a broken engine.
  if (interp_checksum != tape_checksum || interp_checksum != batched_checksum ||
      interp_checksum != mt_checksum || interp_checksum != session_checksum ||
      interp_checksum != session_batched_checksum) {
    std::fprintf(stderr, "PARITY VIOLATION on %s: %.17g %.17g %.17g %.17g %.17g %.17g\n", name,
                 interp_checksum, tape_checksum, batched_checksum, mt_checksum, session_checksum,
                 session_batched_checksum);
    std::exit(1);
  }
  if (lp_checksum != lp_batched_checksum || lp_checksum != lp_mt_checksum) {
    std::fprintf(stderr, "LOWPREC PARITY VIOLATION on %s: %.17g %.17g %.17g\n", name,
                 lp_checksum, lp_batched_checksum, lp_mt_checksum);
    std::exit(1);
  }

  const ac::CircuitStats stats = circuit.stats();
  std::printf(
      "{\"bench\":\"eval_throughput\",\"circuit\":\"%s\",\"nodes\":%zu,\"edges\":%zu,"
      "\"batch\":%zu,\"threads\":%u,\"interpreter_qps\":%.0f,\"tape_qps\":%.0f,"
      "\"batched_qps\":%.0f,\"batched_mt_qps\":%.0f,\"session_qps\":%.0f,"
      "\"session_batched_qps\":%.0f,\"lowprec_qps\":%.0f,\"lowprec_batched_qps\":%.0f,"
      "\"lowprec_batched_mt_qps\":%.0f,\"speedup_tape\":%.2f,\"speedup_batched\":%.2f,"
      "\"speedup_session_batched\":%.2f,\"speedup_lowprec_batched\":%.2f}\n",
      name, stats.num_nodes, stats.num_edges, batch_size,
      std::max(1u, std::thread::hardware_concurrency()), r.interpreter_qps, r.tape_qps,
      r.batched_qps, r.batched_mt_qps, r.session_qps, r.session_batched_qps, r.lowprec_qps,
      r.lowprec_batched_qps, r.lowprec_batched_mt_qps, r.tape_qps / r.interpreter_qps,
      r.batched_qps / r.interpreter_qps, r.session_batched_qps / r.interpreter_qps,
      r.lowprec_batched_qps / r.lowprec_qps);
  return r;
}

void run_all(double min_seconds) {
  // ALARM: the paper's hardest benchmark, 512 sampled leaf-sensor evidence
  // sets (the acceptance setting asks for >= 256).
  {
    const datasets::Benchmark alarm = datasets::make_alarm_benchmark(1, 512);
    run_circuit("alarm", alarm.circuit, bench::to_assignments(alarm.test_evidence),
                min_seconds);
  }
  // Synthetic: a VE-compiled random 36-variable network — denser operators
  // than ALARM's, exercising the tape on compiler-emitted shapes.
  {
    Rng rng(42);
    bn::RandomNetworkSpec spec;
    spec.num_variables = 36;
    spec.max_parents = 3;
    spec.edge_probability = 0.25;
    const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
    const ac::Circuit circuit = compile::compile_network(network);
    run_circuit("synthetic_ve36", circuit,
                sample_evidence(circuit.cardinalities(), 512, 0.4, rng), min_seconds);
  }
}

}  // namespace
}  // namespace problp

int main() {
  problp::run_all(0.25);
  return 0;
}
