// End-to-end query throughput: per-query interpreter vs flattened tape vs
// batched tape vs the SIMD kernel-schedule backend vs the InferenceSession
// runtime API, on the ALARM AC and a synthetic VE-compiled circuit.
//
// This is the perf trajectory anchor for the evaluation engine: every run
// prints one machine-readable JSON line per circuit (scripts/bench.sh
// appends them to BENCH_eval.json) of the form
//
//   {"bench":"eval_throughput","circuit":"alarm","nodes":...,"edges":...,
//    "batch":512,"threads":...,"isa":"avx512","relayout":true,
//    "slots":...,"max_live":...,"buffer_bytes_per_query":...,
//    "lowprec_fixed_bits":24,
//    "lowprec_datapath":"u32","interpreter_qps":...,
//    "tape_qps":...,"batched_qps":...,"batched_mt_qps":...,"simd_qps":...,
//    "session_qps":...,"session_batched_qps":...,"lowprec_qps":...,
//    "lowprec_batched_qps":...,"lowprec_batched_mt_qps":...,
//    "simd_lowprec_qps":...,"simd_lowprec_narrow_qps":...,
//    "lowprec_float_fmt":"8,23","lowprec_float_datapath":"lane32",
//    "simd_lowprec_float_qps":...,"simd_lowprec_float_wide_qps":...,
//    "speedup_tape":...,"speedup_batched":...,
//    "speedup_simd":...,"speedup_session_batched":...,
//    "speedup_lowprec_batched":...,"speedup_simd_lowprec":...,
//    "speedup_float_lane":...,
//    "parity_checksum":"...","lowprec_parity_checksum":"...",
//    "lowprec_float_parity_checksum":"..."}
//
// qps = evidence-set evaluations per second (full upward pass per query).
// batched_qps / lowprec_batched_qps keep the pre-schedule engine shape
// (force_generic, 16-lane blocks) so the trajectory stays comparable across
// PRs; simd_qps / simd_lowprec_qps are the kernel-schedule defaults (auto
// block, runtime ISA dispatch — `isa` records what was dispatched, `threads`
// the worker count the *_mt rows actually ran with).  The low-precision rows
// run the fixed format passed as `bench_eval_throughput [I F]` (default
// 2 22, the 24-bit ALARM shape); `lowprec_fixed_bits` records its width and
// `lowprec_datapath` whether the engine dispatched the lane-parallel u32
// narrow-word kernels (fits_narrow_word(), <= 30 bits) or the u128 wide
// path — simd_lowprec_narrow_qps is that default-dispatch engine measured
// directly, and a force_wide_raw control run pins u32-vs-u128 checksum
// equality in-process.  The float rows do the same for the SoftFloat
// engine on the format passed as `--float=E,M` (default 8,23, the float32
// shape): simd_lowprec_float_qps is the raw float engine at schedule
// defaults — lane-eligible mantissas (`lowprec_float_datapath` "lane32" /
// "lane64") ride the decomposed exponent/significand row kernels —
// simd_lowprec_float_wide_qps the same format pinned to the interleaved
// wide path (force_wide_raw), the lane-serial reference row, and the two
// checksums must match bit for bit in-process.  Acceptance for this engine
// generation: ALARM/512 simd_lowprec_float_qps >= 3x its wide row; the
// prior generation's bar was 24-bit simd_lowprec_qps >= 3x the PR 4
// ALARM/512 row.  Every engine is bit-identical to the interpreter by
// construction, so the run fails loudly on any checksum drift, and the
// checksums are printed so CI can diff a PROBLP_SIMD=scalar run against
// auto dispatch — for a narrow and a wide format alike, keeping every
// datapath pinned.
//
// `relayout` records whether the kernel-schedule rows (simd_qps, the
// sessions, the raw low-precision engines) ran on the liveness-compacted
// tape layout (ac/tape_layout.hpp, the default) or the identity O(nodes)
// layout (`--no-relayout`, the layout-ablation reference — CI diffs the two
// rows' checksums).  `slots` is the exact simd engine's value-buffer rows
// (max-live under relayout, nodes without), `max_live` the layout's
// high-water mark regardless of engagement, and `buffer_bytes_per_query` =
// slots * sizeof(double) — the exact sweep's working set per query lane.
// The force_generic trajectory rows always run the identity layout.
// `--circuits=alarm,synthetic_ve36` (alias `ve36`) selects which circuits
// run; the default is both.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "ac/tape_layout.hpp"
#include "bench_common.hpp"
#include "bn/random_network.hpp"
#include "util/rng.hpp"

namespace problp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<ac::PartialAssignment> sample_evidence(const std::vector<int>& cards,
                                                   std::size_t count, double p_observe,
                                                   Rng& rng) {
  std::vector<ac::PartialAssignment> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ac::PartialAssignment a(cards.size());
    for (std::size_t v = 0; v < cards.size(); ++v) {
      if (rng.coin(p_observe)) a[v] = rng.uniform_int(0, cards[v] - 1);
    }
    out.push_back(std::move(a));
  }
  return out;
}

// Runs `sweep` (which evaluates the whole evidence set once) until at least
// `min_seconds` have elapsed; returns evidence-set evaluations per second.
template <class Sweep>
double measure_qps(std::size_t batch_size, double min_seconds, Sweep&& sweep) {
  sweep();  // warm-up: buffers reach steady state, caches warm
  std::size_t passes = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    sweep();
    ++passes;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  return static_cast<double>(passes * batch_size) / elapsed;
}

struct ThroughputResult {
  double interpreter_qps = 0.0;
  double tape_qps = 0.0;
  double batched_qps = 0.0;
  double batched_mt_qps = 0.0;
  double simd_qps = 0.0;
  double session_qps = 0.0;
  double session_batched_qps = 0.0;
  double lowprec_qps = 0.0;
  double lowprec_batched_qps = 0.0;
  double lowprec_batched_mt_qps = 0.0;
  double simd_lowprec_qps = 0.0;
  double simd_lowprec_narrow_qps = 0.0;
  double simd_lowprec_float_qps = 0.0;
  double simd_lowprec_float_wide_qps = 0.0;
};

// The pre-schedule trajectory shape: the generic CSR fold over 16-lane
// blocks, exactly the engine the batched_qps rows measured in PR 1-3.
ac::BatchEvaluator::Options generic_options(int num_threads = 1) {
  ac::BatchEvaluator::Options options;
  options.force_generic = true;
  options.block = 16;
  options.num_threads = num_threads;
  return options;
}

ThroughputResult run_circuit(const char* name, const ac::Circuit& circuit,
                             const std::vector<ac::PartialAssignment>& assignments,
                             double min_seconds, lowprec::FixedFormat lp_fmt,
                             lowprec::FloatFormat fl_fmt, bool relayout) {
  const ac::CircuitTape tape = ac::CircuitTape::compile(circuit);
  const std::size_t batch_size = assignments.size();

  // Every kernel-schedule engine below (the raw evaluators and the session
  // defaults) runs under this switch; the force_generic trajectory rows are
  // pinned to the identity layout regardless.
  ac::BatchEvaluator::Options schedule_options;
  schedule_options.relayout = relayout;

  // The checksums both guard parity and keep every sweep observable — no
  // DoNotOptimize on the accumulators (gcc 12's "+m,r" inline-asm constraint
  // corrupts a double that lives across several asm statements in one
  // frame), and every evaluate call is opaque behind the static library, so
  // nothing here can be elided or hoisted.
  ThroughputResult r;
  double interp_checksum = 0.0;
  r.interpreter_qps = measure_qps(batch_size, min_seconds, [&] {
    interp_checksum = 0.0;
    for (const auto& a : assignments) interp_checksum += ac::evaluate(circuit, a);
  });

  std::vector<double> scratch;
  double tape_checksum = 0.0;
  r.tape_qps = measure_qps(batch_size, min_seconds, [&] {
    tape_checksum = 0.0;
    for (const auto& a : assignments) tape_checksum += tape.evaluate(a, scratch);
  });

  ac::BatchEvaluator batched(tape, generic_options());
  double batched_checksum = 0.0;
  r.batched_qps = measure_qps(batch_size, min_seconds, [&] {
    batched_checksum = 0.0;
    for (const double v : batched.evaluate(assignments)) batched_checksum += v;
  });

  ac::BatchEvaluator batched_mt(tape, generic_options(/*num_threads=*/0));
  double mt_checksum = 0.0;
  r.batched_mt_qps = measure_qps(batch_size, min_seconds, [&] {
    mt_checksum = 0.0;
    for (const double v : batched_mt.evaluate(assignments)) mt_checksum += v;
  });

  // The specialised kernel schedule at its defaults: fanin-2 segments,
  // cache-aware auto block, runtime ISA dispatch (PROBLP_SIMD honoured),
  // cache-shaped tape relayout unless --no-relayout.
  ac::BatchEvaluator simd_batched(tape, schedule_options);
  double simd_checksum = 0.0;
  r.simd_qps = measure_qps(batch_size, min_seconds, [&] {
    simd_checksum = 0.0;
    for (const double v : simd_batched.evaluate(assignments)) simd_checksum += v;
  });

  // The unified runtime: same sweeps behind the InferenceSession API.  wrap()
  // evaluates the given arena verbatim and the session defaults now run the
  // kernel-schedule backend, so session_batched must track simd_qps.
  const auto model = runtime::CompiledModel::wrap(circuit);
  runtime::SessionOptions session_options;
  session_options.batch = schedule_options;
  runtime::InferenceSession session(model, session_options);
  double session_checksum = 0.0;
  r.session_qps = measure_qps(batch_size, min_seconds, [&] {
    session_checksum = 0.0;
    for (const auto& a : assignments) session_checksum += session.marginal(a);
  });

  double session_batched_checksum = 0.0;
  r.session_batched_qps = measure_qps(batch_size, min_seconds, [&] {
    session_batched_checksum = 0.0;
    for (const double v : session.marginal(assignments)) session_batched_checksum += v;
  });

  // The emulated low-precision datapath behind the same session API, on the
  // requested fixed format (default 24-bit, the shape the ALARM analyses
  // select).  Singles run the per-query Fixed/FloatTapeEvaluator — the
  // pre-batching serving path — batches the SoA raw-word engine in its
  // pre-schedule trajectory shape, single- and multi-threaded, plus the
  // specialised fanin-2 schedule at session defaults (simd_lowprec_qps —
  // narrow formats ride the lane-parallel u32 datapath transparently).
  runtime::SessionOptions lp_options =
      runtime::SessionOptions::low_precision(Representation::of(lp_fmt));
  lp_options.batch = generic_options();
  runtime::InferenceSession lp_session(model, lp_options);
  double lp_checksum = 0.0;
  r.lowprec_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_checksum = 0.0;
    for (const auto& a : assignments) lp_checksum += lp_session.marginal(a);
  });

  double lp_batched_checksum = 0.0;
  r.lowprec_batched_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_batched_checksum = 0.0;
    for (const double v : lp_session.marginal(assignments)) lp_batched_checksum += v;
  });

  runtime::SessionOptions lp_mt_options =
      runtime::SessionOptions::low_precision(Representation::of(lp_fmt));
  lp_mt_options.batch = generic_options(/*num_threads=*/0);
  runtime::InferenceSession lp_mt_session(model, lp_mt_options);
  double lp_mt_checksum = 0.0;
  r.lowprec_batched_mt_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_mt_checksum = 0.0;
    for (const double v : lp_mt_session.marginal(assignments)) lp_mt_checksum += v;
  });

  runtime::SessionOptions lp_simd_options =
      runtime::SessionOptions::low_precision(Representation::of(lp_fmt));
  lp_simd_options.batch = schedule_options;
  runtime::InferenceSession lp_simd_session(model, lp_simd_options);
  double lp_simd_checksum = 0.0;
  r.simd_lowprec_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_simd_checksum = 0.0;
    for (const double v : lp_simd_session.marginal(assignments)) lp_simd_checksum += v;
  });

  // The datapath row, on the raw engine at defaults: narrow formats
  // dispatch the lane-parallel u32 kernels, wide ones the u128 schedule
  // path — `lowprec_datapath` records which this run measured.
  ac::FixedBatchEvaluator narrow_eval(tape, lp_fmt, lowprec::RoundingMode::kNearestEven,
                                      schedule_options);
  double lp_narrow_checksum = 0.0;
  r.simd_lowprec_narrow_qps = measure_qps(batch_size, min_seconds, [&] {
    lp_narrow_checksum = 0.0;
    for (const double v : narrow_eval.evaluate(assignments)) lp_narrow_checksum += v;
  });

  // u32-vs-u128 parity pin: the same format forced onto the wide raw
  // datapath must reproduce the checksum bit for bit (one pass suffices —
  // the paths are bit-identical per query or broken).
  ac::BatchEvaluator::Options wide_options = schedule_options;
  wide_options.force_wide_raw = true;
  ac::FixedBatchEvaluator wide_eval(tape, lp_fmt, lowprec::RoundingMode::kNearestEven,
                                    wide_options);
  double lp_wide_checksum = 0.0;
  for (const double v : wide_eval.evaluate(assignments)) lp_wide_checksum += v;

  // The decomposed SoftFloat datapath on the requested float format: the
  // raw float engine at schedule defaults (lane-eligible mantissas split
  // each FloatRaw block into an i32 exponent row and a u32/u64 significand
  // row and run the branch-free lane kernels) against the same format
  // pinned to the interleaved wide path — the lane-serial reference row
  // the acceptance ratio is measured against.
  ac::FloatBatchEvaluator float_eval(tape, fl_fmt, lowprec::RoundingMode::kNearestEven,
                                     schedule_options);
  double fl_lane_checksum = 0.0;
  r.simd_lowprec_float_qps = measure_qps(batch_size, min_seconds, [&] {
    fl_lane_checksum = 0.0;
    for (const double v : float_eval.evaluate(assignments)) fl_lane_checksum += v;
  });

  ac::FloatBatchEvaluator float_wide_eval(tape, fl_fmt, lowprec::RoundingMode::kNearestEven,
                                          wide_options);
  double fl_wide_checksum = 0.0;
  r.simd_lowprec_float_wide_qps = measure_qps(batch_size, min_seconds, [&] {
    fl_wide_checksum = 0.0;
    for (const double v : float_wide_eval.evaluate(assignments)) fl_wide_checksum += v;
  });

  // The engines are bit-identical by construction; a drifting checksum
  // means the bench is measuring a broken engine.
  if (interp_checksum != tape_checksum || interp_checksum != batched_checksum ||
      interp_checksum != mt_checksum || interp_checksum != simd_checksum ||
      interp_checksum != session_checksum || interp_checksum != session_batched_checksum) {
    std::fprintf(stderr, "PARITY VIOLATION on %s: %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 name, interp_checksum, tape_checksum, batched_checksum, mt_checksum,
                 simd_checksum, session_checksum, session_batched_checksum);
    std::exit(1);
  }
  if (lp_checksum != lp_batched_checksum || lp_checksum != lp_mt_checksum ||
      lp_checksum != lp_simd_checksum || lp_checksum != lp_narrow_checksum ||
      lp_checksum != lp_wide_checksum) {
    std::fprintf(stderr,
                 "LOWPREC PARITY VIOLATION on %s: %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 name, lp_checksum, lp_batched_checksum, lp_mt_checksum, lp_simd_checksum,
                 lp_narrow_checksum, lp_wide_checksum);
    std::exit(1);
  }
  if (fl_lane_checksum != fl_wide_checksum) {
    std::fprintf(stderr, "FLOAT LANE-VS-WIDE PARITY VIOLATION on %s: %.17g %.17g\n", name,
                 fl_lane_checksum, fl_wide_checksum);
    std::exit(1);
  }

  const ac::CircuitStats stats = circuit.stats();
  const ac::TapeLayoutStats& layout_stats = tape.layout().stats();
  std::printf(
      "{\"bench\":\"eval_throughput\",\"circuit\":\"%s\",\"nodes\":%zu,\"edges\":%zu,"
      "\"batch\":%zu,\"threads\":%d,\"isa\":\"%s\",\"relayout\":%s,"
      "\"slots\":%zu,\"max_live\":%zu,\"buffer_bytes_per_query\":%zu,"
      "\"lowprec_fixed_bits\":%d,"
      "\"lowprec_datapath\":\"%s\",\"interpreter_qps\":%.0f,"
      "\"tape_qps\":%.0f,\"batched_qps\":%.0f,\"batched_mt_qps\":%.0f,\"simd_qps\":%.0f,"
      "\"session_qps\":%.0f,\"session_batched_qps\":%.0f,\"lowprec_qps\":%.0f,"
      "\"lowprec_batched_qps\":%.0f,\"lowprec_batched_mt_qps\":%.0f,"
      "\"simd_lowprec_qps\":%.0f,\"simd_lowprec_narrow_qps\":%.0f,"
      "\"lowprec_float_fmt\":\"%d,%d\",\"lowprec_float_datapath\":\"%s\","
      "\"simd_lowprec_float_qps\":%.0f,\"simd_lowprec_float_wide_qps\":%.0f,"
      "\"speedup_tape\":%.2f,\"speedup_batched\":%.2f,"
      "\"speedup_simd\":%.2f,\"speedup_session_batched\":%.2f,"
      "\"speedup_lowprec_batched\":%.2f,\"speedup_simd_lowprec\":%.2f,"
      "\"speedup_float_lane\":%.2f,"
      "\"parity_checksum\":\"%.17g\",\"lowprec_parity_checksum\":\"%.17g\","
      "\"lowprec_float_parity_checksum\":\"%.17g\"}\n",
      name, stats.num_nodes, stats.num_edges, batch_size, batched_mt.options().num_threads,
      ac::simd::level_name(simd_batched.simd_level()), relayout ? "true" : "false",
      simd_batched.num_rows(), layout_stats.max_live,
      simd_batched.num_rows() * sizeof(double), lp_fmt.total_bits(),
      narrow_eval.narrow_datapath() ? "u32" : "u128", r.interpreter_qps, r.tape_qps,
      r.batched_qps, r.batched_mt_qps, r.simd_qps, r.session_qps, r.session_batched_qps,
      r.lowprec_qps, r.lowprec_batched_qps, r.lowprec_batched_mt_qps, r.simd_lowprec_qps,
      r.simd_lowprec_narrow_qps, fl_fmt.exponent_bits, fl_fmt.mantissa_bits,
      float_eval.float_lane_bits() == 32
          ? "lane32"
          : (float_eval.float_lane_bits() == 64 ? "lane64" : "wide"),
      r.simd_lowprec_float_qps, r.simd_lowprec_float_wide_qps,
      r.tape_qps / r.interpreter_qps, r.batched_qps / r.interpreter_qps,
      r.simd_qps / r.batched_qps, r.session_batched_qps / r.interpreter_qps,
      r.lowprec_batched_qps / r.lowprec_qps, r.simd_lowprec_qps / r.lowprec_batched_qps,
      r.simd_lowprec_float_qps / r.simd_lowprec_float_wide_qps, interp_checksum,
      lp_checksum, fl_lane_checksum);
  return r;
}

// The precision-escalation serving row (--escalation=E,M): one batch served
// three ways — the narrow float format with fallback off, the exact double
// backend, and the narrow format with escalate-to-exact fallback — printing
// one JSON line
//
//   {"bench":"eval_escalation","circuit":"alarm","batch":512,
//    "float_fmt":"6,4","natural_flagged_fraction":...,"flagged":...,
//    "flagged_fraction":...,"fallback_off_qps":...,"exact_qps":...,
//    "escalated_qps":...,"overhead_pct":...}
//
// Under-/overflow status correlates across a circuit's queries (they share
// subcircuits, so the smallest intermediate magnitudes cluster), which
// makes the *natural* flagged fraction of a batch jump with the exponent
// width — on ALARM, E=7 flags nothing and E=6 flags ~76%.  The acceptance
// regime is a mostly-clean serving mix, so when the natural fraction
// exceeds 10% the bench composes one: every clean query (cycled to fill),
// plus flagged queries capped at 10% of the batch.
// `natural_flagged_fraction` records the untouched batch's fraction,
// `flagged`/`flagged_fraction` the mix actually measured.
//
// The serving contract is checked in-process on the measured mix: every
// flagged query's escalated answer must be bitwise the exact backend's,
// every clean query's bitwise the fallback-off engine's, and the per-query
// provenance must record the climb — the bench exits non-zero on any
// violation, so a recorded row is also a passed acceptance check.
// overhead_pct is the wall-time cost of escalation relative to
// fallback-off serving (off_qps / escalated_qps - 1); the acceptance bar
// is <= 30% at a flagged fraction <= 10%.
void run_escalation(const char* name, const ac::Circuit& circuit,
                    const std::vector<ac::PartialAssignment>& natural, double min_seconds,
                    lowprec::FloatFormat fmt) {
  const std::size_t batch_size = natural.size();
  const auto model = runtime::CompiledModel::wrap(circuit);
  const Representation repr = Representation::of(fmt);

  runtime::InferenceSession off_session(model,
                                        runtime::SessionOptions::low_precision(repr));

  // Flag census of the natural batch, then the measured serving mix.
  off_session.marginal(natural);
  std::vector<std::size_t> clean_idx, flagged_idx;
  for (std::size_t i = 0; i < batch_size; ++i) {
    (off_session.last_query_flags()[i].any() ? flagged_idx : clean_idx).push_back(i);
  }
  const double natural_fraction =
      static_cast<double>(flagged_idx.size()) / static_cast<double>(batch_size);

  std::vector<ac::PartialAssignment> assignments;
  if (flagged_idx.size() * 10 <= batch_size || clean_idx.empty()) {
    assignments = natural;  // already in the acceptance regime (or unmixable)
  } else {
    const std::size_t take_flagged = batch_size / 10;
    for (std::size_t i = 0; i < take_flagged; ++i) {
      assignments.push_back(natural[flagged_idx[i % flagged_idx.size()]]);
    }
    for (std::size_t i = 0; assignments.size() < batch_size; ++i) {
      assignments.push_back(natural[clean_idx[i % clean_idx.size()]]);
    }
  }

  double off_checksum = 0.0;
  const double off_qps = measure_qps(batch_size, min_seconds, [&] {
    off_checksum = 0.0;
    for (const double v : off_session.marginal(assignments)) off_checksum += v;
  });
  const std::vector<double> base_values = off_session.marginal(assignments);
  const std::vector<lowprec::ArithFlags> base_flags = off_session.last_query_flags();
  std::size_t flagged = 0;
  for (const auto& f : base_flags) flagged += f.any() ? 1u : 0u;

  runtime::InferenceSession exact_session(model);
  double exact_checksum = 0.0;
  const double exact_qps = measure_qps(batch_size, min_seconds, [&] {
    exact_checksum = 0.0;
    for (const double v : exact_session.marginal(assignments)) exact_checksum += v;
  });
  const std::vector<double> exact_values = exact_session.marginal(assignments);

  runtime::SessionOptions esc_options = runtime::SessionOptions::low_precision(repr);
  esc_options.fallback = runtime::FallbackPolicy::to_exact();
  runtime::InferenceSession esc_session(model, esc_options);
  double esc_checksum = 0.0;
  const double esc_qps = measure_qps(batch_size, min_seconds, [&] {
    esc_checksum = 0.0;
    for (const double v : esc_session.marginal(assignments)) esc_checksum += v;
  });

  // The serving contract, checked on the answers actually served: flagged
  // queries are bitwise the exact backend's, clean ones bitwise the
  // fallback-off engine's, and provenance records exactly one climb.
  const std::vector<double>& served = esc_session.marginal(assignments);
  const auto& provenance = esc_session.last_provenance();
  for (std::size_t i = 0; i < batch_size; ++i) {
    const bool was_flagged = base_flags[i].any();
    const double want = was_flagged ? exact_values[i] : base_values[i];
    if (std::memcmp(&served[i], &want, sizeof(double)) != 0 ||
        provenance[i].escalations != (was_flagged ? 1 : 0)) {
      std::fprintf(stderr,
                   "ESCALATION PARITY VIOLATION on %s query %zu (flagged=%d): "
                   "served %.17g want %.17g escalations %d\n",
                   name, i, was_flagged ? 1 : 0, served[i], want, provenance[i].escalations);
      std::exit(1);
    }
  }
  if (esc_session.last_flags().any()) {
    std::fprintf(stderr, "ESCALATION left surviving flags on %s\n", name);
    std::exit(1);
  }

  std::printf(
      "{\"bench\":\"eval_escalation\",\"circuit\":\"%s\",\"batch\":%zu,"
      "\"float_fmt\":\"%d,%d\",\"natural_flagged_fraction\":%.4f,"
      "\"flagged\":%zu,\"flagged_fraction\":%.4f,"
      "\"fallback_off_qps\":%.0f,\"exact_qps\":%.0f,\"escalated_qps\":%.0f,"
      "\"overhead_pct\":%.1f}\n",
      name, batch_size, fmt.exponent_bits, fmt.mantissa_bits, natural_fraction, flagged,
      static_cast<double>(flagged) / static_cast<double>(batch_size), off_qps, exact_qps,
      esc_qps, (off_qps / esc_qps - 1.0) * 100.0);
}

// The single circuit list: every runnable circuit by canonical name (the
// JSON `circuit` field), plus accepted aliases.  scripts/bench.sh and CI
// select from this list via --circuits; adding a circuit here is the whole
// registration.
bool wants(const std::vector<std::string>& selected, const char* canonical,
           const char* alias = nullptr) {
  for (const std::string& s : selected) {
    if (s == canonical || (alias != nullptr && s == alias)) return true;
  }
  return false;
}

void run_all(const std::vector<std::string>& circuits, double min_seconds,
             lowprec::FixedFormat lp_fmt, lowprec::FloatFormat fl_fmt, bool relayout,
             const lowprec::FloatFormat* escalation) {
  bool ran_any = false;
  // ALARM: the paper's hardest benchmark, 512 sampled leaf-sensor evidence
  // sets (the acceptance setting asks for >= 256).
  if (wants(circuits, "alarm")) {
    const datasets::Benchmark alarm = datasets::make_alarm_benchmark(1, 512);
    const auto assignments = bench::to_assignments(alarm.test_evidence);
    if (escalation != nullptr) {
      run_escalation("alarm", alarm.circuit, assignments, min_seconds, *escalation);
    } else {
      run_circuit("alarm", alarm.circuit, assignments, min_seconds, lp_fmt, fl_fmt, relayout);
    }
    ran_any = true;
  }
  // Synthetic: a VE-compiled random 36-variable network — denser operators
  // than ALARM's, exercising the tape on compiler-emitted shapes.  This is
  // the relayout showcase: a big tape with a small live frontier.
  if (wants(circuits, "synthetic_ve36", "ve36")) {
    Rng rng(42);
    bn::RandomNetworkSpec spec;
    spec.num_variables = 36;
    spec.max_parents = 3;
    spec.edge_probability = 0.25;
    const bn::BayesianNetwork network = bn::make_random_network(spec, rng);
    const ac::Circuit circuit = compile::compile_network(network);
    const auto assignments = sample_evidence(circuit.cardinalities(), 512, 0.4, rng);
    if (escalation != nullptr) {
      run_escalation("synthetic_ve36", circuit, assignments, min_seconds, *escalation);
    } else {
      run_circuit("synthetic_ve36", circuit, assignments, min_seconds, lp_fmt, fl_fmt,
                  relayout);
    }
    ran_any = true;
  }
  if (!ran_any) {
    std::fprintf(stderr,
                 "bench_eval_throughput: no known circuit in the --circuits list "
                 "(known: alarm, synthetic_ve36/ve36)\n");
    std::exit(2);
  }
}

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  // Flags first, then the optional positional fixed-format override `I F`
  // (e.g. `2 30` for a 32-bit wide-datapath run; CI pins both datapaths
  // this way).  A half-given or non-numeric format must fail loudly, never
  // silently record a row for a format that was not requested.
  const auto parse_bits = [](const char* arg) {
    char* end = nullptr;
    const long v = std::strtol(arg, &end, 10);
    // Bound before narrowing: a long that would wrap the int (or saturate
    // strtol) must not alias a different, valid format.
    if (end == arg || *end != '\0' || v < -1000 || v > 1000) {
      std::fprintf(stderr, "bench_eval_throughput: '%s' is not a sane bit count\n", arg);
      std::exit(2);
    }
    return static_cast<int>(v);
  };

  std::vector<std::string> circuits;
  bool relayout = true;
  double min_seconds = 0.25;
  // The float rows' format, overridable as --float=E,M (e.g. --float=8,30
  // for a u64-lane mantissa, --float=8,35 for the wide interleaved path);
  // the default is the float32 shape, which rides the u32 lanes.
  problp::lowprec::FloatFormat fl_fmt{8, 23};
  // Engaged by --escalation=E,M: run escalation serving rows instead of the
  // throughput rows.
  std::optional<problp::lowprec::FloatFormat> escalation_fmt;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      // Longer windows average over scheduler/VM noise; the CI smoke keeps
      // the fast default, trajectory-recording runs pass 1.0 or more.
      char* end = nullptr;
      min_seconds = std::strtod(arg + 14, &end);
      if (end == arg + 14 || *end != '\0' || !(min_seconds > 0.0) || min_seconds > 60.0) {
        std::fprintf(stderr, "bench_eval_throughput: bad --min-seconds value '%s'\n", arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--circuits=", 11) == 0) {
      // Comma-separated canonical names or aliases; run_all rejects a list
      // that matches nothing.
      std::string item;
      for (const char* p = arg + 11;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) circuits.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (std::strncmp(arg, "--float=", 8) == 0) {
      // Exactly "E,M" — a malformed value must fail loudly, never record a
      // float row for a format that was not requested.
      const char* comma = std::strchr(arg + 8, ',');
      if (comma == nullptr || comma == arg + 8 || comma[1] == '\0') {
        std::fprintf(stderr, "bench_eval_throughput: bad --float value '%s' (want E,M)\n",
                     arg);
        return 2;
      }
      const std::string exp_bits(arg + 8, comma);
      fl_fmt.exponent_bits = parse_bits(exp_bits.c_str());
      fl_fmt.mantissa_bits = parse_bits(comma + 1);
    } else if (std::strncmp(arg, "--escalation=", 13) == 0) {
      // Escalation serving mode: run the eval_escalation row (instead of
      // the throughput row) on the selected circuits, with E,M as the
      // overflow/underflow-prone base format the escalating session serves
      // from.  Same strict parse as --float.
      const char* comma = std::strchr(arg + 13, ',');
      if (comma == nullptr || comma == arg + 13 || comma[1] == '\0') {
        std::fprintf(stderr,
                     "bench_eval_throughput: bad --escalation value '%s' (want E,M)\n", arg);
        return 2;
      }
      const std::string exp_bits(arg + 13, comma);
      problp::lowprec::FloatFormat fmt;
      fmt.exponent_bits = parse_bits(exp_bits.c_str());
      fmt.mantissa_bits = parse_bits(comma + 1);
      escalation_fmt = fmt;
    } else if (std::strcmp(arg, "--no-relayout") == 0) {
      relayout = false;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "bench_eval_throughput: unknown flag '%s'\n", arg);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (circuits.empty()) circuits = {"alarm", "synthetic_ve36"};

  problp::lowprec::FixedFormat lp_fmt{2, 22};
  if (positional.size() == 2) {
    lp_fmt.integer_bits = parse_bits(positional[0]);
    lp_fmt.fraction_bits = parse_bits(positional[1]);
  } else if (!positional.empty()) {
    std::fprintf(stderr,
                 "usage: bench_eval_throughput [--circuits=name,...] [--no-relayout] "
                 "[--min-seconds=S] [--float=E,M] [--escalation=E,M] "
                 "[integer_bits fraction_bits]\n");
    return 2;
  }
  lp_fmt.validate();
  fl_fmt.validate();
  if (escalation_fmt) escalation_fmt->validate();
  problp::run_all(circuits, min_seconds, lp_fmt, fl_fmt, relayout,
                  escalation_fmt ? &*escalation_fmt : nullptr);
  return 0;
}
