// Reproduces Table 1: the operator-level energy models, tabulated across
// the widths the paper's experiments visit, plus google-benchmark micro
// timings of the bit-exact emulated operators (the repository's substitute
// for silicon: it shows the emulation itself is cheap enough to sweep).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "energy/op_models.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace problp {
namespace {

void print_table1() {
  std::printf("=== Table 1: energy models for arithmetic operators at 1V (TSMC 65nm fit) ===\n");
  std::printf("Operator        Energy (fJ)\n");
  std::printf("Fixed-pt add    7.8 N\n");
  std::printf("Fixed-pt mult   1.9 N^2 log2 N\n");
  std::printf("Float-pt add    44.74 (M+1)\n");
  std::printf("Float-pt mul    2.9 (M+1)^2 log2 (M+1)\n\n");

  TextTable table({"width", "fx add (fJ)", "fx mul (fJ)", "fl add (fJ, M=width)",
                   "fl mul (fJ, M=width)"});
  for (int w : {4, 8, 12, 14, 16, 23, 24, 32, 48}) {
    table.add_row({str_format("%d", w), str_format("%.1f", energy::fixed_add_fj(w)),
                   str_format("%.1f", energy::fixed_mul_fj(w)),
                   str_format("%.1f", energy::float_add_fj(w)),
                   str_format("%.1f", energy::float_mul_fj(w))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape checks (drive the fixed-vs-float selection in Table 2):\n");
  std::printf("  16b fixed mul %.0f fJ  vs  (M=14) float mul %.0f fJ  -> fixed wins at "
              "matching accuracy budgets\n",
              energy::fixed_mul_fj(16), energy::float_mul_fj(14));
  std::printf("  48b fixed mul %.0f fJ  vs  (M=14) float mul %.0f fJ  -> wide fixed loses: "
              "relative-error queries prefer float\n\n",
              energy::fixed_mul_fj(48), energy::float_mul_fj(14));
}

void BM_FixedMul(benchmark::State& state) {
  const lowprec::FixedFormat fmt{1, static_cast<int>(state.range(0))};
  lowprec::ArithFlags flags;
  Rng rng(1);
  const auto a = lowprec::FixedPoint::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  const auto b = lowprec::FixedPoint::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx_mul(a, b, flags));
  }
}
BENCHMARK(BM_FixedMul)->Arg(8)->Arg(16)->Arg(32)->MinTime(0.05);

void BM_FixedAdd(benchmark::State& state) {
  const lowprec::FixedFormat fmt{2, static_cast<int>(state.range(0))};
  lowprec::ArithFlags flags;
  Rng rng(2);
  const auto a = lowprec::FixedPoint::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  const auto b = lowprec::FixedPoint::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx_add(a, b, flags));
  }
}
BENCHMARK(BM_FixedAdd)->Arg(8)->Arg(32)->MinTime(0.05);

void BM_FloatMul(benchmark::State& state) {
  const lowprec::FloatFormat fmt{8, static_cast<int>(state.range(0))};
  lowprec::ArithFlags flags;
  Rng rng(3);
  const auto a = lowprec::SoftFloat::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  const auto b = lowprec::SoftFloat::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl_mul(a, b, flags));
  }
}
BENCHMARK(BM_FloatMul)->Arg(8)->Arg(23)->Arg(52)->MinTime(0.05);

void BM_FloatAdd(benchmark::State& state) {
  const lowprec::FloatFormat fmt{8, static_cast<int>(state.range(0))};
  lowprec::ArithFlags flags;
  Rng rng(4);
  const auto a = lowprec::SoftFloat::from_double(rng.uniform(0.1, 0.9), fmt, flags);
  const auto b = lowprec::SoftFloat::from_double(rng.uniform(0.001, 0.01), fmt, flags);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl_add(a, b, flags));
  }
}
BENCHMARK(BM_FloatAdd)->Arg(8)->Arg(23)->Arg(52)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
