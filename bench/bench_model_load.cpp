// Cold-load latency of the two model artifact formats: the legacy text
// artifact (parse both circuit arenas, recompile both tapes, relayout,
// reschedule) versus the binary mmap container (runtime/artifact.hpp —
// map, validate checksums, adopt the persisted arrays as views).
//
// One JSON line per run (scripts/bench.sh appends to BENCH_load.json):
//
//   {"bench":"model_load","circuit":"alarm","batch":512,
//    "text_bytes":...,"binary_bytes":...,
//    "text_load_ms":...,"binary_load_ms":...,"load_speedup":...,
//    "text_rss_delta_kb":...,"binary_rss_delta_kb":...,"mmap":true,
//    "parity_checksum":"...","fixed_parity_checksum":"...",
//    "float_parity_checksum":"..."}
//
// The load timings are in-process cold loads (fresh file, first touch of
// the mapping); rss_delta is the VmRSS growth across the load, the
// resident cost of *opening* a model before any query traffic.  The three
// checksums (exact double, fixed 2.22 nearest-even, float 8,23) are summed
// batched-marginal roots over the ALARM test evidence and must be
// bit-identical across the in-memory model, the text-loaded model and the
// mmap-loaded model — the bench exits non-zero on any drift, so CI gets
// zero-copy parity for free with the latency row.
//
// Acceptance for the artifact layer (ISSUE 8): binary_load_ms must beat
// text_load_ms by >= 20x on ALARM.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace problp {
namespace {

/// VmRSS in kB from /proc/self/status; 0 where procfs is unavailable.
long resident_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str(), "VmRSS: %ld", &kb);
      return kb;
    }
  }
  return 0;
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f.good() ? static_cast<std::size_t>(f.tellg()) : 0;
}

double checksum(const std::shared_ptr<const runtime::CompiledModel>& model,
                const std::vector<ac::PartialAssignment>& evidence,
                const runtime::SessionOptions& options) {
  runtime::InferenceSession session(model, options);
  double sum = 0.0;
  for (double v : session.marginal(evidence)) sum += v;
  return sum;
}

struct Checksums {
  double exact = 0.0;
  double fixed = 0.0;
  double flt = 0.0;
};

Checksums all_checksums(const std::shared_ptr<const runtime::CompiledModel>& model,
                        const std::vector<ac::PartialAssignment>& evidence) {
  Checksums c;
  c.exact = checksum(model, evidence, {});
  c.fixed = checksum(model, evidence,
                     runtime::SessionOptions::low_precision(
                         Representation::of(lowprec::FixedFormat{2, 22})));
  c.flt = checksum(model, evidence,
                   runtime::SessionOptions::low_precision(
                       Representation::of(lowprec::FloatFormat{8, 23})));
  return c;
}

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  return ba == bb;
}

}  // namespace

int run() {
  const datasets::Benchmark alarm = datasets::make_alarm_benchmark(1, 512);
  const std::vector<ac::PartialAssignment> evidence = bench::to_assignments(alarm.test_evidence);

  const auto model = runtime::CompiledModel::compile(alarm.network);
  // Analyze before saving so the artifact carries the report cache and the
  // selected format's quantised leaf cache — the shape a served model ships.
  model->analyze(errormodel::QuerySpec{errormodel::QueryType::kMarginal,
                                       errormodel::ToleranceKind::kAbsolute, 0.01});

  const std::string text_path = "/tmp/problp_bench_model.txt.pm";
  const std::string binary_path = "/tmp/problp_bench_model.pm";
  {
    std::ofstream out(text_path);
    out << model->to_text();
  }
  model->save(binary_path);

  const Checksums reference = all_checksums(model, evidence);

  // Best of 5 loads: the files were just written so the page cache is warm
  // for both formats — the repeats strip scheduler noise, not disk time,
  // keeping the comparison load-pipeline vs load-pipeline.  RSS delta is
  // taken on the first (coldest) iteration, before the process has faulted
  // either artifact in.
  const auto time_load = [](const std::string& path, long* rss_delta_kb) {
    double best_ms = 0.0;
    std::shared_ptr<const runtime::CompiledModel> loaded;
    for (int rep = 0; rep < 5; ++rep) {
      const long rss0 = resident_kb();
      const auto t0 = std::chrono::steady_clock::now();
      loaded = runtime::CompiledModel::load(path);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rep == 0) *rss_delta_kb = resident_kb() - rss0;
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return std::make_pair(best_ms, loaded);
  };

  long text_rss_kb = 0;
  long binary_rss_kb = 0;
  const auto [text_ms, text_model] = time_load(text_path, &text_rss_kb);
  const auto [binary_ms, binary_model] = time_load(binary_path, &binary_rss_kb);

  const Checksums text_sums = all_checksums(text_model, evidence);
  const Checksums binary_sums = all_checksums(binary_model, evidence);

  bool ok = true;
  const auto check = [&](const char* which, const Checksums& got) {
    if (!same_bits(got.exact, reference.exact) || !same_bits(got.fixed, reference.fixed) ||
        !same_bits(got.flt, reference.flt)) {
      std::fprintf(stderr,
                   "LOAD PARITY VIOLATION (%s): exact %.17g/%.17g fixed %.17g/%.17g "
                   "float %.17g/%.17g\n",
                   which, got.exact, reference.exact, got.fixed, reference.fixed, got.flt,
                   reference.flt);
      ok = false;
    }
  };
  check("text", text_sums);
  check("binary", binary_sums);

  std::printf(
      "{\"bench\":\"model_load\",\"circuit\":\"alarm\",\"batch\":%zu,"
      "\"text_bytes\":%zu,\"binary_bytes\":%zu,"
      "\"text_load_ms\":%.3f,\"binary_load_ms\":%.3f,\"load_speedup\":%.1f,"
      "\"text_rss_delta_kb\":%ld,\"binary_rss_delta_kb\":%ld,\"mmap\":%s,"
      "\"parity_checksum\":\"%.17g\",\"fixed_parity_checksum\":\"%.17g\","
      "\"float_parity_checksum\":\"%.17g\"}\n",
      evidence.size(), file_bytes(text_path), file_bytes(binary_path), text_ms, binary_ms,
      binary_ms > 0 ? text_ms / binary_ms : 0.0, text_rss_kb, binary_rss_kb,
      binary_model->memory_mapped() ? "true" : "false", reference.exact, reference.fixed,
      reference.flt);
  return ok ? 0 : 1;
}

}  // namespace problp

int main() { return problp::run(); }
