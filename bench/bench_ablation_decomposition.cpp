// Ablation: balanced vs chain decomposition of n-ary operators (§3.4
// stage 1, a design choice DESIGN.md calls out).
//
// The operator count — and hence the Table-1 predicted energy — is identical
// either way (an n-ary operator always becomes n-1 two-input operators); what
// changes is pipeline latency and the number of path-balancing registers,
// which shifts the netlist-level ("post-synthesis") energy and the pipeline
// fill time.  Balanced trees should win everywhere the circuit has wide
// operators (the Naive Bayes ACs); ALARM's VE-trace circuit has small fanins,
// so the gap should shrink.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ac/transform.hpp"
#include "bench_common.hpp"
#include "hw/generator.hpp"
#include "hw/netlist_energy.hpp"

namespace problp {
namespace {

void run_ablation() {
  std::printf("=== Ablation: balanced vs chain operator decomposition ===\n\n");
  TextTable table({"AC", "style", "2-in ops", "latency", "align regs", "total regs",
                   "netlist nJ (fx I=1,F=15)"});
  for (const auto& benchmark : datasets::make_all_benchmarks(1)) {
    for (const auto style : {ac::DecompositionStyle::kBalanced, ac::DecompositionStyle::kChain}) {
      const ac::Circuit binary = ac::binarize(benchmark.circuit, style).circuit;
      const hw::Netlist netlist = hw::generate_netlist(binary);
      const hw::NetlistStats stats = netlist.stats();
      const auto energy = hw::fixed_netlist_energy(netlist, lowprec::FixedFormat{1, 15});
      table.add_row({benchmark.name,
                     style == ac::DecompositionStyle::kBalanced ? "balanced" : "chain",
                     str_format("%zu", stats.adders + stats.multipliers + stats.maxes),
                     str_format("%d", stats.latency_cycles),
                     str_format("%zu", stats.alignment_registers),
                     str_format("%zu", stats.total_registers()),
                     str_format("%.3g", energy::fj_to_nj(energy.total_fj()))});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: identical operator counts, so the paper's Table-1 prediction is\n"
              "decomposition-invariant; chain decomposition pays in latency and alignment\n"
              "registers, which only the netlist-level estimate sees.\n\n");
}

void BM_GenerateNetlist(benchmark::State& state) {
  static const datasets::Benchmark* benchmark =
      new datasets::Benchmark(datasets::make_unimib_benchmark(1));
  const auto style = state.range(0) == 0 ? ac::DecompositionStyle::kBalanced
                                         : ac::DecompositionStyle::kChain;
  const ac::Circuit binary = ac::binarize(benchmark->circuit, style).circuit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::generate_netlist(binary));
  }
}
BENCHMARK(BM_GenerateNetlist)->Arg(0)->Arg(1)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
