// Reproduces Table 2: the complete ProbLP framework on all four benchmarks.
//
// For every (AC, query type, error tolerance) combination the paper reports,
// this harness prints:
//   * the optimal fixed-point representation I, F with predicted energy
//     (nJ/AC evaluation), or "> max" when no width meets the tolerance;
//   * the optimal float-point representation E, M with predicted energy;
//   * which one ProbLP selects (lower predicted energy);
//   * the max error observed on the held-out test set under the selected
//     representation (must be below the tolerance);
//   * the netlist-level "post-synthesis" energy estimate of the generated
//     hardware;
//   * the 32-bit-float (E=8, M=23) reference energy.
//
// Expected shape (paper): fixed wins marginal+absolute rows; float wins (or
// is the only option for) relative/conditional rows; fixed needs > 60
// fraction bits for relative bounds on the larger ACs; observed error <<
// tolerance everywhere; selected representation beats the 32b float
// reference by ~1.5-3x.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

struct Row {
  const char* benchmark;
  QuerySpec spec;
};

std::string query_cell(const QuerySpec& spec) {
  const char* q = spec.query == QueryType::kMarginal      ? "Marg. prob."
                  : spec.query == QueryType::kConditional ? "Cond. prob."
                                                          : "MPE";
  const char* k = spec.kind == ToleranceKind::kAbsolute ? "abs" : "rel";
  return str_format("%s %s err %.2g", q, k, spec.tolerance);
}

void run_table2() {
  // The paper's row set: all four combinations for HAR, two for the rest.
  const std::vector<std::pair<datasets::Benchmark, std::vector<QuerySpec>>> suites = [] {
    std::vector<std::pair<datasets::Benchmark, std::vector<QuerySpec>>> out;
    out.emplace_back(datasets::make_har_benchmark(1),
                     std::vector<QuerySpec>{
                         {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01},
                         {QueryType::kMarginal, ToleranceKind::kRelative, 0.01},
                         {QueryType::kConditional, ToleranceKind::kAbsolute, 0.01},
                         {QueryType::kConditional, ToleranceKind::kRelative, 0.01}});
    out.emplace_back(datasets::make_unimib_benchmark(1),
                     std::vector<QuerySpec>{
                         {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01},
                         {QueryType::kConditional, ToleranceKind::kRelative, 0.01}});
    out.emplace_back(datasets::make_uiwads_benchmark(1),
                     std::vector<QuerySpec>{
                         {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01},
                         {QueryType::kMarginal, ToleranceKind::kRelative, 0.01}});
    out.emplace_back(datasets::make_alarm_benchmark(1, 1000),
                     std::vector<QuerySpec>{
                         {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01},
                         {QueryType::kConditional, ToleranceKind::kRelative, 0.01}});
    return out;
  }();

  std::printf("=== Table 2: optimal representations, selection, observed error, energy ===\n");
  std::printf("(energies in nJ per AC evaluation; selected representation in CAPS)\n\n");
  TextTable table({"AC", "Type of query", "Opt Fx (I,F / pred nJ)", "Opt Fl (E,M / pred nJ)",
                   "Selected", "Max err observed", "Post-synth nJ", "32b Fl-pt nJ"});

  for (const auto& [benchmark, specs] : suites) {
    const auto model = runtime::CompiledModel::compile(benchmark.circuit);
    const auto assignments = bench::to_assignments(benchmark.test_evidence);
    for (const QuerySpec& spec : specs) {
      const AnalysisReport report = model->analyze(spec);

      std::string observed_cell = "-";
      std::string postsynth_cell = "-";
      if (report.any_feasible) {
        const ObservedError observed =
            (spec.query == QueryType::kConditional)
                ? measure_conditional_error(model, benchmark.query_var, assignments,
                                            report.selected)
                : (spec.query == QueryType::kMpe)
                      ? measure_mpe_error(model, assignments, report.selected)
                      : measure_marginal_error(model, assignments, report.selected);
        const double max_err = observed.max_of(spec.kind);
        observed_cell = sci(max_err);
        if (max_err > spec.tolerance || observed.flags.any()) observed_cell += " (!)";

        const HardwareReport hardware = model->generate_hardware(report);
        postsynth_cell = str_format("%.2g", hardware.netlist_energy_nj);
      }
      table.add_row({benchmark.name, query_cell(spec),
                     bench::fixed_repr_cell(report.fixed_plan, report.fixed_energy_nj),
                     bench::float_repr_cell(report.float_plan, report.float_energy_nj),
                     bench::selection_cell(report), observed_cell, postsynth_cell,
                     str_format("%.2g", report.float32_reference_nj)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Circuit inventory:\n");
  for (const auto& [benchmark, specs] : suites) {
    (void)specs;
    std::printf("  %-8s %s\n", benchmark.name.c_str(), benchmark.circuit.stats().to_string().c_str());
  }
  std::printf("\n");
}

// Micro benchmark: full framework analysis on the smallest AC — the cost of
// one ProbLP "compile-time" decision.  The runtime caches reports per spec,
// so steady state measures the cache hit serving threads would see.
void BM_FrameworkAnalyze(benchmark::State& state) {
  static const datasets::Benchmark* benchmark =
      new datasets::Benchmark(datasets::make_uiwads_benchmark(1));
  static const auto* model = new std::shared_ptr<const runtime::CompiledModel>(
      runtime::CompiledModel::compile(benchmark->circuit));
  for (auto _ : state) {
    benchmark::DoNotOptimize((*model)->analyze(
        {QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01}));
  }
}
BENCHMARK(BM_FrameworkAnalyze)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::run_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
