// Ablation: round-to-nearest vs truncation (§3.1 assumes round-to-nearest;
// truncating operators are cheaper in silicon but double the per-operation
// error term to 2^-F / 2^-M).
//
// For the ALARM AC, this bench reports, under both rounding disciplines:
// the minimal widths meeting the 0.01 tolerances, the resulting predicted
// energy, and the observed test-set error — quantifying what the
// round-to-nearest hardware buys.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "errormodel/bitwidth_search.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

void run_ablation() {
  const datasets::Benchmark benchmark = datasets::make_alarm_benchmark(1, 500);
  const Framework nearest_framework(benchmark.circuit);

  FrameworkOptions trunc_options;
  trunc_options.search.fixed_options.rounding = lowprec::RoundingMode::kTruncate;
  trunc_options.search.float_rounding = lowprec::RoundingMode::kTruncate;
  const Framework truncate_framework(benchmark.circuit, trunc_options);

  const auto assignments = bench::to_assignments(benchmark.test_evidence);
  const QuerySpec marg_abs{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
  const QuerySpec marg_rel{QueryType::kMarginal, ToleranceKind::kRelative, 0.01};

  std::printf("=== Ablation: rounding discipline on ALARM (tolerance 0.01) ===\n\n");
  TextTable table({"query", "rounding", "opt fixed (I,F)", "opt float (E,M)",
                   "selected", "pred nJ", "max observed err"});
  struct Case {
    const Framework* framework;
    lowprec::RoundingMode mode;
    const char* label;
  };
  const Case cases[] = {{&nearest_framework, lowprec::RoundingMode::kNearestEven, "nearest-even"},
                        {&truncate_framework, lowprec::RoundingMode::kTruncate, "truncate"}};
  for (const QuerySpec& spec : {marg_abs, marg_rel}) {
    for (const Case& c : cases) {
      const AnalysisReport report = c.framework->analyze(spec);
      std::string observed = "-";
      double energy_nj = 0.0;
      if (report.any_feasible) {
        const ObservedError err = measure_marginal_error(c.framework->binary_circuit(),
                                                         assignments, report.selected, c.mode);
        observed = sci(err.max_of(spec.kind));
        if (err.max_of(spec.kind) > spec.tolerance) observed += " (!)";
        energy_nj = report.selected.kind == Representation::Kind::kFixed
                        ? report.fixed_energy_nj
                        : report.float_energy_nj;
      }
      table.add_row({spec.kind == ToleranceKind::kAbsolute ? "marg abs" : "marg rel", c.label,
                     bench::fixed_repr_cell(report.fixed_plan, report.fixed_energy_nj),
                     bench::float_repr_cell(report.float_plan, report.float_energy_nj),
                     bench::selection_cell(report), str_format("%.3g", energy_nj), observed});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: truncation's doubled error step costs ~1 extra fraction/mantissa\n"
              "bit for the same tolerance — a few percent of energy on these circuits, so\n"
              "round-to-nearest operators (the paper's assumption) are the right default.\n\n");
}

void BM_BoundPropagation(benchmark::State& state) {
  static const datasets::Benchmark* benchmark =
      new datasets::Benchmark(datasets::make_alarm_benchmark(1, 1));
  static const Framework* framework = new Framework(benchmark->circuit);
  static const errormodel::CircuitErrorModel* model =
      new errormodel::CircuitErrorModel(
          errormodel::CircuitErrorModel::build(framework->binary_circuit()));
  const lowprec::FixedFormat fmt{1, static_cast<int>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(errormodel::propagate_fixed_error(
        framework->binary_circuit(), fmt, model->range.max_value));
  }
}
BENCHMARK(BM_BoundPropagation)->Arg(14)->Arg(40)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
