// Load bench for the async serving front-end (src/serve/): how much of the
// raw batched engine's throughput survives the queue/batcher/worker stack,
// and what the tail looks like under saturation and overload.
//
// Three phases on the ALARM model (the acceptance circuit):
//
//   1. raw        — the reference: one InferenceSession driving the batched
//                   marginal sweep directly at the server's batch size.
//   2. closed loop — 1..N client threads, each keeping a window of
//                   outstanding futures (so the batcher sees real batches),
//                   swept across 1 and 2 worker shards.  Per-row: workers,
//                   clients, qps, client-observed p50/p99 latency.  The
//                   headline ratio `throughput_ratio` = best closed-loop qps
//                   / raw qps (acceptance: >= 0.85 — coalescing within 15%
//                   of the raw engine at saturation).
//   3. open loop  — requests arrive at 2x the measured saturation rate with
//                   per-request deadlines and the overload controller armed
//                   (degrade past half the queue, shed past 3/4).  Nothing
//                   waits for completions: this is the overload-robustness
//                   probe.  The bench FAILS (non-zero exit, no JSON) unless
//                   every submitted request completed exactly once with a
//                   value, a typed timeout, or a typed rejection — the same
//                   accounting identity the serve tests pin down — so a row
//                   in BENCH_serve.json is itself evidence of overload
//                   safety, not just speed.
//
// Output: one JSON line on stdout (scripts/bench.sh appends it to
// BENCH_serve.json):
//
//   {"bench":"serve_load","circuit":"alarm","nodes":...,"batch_max":...,
//    "flush_deadline_us":...,"raw_batched_qps":...,
//    "closed":[{"workers":1,"clients":1,"qps":...,"p50_us":...,
//     "p99_us":...},...],
//    "throughput_ratio":...,
//    "open_loop":{"workers":2,"offered_qps":...,"duration_s":...,
//     "submitted":...,"ok":...,"timed_out":...,"rejected":...,
//     "degraded":...,"p50_us":...,"p99_us":...},"exactly_once":true}
//
// Flags: --min-seconds=S (measurement window per phase, default 0.3),
//        --clients=N (max closed-loop clients, default 8).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "datasets/benchmark_suite.hpp"
#include "serve/server.hpp"

namespace problp::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

double quantile_us(std::vector<double>& latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const std::size_t idx = std::min(
      latencies_us.size() - 1, static_cast<std::size_t>(q * static_cast<double>(latencies_us.size())));
  return latencies_us[idx];
}

struct ClosedLoopRow {
  int clients = 0;
  int workers = 1;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

serve::ServerOptions serving_options() {
  serve::ServerOptions options;
  options.capacity = 1024;
  options.batch_max = 256;
  options.flush_deadline = std::chrono::microseconds(1000);
  options.workers = 1;  // one shard: the ratio compares against ONE raw engine
  return options;
}

/// Windowed closed loop: each client keeps up to `window` requests in
/// flight (an atomic outstanding counter; the callback completion API —
/// the serving stack's cheap path — decrements it from the worker thread).
/// A strict one-outstanding-request client can never exceed
/// clients / flush_deadline qps (each round waits out the coalescing
/// linger), so the window is what lets the batcher fill real batches.
/// Latency is sampled every 16th request: client-observed percentiles
/// survive sampling, and a clock read per request would be measurement
/// cost charged to the system under test.
ClosedLoopRow closed_loop(serve::Server& server, const std::vector<ac::PartialAssignment>& pool,
                          int clients, int window, double min_seconds) {
  struct Client {
    std::atomic<std::uint64_t> outstanding{0};
    std::atomic<std::uint64_t> completed{0};
    std::mutex mutex;
    std::vector<double> latencies_us;
  };
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<Client>> state;
  for (int c = 0; c < clients; ++c) state.push_back(std::make_unique<Client>());
  std::vector<std::thread> threads;
  const auto start = SteadyClock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client& client = *state[static_cast<std::size_t>(c)];
      std::size_t i = static_cast<std::size_t>(c);
      std::uint64_t submitted = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        while (client.outstanding.load(std::memory_order_acquire) >=
               static_cast<std::uint64_t>(window)) {
          std::this_thread::yield();
          if (stop.load(std::memory_order_relaxed)) break;
        }
        serve::Request request;
        request.query = errormodel::QueryType::kMarginal;
        request.evidence = pool[i++ % pool.size()];
        const bool sampled = (submitted++ % 16) == 0;
        const auto sent = sampled ? SteadyClock::now() : SteadyClock::time_point{};
        client.outstanding.fetch_add(1, std::memory_order_relaxed);
        server.submit(std::move(request), [&client, sent](serve::Response response) {
          if (response.status == serve::Status::kOk) {  // unloaded: kOk only
            client.completed.fetch_add(1, std::memory_order_relaxed);
            if (sent != SteadyClock::time_point{}) {
              const double us =
                  std::chrono::duration<double, std::micro>(SteadyClock::now() - sent).count();
              std::lock_guard<std::mutex> lock(client.mutex);
              client.latencies_us.push_back(us);
            }
          }
          client.outstanding.fetch_sub(1, std::memory_order_release);
        });
      }
      // Drain: every callback fires before shutdown() returns, but this
      // client must not exit while its submissions are still in flight.
      while (client.outstanding.load(std::memory_order_acquire) > 0) std::this_thread::yield();
    });
  }
  while (seconds_since(start) < min_seconds) std::this_thread::yield();
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = seconds_since(start);
  std::uint64_t completed = 0;
  std::vector<double> latencies_us;
  for (auto& client : state) {
    completed += client->completed.load();
    latencies_us.insert(latencies_us.end(), client->latencies_us.begin(),
                        client->latencies_us.end());
  }
  ClosedLoopRow row;
  row.clients = clients;
  row.qps = static_cast<double>(completed) / elapsed;
  row.p50_us = quantile_us(latencies_us, 0.50);
  row.p99_us = quantile_us(latencies_us, 0.99);
  return row;
}

}  // namespace
}  // namespace problp::bench

int main(int argc, char** argv) {
  using namespace problp;
  using namespace problp::bench;

  double min_seconds = 0.3;
  int max_clients = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-seconds=", 14) == 0) min_seconds = std::atof(argv[i] + 14);
    if (std::strncmp(argv[i], "--clients=", 10) == 0) max_clients = std::atoi(argv[i] + 10);
  }

  const datasets::Benchmark alarm = datasets::make_alarm_benchmark(/*seed=*/1,
                                                                   /*num_test_samples=*/512);
  const auto model = runtime::CompiledModel::compile(alarm.circuit);
  const std::vector<ac::PartialAssignment> pool = to_assignments(alarm.test_evidence);

  // ---- phase 1: the raw batched engine reference ---------------------------
  const serve::ServerOptions options = serving_options();
  // Median of five rounds: the bench shares its machine, and a single raw
  // window that lands on a noisy slice would skew the headline ratio in
  // either direction.
  double raw_qps = 0.0;
  {
    runtime::InferenceSession session(model);
    std::vector<ac::PartialAssignment> batch(pool.begin(),
                                             pool.begin() + std::min<std::size_t>(
                                                                pool.size(), options.batch_max));
    std::vector<double> rounds;
    for (int round = 0; round < 5; ++round) {
      std::uint64_t evaluated = 0;
      const auto start = SteadyClock::now();
      do {
        session.marginal(batch);
        evaluated += batch.size();
      } while (seconds_since(start) < min_seconds / 2.0);
      rounds.push_back(static_cast<double>(evaluated) / seconds_since(start));
    }
    std::sort(rounds.begin(), rounds.end());
    raw_qps = rounds[rounds.size() / 2];
  }
  std::fprintf(stderr, "raw batched engine: %.0f qps (median of 5)\n", raw_qps);

  // ---- phase 2: closed loop at 1..N clients, 1..2 worker shards ------------
  // workers=1 is the pure-overhead row (everything the stack adds rides the
  // single evaluation thread); workers=2 is the deployment shape, where the
  // second shard hides the per-request completion cost behind evaluation.
  std::vector<ClosedLoopRow> closed;
  double best_qps = 0.0;
  for (int workers = 1; workers <= 2; ++workers) {
    serve::ServerOptions worker_options = options;
    worker_options.workers = workers;
    serve::Server server(model, worker_options);
    for (int clients = 1; clients <= max_clients; clients *= 2) {
      // Total outstanding stays ~2 batches regardless of the client count,
      // so the clients axis varies producer contention, not offered load.
      const int window = std::max(1, 512 / clients);
      ClosedLoopRow row = closed_loop(server, pool, clients, window, min_seconds);
      row.workers = workers;
      std::fprintf(stderr, "closed loop, %d worker(s), %2d clients (window %3d): %.0f qps  "
                           "p50 %.0f us  p99 %.0f us\n",
                   workers, row.clients, window, row.qps, row.p50_us, row.p99_us);
      best_qps = std::max(best_qps, row.qps);
      closed.push_back(row);
    }
    server.shutdown(true);
    const serve::StatsSnapshot s = server.stats();
    if (s.submitted != s.total_completed() || s.double_completions != 0) {
      std::fprintf(stderr, "FAIL: closed-loop accounting broken (submitted %llu, completed %llu, "
                           "double %llu)\n",
                   static_cast<unsigned long long>(s.submitted),
                   static_cast<unsigned long long>(s.total_completed()),
                   static_cast<unsigned long long>(s.double_completions));
      return 1;
    }
  }
  const double ratio = best_qps / raw_qps;
  std::fprintf(stderr, "saturation ratio: %.2f of raw\n", ratio);

  // ---- phase 3: open loop at 2x saturation with overload armed -------------
  serve::ServerOptions overload_options = options;
  overload_options.workers = 2;  // the deployment shape phase 2 measured
  overload_options.overload.degraded = serve::DegradedTier{
      Representation::of(lowprec::FixedFormat{2, 22}), lowprec::RoundingMode::kNearestEven,
      /*error_bound=*/0.01};
  overload_options.overload.degrade_depth = overload_options.capacity / 2;
  overload_options.overload.shed_depth = overload_options.capacity * 3 / 4;
  const double offered_qps = 2.0 * best_qps;
  std::uint64_t open_submitted = 0;
  serve::StatsSnapshot open_stats;
  std::vector<double> open_latencies_us;
  double open_elapsed = 0.0;
  {
    serve::Server server(model, overload_options);
    std::mutex latency_mutex;
    const auto interval =
        std::chrono::duration<double>(offered_qps > 0.0 ? 1.0 / offered_qps : 1e-4);
    const auto start = SteadyClock::now();
    auto next_send = start;
    std::size_t i = 0;
    while (seconds_since(start) < min_seconds) {
      const auto now = SteadyClock::now();
      if (now < next_send) continue;  // spin-pace: sleep granularity >> interval
      next_send += std::chrono::duration_cast<SteadyClock::duration>(interval);
      serve::Request request;
      request.query = errormodel::QueryType::kMarginal;
      request.evidence = pool[i++ % pool.size()];
      request.timeout = std::chrono::milliseconds(50);
      const auto sent = now;
      server.submit(std::move(request), [&, sent](serve::Response response) {
        if (response.status != serve::Status::kOk) return;
        std::lock_guard<std::mutex> lock(latency_mutex);
        open_latencies_us.push_back(
            std::chrono::duration<double, std::micro>(SteadyClock::now() - sent).count());
      });
      ++open_submitted;
    }
    open_elapsed = seconds_since(start);
    server.shutdown(true);
    open_stats = server.stats();
  }
  std::fprintf(stderr,
               "open loop @ %.0f qps offered: submitted %llu  ok %llu  timeout %llu  "
               "rejected %llu  degraded %llu\n",
               offered_qps, static_cast<unsigned long long>(open_submitted),
               static_cast<unsigned long long>(open_stats.completed_ok),
               static_cast<unsigned long long>(open_stats.timed_out),
               static_cast<unsigned long long>(open_stats.rejected_overload +
                                               open_stats.rejected_queue_full),
               static_cast<unsigned long long>(open_stats.degraded_admitted));

  // Overload safety IS the acceptance gate: every open-loop request must
  // have completed exactly once with a value or a typed timeout/rejection.
  const bool exactly_once = open_stats.submitted == open_submitted &&
                            open_stats.submitted == open_stats.total_completed() &&
                            open_stats.double_completions == 0;
  if (!exactly_once) {
    std::fprintf(stderr, "FAIL: open-loop accounting broken (submitted %llu, stats %llu, "
                         "completed %llu, double %llu)\n",
                 static_cast<unsigned long long>(open_submitted),
                 static_cast<unsigned long long>(open_stats.submitted),
                 static_cast<unsigned long long>(open_stats.total_completed()),
                 static_cast<unsigned long long>(open_stats.double_completions));
    return 1;
  }

  // ---- the JSON row --------------------------------------------------------
  std::printf("{\"bench\":\"serve_load\",\"circuit\":\"alarm\",\"nodes\":%zu,"
              "\"batch_max\":%zu,\"flush_deadline_us\":%lld,"
              "\"raw_batched_qps\":%.0f,\"closed\":[",
              alarm.circuit.num_nodes(), options.batch_max,
              static_cast<long long>(std::chrono::duration_cast<std::chrono::microseconds>(
                                         options.flush_deadline)
                                         .count()),
              raw_qps);
  for (std::size_t r = 0; r < closed.size(); ++r) {
    std::printf("%s{\"workers\":%d,\"clients\":%d,\"qps\":%.0f,\"p50_us\":%.0f,\"p99_us\":%.0f}",
                r == 0 ? "" : ",", closed[r].workers, closed[r].clients, closed[r].qps,
                closed[r].p50_us, closed[r].p99_us);
  }
  std::printf("],\"throughput_ratio\":%.3f,\"open_loop\":{\"workers\":2,\"offered_qps\":%.0f,"
              "\"duration_s\":%.2f,\"submitted\":%llu,\"ok\":%llu,\"timed_out\":%llu,"
              "\"rejected\":%llu,\"degraded\":%llu,\"p50_us\":%.0f,\"p99_us\":%.0f},"
              "\"exactly_once\":true}\n",
              ratio, offered_qps, open_elapsed,
              static_cast<unsigned long long>(open_submitted),
              static_cast<unsigned long long>(open_stats.completed_ok),
              static_cast<unsigned long long>(open_stats.timed_out),
              static_cast<unsigned long long>(open_stats.rejected_overload +
                                              open_stats.rejected_queue_full),
              static_cast<unsigned long long>(open_stats.degraded_admitted),
              quantile_us(open_latencies_us, 0.50), quantile_us(open_latencies_us, 0.99));
  return 0;
}
