// Shared plumbing for the reproduction benches: evidence conversion, query
// evaluation under a selected representation, and observed-error collection.
#pragma once

#include <string>
#include <vector>

#include "compile/ve_compiler.hpp"
#include "datasets/benchmark_suite.hpp"
#include "problp/framework.hpp"
#include "problp/validation.hpp"
#include "runtime/session.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace problp::bench {

/// Exact root value per assignment in one batched session sweep — the
/// ground-truth side of every observed-error experiment.
inline std::vector<double> exact_roots(const std::shared_ptr<const runtime::CompiledModel>& model,
                                       const std::vector<ac::PartialAssignment>& assignments) {
  runtime::InferenceSession session(model);
  return session.marginal(assignments);
}

inline std::vector<ac::PartialAssignment> to_assignments(
    const std::vector<bn::Evidence>& evidence, std::size_t limit = SIZE_MAX) {
  std::vector<ac::PartialAssignment> out;
  out.reserve(std::min(evidence.size(), limit));
  for (std::size_t i = 0; i < evidence.size() && i < limit; ++i) {
    out.push_back(compile::to_assignment(evidence[i]));
  }
  return out;
}

/// "1, 15" / ">60, -" formatting for Table-2 representation columns.
inline std::string fixed_repr_cell(const errormodel::FixedPlan& plan, double energy_nj) {
  if (!plan.feasible) {
    return str_format("1, >%d ( - )", plan.attempted_max_fraction_bits);
  }
  return str_format("%d, %d (%.2g)", plan.format.integer_bits, plan.format.fraction_bits,
                    energy_nj);
}

inline std::string float_repr_cell(const errormodel::FloatPlan& plan, double energy_nj) {
  if (!plan.feasible) {
    return str_format("-, >%d ( - )", plan.attempted_max_mantissa_bits);
  }
  return str_format("%d, %d (%.2g)", plan.format.exponent_bits, plan.format.mantissa_bits,
                    energy_nj);
}

inline const char* selection_cell(const AnalysisReport& report) {
  if (!report.any_feasible) return "none";
  return report.selected.kind == Representation::Kind::kFixed ? "FIXED" : "FLOAT";
}

}  // namespace problp::bench
