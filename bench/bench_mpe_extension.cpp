// Extension: MPE queries end-to-end (the paper's §3.2.1 covers MPE in the
// bound derivation but does not evaluate it; this bench completes the
// story).
//
// Sums become MAX operators, which round nothing — so MPE circuits
// accumulate strictly less error than marginal circuits of the same shape
// and ProbLP can certify the same tolerance with fewer bits.  The table
// reports, per benchmark: the marginal-vs-MPE minimal fixed widths, the
// selected representation, predicted energy, and the observed max error of
// the MPE value on the test set.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace problp {
namespace {

using errormodel::QuerySpec;
using errormodel::QueryType;
using errormodel::ToleranceKind;

void run_mpe() {
  std::printf("=== Extension: MPE query bounds and hardware (tolerance 0.01 absolute) ===\n\n");
  TextTable table({"AC", "marg fixed F", "MPE fixed F", "MPE selected", "MPE pred nJ",
                   "max observed err", "within tol?"});
  for (const auto& benchmark : datasets::make_all_benchmarks(1)) {
    const Framework framework(benchmark.circuit);
    const QuerySpec marg{QueryType::kMarginal, ToleranceKind::kAbsolute, 0.01};
    const QuerySpec mpe{QueryType::kMpe, ToleranceKind::kAbsolute, 0.01};
    const AnalysisReport marg_report = framework.analyze(marg);
    const AnalysisReport mpe_report = framework.analyze(mpe);

    std::string observed_cell = "-";
    std::string ok_cell = "-";
    if (mpe_report.any_feasible) {
      const auto assignments = bench::to_assignments(benchmark.test_evidence, 400);
      const ObservedError observed =
          measure_mpe_error(framework.binary_max_circuit(), assignments, mpe_report.selected);
      observed_cell = sci(observed.max_abs);
      ok_cell = (observed.max_abs <= mpe.tolerance && !observed.flags.any()) ? "yes" : "NO";
    }
    table.add_row(
        {benchmark.name,
         marg_report.fixed_plan.feasible
             ? str_format("%d", marg_report.fixed_plan.format.fraction_bits)
             : "-",
         mpe_report.fixed_plan.feasible
             ? str_format("%d", mpe_report.fixed_plan.format.fraction_bits)
             : "-",
         bench::selection_cell(mpe_report),
         str_format("%.3g", mpe_report.selected.kind == Representation::Kind::kFixed
                                ? mpe_report.fixed_energy_nj
                                : mpe_report.float_energy_nj),
         observed_cell, ok_cell});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: MAX nodes neither round nor accumulate both operands' error, so\n"
              "the MPE bound needs at most as many fraction bits as the marginal bound;\n"
              "max-dominated datapaths are also cheaper per Table 1 (comparator ~ adder).\n\n");
}

void BM_MpeEvaluation(benchmark::State& state) {
  static const datasets::Benchmark* benchmark =
      new datasets::Benchmark(datasets::make_alarm_benchmark(1, 50));
  static const Framework* framework = new Framework(benchmark->circuit);
  static const auto* assignments = new std::vector<ac::PartialAssignment>(
      bench::to_assignments(benchmark->test_evidence));
  const lowprec::FixedFormat fmt{1, 14};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac::evaluate_fixed(framework->binary_max_circuit(),
                                                (*assignments)[i % assignments->size()], fmt));
    ++i;
  }
}
BENCHMARK(BM_MpeEvaluation)->MinTime(0.05);

}  // namespace
}  // namespace problp

int main(int argc, char** argv) {
  problp::run_mpe();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
