#!/usr/bin/env bash
# Builds Release, runs the evaluation-throughput bench, and appends its JSON
# lines to BENCH_eval.json so the perf trajectory is tracked across PRs.
# Each line carries the raw engines (interpreter/tape/batched, with
# batched_qps pinned to the pre-schedule generic shape for comparability),
# the SIMD kernel-schedule backend's simd_qps / simd_lowprec_qps plus the
# dispatched `isa` and the actual `threads` the *_mt rows used (acceptance:
# simd_qps >= 1.5x and simd_lowprec_qps >= 1.3x the PR 3 ALARM/512 rows),
# the unified runtime's session_qps / session_batched_qps (acceptance:
# session_batched tracks the schedule backend within 10%), and the emulated
# low-precision datapath's lowprec_qps / lowprec_batched_qps /
# lowprec_batched_mt_qps (acceptance: speedup_lowprec_batched >= 2 over the
# query-at-a-time session path), and the narrow-word datapath's
# simd_lowprec_narrow_qps with lowprec_fixed_bits / lowprec_datapath
# recording the measured format width and whether the lane-parallel u64
# kernels or the wide u128 path were dispatched (acceptance: 24-bit
# simd_lowprec_qps >= 3x the PR 4 ALARM/512 row).  Every engine pair is
# parity-checked inside the bench — a checksum drift, including u64 vs u128
# raw-datapath drift, exits non-zero before any line is appended — and the
# parity_checksum fields let CI diff a PROBLP_SIMD=scalar run against auto
# dispatch bit for bit, for a narrow and a wide format alike (the bench
# takes an optional `I F` fixed-format override).
#
# Usage: scripts/bench.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_eval_throughput

out="$repo_root/BENCH_eval.json"
# The bench prints one JSON object per circuit on stdout; keep only those.
"$build_dir/bench/bench_eval_throughput" | grep '^{' | while IFS= read -r line; do
  printf '%s\n' "$line" >> "$out"
done

echo "appended results to $out:"
tail -n 2 "$out"
