#!/usr/bin/env bash
# Builds Release, runs the evaluation-throughput bench, and appends its JSON
# lines to BENCH_eval.json so the perf trajectory is tracked across PRs.
# Each line carries the raw engines (interpreter/tape/batched, with
# batched_qps pinned to the pre-schedule generic shape for comparability),
# the SIMD kernel-schedule backend's simd_qps / simd_lowprec_qps plus the
# dispatched `isa` and the actual `threads` the *_mt rows used (acceptance:
# simd_qps >= 1.5x and simd_lowprec_qps >= 1.3x the PR 3 ALARM/512 rows),
# the unified runtime's session_qps / session_batched_qps (acceptance:
# session_batched tracks the schedule backend within 10%), the emulated
# low-precision datapath's lowprec_qps / lowprec_batched_qps /
# lowprec_batched_mt_qps (acceptance: speedup_lowprec_batched >= 2 over the
# query-at-a-time session path), and the narrow-word datapath's
# simd_lowprec_narrow_qps with lowprec_fixed_bits / lowprec_datapath
# recording the measured format width and whether the lane-parallel u32
# kernels or the wide u128 path were dispatched (acceptance: 24-bit
# simd_lowprec_qps >= 3x the PR 4 ALARM/512 row).
#
# The decomposed SoftFloat datapath adds float rows to every line, for both
# circuits (alarm and synthetic_ve36): simd_lowprec_float_qps is the raw
# float engine at schedule defaults on the --float=E,M format (default
# 8,23 — lane-eligible mantissas split each block into exponent and
# significand rows and run the branch-free lane kernels;
# lowprec_float_datapath records lane32 / lane64 / wide),
# simd_lowprec_float_wide_qps the same format pinned to the interleaved
# wide path (force_wide_raw) — the lane-serial reference — and
# speedup_float_lane their ratio (acceptance: ALARM/512
# simd_lowprec_float_qps >= 3x its wide row).  The two paths are
# checksum-pinned in-process and lowprec_float_parity_checksum is printed
# for cross-run diffs.
#
# The cache-shaped tape relayout (ac/tape_layout.hpp) adds four fields:
#   relayout                — whether the run used the slot-reuse layout
#   slots                   — SoA value-buffer rows per block (max-live
#                             under the relayout, num_nodes otherwise)
#   max_live                — the layout's liveness bound (== slots when on)
#   buffer_bytes_per_query  — slots * 8, the per-lane buffer footprint
# The bench runs TWICE per invocation of this script — once with
# --no-relayout, once with the default layout — and both rows are appended,
# so every BENCH_eval.json generation carries its own layout-ablation
# reference (acceptance: ve36/512 simd_qps and simd_lowprec_qps >= 2x their
# relayout-off rows, ALARM within noise, checksums identical between rows).
#
# Every engine pair is parity-checked inside the bench — a checksum drift,
# including u32 vs u128 raw-datapath drift, exits non-zero before any line
# is appended — and the parity_checksum fields let CI diff a
# PROBLP_SIMD=scalar run against auto dispatch bit for bit, and a relayout
# run against --no-relayout, for a narrow and a wide format alike (the
# bench takes an optional `I F` fixed-format override).
#
# The precision-escalation serving row (--escalation=E,M, one extra
# invocation below) measures the flag-driven fallback of the serving
# runtime (runtime/session.hpp FallbackPolicy): the same ALARM batch served
# in the overflow/underflow-prone E=6,M=4 float format with fallback off,
# on the exact backend, and with escalate-to-exact fallback.  Because flag
# status correlates across a circuit's queries, the bench composes a
# serving mix capped at 10% flagged (natural_flagged_fraction records the
# raw batch) and checks the serving contract in-process — flagged answers
# bitwise the exact backend's, clean answers bitwise the fallback-off
# engine's — exiting non-zero on any violation (acceptance: overhead_pct
# <= 30 at flagged_fraction <= 0.10; see docs/runtime.md "Robustness").
#
# The model-artifact layer (runtime/artifact.hpp) adds a second output
# file, BENCH_load.json: bench_model_load writes one line per run with the
# cold-load latency and VmRSS growth of the legacy text artifact (parse +
# recompile) versus the binary mmap container (map + validate + adopt
# views) on the ALARM model, plus exact/fixed/float parity checksums that
# must match the in-memory model bit for bit (acceptance: load_speedup
# >= 20x; the bench exits non-zero on any checksum drift before a line is
# appended).
#
# The async serving front-end (src/serve/) adds a third output file,
# BENCH_serve.json: bench_serve_load writes one line per run with the raw
# batched engine reference (median of 5 rounds), closed-loop qps + p50/p99
# rows at 1..N clients across 1..2 worker shards, the headline
# throughput_ratio (acceptance: >= 0.85 — coalescing within 15% of the raw
# engine at saturation), and an open-loop overload row at 2x the measured
# saturation rate with degradation and shedding armed.  The bench exits
# non-zero before printing its line unless every submitted request
# completed exactly once (the accounting identity the serve tests pin
# down), so a BENCH_serve.json row doubles as overload-safety evidence —
# see docs/serving.md.
#
# Usage: scripts/bench.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# One circuit list for both passes, so the ablation rows always pair up.
circuits="alarm,synthetic_ve36"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_eval_throughput bench_model_load bench_serve_load

out="$repo_root/BENCH_eval.json"
# The bench prints one JSON object per circuit on stdout; keep only those.
# Relayout-off first (the ablation reference), then the default layout.
for flags in "--no-relayout" ""; do
  # shellcheck disable=SC2086  # $flags is intentionally word-split
  # --min-seconds=1: recorded trajectory rows average over a longer window
  # than the CI smoke default, so single-run scheduler noise stays out of
  # the on/off ratios.
  "$build_dir/bench/bench_eval_throughput" --circuits="$circuits" --min-seconds=1 $flags |
    grep '^{' | while IFS= read -r line; do
      printf '%s\n' "$line" >> "$out"
    done
done

# The escalation serving row: ALARM only (the acceptance circuit), on the
# flag-prone narrow float format.
"$build_dir/bench/bench_eval_throughput" --circuits=alarm --min-seconds=1 --escalation=6,4 |
  grep '^{' >> "$out"

echo "appended results to $out:"
tail -n 5 "$out"

# Cold-load latency + resident cost of the two model artifact formats.
load_out="$repo_root/BENCH_load.json"
"$build_dir/bench/bench_model_load" | grep '^{' >> "$load_out"
echo "appended results to $load_out:"
tail -n 1 "$load_out"

# Saturation + overload row for the async serving front-end.  A longer
# window than the smoke default keeps scheduler noise out of the
# throughput_ratio; the bench fails closed (non-zero, no line) if any
# request completes twice or never.
serve_out="$repo_root/BENCH_serve.json"
"$build_dir/bench/bench_serve_load" --min-seconds=1 --clients=8 | grep '^{' >> "$serve_out"
echo "appended results to $serve_out:"
tail -n 1 "$serve_out"
