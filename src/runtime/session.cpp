#include "runtime/session.hpp"

#include <algorithm>
#include <utility>

namespace problp::runtime {

namespace {

SessionOptions options_from_report(const CompiledModel* model, const AnalysisReport& report,
                                   bool allow_exact_fallback) {
  require(model != nullptr, "InferenceSession: null model");
  // A report-backed session means "run the datapath the analysis selected".
  // An infeasible report selected nothing, so silently handing back exact
  // double arithmetic (zero error, no flags) would be indistinguishable
  // from a real low-precision backend — refuse unless explicitly allowed.
  require(report.any_feasible || allow_exact_fallback,
          "InferenceSession: the analysis found no feasible representation; pass "
          "allow_exact_fallback to run the exact double backend instead");
  SessionOptions options;
  if (report.any_feasible) {
    options.representation = report.selected;
    // The rounding mode the analysis' error bounds assumed.
    options.rounding = report.selected.kind == Representation::Kind::kFixed
                           ? model->options().search.fixed_options.rounding
                           : model->options().search.float_rounding;
  }
  return options;
}

/// Folds a second pass's provenance into a conditional query's entry: the
/// query's served format is the widest rung any pass needed, its escalation
/// count the deepest climb, its flags the union.
void fold_provenance(QueryProvenance& into, const QueryProvenance& other) {
  if (other.escalations > into.escalations) into.served_format = other.served_format;
  into.escalations = std::max(into.escalations, other.escalations);
  into.flags.merge(other.flags);
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  require(model_ != nullptr, "InferenceSession: null model");
  // Fail misconfiguration at setup time, not on the first batched query
  // deep inside a serving call stack (the batched engines would only check
  // these in their lazily-reached constructors).  batch.block == 0 means
  // cache-aware auto-sizing; a forced unsupported SIMD level is caught here
  // rather than on the first batch.
  require(options_.batch.num_threads >= 0,
          "InferenceSession: batch.num_threads must be >= 0");
  if (options_.batch.simd) {
    require(ac::simd::level_supported(*options_.batch.simd),
            "InferenceSession: requested SIMD level not supported by this build/CPU");
  }
  // Ladder formats are validated here for the same reason: a rung is only
  // constructed on the first escalation that reaches it, which may be days
  // into a deployment.
  for (const Representation& step : options_.fallback.ladder) {
    if (step.kind == Representation::Kind::kFixed) {
      step.fixed.validate();
    } else {
      step.flt.validate();
    }
  }
  rungs_.resize(options_.fallback.ladder.size());
  tapes_[kMarginalTape] = &model_->tape();
}

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   const AnalysisReport& report, bool allow_exact_fallback)
    : InferenceSession(model, options_from_report(model.get(), report, allow_exact_fallback)) {}

const ac::CircuitTape& InferenceSession::tape(Which which) {
  if (tapes_[which] == nullptr) tapes_[which] = &model_->max_tape();
  return *tapes_[which];
}

InferenceSession::LowPrecEngine& InferenceSession::engine_for(LowPrecEngine& slot,
                                                              const Representation& repr,
                                                              Which which) {
  if (!slot.fixed && !slot.flt) {
    if (repr.kind == Representation::Kind::kFixed) {
      slot.fixed.emplace(tape(which), repr.fixed, options_.rounding);
    } else {
      slot.flt.emplace(tape(which), repr.flt, options_.rounding);
    }
  }
  return slot;
}

InferenceSession::LowPrecBatchEngine& InferenceSession::batch_engine_for(
    LowPrecBatchEngine& slot, const Representation& repr, Which which) {
  if (!slot.fixed && !slot.flt) {
    if (repr.kind == Representation::Kind::kFixed) {
      slot.fixed.emplace(tape(which), repr.fixed, options_.rounding, options_.batch);
    } else {
      slot.flt.emplace(tape(which), repr.flt, options_.rounding, options_.batch);
    }
  }
  return slot;
}

InferenceSession::LowPrecEngine& InferenceSession::engine(Which which) {
  return engine_for(lowprec_[which], *options_.representation, which);
}

InferenceSession::LowPrecBatchEngine& InferenceSession::batch_engine(Which which) {
  return batch_engine_for(lowprec_batch_[which], *options_.representation, which);
}

InferenceSession::Rung& InferenceSession::rung(std::size_t index) {
  if (!rungs_[index]) rungs_[index] = std::make_unique<Rung>();
  return *rungs_[index];
}

double InferenceSession::eval_root(Which which, const ac::PartialAssignment& assignment) {
  if (!options_.representation) {
    query_flags_.emplace_back();
    provenance_.emplace_back();
    return tape(which).evaluate(assignment, scratch_);
  }
  LowPrecEngine& eng = engine(which);
  ac::LowPrecisionResult result =
      eng.fixed ? eng.fixed->evaluate(assignment) : eng.flt->evaluate(assignment);
  Representation served = *options_.representation;
  int escalations = 0;
  if (options_.fallback.enabled() && result.flags.any()) {
    const std::vector<Representation>& ladder = options_.fallback.ladder;
    for (std::size_t i = 0; i < ladder.size() && result.flags.any(); ++i) {
      LowPrecEngine& wider = engine_for(rung(i).single[which], ladder[i], which);
      result = wider.fixed ? wider.fixed->evaluate(assignment) : wider.flt->evaluate(assignment);
      served = ladder[i];
      ++escalations;
    }
    if (result.flags.any() && options_.fallback.escalate_to_exact) {
      const double value = tape(which).evaluate(assignment, scratch_);
      ++escalations;
      query_flags_.emplace_back();  // exact double: clean by construction
      QueryProvenance prov;
      prov.escalations = escalations;
      provenance_.push_back(prov);
      return value;
    }
  }
  last_flags_.merge(result.flags);
  query_flags_.push_back(result.flags);
  QueryProvenance prov;
  prov.served_format = served;
  prov.escalations = escalations;
  prov.flags = result.flags;
  provenance_.push_back(std::move(prov));
  return result.value;
}

const std::vector<double>& InferenceSession::eval_batch(
    Which which, const std::vector<ac::PartialAssignment>& batch) {
  query_flags_.clear();
  provenance_.clear();
  if (!options_.representation) {
    if (!exact_batch_[which]) exact_batch_[which].emplace(tape(which), options_.batch);
    const std::vector<double>& out = exact_batch_[which]->evaluate(batch);
    query_flags_.resize(batch.size());
    provenance_.resize(batch.size());
    return out;
  }
  // Batched low-precision emulation: the SoA raw-word sweep, bit-identical
  // (values and per-query flags) to the per-query engine behind eval_root.
  // Routing is transparent to the datapath choice: fixed formats narrow
  // enough for the lane-parallel u32 kernels (fits_narrow_word()) ride them
  // automatically inside FixedBatchEvaluator; wide ones keep the u128 path.
  // The engines also own the slot-remapped root/flag gathers under the tape
  // relayout (options_.batch.relayout) — nothing here is layout-aware.
  LowPrecBatchEngine& eng = batch_engine(which);
  const std::vector<double>& out =
      eng.fixed ? eng.fixed->evaluate(batch) : eng.flt->evaluate(batch);
  const std::vector<lowprec::ArithFlags>& flags =
      eng.fixed ? eng.fixed->flags() : eng.flt->flags();
  query_flags_.assign(flags.begin(), flags.end());
  provenance_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    provenance_[i].served_format = *options_.representation;
    provenance_[i].flags = flags[i];
  }
  if (options_.fallback.enabled()) {
    // Served values move to the session-owned buffer so escalation can
    // scatter wider-rung answers over exactly the flagged indices; clean
    // queries keep their base answers bit for bit.
    batch_values_.assign(out.begin(), out.end());
    escalate_batch(which, batch);
    for (const lowprec::ArithFlags& f : query_flags_) last_flags_.merge(f);
    return batch_values_;
  }
  for (const lowprec::ArithFlags& f : query_flags_) last_flags_.merge(f);
  return out;
}

void InferenceSession::escalate_batch(Which which,
                                      const std::vector<ac::PartialAssignment>& batch) {
  std::vector<std::size_t> flagged;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (query_flags_[i].any()) flagged.push_back(i);
  }
  if (flagged.empty()) return;
  const std::vector<Representation>& ladder = options_.fallback.ladder;
  std::vector<ac::PartialAssignment> sub;
  std::vector<std::size_t> still;
  for (std::size_t r = 0; r < ladder.size() && !flagged.empty(); ++r) {
    sub.clear();
    sub.reserve(flagged.size());
    for (const std::size_t idx : flagged) sub.push_back(batch[idx]);
    LowPrecBatchEngine& eng = batch_engine_for(rung(r).batch[which], ladder[r], which);
    const std::vector<double>& values =
        eng.fixed ? eng.fixed->evaluate(sub) : eng.flt->evaluate(sub);
    const std::vector<lowprec::ArithFlags>& flags =
        eng.fixed ? eng.fixed->flags() : eng.flt->flags();
    still.clear();
    for (std::size_t j = 0; j < flagged.size(); ++j) {
      const std::size_t idx = flagged[j];
      batch_values_[idx] = values[j];
      query_flags_[idx] = flags[j];
      provenance_[idx].served_format = ladder[r];
      provenance_[idx].flags = flags[j];
      ++provenance_[idx].escalations;
      if (flags[j].any()) still.push_back(idx);
    }
    flagged.swap(still);
  }
  if (flagged.empty() || !options_.fallback.escalate_to_exact) return;
  // Final rung: the exact double backend, flags clean by construction.
  sub.clear();
  sub.reserve(flagged.size());
  for (const std::size_t idx : flagged) sub.push_back(batch[idx]);
  if (!exact_batch_[which]) exact_batch_[which].emplace(tape(which), options_.batch);
  const std::vector<double>& values = exact_batch_[which]->evaluate(sub);
  for (std::size_t j = 0; j < flagged.size(); ++j) {
    const std::size_t idx = flagged[j];
    batch_values_[idx] = values[j];
    query_flags_[idx] = {};
    provenance_[idx].served_format.reset();
    provenance_[idx].flags = {};
    ++provenance_[idx].escalations;
  }
}

void InferenceSession::posterior_into(int query_var, const ac::PartialAssignment& evidence,
                                      std::vector<double>& out) {
  require(query_var >= 0 && query_var < model_->num_variables(),
          "InferenceSession::conditional: query variable out of range");
  require(!evidence.at(static_cast<std::size_t>(query_var)).has_value(),
          "InferenceSession::conditional: query variable must be unobserved");
  out.clear();
  const double pr_evidence = eval_root(kMarginalTape, evidence);
  if (!(pr_evidence > 0.0)) return;  // Pr(e) == 0: the posterior is undefined
  const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
  out.reserve(static_cast<std::size_t>(card));
  query_scratch_ = evidence;
  for (int q = 0; q < card; ++q) {
    query_scratch_[static_cast<std::size_t>(query_var)] = q;
    // The ratio is taken in double: ProbLP's datapath computes the two
    // passes, the host divides (paper footnote 2).
    out.push_back(eval_root(kMarginalTape, query_scratch_) / pr_evidence);
  }
}

// ---- public queries --------------------------------------------------------

double InferenceSession::marginal(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  query_flags_.clear();
  provenance_.clear();
  return eval_root(kMarginalTape, evidence);
}

const std::vector<double>& InferenceSession::marginal(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMarginalTape, evidence);
}

std::vector<double> InferenceSession::conditional(int query_var,
                                                  const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  query_flags_.clear();
  provenance_.clear();
  std::vector<double> out;
  posterior_into(query_var, evidence, out);
  // One conditional query is one served answer: fold the denominator and
  // numerator passes' entries into a single per-query flags/provenance slot.
  lowprec::ArithFlags folded_flags;
  QueryProvenance folded;
  for (std::size_t k = 0; k < provenance_.size(); ++k) {
    folded_flags.merge(query_flags_[k]);
    if (k == 0) {
      folded = provenance_[k];
    } else {
      fold_provenance(folded, provenance_[k]);
    }
  }
  query_flags_.assign(1, folded_flags);
  provenance_.assign(1, folded);
  return out;
}

std::vector<std::vector<double>> InferenceSession::conditional(
    int query_var, const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  // Both backends batch the whole sweep: Pr(e) for every evidence set in
  // one SoA pass, then every surviving evidence set's per-state numerators
  // coalesced into ONE flat batch (card is typically 2-5, far below the SoA
  // block width, so a per-evidence-set numerator pass would run the batched
  // engines in their degenerate regime) and scattered back.  Per-query
  // results are independent of batch composition, so this is bit-identical
  // to the per-set shape.
  require(query_var >= 0 && query_var < model_->num_variables(),
          "InferenceSession::conditional: query variable out of range");
  for (const auto& e : evidence) {
    require(!e.at(static_cast<std::size_t>(query_var)).has_value(),
            "InferenceSession::conditional: query variable must be unobserved");
  }
  std::vector<std::vector<double>> out(evidence.size());
  const std::vector<double> pr_evidence = eval_batch(kMarginalTape, evidence);
  // The denominator pass's per-query attribution, copied aside before the
  // numerator pass resets the channels.  Note an evidence set whose
  // posterior comes back empty can still carry `underflow` here: Pr(e)
  // flushed to zero in the format rather than being structurally zero —
  // the caller-visible distinction between "undefined" and "underflowed".
  std::vector<lowprec::ArithFlags> denom_flags(std::move(query_flags_));
  std::vector<QueryProvenance> denom_prov(std::move(provenance_));
  const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
  std::vector<ac::PartialAssignment> numerators;
  std::vector<std::size_t> surviving;  ///< evidence index per numerator group
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    if (!(pr_evidence[i] > 0.0)) continue;  // Pr(e) == 0: posterior undefined
    surviving.push_back(i);
    for (int q = 0; q < card; ++q) {
      numerators.push_back(evidence[i]);
      numerators.back()[static_cast<std::size_t>(query_var)] = q;
    }
  }
  if (surviving.empty()) {
    query_flags_ = std::move(denom_flags);
    provenance_ = std::move(denom_prov);
    return out;
  }
  const std::vector<double>& roots = eval_batch(kMarginalTape, numerators);
  std::vector<lowprec::ArithFlags> num_flags(std::move(query_flags_));
  std::vector<QueryProvenance> num_prov(std::move(provenance_));
  query_flags_ = std::move(denom_flags);
  provenance_ = std::move(denom_prov);
  for (std::size_t g = 0; g < surviving.size(); ++g) {
    const std::size_t i = surviving[g];
    out[i].reserve(static_cast<std::size_t>(card));
    for (int q = 0; q < card; ++q) {
      const std::size_t k = g * static_cast<std::size_t>(card) + static_cast<std::size_t>(q);
      query_flags_[i].merge(num_flags[k]);
      fold_provenance(provenance_[i], num_prov[k]);
      // The ratio is taken in double: ProbLP's datapath computes the two
      // passes, the host divides (paper footnote 2).
      out[i].push_back(roots[k] / pr_evidence[i]);
    }
  }
  return out;
}

double InferenceSession::mpe(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  query_flags_.clear();
  provenance_.clear();
  return eval_root(kMaxTape, evidence);
}

const std::vector<double>& InferenceSession::mpe(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMaxTape, evidence);
}

}  // namespace problp::runtime
