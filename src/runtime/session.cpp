#include "runtime/session.hpp"

#include <utility>

namespace problp::runtime {

namespace {

SessionOptions options_from_report(const CompiledModel* model, const AnalysisReport& report) {
  require(model != nullptr, "InferenceSession: null model");
  SessionOptions options;
  if (report.any_feasible) {
    options.representation = report.selected;
    // The rounding mode the analysis' error bounds assumed.
    options.rounding = report.selected.kind == Representation::Kind::kFixed
                           ? model->options().search.fixed_options.rounding
                           : model->options().search.float_rounding;
  }
  return options;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  require(model_ != nullptr, "InferenceSession: null model");
  tapes_[kMarginalTape] = &model_->tape();
}

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   const AnalysisReport& report)
    : InferenceSession(model, options_from_report(model.get(), report)) {}

const ac::CircuitTape& InferenceSession::tape(Which which) {
  if (tapes_[which] == nullptr) tapes_[which] = &model_->max_tape();
  return *tapes_[which];
}

InferenceSession::LowPrecEngine& InferenceSession::engine(Which which) {
  LowPrecEngine& engine = lowprec_[which];
  if (!engine.fixed && !engine.flt) {
    const Representation& repr = *options_.representation;
    if (repr.kind == Representation::Kind::kFixed) {
      engine.fixed.emplace(tape(which), repr.fixed, options_.rounding);
    } else {
      engine.flt.emplace(tape(which), repr.flt, options_.rounding);
    }
  }
  return engine;
}

double InferenceSession::eval_root(Which which, const ac::PartialAssignment& assignment) {
  if (!options_.representation) return tape(which).evaluate(assignment, scratch_);
  LowPrecEngine& eng = engine(which);
  const ac::LowPrecisionResult result =
      eng.fixed ? eng.fixed->evaluate(assignment) : eng.flt->evaluate(assignment);
  last_flags_.merge(result.flags);
  return result.value;
}

const std::vector<double>& InferenceSession::eval_batch(
    Which which, const std::vector<ac::PartialAssignment>& batch) {
  if (!options_.representation) {
    if (!exact_batch_[which]) exact_batch_[which].emplace(tape(which), options_.batch);
    return exact_batch_[which]->evaluate(batch);
  }
  // Low-precision emulation is query-at-a-time on the tape (parameters are
  // quantised once in the engine); the batch overload still amortises flag
  // handling and reuses the output buffer.
  batch_out_.clear();
  batch_out_.reserve(batch.size());
  for (const ac::PartialAssignment& assignment : batch) {
    batch_out_.push_back(eval_root(which, assignment));
  }
  return batch_out_;
}

void InferenceSession::posterior_into(int query_var, const ac::PartialAssignment& evidence,
                                      std::vector<double>& out) {
  require(query_var >= 0 && query_var < model_->num_variables(),
          "InferenceSession::conditional: query variable out of range");
  require(!evidence.at(static_cast<std::size_t>(query_var)).has_value(),
          "InferenceSession::conditional: query variable must be unobserved");
  out.clear();
  const double pr_evidence = eval_root(kMarginalTape, evidence);
  if (!(pr_evidence > 0.0)) return;  // Pr(e) == 0: the posterior is undefined
  const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
  out.reserve(static_cast<std::size_t>(card));
  query_scratch_ = evidence;
  for (int q = 0; q < card; ++q) {
    query_scratch_[static_cast<std::size_t>(query_var)] = q;
    // The ratio is taken in double: ProbLP's datapath computes the two
    // passes, the host divides (paper footnote 2).
    out.push_back(eval_root(kMarginalTape, query_scratch_) / pr_evidence);
  }
}

// ---- public queries --------------------------------------------------------

double InferenceSession::marginal(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  return eval_root(kMarginalTape, evidence);
}

const std::vector<double>& InferenceSession::marginal(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMarginalTape, evidence);
}

std::vector<double> InferenceSession::conditional(int query_var,
                                                  const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  std::vector<double> out;
  posterior_into(query_var, evidence, out);
  return out;
}

std::vector<std::vector<double>> InferenceSession::conditional(
    int query_var, const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  std::vector<std::vector<double>> out(evidence.size());
  if (!options_.representation) {
    // Exact backend: batch the whole sweep — Pr(e) for every evidence set
    // in one SoA pass, then the per-state numerators in one card-wide pass
    // per surviving evidence set (the shape the observed-error sweeps ran
    // before the runtime existed).
    require(query_var >= 0 && query_var < model_->num_variables(),
            "InferenceSession::conditional: query variable out of range");
    for (const auto& e : evidence) {
      require(!e.at(static_cast<std::size_t>(query_var)).has_value(),
              "InferenceSession::conditional: query variable must be unobserved");
    }
    const std::vector<double> pr_evidence = eval_batch(kMarginalTape, evidence);
    const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
    std::vector<ac::PartialAssignment> numerators(static_cast<std::size_t>(card));
    for (std::size_t i = 0; i < evidence.size(); ++i) {
      if (!(pr_evidence[i] > 0.0)) continue;
      for (int q = 0; q < card; ++q) {
        numerators[static_cast<std::size_t>(q)] = evidence[i];
        numerators[static_cast<std::size_t>(q)][static_cast<std::size_t>(query_var)] = q;
      }
      const std::vector<double>& roots = eval_batch(kMarginalTape, numerators);
      out[i].reserve(static_cast<std::size_t>(card));
      for (int q = 0; q < card; ++q) {
        out[i].push_back(roots[static_cast<std::size_t>(q)] / pr_evidence[i]);
      }
    }
    return out;
  }
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    posterior_into(query_var, evidence[i], out[i]);
  }
  return out;
}

double InferenceSession::mpe(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  return eval_root(kMaxTape, evidence);
}

const std::vector<double>& InferenceSession::mpe(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMaxTape, evidence);
}

}  // namespace problp::runtime
