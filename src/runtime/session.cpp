#include "runtime/session.hpp"

#include <utility>

namespace problp::runtime {

namespace {

SessionOptions options_from_report(const CompiledModel* model, const AnalysisReport& report,
                                   bool allow_exact_fallback) {
  require(model != nullptr, "InferenceSession: null model");
  // A report-backed session means "run the datapath the analysis selected".
  // An infeasible report selected nothing, so silently handing back exact
  // double arithmetic (zero error, no flags) would be indistinguishable
  // from a real low-precision backend — refuse unless explicitly allowed.
  require(report.any_feasible || allow_exact_fallback,
          "InferenceSession: the analysis found no feasible representation; pass "
          "allow_exact_fallback to run the exact double backend instead");
  SessionOptions options;
  if (report.any_feasible) {
    options.representation = report.selected;
    // The rounding mode the analysis' error bounds assumed.
    options.rounding = report.selected.kind == Representation::Kind::kFixed
                           ? model->options().search.fixed_options.rounding
                           : model->options().search.float_rounding;
  }
  return options;
}

}  // namespace

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   SessionOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  require(model_ != nullptr, "InferenceSession: null model");
  // Fail misconfiguration at setup time, not on the first batched query
  // deep inside a serving call stack (the batched engines would only check
  // these in their lazily-reached constructors).  batch.block == 0 means
  // cache-aware auto-sizing; a forced unsupported SIMD level is caught here
  // rather than on the first batch.
  require(options_.batch.num_threads >= 0,
          "InferenceSession: batch.num_threads must be >= 0");
  if (options_.batch.simd) {
    require(ac::simd::level_supported(*options_.batch.simd),
            "InferenceSession: requested SIMD level not supported by this build/CPU");
  }
  tapes_[kMarginalTape] = &model_->tape();
}

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   const AnalysisReport& report, bool allow_exact_fallback)
    : InferenceSession(model, options_from_report(model.get(), report, allow_exact_fallback)) {}

const ac::CircuitTape& InferenceSession::tape(Which which) {
  if (tapes_[which] == nullptr) tapes_[which] = &model_->max_tape();
  return *tapes_[which];
}

InferenceSession::LowPrecEngine& InferenceSession::engine(Which which) {
  LowPrecEngine& engine = lowprec_[which];
  if (!engine.fixed && !engine.flt) {
    const Representation& repr = *options_.representation;
    if (repr.kind == Representation::Kind::kFixed) {
      engine.fixed.emplace(tape(which), repr.fixed, options_.rounding);
    } else {
      engine.flt.emplace(tape(which), repr.flt, options_.rounding);
    }
  }
  return engine;
}

double InferenceSession::eval_root(Which which, const ac::PartialAssignment& assignment) {
  if (!options_.representation) return tape(which).evaluate(assignment, scratch_);
  LowPrecEngine& eng = engine(which);
  const ac::LowPrecisionResult result =
      eng.fixed ? eng.fixed->evaluate(assignment) : eng.flt->evaluate(assignment);
  last_flags_.merge(result.flags);
  return result.value;
}

InferenceSession::LowPrecBatchEngine& InferenceSession::batch_engine(Which which) {
  LowPrecBatchEngine& engine = lowprec_batch_[which];
  if (!engine.fixed && !engine.flt) {
    const Representation& repr = *options_.representation;
    if (repr.kind == Representation::Kind::kFixed) {
      engine.fixed.emplace(tape(which), repr.fixed, options_.rounding, options_.batch);
    } else {
      engine.flt.emplace(tape(which), repr.flt, options_.rounding, options_.batch);
    }
  }
  return engine;
}

const std::vector<double>& InferenceSession::eval_batch(
    Which which, const std::vector<ac::PartialAssignment>& batch) {
  if (!options_.representation) {
    if (!exact_batch_[which]) exact_batch_[which].emplace(tape(which), options_.batch);
    return exact_batch_[which]->evaluate(batch);
  }
  // Batched low-precision emulation: the SoA raw-word sweep, bit-identical
  // (values and per-query flags) to the per-query engine behind eval_root.
  // Routing is transparent to the datapath choice: fixed formats narrow
  // enough for the lane-parallel u32 kernels (fits_narrow_word()) ride them
  // automatically inside FixedBatchEvaluator; wide ones keep the u128 path.
  // The engines also own the slot-remapped root/flag gathers under the tape
  // relayout (options_.batch.relayout) — nothing here is layout-aware.
  LowPrecBatchEngine& eng = batch_engine(which);
  const std::vector<double>& out =
      eng.fixed ? eng.fixed->evaluate(batch) : eng.flt->evaluate(batch);
  last_flags_.merge(eng.fixed ? eng.fixed->merged_flags() : eng.flt->merged_flags());
  return out;
}

void InferenceSession::posterior_into(int query_var, const ac::PartialAssignment& evidence,
                                      std::vector<double>& out) {
  require(query_var >= 0 && query_var < model_->num_variables(),
          "InferenceSession::conditional: query variable out of range");
  require(!evidence.at(static_cast<std::size_t>(query_var)).has_value(),
          "InferenceSession::conditional: query variable must be unobserved");
  out.clear();
  const double pr_evidence = eval_root(kMarginalTape, evidence);
  if (!(pr_evidence > 0.0)) return;  // Pr(e) == 0: the posterior is undefined
  const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
  out.reserve(static_cast<std::size_t>(card));
  query_scratch_ = evidence;
  for (int q = 0; q < card; ++q) {
    query_scratch_[static_cast<std::size_t>(query_var)] = q;
    // The ratio is taken in double: ProbLP's datapath computes the two
    // passes, the host divides (paper footnote 2).
    out.push_back(eval_root(kMarginalTape, query_scratch_) / pr_evidence);
  }
}

// ---- public queries --------------------------------------------------------

double InferenceSession::marginal(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  return eval_root(kMarginalTape, evidence);
}

const std::vector<double>& InferenceSession::marginal(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMarginalTape, evidence);
}

std::vector<double> InferenceSession::conditional(int query_var,
                                                  const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  std::vector<double> out;
  posterior_into(query_var, evidence, out);
  return out;
}

std::vector<std::vector<double>> InferenceSession::conditional(
    int query_var, const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  // Both backends batch the whole sweep: Pr(e) for every evidence set in
  // one SoA pass, then every surviving evidence set's per-state numerators
  // coalesced into ONE flat batch (card is typically 2-5, far below the SoA
  // block width, so a per-evidence-set numerator pass would run the batched
  // engines in their degenerate regime) and scattered back.  Per-query
  // results are independent of batch composition, so this is bit-identical
  // to the per-set shape.
  require(query_var >= 0 && query_var < model_->num_variables(),
          "InferenceSession::conditional: query variable out of range");
  for (const auto& e : evidence) {
    require(!e.at(static_cast<std::size_t>(query_var)).has_value(),
            "InferenceSession::conditional: query variable must be unobserved");
  }
  std::vector<std::vector<double>> out(evidence.size());
  const std::vector<double> pr_evidence = eval_batch(kMarginalTape, evidence);
  const int card = model_->cardinalities()[static_cast<std::size_t>(query_var)];
  std::vector<ac::PartialAssignment> numerators;
  std::vector<std::size_t> surviving;  ///< evidence index per numerator group
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    if (!(pr_evidence[i] > 0.0)) continue;  // Pr(e) == 0: posterior undefined
    surviving.push_back(i);
    for (int q = 0; q < card; ++q) {
      numerators.push_back(evidence[i]);
      numerators.back()[static_cast<std::size_t>(query_var)] = q;
    }
  }
  if (surviving.empty()) return out;
  const std::vector<double>& roots = eval_batch(kMarginalTape, numerators);
  for (std::size_t g = 0; g < surviving.size(); ++g) {
    const std::size_t i = surviving[g];
    out[i].reserve(static_cast<std::size_t>(card));
    for (int q = 0; q < card; ++q) {
      // The ratio is taken in double: ProbLP's datapath computes the two
      // passes, the host divides (paper footnote 2).
      out[i].push_back(roots[g * static_cast<std::size_t>(card) + static_cast<std::size_t>(q)] /
                       pr_evidence[i]);
    }
  }
  return out;
}

double InferenceSession::mpe(const ac::PartialAssignment& evidence) {
  last_flags_ = {};
  return eval_root(kMaxTape, evidence);
}

const std::vector<double>& InferenceSession::mpe(
    const std::vector<ac::PartialAssignment>& evidence) {
  last_flags_ = {};
  return eval_batch(kMaxTape, evidence);
}

}  // namespace problp::runtime
