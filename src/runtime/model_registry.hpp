// ModelRegistry — multi-model serving over mmap-able artifacts.
//
// A ProbLP deployment rarely serves one network: a diagnosis box keeps
// ALARM, HEPAR and a handful of site-specific models warm at once, and the
// per-model cost model ("one offline analysis licenses many cheap online
// queries") only holds if switching models does not mean re-parsing and
// re-compiling.  The registry closes that gap on top of the binary artifact
// (runtime/artifact.hpp):
//
//   * get(path) maps the artifact lazily and returns a shared CompiledModel.
//     Models are keyed by *content hash* (peeked from the header without
//     mapping the payload), so the same artifact reached through two paths
//     — or re-registered after a rename — is one resident model.
//   * Live models are refcounted by their sessions: the registry holds a
//     weak reference plus, while the model is "resident", a pinning strong
//     reference.  Eviction drops only the pin; sessions still holding the
//     shared_ptr keep querying safely and the mapping is unmapped when the
//     last session releases it.
//   * Residency is bounded by Options::max_resident_bytes (sum of artifact
//     file sizes, i.e. mapped bytes — the dominant cost of a mapped model).
//     When an insert pushes the total over the cap, pins are dropped in LRU
//     order until it fits; the just-requested model is never evicted.
//
// Thread-safety: all public methods are safe to call concurrently; the
// registry serialises its table with an internal mutex.  Artifact loading
// happens under the lock (cold loads are mmap-cheap by design), so two
// threads racing get() on the same path map it once.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/compiled_model.hpp"

namespace problp::runtime {

class ModelRegistry {
 public:
  struct Options {
    /// Pinned-residency budget in bytes of mapped artifact; 0 = unlimited.
    /// Models above the cap are evicted LRU but stay alive while sessions
    /// reference them.
    std::uint64_t max_resident_bytes = 0;
    /// Options forwarded to CompiledModel::load for every artifact.
    FrameworkOptions model_options;
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< get() served from a live model
    std::uint64_t misses = 0;      ///< get() had to load the artifact
    std::uint64_t evictions = 0;   ///< pins dropped by the residency cap
    std::uint64_t resident_bytes = 0;  ///< sum of pinned artifact sizes
    std::size_t live_models = 0;   ///< distinct models currently alive
  };

  ModelRegistry() = default;
  explicit ModelRegistry(Options options) : options_(options) {}

  /// Returns the model stored in the artifact at `path`, loading (mapping)
  /// it only if no live model with the same content hash exists.  Throws
  /// util Error / ParseError on unreadable or invalid artifacts.
  std::shared_ptr<const CompiledModel> get(const std::string& path);

  /// Drops the pin of every resident model (sessions keep theirs alive).
  void clear();

  Stats stats() const;

 private:
  struct Entry {
    std::weak_ptr<const CompiledModel> model;
    std::shared_ptr<const CompiledModel> pin;  ///< null once evicted
    std::uint64_t bytes = 0;                   ///< artifact file size
    std::uint64_t lru_tick = 0;
  };

  /// Drops LRU pins until resident bytes fit the cap; `keep` is exempt.
  void enforce_cap_locked(std::uint64_t keep_hash);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> entries_;  ///< keyed by artifact content hash
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace problp::runtime
