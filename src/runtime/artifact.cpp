#include "runtime/artifact.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault_injection.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define PROBLP_HAVE_MMAP 1
#endif

namespace problp::runtime {

namespace {

// On-disk header, field by field.  Written and read with explicit
// little-endian put/get rather than a struct memcpy, so the format is
// defined by this code, not by the compiler's layout choices.
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 4 + 4 + 64;  // 104
constexpr std::size_t kEntrySize = 4 + 4 + 8 + 8 + 8;                // 32
constexpr std::size_t kNameBytes = 64;
constexpr std::size_t kMaxSections = 1u << 20;  ///< sanity bound on the table

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::size_t align_up(std::size_t v) {
  return (v + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

#if PROBLP_HAVE_MMAP
/// Keeps the artifact fd open across the whole of open()-time validation so
/// the final truncation re-check stats the same file the mapping came from
/// (a path re-open could race a rename).  Closes on every exit path.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};
#endif

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const auto word = [](const unsigned char* q) {
    std::uint64_t w = 0;
    std::memcpy(&w, q, sizeof w);  // artifacts are little-endian by contract
    return w;
  };
  // Four independent xor-multiply lanes over 32-byte strides: each lane's
  // chain advances once per 32 input bytes, so the 3-cycle multiply latency
  // overlaps with loads instead of serialising per byte.
  std::uint64_t lane[4] = {seed ^ 0x9e3779b97f4a7c15ULL, seed ^ 0xbf58476d1ce4e5b9ULL,
                           seed ^ 0x94d049bb133111ebULL, seed ^ 0xd6e8feb86659fd93ULL};
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    for (int l = 0; l < 4; ++l) lane[l] = (lane[l] ^ word(p + i + 8 * l)) * kPrime;
  }
  std::uint64_t h = seed;
  for (int l = 0; l < 4; ++l) h = (h ^ lane[l]) * kPrime;
  for (; i + 8 <= size; i += 8) h = (h ^ word(p + i)) * kPrime;
  if (i < size) {
    // Zero-padded tail word, tagged with the residual length so "aa" and
    // "aa\0" keep distinct hashes.
    std::uint64_t tail = static_cast<std::uint64_t>(size - i) << 56;
    for (int shift = 0; i < size; ++i, shift += 8) {
      tail |= static_cast<std::uint64_t>(p[i]) << shift;
    }
    h = (h ^ tail) * kPrime;
  }
  return h;
}

void ArtifactWriter::add(std::uint32_t id, const void* data, std::size_t size) {
  for (const Pending& s : sections_) {
    require(s.id != id, "artifact: duplicate section id " + std::to_string(id));
  }
  Pending p;
  p.id = id;
  p.bytes.assign(static_cast<const unsigned char*>(data),
                 static_cast<const unsigned char*>(data) + size);
  sections_.push_back(std::move(p));
}

void ArtifactWriter::write(const std::string& path) const {
  // Lay out offsets first: header, table, then 64-byte-aligned payloads.
  const std::size_t table_end = kHeaderSize + sections_.size() * kEntrySize;
  std::vector<std::uint64_t> offsets(sections_.size());
  std::size_t cursor = align_up(table_end);
  std::vector<std::uint64_t> checksums(sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    offsets[i] = cursor;
    cursor = align_up(cursor + sections_[i].bytes.size());
    checksums[i] = fnv1a64(sections_[i].bytes.data(), sections_[i].bytes.size());
  }
  // The content hash folds the per-section checksums (in table order), not
  // the payload bytes again: it still pins every payload bit transitively
  // while keeping identity peeks and open()-time validation single-pass.
  const std::uint64_t content_hash =
      fnv1a64(checksums.data(), checksums.size() * sizeof(std::uint64_t));
  // The final pad keeps file_size == the laid-out cursor, so a truncated
  // tail section is caught by the size check alone.
  const std::uint64_t file_size = cursor;

  std::vector<unsigned char> head;
  head.reserve(table_end);
  head.insert(head.end(), kArtifactMagic, kArtifactMagic + 8);
  put_u32(head, kArtifactVersion);
  put_u32(head, kArtifactEndianTag);
  put_u64(head, file_size);
  put_u64(head, content_hash);
  put_u32(head, static_cast<std::uint32_t>(sections_.size()));
  put_u32(head, 0);  // reserved
  unsigned char name[kNameBytes] = {};
  std::memcpy(name, name_.data(), std::min(name_.size(), kNameBytes - 1));
  head.insert(head.end(), name, name + kNameBytes);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    put_u32(head, sections_[i].id);
    put_u32(head, 0);  // reserved
    put_u64(head, offsets[i]);
    put_u64(head, sections_[i].bytes.size());
    put_u64(head, checksums[i]);
  }

  // Temp file in the destination directory (rename is atomic only within
  // one filesystem), then one atomic publish.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "artifact: cannot open temp file " + tmp);
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    std::size_t written = head.size();
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const std::size_t pad = static_cast<std::size_t>(offsets[i]) - written;
      static const char zeros[kSectionAlign] = {};
      out.write(zeros, static_cast<std::streamsize>(pad));
      out.write(reinterpret_cast<const char*>(sections_[i].bytes.data()),
                static_cast<std::streamsize>(sections_[i].bytes.size()));
      written = static_cast<std::size_t>(offsets[i]) + sections_[i].bytes.size();
    }
    static const char zeros[kSectionAlign] = {};
    out.write(zeros, static_cast<std::streamsize>(static_cast<std::size_t>(file_size) - written));
    // Fault site: a failed payload stream (disk full, I/O error) must leave
    // the destination untouched — the fired site poisons the stream so the
    // real short-write error path below runs.
    if (util::fault_point("artifact.write")) out.setstate(std::ios::failbit);
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("artifact: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("artifact: atomic rename to " + path + " failed");
  }
}

bool MappedArtifact::sniff(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  unsigned char magic[8] = {};
  in.read(reinterpret_cast<char*>(magic), 8);
  return in.gcount() == 8 && std::memcmp(magic, kArtifactMagic, 8) == 0;
}

ArtifactInfo MappedArtifact::peek(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "artifact: cannot open " + path);
  unsigned char head[kHeaderSize];
  in.read(reinterpret_cast<char*>(head), kHeaderSize);
  require(static_cast<std::size_t>(in.gcount()) == kHeaderSize,
          "artifact: " + path + " is shorter than a header");
  require(std::memcmp(head, kArtifactMagic, 8) == 0,
          "artifact: " + path + " is not a binary model artifact (bad magic)");
  ArtifactInfo info;
  info.version = get_u32(head + 8);
  const std::uint32_t endian = get_u32(head + 12);
  require(endian == kArtifactEndianTag,
          "artifact: " + path + " was written on a foreign-endian machine (tag 0x" +
              [endian] {
                char buf[16];
                std::snprintf(buf, sizeof buf, "%08x", endian);
                return std::string(buf);
              }() +
              ", expected 0x01020304)");
  info.file_size = get_u64(head + 16);
  info.content_hash = get_u64(head + 24);
  info.num_sections = get_u32(head + 32);
  const char* name = reinterpret_cast<const char*>(head + 40);
  info.name.assign(name, strnlen(name, kNameBytes));
  return info;
}

MappedArtifact& MappedArtifact::operator=(MappedArtifact&& other) noexcept {
  if (this != &other) {
    reset();
    info_ = std::move(other.info_);
    entries_ = std::move(other.entries_);
    base_ = other.base_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.base_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedArtifact::~MappedArtifact() { reset(); }

void MappedArtifact::reset() noexcept {
#if PROBLP_HAVE_MMAP
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), size_);
  }
#endif
  base_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedArtifact MappedArtifact::open(const std::string& path, bool read_copy) {
  MappedArtifact art;
  art.info_ = peek(path);  // header checks: magic, endianness

  require(art.info_.version == kArtifactVersion,
          "artifact: " + path + " has format version " + std::to_string(art.info_.version) +
              ", this build reads version " + std::to_string(kArtifactVersion));

#if PROBLP_HAVE_MMAP
  FdGuard guard;
  if (!read_copy) {
    guard.fd = ::open(path.c_str(), O_RDONLY);
    require(guard.fd >= 0, "artifact: cannot open " + path);
    struct stat st;
    require(::fstat(guard.fd, &st) == 0, "artifact: cannot stat " + path);
    art.size_ = static_cast<std::size_t>(st.st_size);
    if (art.size_ > 0) {
      // Fault site: a failed mapping (address-space pressure, an fs without
      // mmap) must fall through to the heap-read path, not error out.
      void* map = util::fault_point("artifact.mmap")
                      ? MAP_FAILED
                      : ::mmap(nullptr, art.size_, PROT_READ, MAP_PRIVATE, guard.fd, 0);
      if (map != MAP_FAILED) {
        art.base_ = static_cast<const unsigned char*>(map);
        art.mapped_ = true;
      }
    }
  }
#else
  (void)read_copy;  // no mapping to opt out of
#endif
  if (!art.mapped_) {
    // Portable fallback — and the read_copy mode: read the whole file into
    // an owned buffer.  Same views, same validation — only the sharing /
    // laziness is lost, and in exchange the model is immune to the file
    // being truncated or rewritten after open (nothing aliases the pages).
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "artifact: cannot open " + path);
    in.seekg(0, std::ios::end);
    art.size_ = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    art.fallback_.resize(art.size_);
    in.read(reinterpret_cast<char*>(art.fallback_.data()),
            static_cast<std::streamsize>(art.size_));
    std::size_t got = static_cast<std::size_t>(in.gcount());
    // Fault site: the stream delivers fewer bytes than the file claimed.
    if (util::fault_point("artifact.short_read")) got /= 2;
    require(got == art.size_, "artifact: short read of " + path);
    art.base_ = art.fallback_.data();
  }

  require(art.info_.file_size == art.size_,
          "artifact: " + path + " is " + std::to_string(art.size_) + " bytes, header says " +
              std::to_string(art.info_.file_size) + " (truncated or trailing garbage)");
  require(art.info_.num_sections <= kMaxSections,
          "artifact: " + path + " claims an implausible section count");
  const std::size_t table_end =
      kHeaderSize + static_cast<std::size_t>(art.info_.num_sections) * kEntrySize;
  require(table_end <= art.size_, "artifact: " + path + " section table exceeds the file");

  std::vector<std::uint64_t> checksums(art.info_.num_sections);
  art.entries_.reserve(art.info_.num_sections);
  for (std::uint32_t i = 0; i < art.info_.num_sections; ++i) {
    const unsigned char* e = art.base_ + kHeaderSize + i * kEntrySize;
    Entry entry;
    entry.id = get_u32(e);
    entry.offset = get_u64(e + 8);
    entry.length = get_u64(e + 16);
    checksums[i] = get_u64(e + 24);
    require(entry.offset % kSectionAlign == 0,
            "artifact: section " + std::to_string(entry.id) + " is misaligned");
    require(entry.offset <= art.size_ && entry.length <= art.size_ - entry.offset,
            "artifact: section " + std::to_string(entry.id) + " exceeds the file (offset " +
                std::to_string(entry.offset) + ", length " + std::to_string(entry.length) + ")");
    std::uint64_t got = fnv1a64(art.base_ + entry.offset, entry.length);
    // Fault site: one flipped bit in a payload, as a bit rot / torn write
    // would produce — exercises the real mismatch path below.
    if (util::fault_point("artifact.checksum")) got ^= 1;
    require(got == checksums[i], "artifact: section " + std::to_string(entry.id) +
                                     " checksum mismatch (corrupt payload)");
    art.entries_.push_back(entry);
  }
  // Folding the (already verified) checksum column reproduces the header's
  // content hash without a second pass over the payload bytes.
  require(fnv1a64(checksums.data(), checksums.size() * sizeof(std::uint64_t)) ==
              art.info_.content_hash,
          "artifact: " + path + " content hash mismatch (corrupt or inconsistent file)");
#if PROBLP_HAVE_MMAP
  if (guard.fd >= 0) {
    // Truncation re-check: every byte above was validated through the
    // mapping, but a writer that truncates the file *after* our fstat
    // leaves the tail of the mapping backed by nothing — later lazy
    // touches would SIGBUS, long past this validation.  Re-stat the same
    // fd and refuse the artifact if its size moved under us.  (This closes
    // the open()-time window only; for full immunity against concurrent
    // truncation use the read_copy mode, which owns its bytes.)
    struct stat st;
    require(::fstat(guard.fd, &st) == 0, "artifact: cannot re-stat " + path);
    std::uint64_t size_now = static_cast<std::uint64_t>(st.st_size);
    // Fault site: the file shrank between validation and the re-check.
    if (util::fault_point("artifact.size_recheck")) size_now /= 2;
    require(size_now == art.info_.file_size,
            "artifact: " + path + " changed size during open (now " +
                std::to_string(size_now) + " bytes, validated " +
                std::to_string(art.info_.file_size) + ") — concurrent truncation");
  }
#endif
  return art;
}

const MappedArtifact::Entry* MappedArtifact::find(std::uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const MappedArtifact::Entry* MappedArtifact::require_section(std::uint32_t id) const {
  const Entry* e = find(id);
  require(e != nullptr, "artifact: missing section " + std::to_string(id));
  return e;
}

std::string MappedArtifact::text(std::uint32_t id) const {
  const Entry* e = require_section(id);
  return std::string(reinterpret_cast<const char*>(base_ + e->offset),
                     static_cast<std::size_t>(e->length));
}

const unsigned char* MappedArtifact::bytes(std::uint32_t id, std::size_t* size) const {
  const Entry* e = require_section(id);
  *size = static_cast<std::size_t>(e->length);
  return base_ + e->offset;
}

}  // namespace problp::runtime
