#include "runtime/compiled_model.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "ac/serialize.hpp"
#include "bn/network.hpp"
#include "compile/ve_compiler.hpp"

namespace problp::runtime {

namespace {

const char* to_keyword(ac::DecompositionStyle style) {
  return style == ac::DecompositionStyle::kChain ? "chain" : "balanced";
}

ac::DecompositionStyle decomposition_from_keyword(const std::string& word) {
  if (word == "balanced") return ac::DecompositionStyle::kBalanced;
  if (word == "chain") return ac::DecompositionStyle::kChain;
  throw ParseError("model load: unknown decomposition style '" + word + "'");
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

CompiledModel::CompiledModel(std::optional<ac::Circuit> source, ac::Circuit binary,
                             FrameworkOptions options)
    : options_(options),
      binary_(std::move(binary)),
      tape_(ac::CircuitTape::compile(binary_)),
      source_(std::move(source)) {}

std::shared_ptr<const CompiledModel> CompiledModel::compile(const ac::Circuit& circuit,
                                                            FrameworkOptions options) {
  ac::Circuit binary = ac::binarize(circuit, options.decomposition).circuit;
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(circuit, std::move(binary), options));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile(const bn::BayesianNetwork& network,
                                                            FrameworkOptions options) {
  return compile(compile::compile_network(network), options);
}

std::shared_ptr<const CompiledModel> CompiledModel::wrap(ac::Circuit circuit,
                                                         FrameworkOptions options) {
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::nullopt, std::move(circuit), options));
}

// ---- lazy artifacts --------------------------------------------------------

const CompiledModel::MaxArtifact& CompiledModel::ensure_max_locked() const {
  if (!max_) {
    // The same derivation Framework ran: maximise the *source* circuit,
    // then decompose — so compile()-built models are bit-identical to the
    // pre-runtime pipeline.  wrap()ed models maximise the wrapped circuit.
    ac::Circuit max_circuit =
        ac::binarize(ac::to_max_circuit(source_ ? *source_ : binary_), options_.decomposition)
            .circuit;
    ac::CircuitTape max_tape = ac::CircuitTape::compile(max_circuit);
    max_.reset(new MaxArtifact{std::move(max_circuit), std::move(max_tape)});
    source_.reset();  // the source arena has served its only purpose
  }
  return *max_;
}

const errormodel::CircuitErrorModel& CompiledModel::ensure_model_locked(
    errormodel::QueryType q) const {
  if (q == errormodel::QueryType::kMpe) {
    if (!max_model_) {
      max_model_ = errormodel::CircuitErrorModel::build(ensure_max_locked().circuit);
    }
    return *max_model_;
  }
  if (!model_) model_ = errormodel::CircuitErrorModel::build(binary_);
  return *model_;
}

const ac::Circuit& CompiledModel::binary_max_circuit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_max_locked().circuit;
}

const ac::CircuitTape& CompiledModel::max_tape() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_max_locked().tape;
}

const ac::Circuit& CompiledModel::circuit_for(errormodel::QueryType q) const {
  return q == errormodel::QueryType::kMpe ? binary_max_circuit() : binary_;
}

const ac::CircuitTape& CompiledModel::tape_for(errormodel::QueryType q) const {
  return q == errormodel::QueryType::kMpe ? max_tape() : tape_;
}

const errormodel::CircuitErrorModel& CompiledModel::error_model(errormodel::QueryType q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_model_locked(q);
}

// ---- analysis --------------------------------------------------------------

AnalysisReport CompiledModel::analyze(const errormodel::QuerySpec& spec) const {
  const auto key = std::make_tuple(static_cast<int>(spec.query), static_cast<int>(spec.kind),
                                   double_bits(spec.tolerance));
  // The bit-width search can take a while on large circuits, so it runs
  // outside the lock: the lock only covers the cache probe and the lazy
  // prerequisites (whose references stay valid once built).  Two threads
  // racing the same uncached spec compute it twice — deterministic, so the
  // first insert wins and both return identical reports.
  const ac::Circuit* circuit = nullptr;
  const errormodel::CircuitErrorModel* model = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = reports_.find(key);
    if (it != reports_.end()) return it->second;
    circuit = spec.query == errormodel::QueryType::kMpe ? &ensure_max_locked().circuit : &binary_;
    model = &ensure_model_locked(spec.query);
  }
  AnalysisReport report = analyze_circuit(*circuit, *model, spec, options_);
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_.try_emplace(key, std::move(report)).first->second;
}

HardwareReport CompiledModel::generate_hardware(const AnalysisReport& report) const {
  return problp::generate_hardware(circuit_for(report.spec.query), report, options_);
}

// ---- persistence -----------------------------------------------------------

std::string CompiledModel::to_text() const {
  const std::string binary_text = ac::to_text(binary_);
  const std::string max_text = ac::to_text(binary_max_circuit());
  std::ostringstream os;
  os << "problp-model 1\n";
  os << "decomposition " << to_keyword(options_.decomposition) << "\n";
  os << "circuit " << binary_text.size() << "\n" << binary_text;
  os << "maxcircuit " << max_text.size() << "\n" << max_text;
  return os.str();
}

void CompiledModel::save(const std::string& path) const {
  std::ofstream f(path);
  require(f.good(), "CompiledModel::save: cannot open '" + path + "'");
  f << to_text();
}

std::shared_ptr<const CompiledModel> CompiledModel::from_text(const std::string& text,
                                                              FrameworkOptions options) {
  std::size_t pos = 0;
  auto read_line = [&]() -> std::string {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) throw ParseError("model load: truncated artifact");
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  auto read_sized_section = [&](const std::string& keyword) -> std::string {
    std::istringstream header(read_line());
    std::string word;
    std::size_t size = 0;
    header >> word >> size;
    if (word != keyword) {
      throw ParseError("model load: expected '" + keyword + "', got '" + word + "'");
    }
    if (pos + size > text.size()) throw ParseError("model load: truncated " + keyword);
    std::string payload = text.substr(pos, size);
    pos += size;
    return payload;
  };

  if (read_line() != "problp-model 1") {
    throw ParseError("model load: bad header (want 'problp-model 1')");
  }
  {
    std::istringstream header(read_line());
    std::string word;
    std::string style;
    header >> word >> style;
    if (word != "decomposition") throw ParseError("model load: expected 'decomposition'");
    options.decomposition = decomposition_from_keyword(style);
  }
  ac::Circuit binary = ac::from_text(read_sized_section("circuit"));
  ac::Circuit max_circuit = ac::from_text(read_sized_section("maxcircuit"));

  // The maximiser is installed eagerly from the artifact so it is never
  // re-derived (a re-derivation from the *binarised* circuit could differ
  // from the compile-time binarize(to_max(nary)) order), so no source
  // arena is kept.
  auto model = std::shared_ptr<CompiledModel>(
      new CompiledModel(std::nullopt, std::move(binary), options));
  ac::CircuitTape max_tape = ac::CircuitTape::compile(max_circuit);
  model->max_.reset(new MaxArtifact{std::move(max_circuit), std::move(max_tape)});
  return model;
}

std::shared_ptr<const CompiledModel> CompiledModel::load(const std::string& path,
                                                         FrameworkOptions options) {
  std::ifstream f(path);
  require(f.good(), "CompiledModel::load: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str(), options);
}

}  // namespace problp::runtime
