#include "runtime/compiled_model.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "ac/kernel_schedule.hpp"
#include "ac/leaf_cache.hpp"
#include "ac/serialize.hpp"
#include "ac/tape_layout.hpp"
#include "bn/network.hpp"
#include "compile/ve_compiler.hpp"

namespace problp::runtime {

namespace {

const char* to_keyword(ac::DecompositionStyle style) {
  return style == ac::DecompositionStyle::kChain ? "chain" : "balanced";
}

ac::DecompositionStyle decomposition_from_keyword(const std::string& word) {
  if (word == "balanced") return ac::DecompositionStyle::kBalanced;
  if (word == "chain") return ac::DecompositionStyle::kChain;
  throw ParseError("model load: unknown decomposition style '" + word + "'");
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---- binary artifact schema ------------------------------------------------
//
// Section ids of the mmap-able model container (runtime/artifact.hpp holds
// the container format; this file owns what the sections mean).  Per-tape
// sections live at a base id (marginal 0x1000, maximiser 0x2000) plus a
// TapeField offset, so both tapes share one save/load routine.

namespace section {

constexpr std::uint32_t kModelMeta = 1;      ///< text: "decomposition <kw>\n"
constexpr std::uint32_t kCardinalities = 2;  ///< i32[num_variables]
constexpr std::uint32_t kCircuitText = 3;    ///< ac::to_text of the marginal circuit
constexpr std::uint32_t kMaxCircuitText = 4; ///< ac::to_text of the maximiser
constexpr std::uint32_t kReports = 5;        ///< packed u64 records, kReportWords each
constexpr std::uint32_t kLeafCacheBase = 0x100;  ///< + i, dense from 0
constexpr std::uint32_t kMarginalTape = 0x1000;
constexpr std::uint32_t kMaxTape = 0x2000;

enum TapeField : std::uint32_t {
  kKinds = 0,        // u8[n]
  kChildOffsets,     // i32[n + 1]
  kChildren,         // i32[num_edges]
  kBaseValues,       // f64[n]
  kIndVar,           // i32[n]
  kIndState,         // i32[n]
  kOpIds,            // i32[num_ops]
  kParamIds,         // i32[num_params]
  kParamValues,      // f64[num_params]
  kIndicatorIds,     // i32[num_indicators]
  kVarOffsets,       // i32[num_variables + 1]
  kIndicatorIndex,   // i32[sum of cardinalities]
  kTapeMeta,         // u64[1]: root
  kLayoutOpOrder,    // i32[num_ops]
  kLayoutSlotOf,     // i32[n]
  kLayoutStats,      // u64[11 + hist]: scalar stats, then the run histogram
  kSchedSegments,    // u32[3 * num_segments]: (kind, begin, end) triples
  kSchedOut,         // i32[num_fanin2]
  kSchedLhs,         // i32[num_fanin2]
  kSchedRhs,         // i32[num_fanin2]
  kSchedGenKinds,    // u8[num_generic]
  kSchedGenOut,      // i32[num_generic]
  kSchedGenOffsets,  // i32[num_generic + 1]
  kSchedGenChildren, // i32[...]
  kSchedMeta,        // u64[1]: num_rows
};

}  // namespace section

constexpr std::size_t kReportWords = 25;

std::uint64_t flags_bits(const lowprec::ArithFlags& f) {
  return (f.overflow ? 1u : 0u) | (f.underflow ? 2u : 0u) | (f.invalid_input ? 4u : 0u);
}

lowprec::ArithFlags bits_flags(std::uint64_t bits) {
  lowprec::ArithFlags f;
  f.overflow = (bits & 1) != 0;
  f.underflow = (bits & 2) != 0;
  f.invalid_input = (bits & 4) != 0;
  return f;
}

void save_tape(ArtifactWriter& w, std::uint32_t base, const ac::CircuitTape& tape) {
  using namespace section;
  w.add_array(base + kKinds, tape.kinds());
  w.add_array(base + kChildOffsets, tape.child_offsets());
  w.add_array(base + kChildren, tape.children());
  w.add_array(base + kBaseValues, tape.base_values());
  w.add_array(base + kIndVar, tape.ind_var());
  w.add_array(base + kIndState, tape.ind_state());
  w.add_array(base + kOpIds, tape.op_ids());
  w.add_array(base + kParamIds, tape.param_ids());
  w.add_array(base + kParamValues, tape.param_values());
  w.add_array(base + kIndicatorIds, tape.indicator_ids());
  w.add_array(base + kVarOffsets, tape.var_offsets());
  w.add_array(base + kIndicatorIndex, tape.indicator_index());
  const std::uint64_t tape_meta[1] = {static_cast<std::uint64_t>(tape.root())};
  w.add(base + kTapeMeta, tape_meta, sizeof tape_meta);

  const ac::TapeLayout& layout = tape.layout();
  w.add_array(base + kLayoutOpOrder, layout.op_order());
  w.add_array(base + kLayoutSlotOf, layout.slot_of());
  const ac::TapeLayoutStats& st = layout.stats();
  std::vector<std::uint64_t> stats;
  stats.reserve(11 + st.fanin2_run_hist.size());
  stats.push_back(st.num_nodes);
  stats.push_back(st.num_leaves);
  stats.push_back(st.num_ops);
  stats.push_back(st.max_live);
  stats.push_back(st.num_slots);
  stats.push_back(st.slots_saved);
  stats.push_back(double_bits(st.mean_reuse_distance));
  stats.push_back(double_bits(st.mean_reuse_distance_original));
  stats.push_back(st.num_fanin2_runs);
  stats.push_back(st.num_fanin2_runs_original);
  stats.push_back(st.fanin2_run_hist.size());
  for (std::size_t h : st.fanin2_run_hist) stats.push_back(h);
  w.add_array(base + kLayoutStats, stats);

  const ac::KernelSchedule& sched = *tape.layout_schedule();
  std::vector<std::uint32_t> segs;
  segs.reserve(3 * sched.segments().size());
  for (const ac::KernelSegment& s : sched.segments()) {
    segs.push_back(static_cast<std::uint32_t>(s.kind));
    segs.push_back(s.begin);
    segs.push_back(s.end);
  }
  w.add_array(base + kSchedSegments, segs);
  w.add_array(base + kSchedOut, sched.out());
  w.add_array(base + kSchedLhs, sched.lhs());
  w.add_array(base + kSchedRhs, sched.rhs());
  w.add_array(base + kSchedGenKinds, sched.gen_kinds());
  w.add_array(base + kSchedGenOut, sched.gen_out());
  w.add_array(base + kSchedGenOffsets, sched.gen_offsets());
  w.add_array(base + kSchedGenChildren, sched.gen_children());
  const std::uint64_t sched_meta[1] = {sched.num_rows()};
  w.add(base + kSchedMeta, sched_meta, sizeof sched_meta);
}

ac::CircuitTape load_tape(const MappedArtifact& art, std::uint32_t base,
                          std::vector<int> cardinalities) {
  using namespace section;

  const auto stats_words = art.array<std::uint64_t>(base + kLayoutStats);
  require(stats_words.size() >= 11, "model load: layout stats section too short");
  ac::TapeLayoutStats st;
  st.num_nodes = static_cast<std::size_t>(stats_words[0]);
  st.num_leaves = static_cast<std::size_t>(stats_words[1]);
  st.num_ops = static_cast<std::size_t>(stats_words[2]);
  st.max_live = static_cast<std::size_t>(stats_words[3]);
  st.num_slots = static_cast<std::size_t>(stats_words[4]);
  st.slots_saved = static_cast<std::size_t>(stats_words[5]);
  st.mean_reuse_distance = bits_double(stats_words[6]);
  st.mean_reuse_distance_original = bits_double(stats_words[7]);
  st.num_fanin2_runs = static_cast<std::size_t>(stats_words[8]);
  st.num_fanin2_runs_original = static_cast<std::size_t>(stats_words[9]);
  const std::size_t hist_len = static_cast<std::size_t>(stats_words[10]);
  require(stats_words.size() == 11 + hist_len, "model load: layout stats histogram mis-sized");
  st.fanin2_run_hist.reserve(hist_len);
  for (std::size_t h = 0; h < hist_len; ++h) {
    st.fanin2_run_hist.push_back(static_cast<std::size_t>(stats_words[11 + h]));
  }
  auto layout = std::make_shared<const ac::TapeLayout>(
      ac::TapeLayout::adopt(art.array<ac::NodeId>(base + kLayoutOpOrder),
                            art.array<std::int32_t>(base + kLayoutSlotOf), std::move(st)));

  const auto seg_words = art.array<std::uint32_t>(base + kSchedSegments);
  require(seg_words.size() % 3 == 0, "model load: schedule segment table mis-sized");
  std::vector<ac::KernelSegment> segments;
  segments.reserve(seg_words.size() / 3);
  for (std::size_t i = 0; i < seg_words.size(); i += 3) {
    require(seg_words[i] <= static_cast<std::uint32_t>(ac::KernelSegment::Kind::kGeneric),
            "model load: unknown kernel segment kind");
    segments.push_back(ac::KernelSegment{static_cast<ac::KernelSegment::Kind>(seg_words[i]),
                                         seg_words[i + 1], seg_words[i + 2]});
  }
  const auto sched_meta = art.array<std::uint64_t>(base + kSchedMeta);
  require(sched_meta.size() == 1, "model load: schedule meta section mis-sized");
  auto schedule = std::make_shared<const ac::KernelSchedule>(ac::KernelSchedule::adopt(
      std::move(segments), art.array<std::int32_t>(base + kSchedOut),
      art.array<std::int32_t>(base + kSchedLhs), art.array<std::int32_t>(base + kSchedRhs),
      art.array<ac::NodeKind>(base + kSchedGenKinds),
      art.array<std::int32_t>(base + kSchedGenOut),
      art.array<std::int32_t>(base + kSchedGenOffsets),
      art.array<std::int32_t>(base + kSchedGenChildren),
      static_cast<std::size_t>(sched_meta[0])));

  const auto tape_meta = art.array<std::uint64_t>(base + kTapeMeta);
  require(tape_meta.size() == 1, "model load: tape meta section mis-sized");

  ac::CircuitTape::Arrays arrays;
  arrays.kinds = art.array<ac::NodeKind>(base + kKinds);
  arrays.child_offsets = art.array<std::int32_t>(base + kChildOffsets);
  arrays.children = art.array<ac::NodeId>(base + kChildren);
  arrays.base_values = art.array<double>(base + kBaseValues);
  arrays.ind_var = art.array<std::int32_t>(base + kIndVar);
  arrays.ind_state = art.array<std::int32_t>(base + kIndState);
  arrays.op_ids = art.array<ac::NodeId>(base + kOpIds);
  arrays.param_ids = art.array<ac::NodeId>(base + kParamIds);
  arrays.param_values = art.array<double>(base + kParamValues);
  arrays.indicator_ids = art.array<ac::NodeId>(base + kIndicatorIds);
  arrays.var_offsets = art.array<std::int32_t>(base + kVarOffsets);
  arrays.indicator_index = art.array<ac::NodeId>(base + kIndicatorIndex);
  return ac::CircuitTape::adopt(std::move(arrays),
                                static_cast<ac::NodeId>(tape_meta[0]),
                                std::move(cardinalities), std::move(layout),
                                std::move(schedule));
}

// ---- report records --------------------------------------------------------

void pack_report(const AnalysisReport& r, std::vector<std::uint64_t>& out) {
  const auto put_i = [&](std::int64_t v) { out.push_back(static_cast<std::uint64_t>(v)); };
  put_i(static_cast<int>(r.spec.query));
  put_i(static_cast<int>(r.spec.kind));
  out.push_back(double_bits(r.spec.tolerance));
  put_i(r.fixed_plan.feasible ? 1 : 0);
  put_i(r.fixed_plan.format.integer_bits);
  put_i(r.fixed_plan.format.fraction_bits);
  out.push_back(double_bits(r.fixed_plan.predicted_bound));
  put_i(r.fixed_plan.attempted_max_fraction_bits);
  out.push_back(double_bits(r.fixed_energy_nj));
  put_i(r.float_plan.feasible ? 1 : 0);
  put_i(r.float_plan.format.exponent_bits);
  put_i(r.float_plan.format.mantissa_bits);
  out.push_back(double_bits(r.float_plan.predicted_bound));
  put_i(r.float_plan.attempted_max_mantissa_bits);
  out.push_back(double_bits(r.float_energy_nj));
  put_i(r.selected.kind == Representation::Kind::kFixed ? 0 : 1);
  put_i(r.selected.fixed.integer_bits);
  put_i(r.selected.fixed.fraction_bits);
  put_i(r.selected.flt.exponent_bits);
  put_i(r.selected.flt.mantissa_bits);
  put_i(r.any_feasible ? 1 : 0);
  out.push_back(double_bits(r.float32_reference_nj));
  out.push_back(r.census.adders);
  out.push_back(r.census.multipliers);
  out.push_back(r.census.maxes);
}

AnalysisReport unpack_report(const std::uint64_t* w) {
  const auto get_i = [&](std::size_t i) { return static_cast<std::int64_t>(w[i]); };
  AnalysisReport r;
  r.spec.query = static_cast<errormodel::QueryType>(get_i(0));
  r.spec.kind = static_cast<errormodel::ToleranceKind>(get_i(1));
  r.spec.tolerance = bits_double(w[2]);
  r.fixed_plan.feasible = get_i(3) != 0;
  r.fixed_plan.format.integer_bits = static_cast<int>(get_i(4));
  r.fixed_plan.format.fraction_bits = static_cast<int>(get_i(5));
  r.fixed_plan.predicted_bound = bits_double(w[6]);
  r.fixed_plan.attempted_max_fraction_bits = static_cast<int>(get_i(7));
  r.fixed_energy_nj = bits_double(w[8]);
  r.float_plan.feasible = get_i(9) != 0;
  r.float_plan.format.exponent_bits = static_cast<int>(get_i(10));
  r.float_plan.format.mantissa_bits = static_cast<int>(get_i(11));
  r.float_plan.predicted_bound = bits_double(w[12]);
  r.float_plan.attempted_max_mantissa_bits = static_cast<int>(get_i(13));
  r.float_energy_nj = bits_double(w[14]);
  r.selected.kind = get_i(15) == 0 ? Representation::Kind::kFixed : Representation::Kind::kFloat;
  r.selected.fixed.integer_bits = static_cast<int>(get_i(16));
  r.selected.fixed.fraction_bits = static_cast<int>(get_i(17));
  r.selected.flt.exponent_bits = static_cast<int>(get_i(18));
  r.selected.flt.mantissa_bits = static_cast<int>(get_i(19));
  r.any_feasible = get_i(20) != 0;
  r.float32_reference_nj = bits_double(w[21]);
  r.census.adders = static_cast<std::size_t>(w[22]);
  r.census.multipliers = static_cast<std::size_t>(w[23]);
  r.census.maxes = static_cast<std::size_t>(w[24]);
  return r;
}

// ---- leaf cache records ----------------------------------------------------
//
// Each leaf cache is one self-contained section at kLeafCacheBase + i:
//   u64[6] header: datapath kind (0 fixed / 1 float), tape (0 marginal /
//                  1 max), format field 1, format field 2, rounding mode,
//                  conversion flag bits
// then, fixed:  u64 count, u64 pad, u128 one, u128 zero, u128 params[count]
//               (params land at byte 96 — 16-aligned inside the 64-aligned
//               section, as u128 views require)
// then, float:  u64 count, i64 one_exp, u64 one_sig, i64 zero_exp,
//               u64 zero_sig, u64 pad (header ends at byte 96),
//               i32 exps[count], then u64 sigs[count] at the next 8-aligned
//               offset

constexpr std::size_t kLeafHeadWords = 6;

std::vector<unsigned char> pack_fixed_leaf_cache(const ac::FixedLeafCache& c, bool max_tape) {
  std::vector<std::uint64_t> head;
  head.push_back(0);
  head.push_back(max_tape ? 1 : 0);
  head.push_back(static_cast<std::uint64_t>(c.format.integer_bits));
  head.push_back(static_cast<std::uint64_t>(c.format.fraction_bits));
  head.push_back(static_cast<std::uint64_t>(c.mode));
  head.push_back(flags_bits(c.param_flags));
  head.push_back(c.params.size());
  head.push_back(0);  // pad: one/zero land 16-aligned
  std::vector<unsigned char> out(head.size() * 8 + 32 + c.params.size() * sizeof(u128));
  std::memcpy(out.data(), head.data(), head.size() * 8);
  std::memcpy(out.data() + 64, &c.one, sizeof(u128));
  std::memcpy(out.data() + 80, &c.zero, sizeof(u128));
  if (!c.params.empty()) {
    std::memcpy(out.data() + 96, c.params.data(), c.params.size() * sizeof(u128));
  }
  return out;
}

std::vector<unsigned char> pack_float_leaf_cache(const ac::FloatLeafCache& c, bool max_tape) {
  std::vector<std::uint64_t> head;
  head.push_back(1);
  head.push_back(max_tape ? 1 : 0);
  head.push_back(static_cast<std::uint64_t>(c.format.exponent_bits));
  head.push_back(static_cast<std::uint64_t>(c.format.mantissa_bits));
  head.push_back(static_cast<std::uint64_t>(c.mode));
  head.push_back(flags_bits(c.param_flags));
  head.push_back(c.params_exp.size());
  head.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(c.one_exp)));
  head.push_back(c.one_sig);
  head.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(c.zero_exp)));
  head.push_back(c.zero_sig);
  head.push_back(0);  // pad to 96 bytes
  const std::size_t n = c.params_exp.size();
  const std::size_t exps_at = head.size() * 8;
  const std::size_t sigs_at = (exps_at + n * 4 + 7) / 8 * 8;
  std::vector<unsigned char> out(sigs_at + n * 8);
  std::memcpy(out.data(), head.data(), head.size() * 8);
  if (n > 0) {
    std::memcpy(out.data() + exps_at, c.params_exp.data(), n * 4);
    std::memcpy(out.data() + sigs_at, c.params_sig.data(), n * 8);
  }
  return out;
}

/// Parses leaf cache section `id` into `set`; returns whether the cache
/// belongs to the max tape.  Views alias the mapped payload.
bool unpack_leaf_cache(const MappedArtifact& art, std::uint32_t id, ac::LeafCacheSet& set) {
  std::size_t size = 0;
  const unsigned char* p = art.bytes(id, &size);
  require(size >= kLeafHeadWords * 8, "model load: leaf cache section too short");
  std::uint64_t head[12] = {};
  std::memcpy(head, p, std::min(size, sizeof head));
  const bool max_tape = head[1] != 0;
  const std::uint64_t rounding = head[4];
  require(rounding <= static_cast<std::uint64_t>(lowprec::RoundingMode::kTruncate),
          "model load: unknown rounding mode in leaf cache");
  if (head[0] == 0) {
    ac::FixedLeafCache c;
    c.format.integer_bits = static_cast<int>(head[2]);
    c.format.fraction_bits = static_cast<int>(head[3]);
    c.mode = static_cast<lowprec::RoundingMode>(rounding);
    c.param_flags = bits_flags(head[5]);
    const std::size_t n = static_cast<std::size_t>(head[6]);
    require(size == 96 + n * sizeof(u128), "model load: fixed leaf cache mis-sized");
    std::memcpy(&c.one, p + 64, sizeof(u128));
    std::memcpy(&c.zero, p + 80, sizeof(u128));
    c.params = util::ArrayStore<u128>::view(reinterpret_cast<const u128*>(p + 96), n);
    set.fixed.push_back(std::move(c));
  } else {
    require(head[0] == 1, "model load: unknown leaf cache datapath kind");
    require(size >= 96, "model load: float leaf cache header too short");
    ac::FloatLeafCache c;
    c.format.exponent_bits = static_cast<int>(head[2]);
    c.format.mantissa_bits = static_cast<int>(head[3]);
    c.mode = static_cast<lowprec::RoundingMode>(rounding);
    c.param_flags = bits_flags(head[5]);
    const std::size_t n = static_cast<std::size_t>(head[6]);
    c.one_exp = static_cast<std::int32_t>(static_cast<std::int64_t>(head[7]));
    c.one_sig = head[8];
    c.zero_exp = static_cast<std::int32_t>(static_cast<std::int64_t>(head[9]));
    c.zero_sig = head[10];
    const std::size_t exps_at = 96;
    const std::size_t sigs_at = (exps_at + n * 4 + 7) / 8 * 8;
    require(size == sigs_at + n * 8, "model load: float leaf cache mis-sized");
    c.params_exp = util::ArrayStore<std::int32_t>::view(
        reinterpret_cast<const std::int32_t*>(p + exps_at), n);
    c.params_sig = util::ArrayStore<std::uint64_t>::view(
        reinterpret_cast<const std::uint64_t*>(p + sigs_at), n);
    set.flt.push_back(std::move(c));
  }
  return max_tape;
}

}  // namespace

CompiledModel::CompiledModel(std::optional<ac::Circuit> source, ac::Circuit binary,
                             FrameworkOptions options)
    : options_(options),
      tape_(ac::CircuitTape::compile(binary)),
      source_(std::move(source)),
      binary_(std::move(binary)) {}

CompiledModel::CompiledModel(std::shared_ptr<MappedArtifact> mapping, ac::CircuitTape tape,
                             FrameworkOptions options)
    : mapping_(std::move(mapping)), options_(options), tape_(std::move(tape)) {}

std::shared_ptr<const CompiledModel> CompiledModel::compile(const ac::Circuit& circuit,
                                                            FrameworkOptions options) {
  ac::Circuit binary = ac::binarize(circuit, options.decomposition).circuit;
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(circuit, std::move(binary), options));
}

std::shared_ptr<const CompiledModel> CompiledModel::compile(const bn::BayesianNetwork& network,
                                                            FrameworkOptions options) {
  ac::Circuit nary = compile::compile_network(network);
  ac::Circuit binary = ac::binarize(nary, options.decomposition).circuit;
  auto model = std::shared_ptr<CompiledModel>(
      new CompiledModel(std::move(nary), std::move(binary), options));
  model->name_ = network.name();
  return model;
}

std::shared_ptr<const CompiledModel> CompiledModel::wrap(ac::Circuit circuit,
                                                         FrameworkOptions options) {
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::nullopt, std::move(circuit), options));
}

// ---- lazy artifacts --------------------------------------------------------

const ac::Circuit& CompiledModel::ensure_binary_locked() const {
  if (!binary_) {
    // mmap path: the marginal circuit rides along as a text section and is
    // parsed only when an arena consumer needs it.
    binary_ = ac::from_text(mapping_->text(section::kCircuitText));
  }
  return *binary_;
}

const CompiledModel::MaxArtifact& CompiledModel::ensure_max_locked() const {
  if (!max_) {
    // The same derivation Framework ran: maximise the *source* circuit,
    // then decompose — so compile()-built models are bit-identical to the
    // pre-runtime pipeline.  wrap()ed models maximise the wrapped circuit.
    ac::Circuit max_circuit =
        ac::binarize(ac::to_max_circuit(source_ ? *source_ : ensure_binary_locked()),
                     options_.decomposition)
            .circuit;
    ac::CircuitTape max_tape = ac::CircuitTape::compile(max_circuit);
    max_.reset(new MaxArtifact{std::move(max_circuit), std::move(max_tape)});
    source_.reset();  // the source arena has served its only purpose
  }
  return *max_;
}

const ac::Circuit& CompiledModel::ensure_max_circuit_locked() const {
  const MaxArtifact& max = ensure_max_locked();
  if (!max.circuit) {
    // mmap path: the tape was adopted from the artifact; the circuit text
    // section is parsed only now.
    max_->circuit = ac::from_text(mapping_->text(section::kMaxCircuitText));
  }
  return *max_->circuit;
}

const errormodel::CircuitErrorModel& CompiledModel::ensure_model_locked(
    errormodel::QueryType q) const {
  if (q == errormodel::QueryType::kMpe) {
    if (!max_model_) {
      max_model_ = errormodel::CircuitErrorModel::build(ensure_max_circuit_locked());
    }
    return *max_model_;
  }
  if (!model_) model_ = errormodel::CircuitErrorModel::build(ensure_binary_locked());
  return *model_;
}

const ac::Circuit& CompiledModel::binary_circuit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_binary_locked();
}

const ac::Circuit& CompiledModel::binary_max_circuit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_max_circuit_locked();
}

const ac::CircuitTape& CompiledModel::max_tape() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_max_locked().tape;
}

const ac::Circuit& CompiledModel::circuit_for(errormodel::QueryType q) const {
  return q == errormodel::QueryType::kMpe ? binary_max_circuit() : binary_circuit();
}

const ac::CircuitTape& CompiledModel::tape_for(errormodel::QueryType q) const {
  return q == errormodel::QueryType::kMpe ? max_tape() : tape_;
}

const errormodel::CircuitErrorModel& CompiledModel::error_model(errormodel::QueryType q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ensure_model_locked(q);
}

// ---- analysis --------------------------------------------------------------

AnalysisReport CompiledModel::analyze(const errormodel::QuerySpec& spec) const {
  const auto key = std::make_tuple(static_cast<int>(spec.query), static_cast<int>(spec.kind),
                                   double_bits(spec.tolerance));
  // The bit-width search can take a while on large circuits, so it runs
  // outside the lock: the lock only covers the cache probe and the lazy
  // prerequisites (whose references stay valid once built).  Two threads
  // racing the same uncached spec compute it twice — deterministic, so the
  // first insert wins and both return identical reports.
  const ac::Circuit* circuit = nullptr;
  const errormodel::CircuitErrorModel* model = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = reports_.find(key);
    if (it != reports_.end()) return it->second;
    circuit = spec.query == errormodel::QueryType::kMpe ? &ensure_max_circuit_locked()
                                                        : &ensure_binary_locked();
    model = &ensure_model_locked(spec.query);
  }
  AnalysisReport report = analyze_circuit(*circuit, *model, spec, options_);
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_.try_emplace(key, std::move(report)).first->second;
}

HardwareReport CompiledModel::generate_hardware(const AnalysisReport& report) const {
  return problp::generate_hardware(circuit_for(report.spec.query), report, options_);
}

// ---- persistence -----------------------------------------------------------

std::string CompiledModel::to_text() const {
  const std::string binary_text = ac::to_text(binary_circuit());
  const std::string max_text = ac::to_text(binary_max_circuit());
  std::ostringstream os;
  os << "problp-model 1\n";
  os << "decomposition " << to_keyword(options_.decomposition) << "\n";
  os << "circuit " << binary_text.size() << "\n" << binary_text;
  os << "maxcircuit " << max_text.size() << "\n" << max_text;
  return os.str();
}

void CompiledModel::save(const std::string& path) const {
  ArtifactWriter w(name_);

  w.add_text(section::kModelMeta,
             std::string("decomposition ") + to_keyword(options_.decomposition) + "\n");
  static_assert(sizeof(int) == sizeof(std::int32_t), "cardinalities persist as i32");
  w.add_array(section::kCardinalities, cardinalities());
  w.add_text(section::kCircuitText, ac::to_text(binary_circuit()));
  w.add_text(section::kMaxCircuitText, ac::to_text(binary_max_circuit()));
  save_tape(w, section::kMarginalTape, tape_);
  save_tape(w, section::kMaxTape, max_tape());

  // Snapshot the cached reports under the lock, then derive the leaf caches
  // of their selected representations outside it: a loaded model replays a
  // persisted spec as a map hit and serves its selected format from
  // pre-quantised leaves.
  std::vector<AnalysisReport> reports;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reports.reserve(reports_.size());
    for (const auto& [key, report] : reports_) reports.push_back(report);
  }
  std::vector<std::uint64_t> records;
  records.reserve(reports.size() * kReportWords);
  for (const AnalysisReport& r : reports) pack_report(r, records);
  w.add_array(section::kReports, records);

  std::uint32_t cache_id = section::kLeafCacheBase;
  std::vector<std::vector<unsigned char>> cache_payloads;
  const auto have = [&](const std::vector<unsigned char>& payload) {
    for (const auto& existing : cache_payloads) {
      if (existing == payload) return true;
    }
    return false;
  };
  for (const AnalysisReport& r : reports) {
    if (!r.any_feasible) continue;
    const bool mpe = r.spec.query == errormodel::QueryType::kMpe;
    const ac::CircuitTape& t = mpe ? max_tape() : tape_;
    std::vector<unsigned char> payload;
    if (r.selected.kind == Representation::Kind::kFixed) {
      payload = pack_fixed_leaf_cache(
          ac::build_fixed_leaf_cache(t, r.selected.fixed, lowprec::RoundingMode::kNearestEven),
          mpe);
    } else {
      payload = pack_float_leaf_cache(
          ac::build_float_leaf_cache(t, r.selected.flt, lowprec::RoundingMode::kNearestEven),
          mpe);
    }
    if (have(payload)) continue;
    w.add(cache_id++, payload.data(), payload.size());
    cache_payloads.push_back(std::move(payload));
  }

  w.write(path);
}

std::shared_ptr<const CompiledModel> CompiledModel::from_text(const std::string& text,
                                                              FrameworkOptions options) {
  std::size_t pos = 0;
  auto read_line = [&]() -> std::string {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) throw ParseError("model load: truncated artifact");
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  auto read_sized_section = [&](const std::string& keyword) -> std::string {
    std::istringstream header(read_line());
    std::string word;
    std::size_t size = 0;
    header >> word >> size;
    if (word != keyword) {
      throw ParseError("model load: expected '" + keyword + "', got '" + word + "'");
    }
    if (pos + size > text.size()) throw ParseError("model load: truncated " + keyword);
    std::string payload = text.substr(pos, size);
    pos += size;
    return payload;
  };

  if (read_line() != "problp-model 1") {
    throw ParseError("model load: bad header (want 'problp-model 1')");
  }
  {
    std::istringstream header(read_line());
    std::string word;
    std::string style;
    header >> word >> style;
    if (word != "decomposition") throw ParseError("model load: expected 'decomposition'");
    options.decomposition = decomposition_from_keyword(style);
  }
  ac::Circuit binary = ac::from_text(read_sized_section("circuit"));
  ac::Circuit max_circuit = ac::from_text(read_sized_section("maxcircuit"));

  // The maximiser is installed eagerly from the artifact so it is never
  // re-derived (a re-derivation from the *binarised* circuit could differ
  // from the compile-time binarize(to_max(nary)) order), so no source
  // arena is kept.
  auto model = std::shared_ptr<CompiledModel>(
      new CompiledModel(std::nullopt, std::move(binary), options));
  ac::CircuitTape max_tape = ac::CircuitTape::compile(max_circuit);
  model->max_.reset(new MaxArtifact{std::move(max_circuit), std::move(max_tape)});
  return model;
}

std::shared_ptr<CompiledModel> CompiledModel::load_binary(const std::string& path,
                                                          FrameworkOptions options) {
  auto mapping =
      std::make_shared<MappedArtifact>(MappedArtifact::open(path, options.artifact_read_copy));
  const MappedArtifact& art = *mapping;

  {
    std::istringstream meta(art.text(section::kModelMeta));
    std::string word, style;
    meta >> word >> style;
    if (word != "decomposition") throw ParseError("model load: bad model meta section");
    options.decomposition = decomposition_from_keyword(style);
  }
  const auto cards = art.array<std::int32_t>(section::kCardinalities);
  std::vector<int> cardinalities(cards.begin(), cards.end());

  ac::CircuitTape tape = load_tape(art, section::kMarginalTape, cardinalities);
  ac::CircuitTape max_tape = load_tape(art, section::kMaxTape, cardinalities);

  // Leaf caches (views over the mapping) attach to their tapes before the
  // evaluator-facing tapes are frozen into the model.
  auto marginal_caches = std::make_shared<ac::LeafCacheSet>();
  auto max_caches = std::make_shared<ac::LeafCacheSet>();
  for (std::uint32_t id = section::kLeafCacheBase; art.has(id); ++id) {
    ac::LeafCacheSet probe;
    if (unpack_leaf_cache(art, id, probe)) {
      max_caches->fixed.insert(max_caches->fixed.end(), probe.fixed.begin(), probe.fixed.end());
      max_caches->flt.insert(max_caches->flt.end(), probe.flt.begin(), probe.flt.end());
    } else {
      marginal_caches->fixed.insert(marginal_caches->fixed.end(), probe.fixed.begin(),
                                    probe.fixed.end());
      marginal_caches->flt.insert(marginal_caches->flt.end(), probe.flt.begin(),
                                  probe.flt.end());
    }
  }
  if (!marginal_caches->fixed.empty() || !marginal_caches->flt.empty()) {
    tape.attach_leaf_caches(std::move(marginal_caches));
  }
  if (!max_caches->fixed.empty() || !max_caches->flt.empty()) {
    max_tape.attach_leaf_caches(std::move(max_caches));
  }

  auto model = std::shared_ptr<CompiledModel>(
      new CompiledModel(mapping, std::move(tape), options));
  model->name_ = art.info().name;
  model->artifact_version_ = art.info().version;
  model->max_.reset(new MaxArtifact{std::nullopt, std::move(max_tape)});

  const auto records = art.array<std::uint64_t>(section::kReports);
  require(records.size() % kReportWords == 0, "model load: report section mis-sized");
  for (std::size_t i = 0; i < records.size(); i += kReportWords) {
    AnalysisReport r = unpack_report(records.data() + i);
    const auto key = std::make_tuple(static_cast<int>(r.spec.query),
                                     static_cast<int>(r.spec.kind),
                                     double_bits(r.spec.tolerance));
    model->reports_.emplace(key, std::move(r));
  }
  return model;
}

std::shared_ptr<const CompiledModel> CompiledModel::load(const std::string& path,
                                                         FrameworkOptions options) {
  if (MappedArtifact::sniff(path)) return load_binary(path, options);
  std::ifstream f(path);
  require(f.good(), "CompiledModel::load: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str(), options);
}

}  // namespace problp::runtime
