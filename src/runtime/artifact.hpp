// Flat, versioned, mmap-able model artifact container.
//
// The text model artifact (runtime/compiled_model.hpp to_text/from_text)
// re-parses every circuit node and recompiles every tape, layout and kernel
// schedule on load — O(model) work before the first query.  This container
// instead persists the *compiled* flat arrays byte-for-byte behind a
// section table, so a loader can mmap the file and hand out typed views
// into the mapped pages: load cost is O(pages touched), not O(model), and
// N processes serving one model share one page-cache copy (the
// phrase-table-on-disk idiom).
//
// Layout (all integers little-endian, the only byte order the toolchain
// targets — the header carries an endianness tag so a foreign-order file
// is rejected, not misread):
//
//   FileHeader        104 bytes: magic, format version, endianness tag,
//                     file size, content hash, section count, model name
//   SectionEntry[n]   32 bytes each: id, offset, length, checksum
//   payloads          each 64-byte aligned, zero-padded between sections
//
// Section ids are assigned by the producer (runtime/compiled_model.cpp owns
// the model schema); this layer only stores and validates opaque byte
// ranges.  Every payload carries a 64-bit checksum (fnv1a64 below — a
// word-folded FNV-1a variant, chosen so open()-time validation streams at
// memory speed instead of byte-serial multiply latency) and the header a
// content hash folding the section checksum column, both verified at
// open() together with the bounds of every section — a truncated,
// bit-flipped or foreign file fails loudly before any typed view is
// handed out.  Writes go through a temp file in
// the destination directory plus an atomic rename, so readers never
// observe a half-written artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/array_store.hpp"
#include "util/error.hpp"

namespace problp::runtime {

/// First bytes of every binary model artifact ("\x7fPLPMDL\0").
inline constexpr unsigned char kArtifactMagic[8] = {0x7F, 'P', 'L', 'P', 'M', 'D', 'L', 0};
/// Format version this build writes and reads.
inline constexpr std::uint32_t kArtifactVersion = 1;
/// Byte-order tag as written by a little-endian producer; a big-endian
/// file reads back as 0x04030201 and is rejected.
inline constexpr std::uint32_t kArtifactEndianTag = 0x01020304;
/// Alignment of every section payload — covers every element type the
/// model stores (u128 needs 16) and keeps rows cache-line aligned.
inline constexpr std::size_t kSectionAlign = 64;

/// 64-bit checksum over `size` bytes, continuing from `seed`: FNV-1a
/// folded over little-endian 8-byte words (four interleaved lanes, merged,
/// then a zero-padded tail word tagged with the residual length).  Not
/// byte-compatible with classic FNV-1a — it is the artifact format's own
/// checksum, defined with the format and versioned with it.  The word
/// folding breaks the xor-multiply dependency chain that makes byte-serial
/// FNV latency-bound, so full-file validation costs a fraction of a
/// millisecond per megabyte instead of milliseconds.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Cheap identity of an artifact, read from the header alone (no payload
/// validation) — what a registry needs to key and size a cache without
/// paying a full open.
struct ArtifactInfo {
  std::uint32_t version = 0;
  std::string name;                 ///< producer-assigned model name (<= 63 chars)
  std::uint64_t content_hash = 0;   ///< fnv1a64 over the section checksum column
  std::uint64_t file_size = 0;
  std::uint32_t num_sections = 0;
};

/// Accumulates sections in memory, then writes the container atomically
/// (temp file in the destination directory + rename).
class ArtifactWriter {
 public:
  explicit ArtifactWriter(std::string name) : name_(std::move(name)) {}

  /// Appends one section; ids must be unique within the artifact.
  void add(std::uint32_t id, const void* data, std::size_t size);

  void add_text(std::uint32_t id, const std::string& text) { add(id, text.data(), text.size()); }

  template <class T>
  void add_array(std::uint32_t id, const util::ArrayStore<T>& store) {
    add(id, store.data(), store.size() * sizeof(T));
  }
  template <class T>
  void add_array(std::uint32_t id, const std::vector<T>& v) {
    add(id, v.data(), v.size() * sizeof(T));
  }

  /// Writes the container to `path` via temp file + atomic rename.  Throws
  /// util Error on any I/O failure; the destination is untouched on error.
  void write(const std::string& path) const;

 private:
  struct Pending {
    std::uint32_t id;
    std::vector<unsigned char> bytes;
  };
  std::string name_;
  std::vector<Pending> sections_;
};

/// A validated, memory-mapped (or, when mapping fails, heap-read) artifact.
/// Typed views returned by array()/text() alias the mapping and stay valid
/// for this object's lifetime — keep it alive (shared_ptr) for as long as
/// any adopted view is.
class MappedArtifact {
 public:
  /// Whether `path` starts with the binary artifact magic (false also on a
  /// missing/short file) — the format sniff behind CompiledModel::load.
  static bool sniff(const std::string& path);

  /// Header-only read: identity of the artifact without validating or
  /// touching payload pages.  Throws on a missing/foreign/short file.
  static ArtifactInfo peek(const std::string& path);

  /// Maps and fully validates `path`: magic, version, endianness, file
  /// size, per-section bounds + alignment + checksum, whole-content hash,
  /// and (on the mmap path) a final fstat re-check that the file did not
  /// change size during validation — the defence against a writer
  /// truncating the artifact after we mapped it.  Throws util Error with a
  /// found-vs-expected message on any mismatch.  `read_copy` skips mmap and
  /// reads the file into an owned heap buffer: slower cold load and no
  /// page-cache sharing, but the model is immune to the backing file being
  /// truncated or rewritten after open.
  static MappedArtifact open(const std::string& path, bool read_copy = false);

  MappedArtifact(MappedArtifact&& other) noexcept { *this = std::move(other); }
  MappedArtifact& operator=(MappedArtifact&& other) noexcept;
  MappedArtifact(const MappedArtifact&) = delete;
  MappedArtifact& operator=(const MappedArtifact&) = delete;
  ~MappedArtifact();

  const ArtifactInfo& info() const { return info_; }
  bool mapped() const { return mapped_; }  ///< false = heap-read fallback

  bool has(std::uint32_t id) const { return find(id) != nullptr; }

  /// Typed view of section `id`; length must divide evenly into T and the
  /// payload alignment covers alignof(T) by construction.  Throws if the
  /// section is absent or mis-sized.
  template <class T>
  util::ArrayStore<T> array(std::uint32_t id) const {
    const Entry* e = require_section(id);
    require(e->length % sizeof(T) == 0,
            "artifact: section " + std::to_string(id) + " length " + std::to_string(e->length) +
                " is not a whole number of elements");
    return util::ArrayStore<T>::view(reinterpret_cast<const T*>(base_ + e->offset),
                                     e->length / sizeof(T));
  }

  /// Section `id` as a string copy (for small text payloads).
  std::string text(std::uint32_t id) const;

  /// Raw bytes of section `id`.
  const unsigned char* bytes(std::uint32_t id, std::size_t* size) const;

 private:
  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t length;
  };

  MappedArtifact() = default;

  const Entry* find(std::uint32_t id) const;
  const Entry* require_section(std::uint32_t id) const;
  void reset() noexcept;

  ArtifactInfo info_;
  std::vector<Entry> entries_;
  const unsigned char* base_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                     ///< true: munmap on destroy
  std::vector<unsigned char> fallback_;     ///< owns bytes when !mapped_
};

}  // namespace problp::runtime
