// InferenceSession — the per-thread query handle over a shared CompiledModel.
//
// A session owns everything a query needs that is *not* shareable: the
// tape-sweep value buffer, the batched SoA evaluator, the low-precision
// engines with their quantised parameter caches, and the conditional-query
// scratch assignment.  Construction is cheap relative to the model compile,
// so the intended shape for concurrent serving is
//
//   auto model = runtime::CompiledModel::compile(circuit);   // once
//   // per thread:
//   runtime::InferenceSession session(model);                 // scratch only
//   double pr_e = session.marginal(evidence);
//
// Backends.  With default options a session evaluates in exact IEEE double
// on the flattened tape (single queries) and the batched SoA engine
// (batched queries) — bit-identical to the ac/evaluator.hpp interpreter.
// With `SessionOptions::representation` set (or the convenience constructor
// taking an AnalysisReport, which installs the representation the analysis
// selected and *requires* the report to be feasible unless the caller opts
// into exact fallback), every sweep runs the emulated low-precision
// datapath: single queries through Fixed/FloatTapeEvaluator, batched
// queries through the SoA raw-word Fixed/FloatBatchEvaluator — all
// bit-identical, value and flags, to the one-shot ac::evaluate_fixed /
// evaluate_float on the source circuit.
//
// Queries.  marginal(e) = Pr(e), one upward pass.  conditional(q, e) =
// the posterior of every state of `q` given `e` (empty when Pr(e) is not
// positive); the two passes' ratio is taken in double, matching the paper's
// footnote-2 treatment of division.  mpe(e) = max_x Pr(x, e) on the
// maximiser circuit.  Each query has a batched overload that amortises the
// tape traversal over the whole evidence vector.
//
// Flags.  last_flags() surfaces the sticky ArithFlags raised by the most
// recent query call, merged across the whole batch for batched overloads —
// always clean on the exact backend.  last_query_flags() breaks the same
// information out per query (aligned with the batched results), and
// last_provenance() records, per query, which datapath actually served the
// answer.
//
// Fallback.  With SessionOptions::fallback enabled, a batched sweep whose
// per-query flags are raised does not stop at reporting: the session
// gathers exactly the flagged indices, re-evaluates that sub-batch on the
// next rung (a wider low-precision format from FallbackPolicy::ladder, or
// the exact double backend), scatters the results back, and repeats until
// every flag is clean or the ladder is exhausted.  Per-query results of the
// batched engines are independent of batch composition, so an escalated
// answer is bitwise what the wider backend would have served stand-alone,
// and clean queries keep their base-format answers untouched.  The cost is
// proportional to the flagged fraction only.  last_flags() /
// last_query_flags() then report the *serving* rung's flags — clean when
// escalation cured the query, still raised only when flags survived the
// whole ladder.
//
// Thread-safety: a session is single-threaded by contract (it is the
// scratch state); share the CompiledModel, not the session.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ac/batch_eval.hpp"
#include "ac/batch_lowprec.hpp"
#include "ac/low_precision_eval.hpp"
#include "runtime/compiled_model.hpp"

namespace problp::runtime {

/// What to do when a low-precision query raises sticky flags: nothing (off,
/// the default — flags are only reported), or re-evaluate exactly the
/// flagged queries on wider rungs until their flags come back clean.
struct FallbackPolicy {
  /// Wider low-precision formats tried in order on still-flagged queries.
  /// Each rung's engines are constructed lazily on first escalation and
  /// reused for the session's lifetime.
  std::vector<Representation> ladder;
  /// Final rung: queries whose flags survive the ladder (all flagged
  /// queries when the ladder is empty) re-serve on the exact double
  /// backend, whose flags are clean by construction.
  bool escalate_to_exact = false;

  bool enabled() const { return escalate_to_exact || !ladder.empty(); }

  static FallbackPolicy off() { return {}; }
  static FallbackPolicy to_exact() {
    FallbackPolicy policy;
    policy.escalate_to_exact = true;
    return policy;
  }
  static FallbackPolicy via_ladder(std::vector<Representation> rungs, bool exact_final = true) {
    FallbackPolicy policy;
    policy.ladder = std::move(rungs);
    policy.escalate_to_exact = exact_final;
    return policy;
  }
};

/// Where one served answer came from: the datapath that computed it and how
/// many escalation rungs it climbed to get there.
struct QueryProvenance {
  /// Format the served answer was computed in; nullopt = exact IEEE double
  /// (the exact backend, or the final escalate_to_exact rung).  For a
  /// conditional query this is the widest rung any of its passes needed.
  std::optional<Representation> served_format;
  /// Rungs this query was re-evaluated on (0 = the base backend's answer
  /// was served as-is).
  int escalations = 0;
  /// Sticky flags of the serving rung — clean when escalation cured the
  /// query, raised only when flags survived every rung (or fallback is off).
  lowprec::ArithFlags flags;
};

struct SessionOptions {
  /// Arithmetic the sweeps run in: nullopt = exact IEEE double (ground
  /// truth); a Representation = the emulated low-precision datapath the
  /// analysis (or the caller) selected.
  std::optional<Representation> representation;
  lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven;
  /// Shape of the batched sweeps, exact and low-precision alike (SoA block
  /// width, worker threads, cache-shaped tape relayout).  Validated at
  /// session construction so a misconfigured serving stack fails at setup,
  /// not on its first batch.  With `batch.relayout` (the default) the
  /// engines run on the liveness-compacted slot layout — roots and flag
  /// gathers are slot-remapped internally, so session results are
  /// byte-identical either way; flip it off only as a layout-ablation
  /// reference (see docs/evaluation.md).
  ac::BatchEvaluator::Options batch;
  /// Precision-escalation fallback for flagged low-precision queries (no
  /// effect on the exact backend, whose flags are clean by construction).
  FallbackPolicy fallback;

  /// Options running every sweep under `repr` — the format-sweep callers'
  /// shorthand for picking a representation the analysis did not select.
  static SessionOptions low_precision(
      Representation repr, lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven) {
    SessionOptions options;
    options.representation = repr;
    options.rounding = mode;
    return options;
  }
};

class InferenceSession {
 public:
  explicit InferenceSession(std::shared_ptr<const CompiledModel> model,
                            SessionOptions options = {});

  /// Backend the analysis selected: the report's representation (with the
  /// rounding mode the analysis assumed).  A report with no feasible
  /// representation is rejected — a caller asking for the analysis-selected
  /// datapath must not silently receive ground-truth double arithmetic.
  /// Pass `allow_exact_fallback = true` to opt into exact double instead.
  InferenceSession(std::shared_ptr<const CompiledModel> model, const AnalysisReport& report,
                   bool allow_exact_fallback = false);

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // ---- single queries ------------------------------------------------------
  /// Pr(e): root of the marginal circuit under `evidence`.
  double marginal(const ac::PartialAssignment& evidence);
  /// Posterior Pr(query_var = q | e) for every state q, or empty when
  /// Pr(e) is not positive (the query is undefined).  `query_var` must be
  /// unobserved in `evidence`.
  std::vector<double> conditional(int query_var, const ac::PartialAssignment& evidence);
  /// max_x Pr(x, e): root of the maximiser circuit under `evidence`.
  double mpe(const ac::PartialAssignment& evidence);

  // ---- batched queries -----------------------------------------------------
  /// Root value per evidence set, in input order.  The reference stays
  /// valid until the next call on this session.
  const std::vector<double>& marginal(const std::vector<ac::PartialAssignment>& evidence);
  /// Posterior per evidence set (empty entries where undefined).
  std::vector<std::vector<double>> conditional(int query_var,
                                               const std::vector<ac::PartialAssignment>& evidence);
  /// Maximiser root per evidence set, in input order.
  const std::vector<double>& mpe(const std::vector<ac::PartialAssignment>& evidence);

  /// Sticky flags of the most recent query call's *served* answers (merged
  /// across the batch for batched overloads).  Clean on the exact backend;
  /// with fallback enabled, clean whenever escalation cured every flagged
  /// query.
  const lowprec::ArithFlags& last_flags() const { return last_flags_; }

  /// Per-query sticky flags of the most recent query call, aligned with the
  /// results (one entry for single queries; one per evidence set for the
  /// conditional overloads, folding the denominator pass — so an
  /// "undefined" empty posterior with `underflow` set means Pr(e) flushed
  /// to zero in the format, not that the evidence is structurally
  /// impossible).  Like last_flags(), these are the serving rung's flags.
  const std::vector<lowprec::ArithFlags>& last_query_flags() const { return query_flags_; }

  /// Per-query provenance of the most recent query call (served format and
  /// escalation count), aligned with last_query_flags().
  const std::vector<QueryProvenance>& last_provenance() const { return provenance_; }

  bool low_precision() const { return options_.representation.has_value(); }
  const CompiledModel& model() const { return *model_; }
  const std::shared_ptr<const CompiledModel>& model_ptr() const { return model_; }
  const SessionOptions& options() const { return options_; }

 private:
  /// The two tapes a session can sweep.
  enum Which : int { kMarginalTape = 0, kMaxTape = 1 };

  /// Exactly one of `fixed` / `flt` is engaged on the low-precision
  /// backend.  The evaluators pin their own flag sinks, so they are
  /// constructed in place and never moved.
  struct LowPrecEngine {
    std::optional<ac::FixedTapeEvaluator> fixed;
    std::optional<ac::FloatTapeEvaluator> flt;
  };

  /// Batched counterpart: the SoA raw-word engine of ac/batch_lowprec.hpp.
  struct LowPrecBatchEngine {
    std::optional<ac::FixedBatchEvaluator> fixed;
    std::optional<ac::FloatBatchEvaluator> flt;
  };

  /// Lazily-built engines of one fallback-ladder rung (the evaluators pin
  /// their flag sinks, so rungs live behind stable unique_ptrs).
  struct Rung {
    LowPrecEngine single[2];
    LowPrecBatchEngine batch[2];
  };

  const ac::CircuitTape& tape(Which which);
  LowPrecEngine& engine(Which which);
  LowPrecBatchEngine& batch_engine(Which which);
  /// Engages `slot` with the engine for `repr` if not yet constructed.
  LowPrecEngine& engine_for(LowPrecEngine& slot, const Representation& repr, Which which);
  LowPrecBatchEngine& batch_engine_for(LowPrecBatchEngine& slot, const Representation& repr,
                                       Which which);
  Rung& rung(std::size_t index);
  /// One upward pass on the selected backend; appends one entry to
  /// query_flags_/provenance_ (escalating through the fallback ladder when
  /// flags are raised) and merges the served flags into last_flags_.
  double eval_root(Which which, const ac::PartialAssignment& assignment);
  /// Batched upward pass: resets query_flags_/provenance_ to one entry per
  /// batch element, escalates flagged indices per the fallback policy, and
  /// merges served flags into last_flags_.  The returned reference is the
  /// engine's buffer with fallback off and batch_values_ with it on; either
  /// way it stays valid until the next eval_batch call.
  const std::vector<double>& eval_batch(Which which,
                                        const std::vector<ac::PartialAssignment>& batch);
  /// Re-evaluates the still-flagged indices of `batch` rung by rung,
  /// scattering served values/flags/provenance back in place.
  void escalate_batch(Which which, const std::vector<ac::PartialAssignment>& batch);
  /// Posterior of `query_var` under `evidence` into `out` (cleared; left
  /// empty when Pr(e) is not positive).
  void posterior_into(int query_var, const ac::PartialAssignment& evidence,
                      std::vector<double>& out);

  std::shared_ptr<const CompiledModel> model_;
  SessionOptions options_;
  lowprec::ArithFlags last_flags_;
  std::vector<lowprec::ArithFlags> query_flags_;  ///< per-query served flags
  std::vector<QueryProvenance> provenance_;       ///< per-query served provenance

  const ac::CircuitTape* tapes_[2] = {nullptr, nullptr};  ///< max resolved on first use
  std::vector<double> scratch_;                       ///< exact single-query value buffer
  std::optional<ac::BatchEvaluator> exact_batch_[2];  ///< exact batched engines, lazy
  LowPrecEngine lowprec_[2];                          ///< low-precision engines, lazy
  LowPrecBatchEngine lowprec_batch_[2];               ///< batched low-precision, lazy
  std::vector<std::unique_ptr<Rung>> rungs_;          ///< ladder engines, lazy per rung
  std::vector<double> batch_values_;  ///< served batch values under fallback
  ac::PartialAssignment query_scratch_;               ///< conditional (q, e) assignment
};

}  // namespace problp::runtime
