// CompiledModel — the immutable, shareable inference artifact.
//
// ProbLP's economics are "one offline analysis licenses many cheap online
// queries" (Fig. 2): compiling a BN to an AC, binarising it, flattening the
// tape and propagating the error bounds happen once; marginal / conditional
// / MPE queries then reuse those artifacts thousands of times.  Before this
// layer existed every consumer (validation sweeps, benches, the CLI, the
// examples) re-assembled that pipeline by hand.  A CompiledModel owns the
// whole compile-side state:
//
//   binary_circuit()       the binarised marginal/conditional circuit
//   binary_max_circuit()   the binarised maximiser circuit (MPE), derived
//                          lazily on first use
//   tape() / max_tape()    flattened CircuitTapes (ac/tape.hpp)
//   error_model(query)     the format-independent CircuitErrorModel, built
//                          lazily on first analyze()
//   analyze(spec)          the Table-2 row for one (query, tolerance), with
//                          results cached per spec
//   generate_hardware()    datapath emission for a report's selection
//
// Thread-safety contract: a CompiledModel is safe to share across any
// number of threads.  The eagerly built state is immutable; the lazy
// artifacts (max circuit, error models, report cache) are materialised
// under an internal mutex and never mutated afterwards, so references
// returned by the accessors stay valid for the model's lifetime.  Query
// scratch state lives in runtime::InferenceSession (one per thread), never
// here.
//
// Persistence: save() writes the *binary* mmap-able artifact
// (runtime/artifact.hpp) persisting the compiled flat arrays — both tapes,
// their layouts and kernel schedules, cached analysis reports and the
// quantised leaf caches of the selected formats — next to the circuit
// texts.  load() sniffs the format: a binary artifact is mapped and its
// tapes rebuilt as zero-copy views over the file (the circuits themselves
// are parsed lazily, only when a caller actually needs arena objects —
// analyze() on an uncached spec, hardware generation, re-serialisation);
// the legacy versioned text artifact (to_text()/from_text()) loads through
// the same entry point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "ac/circuit.hpp"
#include "ac/tape.hpp"
#include "problp/report.hpp"
#include "runtime/artifact.hpp"

namespace problp::bn {
class BayesianNetwork;
}

namespace problp::runtime {

class CompiledModel {
 public:
  /// Binarises `circuit` (the n-ary output of a BN -> AC compiler) and
  /// flattens the evaluation tape — exactly the pipeline Framework ran.
  static std::shared_ptr<const CompiledModel> compile(const ac::Circuit& circuit,
                                                      FrameworkOptions options = {});

  /// Full front-to-back compile: BN -> AC (ve_compiler) -> binarise -> tape.
  /// The network's declared name (bn::BayesianNetwork::name) is carried
  /// into the model and its saved artifacts.
  static std::shared_ptr<const CompiledModel> compile(const bn::BayesianNetwork& network,
                                                      FrameworkOptions options = {});

  /// Wraps a circuit that is already in its evaluation form (no
  /// re-decomposition pass).  This is the entry point for callers that hold
  /// a binarised circuit — e.g. the observed-error wrappers — and for
  /// engine comparisons that must evaluate the given arena verbatim.  The
  /// maximiser circuit is still derived from `circuit` on first MPE use.
  static std::shared_ptr<const CompiledModel> wrap(ac::Circuit circuit,
                                                   FrameworkOptions options = {});

  // ---- artifact persistence ------------------------------------------------
  /// Versioned plain-text artifact embedding both binarised circuits
  /// (forces the lazy max circuit, so a loaded model never re-derives it).
  std::string to_text() const;
  /// Binary mmap-able artifact (runtime/artifact.hpp): compiled tapes,
  /// layouts, kernel schedules, cached reports and the leaf caches of the
  /// cached reports' selected formats.  Written atomically (temp file +
  /// rename); readers never observe a half-written file.
  void save(const std::string& path) const;
  static std::shared_ptr<const CompiledModel> from_text(const std::string& text,
                                                        FrameworkOptions options = {});
  /// Loads either artifact format, sniffed by magic: binary artifacts map
  /// zero-copy, text artifacts parse-and-recompile.
  static std::shared_ptr<const CompiledModel> load(const std::string& path,
                                                   FrameworkOptions options = {});

  // ---- structure -----------------------------------------------------------
  const ac::Circuit& binary_circuit() const;
  const ac::CircuitTape& tape() const { return tape_; }
  const ac::Circuit& binary_max_circuit() const;
  const ac::CircuitTape& max_tape() const;
  /// The circuit / tape the given query type evaluates.
  const ac::Circuit& circuit_for(errormodel::QueryType q) const;
  const ac::CircuitTape& tape_for(errormodel::QueryType q) const;

  int num_variables() const { return tape_.num_variables(); }
  const std::vector<int>& cardinalities() const { return tape_.cardinalities(); }
  const FrameworkOptions& options() const { return options_; }

  /// Model name: the source network's declared name, or the name stored in
  /// a loaded artifact; empty when neither carried one.
  const std::string& name() const { return name_; }
  /// Artifact format version this model was loaded from; 0 when the model
  /// was compiled in-process (or loaded from the legacy text artifact).
  std::uint32_t artifact_version() const { return artifact_version_; }
  /// Whether this model serves zero-copy views over a mapped artifact.
  bool memory_mapped() const { return mapping_ != nullptr && mapping_->mapped(); }

  // ---- analysis ------------------------------------------------------------
  /// Format-independent error model for the circuit `q` evaluates.
  const errormodel::CircuitErrorModel& error_model(errormodel::QueryType q) const;
  /// Table-2 row for one (query, tolerance); cached, so repeated sessions
  /// asking for the same spec pay the bit-width search once.  Loaded binary
  /// artifacts pre-populate this cache with the reports cached at save
  /// time, so re-analysing a persisted spec is a map lookup, not a search.
  AnalysisReport analyze(const errormodel::QuerySpec& spec) const;
  /// Datapath for the representation `report` selected.
  HardwareReport generate_hardware(const AnalysisReport& report) const;

  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

 private:
  struct MaxArtifact {
    /// Absent on the mmap load path until an arena consumer needs it; the
    /// tape alone serves MPE evaluation.
    std::optional<ac::Circuit> circuit;
    ac::CircuitTape tape;
  };

  CompiledModel(std::optional<ac::Circuit> source, ac::Circuit binary, FrameworkOptions options);
  /// The mmap load path: tapes adopted as views over `mapping`; circuits
  /// stay unparsed text sections until needed.
  CompiledModel(std::shared_ptr<MappedArtifact> mapping, ac::CircuitTape tape,
                FrameworkOptions options);

  static std::shared_ptr<CompiledModel> load_binary(const std::string& path,
                                                    FrameworkOptions options);

  /// Parses the marginal circuit from the mapped artifact if absent; call
  /// with mutex_ held.
  const ac::Circuit& ensure_binary_locked() const;
  /// Builds the max artifact if absent; call with mutex_ held.  On the
  /// mmap path the artifact exists up-front (adopted tape) but its circuit
  /// may still be unparsed.
  const MaxArtifact& ensure_max_locked() const;
  /// The max circuit itself, parsed/derived if needed; call with mutex_ held.
  const ac::Circuit& ensure_max_circuit_locked() const;
  /// Builds the error model for `q` if absent; call with mutex_ held.
  const errormodel::CircuitErrorModel& ensure_model_locked(errormodel::QueryType q) const;

  /// Mapped artifact backing the view-backed tapes.  Declared first so it
  /// is destroyed last — every view member below must die before the
  /// mapping does.  Null for in-process / text-loaded models.
  std::shared_ptr<MappedArtifact> mapping_;
  FrameworkOptions options_;
  std::string name_;
  std::uint32_t artifact_version_ = 0;
  ac::CircuitTape tape_;
  /// The circuit the maximiser is derived from: the n-ary compiler output
  /// on the compile() path (the maximiser must come from binarize(to_max(
  /// nary)) to stay bit-identical to the pre-runtime pipeline — deriving
  /// from binary_ would reorder the decomposition).  Empty on the wrap()
  /// path (binary_ doubles as the source) and the load() path (the
  /// artifact ships the maximiser); released once the maximiser is built.
  /// Until then compile()d models hold source + binary, the same two-arena
  /// footprint the old Framework paid for binary + binary_max up front.
  mutable std::optional<ac::Circuit> source_;

  mutable std::mutex mutex_;
  /// The binarised marginal circuit; absent on the mmap load path until an
  /// arena consumer (analysis, hardware, re-serialisation) needs it.
  mutable std::optional<ac::Circuit> binary_;
  mutable std::unique_ptr<MaxArtifact> max_;  ///< lazily built, then immutable
  mutable std::optional<errormodel::CircuitErrorModel> model_;
  mutable std::optional<errormodel::CircuitErrorModel> max_model_;
  /// (query, tolerance kind, tolerance bit pattern) -> cached report.
  mutable std::map<std::tuple<int, int, std::uint64_t>, AnalysisReport> reports_;
};

}  // namespace problp::runtime
