#include "runtime/model_registry.hpp"

#include <utility>
#include <vector>

#include "runtime/artifact.hpp"
#include "util/fault_injection.hpp"

namespace problp::runtime {

std::shared_ptr<const CompiledModel> ModelRegistry::get(const std::string& path) {
  // Peeking reads only the header, so identity resolution never maps (or
  // text-parses) an artifact that is already resident.  Text artifacts have
  // no header hash; they key on a hash of the path instead, which keeps
  // them usable through the registry at the cost of path-based identity.
  std::uint64_t key = 0;
  std::uint64_t bytes = 0;
  if (MappedArtifact::sniff(path)) {
    const ArtifactInfo info = MappedArtifact::peek(path);
    key = info.content_hash;
    bytes = info.file_size;
  } else {
    key = fnv1a64(path.data(), path.size());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (std::shared_ptr<const CompiledModel> live = it->second.model.lock()) {
      ++hits_;
      it->second.lru_tick = ++tick_;
      if (!it->second.pin) {
        // Re-pin an evicted-but-still-referenced model: it is hot again.
        it->second.pin = live;
        enforce_cap_locked(key);
      }
      return live;
    }
    entries_.erase(it);  // the last session died; the mapping is gone
  }

  ++misses_;
  // Fault site: the cold load fails mid-get (unreadable file, corrupt
  // artifact).  It throws before any entry is inserted, so the table — and
  // every resident model — is untouched; a later get() of the same path
  // simply retries the load.
  if (util::fault_point("registry.load")) {
    throw Error("model registry: injected load failure for " + path);
  }
  std::shared_ptr<const CompiledModel> model = CompiledModel::load(path, options_.model_options);
  Entry entry;
  entry.model = model;
  entry.pin = model;
  entry.bytes = bytes;
  entry.lru_tick = ++tick_;
  entries_[key] = std::move(entry);
  enforce_cap_locked(key);
  return model;
}

void ModelRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    if (entry.pin) {
      entry.pin.reset();
      ++evictions_;
    }
  }
}

ModelRegistry::Stats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  for (const auto& [key, entry] : entries_) {
    if (entry.pin) s.resident_bytes += entry.bytes;
    if (!entry.model.expired()) ++s.live_models;
  }
  return s;
}

void ModelRegistry::enforce_cap_locked(std::uint64_t keep_hash) {
  if (options_.max_resident_bytes == 0) return;
  std::uint64_t resident = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.pin) resident += entry.bytes;
  }
  while (resident > options_.max_resident_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.pin || it->first == keep_hash) continue;
      if (victim == entries_.end() || it->second.lru_tick < victim->second.lru_tick) victim = it;
    }
    if (victim == entries_.end()) break;  // only the protected model remains pinned
    resident -= victim->second.bytes;
    victim->second.pin.reset();  // sessions holding the model keep it alive
    ++evictions_;
  }
}

}  // namespace problp::runtime
