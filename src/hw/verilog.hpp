// Verilog-2001 emission — ProbLP's final output (paper Fig. 2: "HW
// generation -> Verilog code").
//
// The emitted file contains:
//  * an operator library specialised to the chosen format: `fx_add`/`fx_mul`
//    (round-to-nearest-even on the multiplier's discarded fraction bits) or
//    `fl_add`/`fl_mul` (normalised float with guard/round/sticky rounding),
//    plus `op_max` where MPE circuits need it;
//  * the top-level datapath module: one-bit indicator inputs expanded to the
//    format's 0/1 encodings, parameter constants quantised and hard-wired,
//    one operator instance per cell, a pipeline register after every
//    operator, and the alignment registers the generator inserted.
//
// The C++ netlist simulator (hw/simulator.hpp) is the executable functional
// reference for this text; both implement the identical rounding rules.
#pragma once

#include <string>

#include "hw/netlist.hpp"
#include "lowprec/format.hpp"

namespace problp::hw {

struct VerilogOptions {
  std::string module_name = "problp_ac_top";
  lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven;
};

/// Fixed-point datapath.
std::string emit_fixed_verilog(const Netlist& netlist, const lowprec::FixedFormat& format,
                               const VerilogOptions& options = {});

/// Floating-point datapath.
std::string emit_float_verilog(const Netlist& netlist, const lowprec::FloatFormat& format,
                               const VerilogOptions& options = {});

}  // namespace problp::hw
