// Netlist-level ("post-synthesis") energy estimate.
//
// The paper's Table 2 reports post-synthesis energy of the generated Verilog
// next to the operator-model prediction and notes they "match well".  Our
// stand-in for the synthesis flow prices the *generated netlist* rather than
// the abstract circuit: Table-1 operator energies scaled by a synthesis
// efficiency factor (logic optimisation typically shaves some of the
// pre-layout estimate), plus the pipeline/alignment registers the operator
// models do not cover.
#pragma once

#include "hw/netlist.hpp"
#include "lowprec/format.hpp"

namespace problp::hw {

struct NetlistEnergyOptions {
  /// Multiplier applied to operator energy, modelling post-synthesis logic
  /// optimisation relative to the fitted Table-1 models.
  double synthesis_efficiency = 0.85;
  /// Flip-flop energy per bit per cycle (fJ); see energy/op_models.hpp.
  double register_fj_per_bit = 2.5;
};

struct NetlistEnergyBreakdown {
  double operator_fj = 0.0;
  double register_fj = 0.0;
  double total_fj() const { return operator_fj + register_fj; }
};

NetlistEnergyBreakdown fixed_netlist_energy(const Netlist& netlist,
                                            const lowprec::FixedFormat& format,
                                            const NetlistEnergyOptions& options = {});

NetlistEnergyBreakdown float_netlist_energy(const Netlist& netlist,
                                            const lowprec::FloatFormat& format,
                                            const NetlistEnergyOptions& options = {});

}  // namespace problp::hw
