#include "hw/netlist.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace problp::hw {

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kAdd: return "add";
    case CellKind::kMul: return "mul";
    case CellKind::kMax: return "max";
    case CellKind::kRegister: return "reg";
  }
  return "?";
}

std::string NetlistStats::to_string() const {
  return str_format(
      "adders=%zu multipliers=%zu maxes=%zu pipe_regs=%zu align_regs=%zu latency=%d "
      "inputs(lambda=%zu,const=%zu)",
      adders, multipliers, maxes, pipeline_registers, alignment_registers, latency_cycles,
      indicator_inputs, constant_inputs);
}

WireId Netlist::push_wire(Wire w) {
  wires_.push_back(std::move(w));
  return static_cast<WireId>(wires_.size() - 1);
}

WireId Netlist::add_indicator_input(int var, int state, std::string name) {
  require(var >= 0 && static_cast<std::size_t>(var) < cardinalities_.size(),
          "add_indicator_input: bad var");
  require(state >= 0 && state < cardinalities_[static_cast<std::size_t>(var)],
          "add_indicator_input: bad state");
  Wire w;
  w.driver = WireDriver::kIndicator;
  w.stage = 0;
  w.var = var;
  w.state = state;
  w.name = std::move(name);
  return push_wire(std::move(w));
}

WireId Netlist::add_constant_input(double value, std::string name) {
  Wire w;
  w.driver = WireDriver::kConstant;
  w.stage = 0;
  w.value = value;
  w.name = std::move(name);
  return push_wire(std::move(w));
}

WireId Netlist::add_operator(CellKind kind, WireId a, WireId b, std::string name) {
  require(kind != CellKind::kRegister, "add_operator: use add_register for registers");
  require(a >= 0 && static_cast<std::size_t>(a) < wires_.size(), "add_operator: bad input a");
  require(b >= 0 && static_cast<std::size_t>(b) < wires_.size(), "add_operator: bad input b");
  require(wire(a).stage == wire(b).stage,
          "add_operator: inputs must be stage-aligned (insert alignment registers)");
  Wire w;
  w.driver = WireDriver::kCell;
  w.stage = wire(a).stage + 1;
  w.name = std::move(name);
  const WireId out = push_wire(std::move(w));
  cells_.push_back(Cell{kind, a, b, out});
  return out;
}

WireId Netlist::add_register(WireId in, std::string name) {
  require(in >= 0 && static_cast<std::size_t>(in) < wires_.size(), "add_register: bad input");
  Wire w;
  w.driver = WireDriver::kCell;
  w.stage = wire(in).stage + 1;
  w.name = std::move(name);
  const WireId out = push_wire(std::move(w));
  cells_.push_back(Cell{CellKind::kRegister, in, kInvalidWire, out});
  return out;
}

void Netlist::set_output(WireId out) {
  require(out >= 0 && static_cast<std::size_t>(out) < wires_.size(), "set_output: bad wire");
  output_ = out;
}

int Netlist::latency() const {
  require(output_ != kInvalidWire, "latency: no output set");
  return wire(output_).stage;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  for (const Cell& c : cells_) {
    switch (c.kind) {
      case CellKind::kAdd: ++s.adders; break;
      case CellKind::kMul: ++s.multipliers; break;
      case CellKind::kMax: ++s.maxes; break;
      case CellKind::kRegister: ++s.alignment_registers; break;
    }
  }
  // Every operator output is implicitly registered (one pipeline register
  // per operator, §3.4).
  s.pipeline_registers = s.adders + s.multipliers + s.maxes;
  for (const Wire& w : wires_) {
    if (w.driver == WireDriver::kIndicator) ++s.indicator_inputs;
    if (w.driver == WireDriver::kConstant) ++s.constant_inputs;
  }
  s.latency_cycles = (output_ == kInvalidWire) ? 0 : latency();
  return s;
}

void Netlist::validate() const {
  require(output_ != kInvalidWire, "Netlist::validate: no output set");
  for (const Cell& c : cells_) {
    const int out_stage = wire(c.out).stage;
    require(wire(c.a).stage == out_stage - 1, "Netlist::validate: input a stage mismatch");
    if (c.kind != CellKind::kRegister) {
      require(wire(c.b).stage == out_stage - 1, "Netlist::validate: input b stage mismatch");
    }
  }
  for (const Wire& w : wires_) {
    if (w.driver != WireDriver::kCell) {
      require(w.stage == 0, "Netlist::validate: primary input not at stage 0");
    }
  }
}

}  // namespace problp::hw
