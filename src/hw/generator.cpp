#include "hw/generator.hpp"

#include <map>

#include "util/strings.hpp"

namespace problp::hw {

using ac::Circuit;
using ac::NodeId;
using ac::NodeKind;

Netlist generate_netlist(const Circuit& binary_circuit, const GeneratorOptions& options) {
  require(binary_circuit.is_binary(), "generate_netlist: circuit must be binary");
  require(binary_circuit.root() != ac::kInvalidNode, "generate_netlist: circuit has no root");

  Netlist netlist(binary_circuit.cardinalities());
  const auto live = binary_circuit.reachable_from_root();

  std::vector<WireId> node_wire(binary_circuit.num_nodes(), kInvalidWire);
  // (wire, stage) -> delayed version of that wire at that stage.
  std::map<std::pair<WireId, int>, WireId> delayed;

  // Returns `w` delayed to exactly `stage` (inserting registers as needed).
  auto align_to = [&](WireId w, int stage) {
    WireId cur = w;
    while (netlist.wire(cur).stage < stage) {
      const int next_stage = netlist.wire(cur).stage + 1;
      const auto key = std::make_pair(cur, next_stage);
      if (options.share_alignment_chains) {
        if (const auto it = delayed.find(key); it != delayed.end()) {
          cur = it->second;
          continue;
        }
      }
      const WireId reg = netlist.add_register(
          cur, str_format("%s_d%d", netlist.wire(cur).name.c_str(), next_stage));
      if (options.share_alignment_chains) delayed.emplace(key, reg);
      cur = reg;
    }
    require(netlist.wire(cur).stage == stage, "generate_netlist: alignment overshoot");
    return cur;
  };

  for (std::size_t i = 0; i < binary_circuit.num_nodes(); ++i) {
    if (!live[i]) continue;
    const ac::Node& n = binary_circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator:
        node_wire[i] = netlist.add_indicator_input(
            n.var, n.state, str_format("lambda_v%d_s%d", n.var, n.state));
        break;
      case NodeKind::kParameter:
        node_wire[i] =
            netlist.add_constant_input(n.value, str_format("theta_%zu", i));
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax: {
        const WireId wa = node_wire[static_cast<std::size_t>(n.children[0])];
        const WireId wb = node_wire[static_cast<std::size_t>(n.children[1])];
        // The operator fires one stage above its latest input.
        const int in_stage = std::max(netlist.wire(wa).stage, netlist.wire(wb).stage);
        const WireId a = align_to(wa, in_stage);
        const WireId b = align_to(wb, in_stage);
        const CellKind kind = (n.kind == NodeKind::kSum)    ? CellKind::kAdd
                              : (n.kind == NodeKind::kProd) ? CellKind::kMul
                                                            : CellKind::kMax;
        node_wire[i] = netlist.add_operator(kind, a, b, str_format("n%zu", i));
        break;
      }
    }
  }

  WireId out = node_wire[static_cast<std::size_t>(binary_circuit.root())];
  require(out != kInvalidWire, "generate_netlist: root not materialised");
  netlist.set_output(out);
  netlist.validate();
  return netlist;
}

}  // namespace problp::hw
