#include "hw/resource_report.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace problp::hw {

ResourceReport analyze_resources(const Netlist& netlist, int word_width_bits) {
  require(word_width_bits >= 1, "analyze_resources: bad word width");
  netlist.validate();
  ResourceReport report;
  const int latency = netlist.latency();
  report.stages.resize(static_cast<std::size_t>(std::max(latency, 0)));
  for (int s = 1; s <= latency; ++s) {
    report.stages[static_cast<std::size_t>(s - 1)].stage = s;
  }
  for (const Cell& c : netlist.cells()) {
    const int out_stage = netlist.wire(c.out).stage;
    if (out_stage < 1 || out_stage > latency) continue;  // cells past the output cone
    StageUsage& usage = report.stages[static_cast<std::size_t>(out_stage - 1)];
    switch (c.kind) {
      case CellKind::kAdd: ++usage.adders; break;
      case CellKind::kMul: ++usage.multipliers; break;
      case CellKind::kMax: ++usage.maxes; break;
      case CellKind::kRegister: ++usage.alignment_registers; break;
    }
  }
  std::size_t total_ops = 0;
  for (const StageUsage& usage : report.stages) {
    report.peak_stage_operators = std::max(report.peak_stage_operators, usage.operators());
    total_ops += usage.operators();
  }
  report.mean_stage_operators =
      report.stages.empty() ? 0.0
                            : static_cast<double>(total_ops) /
                                  static_cast<double>(report.stages.size());
  const NetlistStats stats = netlist.stats();
  report.storage_bits = stats.total_registers() * static_cast<std::size_t>(word_width_bits);
  return report;
}

std::string ResourceReport::to_string() const {
  TextTable table({"stage", "adders", "multipliers", "maxes", "align regs"});
  for (const StageUsage& usage : stages) {
    table.add_row({str_format("%d", usage.stage), str_format("%zu", usage.adders),
                   str_format("%zu", usage.multipliers), str_format("%zu", usage.maxes),
                   str_format("%zu", usage.alignment_registers)});
  }
  return table.to_string() +
         str_format("peak stage operators: %zu, mean %.1f, storage %zu bits\n",
                    peak_stage_operators, mean_stage_operators, storage_bits);
}

}  // namespace problp::hw
