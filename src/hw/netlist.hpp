// Pipelined-datapath netlist IR — the hardware ProbLP generates (paper §3.4,
// Fig. 4): a fully parallel datapath with one 2-input operator per circuit
// node, a pipeline register after every operator, and extra alignment
// registers wherever converging paths have mismatched latencies.
//
// Timing model: a wire carries a `stage` — the cycle (relative to input
// presentation) at which its value is valid.  Primary inputs are stage 0;
// an operator consumes two stage-(s-1) wires and drives a registered
// stage-s wire; an alignment register delays a wire by exactly one stage.
// The invariant "every cell's inputs are at stage out-1" is what makes the
// datapath a correct pipeline at initiation interval 1; Netlist::validate()
// checks it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace problp::hw {

using WireId = std::int32_t;
inline constexpr WireId kInvalidWire = -1;

enum class WireDriver : std::uint8_t {
  kIndicator,  ///< primary input: a 1-bit evidence indicator, expanded to 0.0/1.0
  kConstant,   ///< hard-wired parameter constant (quantised at elaboration)
  kCell,       ///< output of an operator or register cell
};

struct Wire {
  WireDriver driver = WireDriver::kCell;
  int stage = 0;        ///< cycle at which the value is valid
  std::string name;
  // indicator payload
  int var = -1;
  int state = -1;
  // constant payload
  double value = 0.0;
};

enum class CellKind : std::uint8_t { kAdd, kMul, kMax, kRegister };

const char* to_string(CellKind kind);

struct Cell {
  CellKind kind = CellKind::kRegister;
  WireId a = kInvalidWire;  ///< first input
  WireId b = kInvalidWire;  ///< second input (unused for registers)
  WireId out = kInvalidWire;
};

struct NetlistStats {
  std::size_t adders = 0;
  std::size_t multipliers = 0;
  std::size_t maxes = 0;
  std::size_t alignment_registers = 0;  ///< explicit path-balancing registers
  std::size_t pipeline_registers = 0;   ///< implicit one-per-operator output
  int latency_cycles = 0;
  std::size_t indicator_inputs = 0;
  std::size_t constant_inputs = 0;

  std::size_t total_registers() const { return alignment_registers + pipeline_registers; }
  std::string to_string() const;
};

class Netlist {
 public:
  explicit Netlist(std::vector<int> cardinalities) : cardinalities_(std::move(cardinalities)) {}

  WireId add_indicator_input(int var, int state, std::string name);
  WireId add_constant_input(double value, std::string name);
  /// Adds an operator cell; inputs must be at equal stages, output lands one
  /// stage later.
  WireId add_operator(CellKind kind, WireId a, WireId b, std::string name);
  /// Adds an alignment register delaying `in` by one stage.
  WireId add_register(WireId in, std::string name);

  void set_output(WireId out);
  WireId output() const { return output_; }

  std::size_t num_wires() const { return wires_.size(); }
  std::size_t num_cells() const { return cells_.size(); }
  const Wire& wire(WireId id) const { return wires_.at(static_cast<std::size_t>(id)); }
  const Cell& cell(std::size_t i) const { return cells_.at(i); }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Wire>& wires() const { return wires_; }
  const std::vector<int>& cardinalities() const { return cardinalities_; }

  /// Pipeline latency: stage of the output wire.
  int latency() const;

  NetlistStats stats() const;

  /// Checks the stage discipline (every cell input exactly one stage before
  /// its output, output wire set); throws on violation.
  void validate() const;

 private:
  WireId push_wire(Wire w);

  std::vector<Wire> wires_;
  std::vector<Cell> cells_;
  WireId output_ = kInvalidWire;
  std::vector<int> cardinalities_;
};

}  // namespace problp::hw
