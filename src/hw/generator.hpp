// Arithmetic circuit -> pipelined netlist (paper §3.4, Fig. 4).
//
// Stage 1 of the paper's flow (n-ary -> 2-input decomposition) is
// ac::binarize; this generator performs stage 2: it instantiates one
// operator cell per live circuit node, pipelines every operator output, and
// inserts alignment registers where a consumer sits more than one stage
// above a producer ("due to a mismatch in path timings", Fig. 4's A->G
// path).  Alignment chains are shared: two consumers needing the same
// signal at the same stage reuse one register chain.
#pragma once

#include "ac/circuit.hpp"
#include "hw/netlist.hpp"

namespace problp::hw {

struct GeneratorOptions {
  /// When true (default), a delayed version of a wire is built once and
  /// shared by all consumers; when false, every consumer gets a private
  /// chain (ablation knob for register-count comparisons).
  bool share_alignment_chains = true;
};

/// `binary_circuit` must be binary (run ac::binarize first).  The netlist's
/// output wire corresponds to the circuit root.
Netlist generate_netlist(const ac::Circuit& binary_circuit, const GeneratorOptions& options = {});

}  // namespace problp::hw
