// Stage-by-stage resource reporting for generated datapaths — what a
// hardware engineer checks before floorplanning: how operators distribute
// across pipeline stages, where register pressure concentrates, and the
// total storage bits at a given format width.
#pragma once

#include <string>
#include <vector>

#include "hw/netlist.hpp"

namespace problp::hw {

struct StageUsage {
  int stage = 0;              ///< output stage of the cells counted here
  std::size_t adders = 0;
  std::size_t multipliers = 0;
  std::size_t maxes = 0;
  std::size_t alignment_registers = 0;

  std::size_t operators() const { return adders + multipliers + maxes; }
};

struct ResourceReport {
  std::vector<StageUsage> stages;   ///< indexed 1..latency (stage 0 holds inputs only)
  std::size_t peak_stage_operators = 0;  ///< widest stage (parallelism high-water mark)
  double mean_stage_operators = 0.0;
  std::size_t storage_bits = 0;     ///< all registers x word width

  /// Aligned text rendering (one row per stage).
  std::string to_string() const;
};

/// Builds the report; `word_width_bits` is the datapath width (I+F or E+M).
ResourceReport analyze_resources(const Netlist& netlist, int word_width_bits);

}  // namespace problp::hw
