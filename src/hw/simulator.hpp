// Cycle-accurate simulation of generated netlists.
//
// This is the repository's stand-in for running the emitted Verilog through
// a commercial simulator: the netlist is clocked cycle by cycle, every cell
// output is registered, and the arithmetic is the *same* bit-exact emulation
// (ac/number_ops.hpp) the circuit-level evaluator uses — so
//
//   simulate(netlist, e)  ==  evaluate_lowprec(circuit, e)
//
// is a checkable end-to-end correctness statement for the hardware
// generator, including pipelining: a new input vector can be presented every
// cycle and results emerge `latency` cycles later (initiation interval 1).
#pragma once

#include <algorithm>
#include <vector>

#include "ac/evaluator.hpp"
#include "ac/number_ops.hpp"
#include "hw/netlist.hpp"

namespace problp::hw {

namespace detail {

template <class Ops>
class SimEngine {
 public:
  using Value = typename Ops::Value;

  SimEngine(const Netlist& netlist, Ops ops) : netlist_(netlist), ops_(ops) {
    netlist_.validate();
    state_.assign(netlist_.num_wires(), ops_.zero());
    scratch_.assign(netlist_.num_wires(), ops_.zero());
  }

  /// result[t] is the output for assignments[t]; the pipeline is fed one
  /// assignment per cycle and drained at the end.
  std::vector<Value> run(const std::vector<ac::PartialAssignment>& assignments) {
    const long latency = netlist_.latency();
    const auto n = static_cast<long>(assignments.size());
    std::vector<Value> out;
    out.reserve(assignments.size());
    if (n == 0) return out;
    // During cycle k (i.e. after k clock edges), a stage-s wire carries the
    // value derived from the input presented at cycle k-s; the output (stage
    // = latency) for input t is therefore read during cycle t+latency.  A
    // latency-0 netlist (root is a primary input) is a pure passthrough.
    for (long k = 0; k < n + latency; ++k) {
      apply_inputs(assignments[static_cast<std::size_t>(std::min(k, n - 1))]);
      if (k >= latency) {
        out.push_back(state_[static_cast<std::size_t>(netlist_.output())]);
      }
      if (k + 1 < n + latency) clock_edge();
    }
    return out;
  }

 private:
  void apply_inputs(const ac::PartialAssignment& assignment) {
    require(assignment.size() == netlist_.cardinalities().size(),
            "SimEngine: assignment size mismatch");
    for (std::size_t w = 0; w < netlist_.num_wires(); ++w) {
      const Wire& wire = netlist_.wire(static_cast<WireId>(w));
      if (wire.driver == WireDriver::kIndicator) {
        state_[w] =
            ops_.from_indicator(ac::indicator_is_one(assignment, wire.var, wire.state));
      } else if (wire.driver == WireDriver::kConstant) {
        state_[w] = ops_.from_parameter(wire.value);
      }
    }
  }

  /// All cell outputs update simultaneously from pre-edge wire values.
  void clock_edge() {
    scratch_ = state_;
    for (const Cell& c : netlist_.cells()) {
      const Value& a = state_[static_cast<std::size_t>(c.a)];
      switch (c.kind) {
        case CellKind::kAdd:
          scratch_[static_cast<std::size_t>(c.out)] =
              ops_.add(a, state_[static_cast<std::size_t>(c.b)]);
          break;
        case CellKind::kMul:
          scratch_[static_cast<std::size_t>(c.out)] =
              ops_.mul(a, state_[static_cast<std::size_t>(c.b)]);
          break;
        case CellKind::kMax:
          scratch_[static_cast<std::size_t>(c.out)] =
              ops_.max(a, state_[static_cast<std::size_t>(c.b)]);
          break;
        case CellKind::kRegister:
          scratch_[static_cast<std::size_t>(c.out)] = a;
          break;
      }
    }
    std::swap(state_, scratch_);
  }

  const Netlist& netlist_;
  Ops ops_;
  std::vector<Value> state_;
  std::vector<Value> scratch_;
};

}  // namespace detail

/// Fixed-point hardware simulator.
class FixedNetlistSimulator {
 public:
  FixedNetlistSimulator(const Netlist& netlist, lowprec::FixedFormat format,
                        lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven)
      : netlist_(netlist), format_(format), mode_(mode) {
    format_.validate();
  }

  double evaluate(const ac::PartialAssignment& assignment) {
    return evaluate_stream({assignment}).front();
  }

  std::vector<double> evaluate_stream(const std::vector<ac::PartialAssignment>& assignments) {
    detail::SimEngine<ac::FixedOps> engine(netlist_, ac::FixedOps{format_, mode_, &flags_});
    const auto values = engine.run(assignments);
    std::vector<double> out;
    out.reserve(values.size());
    for (const auto& v : values) out.push_back(v.to_double());
    return out;
  }

  const lowprec::ArithFlags& flags() const { return flags_; }
  void clear_flags() { flags_ = {}; }

 private:
  const Netlist& netlist_;
  lowprec::FixedFormat format_;
  lowprec::RoundingMode mode_;
  lowprec::ArithFlags flags_;
};

/// Floating-point hardware simulator.
class FloatNetlistSimulator {
 public:
  FloatNetlistSimulator(const Netlist& netlist, lowprec::FloatFormat format,
                        lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven)
      : netlist_(netlist), format_(format), mode_(mode) {
    format_.validate();
  }

  double evaluate(const ac::PartialAssignment& assignment) {
    return evaluate_stream({assignment}).front();
  }

  std::vector<double> evaluate_stream(const std::vector<ac::PartialAssignment>& assignments) {
    detail::SimEngine<ac::FloatOps> engine(netlist_, ac::FloatOps{format_, mode_, &flags_});
    const auto values = engine.run(assignments);
    std::vector<double> out;
    out.reserve(values.size());
    for (const auto& v : values) out.push_back(v.to_double());
    return out;
  }

  const lowprec::ArithFlags& flags() const { return flags_; }
  void clear_flags() { flags_ = {}; }

 private:
  const Netlist& netlist_;
  lowprec::FloatFormat format_;
  lowprec::RoundingMode mode_;
  lowprec::ArithFlags flags_;
};

}  // namespace problp::hw
