#include "hw/netlist_energy.hpp"

#include "energy/op_models.hpp"

namespace problp::hw {

namespace {

NetlistEnergyBreakdown estimate(const Netlist& netlist, int width_bits, double add_fj,
                                double mul_fj, double max_fj,
                                const NetlistEnergyOptions& options) {
  const NetlistStats stats = netlist.stats();
  NetlistEnergyBreakdown out;
  out.operator_fj = options.synthesis_efficiency *
                    (static_cast<double>(stats.adders) * add_fj +
                     static_cast<double>(stats.multipliers) * mul_fj +
                     static_cast<double>(stats.maxes) * max_fj);
  out.register_fj = static_cast<double>(stats.total_registers()) *
                    static_cast<double>(width_bits) * options.register_fj_per_bit;
  return out;
}

}  // namespace

NetlistEnergyBreakdown fixed_netlist_energy(const Netlist& netlist,
                                            const lowprec::FixedFormat& format,
                                            const NetlistEnergyOptions& options) {
  const int n = energy::fixed_width_bits(format);
  return estimate(netlist, n, energy::fixed_add_fj(n), energy::fixed_mul_fj(n),
                  energy::max_op_fj(n), options);
}

NetlistEnergyBreakdown float_netlist_energy(const Netlist& netlist,
                                            const lowprec::FloatFormat& format,
                                            const NetlistEnergyOptions& options) {
  const int w = energy::float_width_bits(format);
  const int m = format.mantissa_bits;
  return estimate(netlist, w, energy::float_add_fj(m), energy::float_mul_fj(m),
                  energy::max_op_fj(w), options);
}

}  // namespace problp::hw
