// Self-checking Verilog testbench emission.
//
// The C++ netlist simulator is this repository's functional reference for
// the emitted datapath; for teams with a real simulator (Icarus/Verilator/
// VCS), this module closes the loop by emitting a testbench whose stimulus
// *and* golden outputs come from that same bit-exact reference:
//
//   * drives the indicator inputs with the given evidence vectors, one per
//     clock (exercising the initiation-interval-1 pipelining),
//   * waits out the pipeline latency,
//   * compares pr_out against the simulator-computed golden words,
//   * prints PASS/FAIL counts and finishes with $finish.
#pragma once

#include <string>
#include <vector>

#include "ac/evaluator.hpp"
#include "hw/netlist.hpp"
#include "lowprec/format.hpp"

namespace problp::hw {

struct TestbenchOptions {
  std::string top_module = "problp_ac_top";
  std::string testbench_module = "problp_ac_tb";
  int clock_period = 10;  ///< time units per cycle
  lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven;
};

/// Fixed-point testbench; golden outputs from FixedNetlistSimulator.
std::string emit_fixed_testbench(const Netlist& netlist, const lowprec::FixedFormat& format,
                                 const std::vector<ac::PartialAssignment>& vectors,
                                 const TestbenchOptions& options = {});

/// Float testbench; golden outputs from FloatNetlistSimulator.
std::string emit_float_testbench(const Netlist& netlist, const lowprec::FloatFormat& format,
                                 const std::vector<ac::PartialAssignment>& vectors,
                                 const TestbenchOptions& options = {});

}  // namespace problp::hw
