// Discrete Bayesian networks (paper §2): a DAG over categorical random
// variables where every variable owns a conditional probability table (CPT)
// P(X | parents(X)).  This is the modelling substrate ProbLP's arithmetic
// circuits are compiled from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace problp::bn {

/// A categorical random variable.  States are named so BIF round-trips keep
/// human-readable labels.
struct Variable {
  std::string name;
  std::vector<std::string> state_names;

  int cardinality() const { return static_cast<int>(state_names.size()); }
};

/// Conditional probability table for one variable.
///
/// Layout: values[parent_index * card(child) + child_state], where
/// parent_index enumerates parent assignments row-major with the *last*
/// parent fastest (matching the order parent states are listed in BIF files).
struct Cpt {
  int child = -1;
  std::vector<int> parents;
  std::vector<double> values;

  /// Flat index of (child_state, parent_states); parent_states aligned with
  /// `parents`.
  static std::size_t index(int child_state, const std::vector<int>& parent_states,
                           const std::vector<int>& parent_cards, int child_card);
};

/// Partial assignment: evidence[v] holds the observed state of variable v, or
/// nullopt when v is unobserved.
using Evidence = std::vector<std::optional<int>>;

/// Full assignment: one state index per variable.
using Assignment = std::vector<int>;

class BayesianNetwork {
 public:
  /// Adds a variable, returning its id (ids are dense, in insertion order).
  int add_variable(std::string name, std::vector<std::string> state_names);

  /// Convenience: states named "s0".."s{k-1}".
  int add_variable(std::string name, int cardinality);

  /// Installs the CPT for `child`.  `values` must follow Cpt's layout and
  /// every row must sum to 1 (checked by validate()).
  void set_cpt(int child, std::vector<int> parents, std::vector<double> values);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  const Variable& variable(int v) const { return variables_.at(static_cast<std::size_t>(v)); }
  const Cpt& cpt(int v) const;
  bool has_cpt(int v) const;

  /// Id of the variable with `name`, or -1.
  int find_variable(const std::string& name) const;

  const std::vector<int>& parents(int v) const { return cpt(v).parents; }
  std::vector<int> children(int v) const;

  int cardinality(int v) const { return variable(v).cardinality(); }

  /// One CPT entry P(child = state | parents = parent_states).
  double cpt_value(int child, int child_state, const std::vector<int>& parent_states) const;

  /// Parents-before-children order; throws if the graph is cyclic.
  std::vector<int> topological_order() const;

  /// Full structural + numerical validation: every variable has a CPT, all
  /// parent references are valid, the graph is acyclic, and every CPT row
  /// sums to 1 within `row_sum_tolerance`.
  void validate(double row_sum_tolerance = 1e-6) const;

  /// Total number of free CPT parameters (table entries).
  std::size_t num_parameters() const;

  /// An all-unobserved evidence vector sized for this network.
  Evidence empty_evidence() const { return Evidence(static_cast<std::size_t>(num_variables())); }

  /// Network name as declared in the source (e.g. BIF `network alarm {`);
  /// empty when the source carried none.  Compiled models persist it so
  /// artifact/network mismatches can be reported by name.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  std::vector<Variable> variables_;
  std::vector<Cpt> cpts_;  // indexed by child id; child == -1 means unset
};

}  // namespace problp::bn
