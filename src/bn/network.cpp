#include "bn/network.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/strings.hpp"

namespace problp::bn {

std::size_t Cpt::index(int child_state, const std::vector<int>& parent_states,
                       const std::vector<int>& parent_cards, int child_card) {
  require(parent_states.size() == parent_cards.size(), "Cpt::index: arity mismatch");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < parent_states.size(); ++i) {
    const int s = parent_states[i];
    require(s >= 0 && s < parent_cards[i], "Cpt::index: parent state out of range");
    idx = idx * static_cast<std::size_t>(parent_cards[i]) + static_cast<std::size_t>(s);
  }
  require(child_state >= 0 && child_state < child_card, "Cpt::index: child state out of range");
  return idx * static_cast<std::size_t>(child_card) + static_cast<std::size_t>(child_state);
}

int BayesianNetwork::add_variable(std::string name, std::vector<std::string> state_names) {
  require(!name.empty(), "add_variable: empty name");
  require(state_names.size() >= 2, "add_variable: need at least two states");
  require(find_variable(name) < 0, "add_variable: duplicate name '" + name + "'");
  variables_.push_back(Variable{std::move(name), std::move(state_names)});
  cpts_.emplace_back();
  return num_variables() - 1;
}

int BayesianNetwork::add_variable(std::string name, int cardinality) {
  std::vector<std::string> states;
  states.reserve(static_cast<std::size_t>(cardinality));
  for (int s = 0; s < cardinality; ++s) states.push_back(str_format("s%d", s));
  return add_variable(std::move(name), std::move(states));
}

void BayesianNetwork::set_cpt(int child, std::vector<int> parents, std::vector<double> values) {
  require(child >= 0 && child < num_variables(), "set_cpt: bad child id");
  std::size_t expected = static_cast<std::size_t>(cardinality(child));
  for (int p : parents) {
    require(p >= 0 && p < num_variables() && p != child, "set_cpt: bad parent id");
    expected *= static_cast<std::size_t>(cardinality(p));
  }
  require(values.size() == expected, "set_cpt: value count mismatch");
  cpts_[static_cast<std::size_t>(child)] = Cpt{child, std::move(parents), std::move(values)};
}

const Cpt& BayesianNetwork::cpt(int v) const {
  const Cpt& c = cpts_.at(static_cast<std::size_t>(v));
  require(c.child == v, "cpt: variable has no CPT yet");
  return c;
}

bool BayesianNetwork::has_cpt(int v) const {
  return cpts_.at(static_cast<std::size_t>(v)).child == v;
}

int BayesianNetwork::find_variable(const std::string& name) const {
  for (int v = 0; v < num_variables(); ++v) {
    if (variables_[static_cast<std::size_t>(v)].name == name) return v;
  }
  return -1;
}

std::vector<int> BayesianNetwork::children(int v) const {
  std::vector<int> out;
  for (int c = 0; c < num_variables(); ++c) {
    if (!has_cpt(c)) continue;
    const auto& ps = cpt(c).parents;
    if (std::find(ps.begin(), ps.end(), v) != ps.end()) out.push_back(c);
  }
  return out;
}

double BayesianNetwork::cpt_value(int child, int child_state,
                                  const std::vector<int>& parent_states) const {
  const Cpt& c = cpt(child);
  std::vector<int> cards;
  cards.reserve(c.parents.size());
  for (int p : c.parents) cards.push_back(cardinality(p));
  return c.values[Cpt::index(child_state, parent_states, cards, cardinality(child))];
}

std::vector<int> BayesianNetwork::topological_order() const {
  const int n = num_variables();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    if (has_cpt(v)) indegree[static_cast<std::size_t>(v)] = static_cast<int>(cpt(v).parents.size());
  }
  std::queue<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop();
    order.push_back(v);
    for (int c : children(v)) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push(c);
    }
  }
  require(static_cast<int>(order.size()) == n, "topological_order: graph has a cycle");
  return order;
}

void BayesianNetwork::validate(double row_sum_tolerance) const {
  require(num_variables() > 0, "validate: empty network");
  for (int v = 0; v < num_variables(); ++v) {
    require(has_cpt(v), "validate: variable '" + variable(v).name + "' has no CPT");
    const Cpt& c = cpt(v);
    const auto child_card = static_cast<std::size_t>(cardinality(v));
    require(c.values.size() % child_card == 0, "validate: ragged CPT");
    for (std::size_t row = 0; row < c.values.size() / child_card; ++row) {
      double sum = 0.0;
      for (std::size_t s = 0; s < child_card; ++s) {
        const double p = c.values[row * child_card + s];
        require(p >= 0.0 && p <= 1.0 && std::isfinite(p),
                "validate: CPT entry outside [0,1] for '" + variable(v).name + "'");
        sum += p;
      }
      require(std::abs(sum - 1.0) <= row_sum_tolerance,
              "validate: CPT row does not sum to 1 for '" + variable(v).name + "'");
    }
  }
  (void)topological_order();  // throws on cycles
}

std::size_t BayesianNetwork::num_parameters() const {
  std::size_t n = 0;
  for (int v = 0; v < num_variables(); ++v) {
    if (has_cpt(v)) n += cpt(v).values.size();
  }
  return n;
}

}  // namespace problp::bn
