#include "bn/likelihood_weighting.hpp"

namespace problp::bn {

namespace {

// Scratch shared by every sample of one estimation run.  The sampler is a
// hot loop (num_samples x num_variables CPT lookups); hoisting the per-node
// parent-state and probability vectors out of it removes two heap
// allocations per variable per sample.
struct SamplerScratch {
  std::vector<int> pstates;
  std::vector<double> probs;
};

// One weighted sample: evidence variables are clamped and contribute their
// CPT probability to the weight; free variables are forward-sampled.
double weighted_sample(const BayesianNetwork& network, const Evidence& evidence,
                       const std::vector<int>& topo, SamplerScratch& scratch, Assignment& out,
                       Rng& rng) {
  double weight = 1.0;
  for (int v : topo) {
    scratch.pstates.clear();
    for (int p : network.parents(v)) scratch.pstates.push_back(out[static_cast<std::size_t>(p)]);
    const auto& obs = evidence[static_cast<std::size_t>(v)];
    if (obs.has_value()) {
      out[static_cast<std::size_t>(v)] = *obs;
      weight *= network.cpt_value(v, *obs, scratch.pstates);
    } else {
      scratch.probs.clear();
      const int card = network.cardinality(v);
      for (int s = 0; s < card; ++s) {
        scratch.probs.push_back(network.cpt_value(v, s, scratch.pstates));
      }
      out[static_cast<std::size_t>(v)] = rng.categorical(scratch.probs);
    }
  }
  return weight;
}

}  // namespace

LikelihoodWeightingResult estimate_evidence_probability(const BayesianNetwork& network,
                                                        const Evidence& evidence,
                                                        int num_samples, Rng& rng) {
  require(num_samples > 0, "likelihood weighting: need > 0 samples");
  require(evidence.size() == static_cast<std::size_t>(network.num_variables()),
          "likelihood weighting: evidence size mismatch");
  const auto topo = network.topological_order();
  Assignment sample(static_cast<std::size_t>(network.num_variables()), 0);
  SamplerScratch scratch;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    const double w = weighted_sample(network, evidence, topo, scratch, sample, rng);
    sum_w += w;
    sum_w2 += w * w;
  }
  LikelihoodWeightingResult out;
  out.samples = static_cast<std::size_t>(num_samples);
  out.estimate = sum_w / num_samples;
  out.effective_samples = (sum_w2 > 0.0) ? (sum_w * sum_w) / sum_w2 : 0.0;
  return out;
}

LikelihoodWeightingResult estimate_conditional(const BayesianNetwork& network, int query_var,
                                               int state, const Evidence& evidence,
                                               int num_samples, Rng& rng) {
  require(query_var >= 0 && query_var < network.num_variables(),
          "likelihood weighting: bad query var");
  require(!evidence[static_cast<std::size_t>(query_var)].has_value(),
          "likelihood weighting: query variable already observed");
  const auto topo = network.topological_order();
  Assignment sample(static_cast<std::size_t>(network.num_variables()), 0);
  SamplerScratch scratch;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  double sum_match = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    const double w = weighted_sample(network, evidence, topo, scratch, sample, rng);
    sum_w += w;
    sum_w2 += w * w;
    if (sample[static_cast<std::size_t>(query_var)] == state) sum_match += w;
  }
  LikelihoodWeightingResult out;
  out.samples = static_cast<std::size_t>(num_samples);
  out.estimate = (sum_w > 0.0) ? sum_match / sum_w : 0.0;
  out.effective_samples = (sum_w2 > 0.0) ? (sum_w * sum_w) / sum_w2 : 0.0;
  return out;
}

}  // namespace problp::bn
