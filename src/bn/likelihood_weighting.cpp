#include "bn/likelihood_weighting.hpp"

namespace problp::bn {

namespace {

// One weighted sample: evidence variables are clamped and contribute their
// CPT probability to the weight; free variables are forward-sampled.
double weighted_sample(const BayesianNetwork& network, const Evidence& evidence,
                       const std::vector<int>& topo, Assignment& out, Rng& rng) {
  double weight = 1.0;
  for (int v : topo) {
    std::vector<int> pstates;
    pstates.reserve(network.parents(v).size());
    for (int p : network.parents(v)) pstates.push_back(out[static_cast<std::size_t>(p)]);
    const auto& obs = evidence[static_cast<std::size_t>(v)];
    if (obs.has_value()) {
      out[static_cast<std::size_t>(v)] = *obs;
      weight *= network.cpt_value(v, *obs, pstates);
    } else {
      std::vector<double> probs;
      const int card = network.cardinality(v);
      probs.reserve(static_cast<std::size_t>(card));
      for (int s = 0; s < card; ++s) probs.push_back(network.cpt_value(v, s, pstates));
      out[static_cast<std::size_t>(v)] = rng.categorical(probs);
    }
  }
  return weight;
}

}  // namespace

LikelihoodWeightingResult estimate_evidence_probability(const BayesianNetwork& network,
                                                        const Evidence& evidence,
                                                        int num_samples, Rng& rng) {
  require(num_samples > 0, "likelihood weighting: need > 0 samples");
  require(evidence.size() == static_cast<std::size_t>(network.num_variables()),
          "likelihood weighting: evidence size mismatch");
  const auto topo = network.topological_order();
  Assignment sample(static_cast<std::size_t>(network.num_variables()), 0);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    const double w = weighted_sample(network, evidence, topo, sample, rng);
    sum_w += w;
    sum_w2 += w * w;
  }
  LikelihoodWeightingResult out;
  out.samples = static_cast<std::size_t>(num_samples);
  out.estimate = sum_w / num_samples;
  out.effective_samples = (sum_w2 > 0.0) ? (sum_w * sum_w) / sum_w2 : 0.0;
  return out;
}

LikelihoodWeightingResult estimate_conditional(const BayesianNetwork& network, int query_var,
                                               int state, const Evidence& evidence,
                                               int num_samples, Rng& rng) {
  require(query_var >= 0 && query_var < network.num_variables(),
          "likelihood weighting: bad query var");
  require(!evidence[static_cast<std::size_t>(query_var)].has_value(),
          "likelihood weighting: query variable already observed");
  const auto topo = network.topological_order();
  Assignment sample(static_cast<std::size_t>(network.num_variables()), 0);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  double sum_match = 0.0;
  for (int i = 0; i < num_samples; ++i) {
    const double w = weighted_sample(network, evidence, topo, sample, rng);
    sum_w += w;
    sum_w2 += w * w;
    if (sample[static_cast<std::size_t>(query_var)] == state) sum_match += w;
  }
  LikelihoodWeightingResult out;
  out.samples = static_cast<std::size_t>(num_samples);
  out.estimate = (sum_w > 0.0) ? sum_match / sum_w : 0.0;
  out.effective_samples = (sum_w2 > 0.0) ? (sum_w * sum_w) / sum_w2 : 0.0;
  return out;
}

}  // namespace problp::bn
