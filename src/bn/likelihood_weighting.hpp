// Likelihood-weighted sampling — an anytime approximate-inference baseline.
//
// Exact engines (variable elimination, compiled ACs) answer the same queries
// deterministically; likelihood weighting cross-validates them on networks
// too large to brute-force, and gives the repository an "approximate
// inference" reference point the embedded-ML literature frequently compares
// against.
#pragma once

#include "bn/network.hpp"
#include "util/rng.hpp"

namespace problp::bn {

struct LikelihoodWeightingResult {
  double estimate = 0.0;        ///< estimated probability
  double effective_samples = 0; ///< ESS = (sum w)^2 / sum w^2, degeneracy check
  std::size_t samples = 0;
};

/// Estimates Pr(e) with `num_samples` weighted forward samples.
LikelihoodWeightingResult estimate_evidence_probability(const BayesianNetwork& network,
                                                        const Evidence& evidence,
                                                        int num_samples, Rng& rng);

/// Estimates Pr(Q = state | e).
LikelihoodWeightingResult estimate_conditional(const BayesianNetwork& network, int query_var,
                                               int state, const Evidence& evidence,
                                               int num_samples, Rng& rng);

}  // namespace problp::bn
