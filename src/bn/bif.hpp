// Reader/writer for the Interchange Format for Bayesian networks (BIF), the
// textual format the standard benchmark networks (ALARM & friends) are
// distributed in (bnlearn repository dialect).
//
// Supported subset:
//   network <name> { ... }                      (properties ignored)
//   variable X { type discrete [ n ] { a, b }; }
//   probability ( X ) { table p1, ..., pn; }
//   probability ( X | P1, P2 ) { (s1, s2) p1, ..., pn; ... }
// Comments: // to end of line.
#pragma once

#include <iosfwd>
#include <string>

#include "bn/network.hpp"

namespace problp::bn {

/// Parses BIF text; throws ParseError with a line number on malformed input.
BayesianNetwork parse_bif(const std::string& text);

/// Reads and parses a .bif file.
BayesianNetwork load_bif_file(const std::string& path);

/// Serialises to BIF text (round-trips through parse_bif).
std::string to_bif(const BayesianNetwork& network, const std::string& network_name = "unknown");

/// Writes to a file.
void save_bif_file(const BayesianNetwork& network, const std::string& path,
                   const std::string& network_name = "unknown");

}  // namespace problp::bn
