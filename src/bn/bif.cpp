#include "bn/bif.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace problp::bn {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

// Splits BIF text into tokens: punctuation characters are single-character
// tokens; everything else groups into words/numbers.
std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  std::string word;
  auto flush = [&] {
    if (!word.empty()) {
      tokens.push_back({word, line});
      word.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush();
      ++line;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      flush();
      while (i < text.size() && text[i] != '\n') ++i;
      ++line;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
      continue;
    }
    if (std::string("{}()[]|,;").find(c) != std::string::npos) {
      flush();
      tokens.push_back({std::string(1, c), line});
      continue;
    }
    word.push_back(c);
  }
  flush();
  return tokens;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(tokenize(text)) {}

  BayesianNetwork parse() {
    BayesianNetwork network;
    while (!at_end()) {
      const Token& t = peek();
      if (t.text == "network") {
        parse_network_decl(network);
      } else if (t.text == "variable") {
        parse_variable(network);
      } else if (t.text == "probability") {
        parse_probability(network);
      } else {
        fail("unexpected token '" + t.text + "'");
      }
    }
    return network;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    const int line = at_end() ? (tokens_.empty() ? 0 : tokens_.back().line) : peek().line;
    throw ParseError(str_format("BIF parse error at line %d: %s", line, msg.c_str()));
  }

  bool at_end() const { return pos_ >= tokens_.size(); }
  const Token& peek() const { return tokens_[pos_]; }
  Token next() {
    if (at_end()) fail("unexpected end of input");
    return tokens_[pos_++];
  }
  void expect(const std::string& text) {
    const Token t = next();
    if (t.text != text) fail("expected '" + text + "', got '" + t.text + "'");
  }

  double number(const std::string& text) {
    try {
      std::size_t used = 0;
      const double v = std::stod(text, &used);
      if (used != text.size()) fail("bad number '" + text + "'");
      return v;
    } catch (const std::exception&) {
      fail("bad number '" + text + "'");
    }
  }

  // `network foo { ... }` — keep the declared name, skip the brace block
  // (its properties carry no probabilistic content).
  void parse_network_decl(BayesianNetwork& network) {
    next();  // keyword
    std::string name;
    while (!at_end() && peek().text != "{") {
      if (!name.empty()) name += ' ';
      name += next().text;
    }
    network.set_name(name);
    expect("{");
    int depth = 1;
    while (depth > 0) {
      const Token t = next();
      if (t.text == "{") ++depth;
      if (t.text == "}") --depth;
    }
  }

  void parse_variable(BayesianNetwork& network) {
    expect("variable");
    const std::string name = next().text;
    expect("{");
    expect("type");
    expect("discrete");
    expect("[");
    const int card = static_cast<int>(number(next().text));
    expect("]");
    expect("{");
    std::vector<std::string> states;
    while (peek().text != "}") {
      const Token t = next();
      if (t.text == ",") continue;
      states.push_back(t.text);
    }
    expect("}");
    expect(";");
    expect("}");
    if (static_cast<int>(states.size()) != card) fail("state count mismatch for " + name);
    network.add_variable(name, std::move(states));
  }

  int variable_id(const BayesianNetwork& network, const std::string& name) {
    const int id = network.find_variable(name);
    if (id < 0) fail("unknown variable '" + name + "'");
    return id;
  }

  int state_id(const BayesianNetwork& network, int var, const std::string& name) {
    const auto& states = network.variable(var).state_names;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == name) return static_cast<int>(i);
    }
    fail("unknown state '" + name + "' of variable '" + network.variable(var).name + "'");
  }

  void parse_probability(BayesianNetwork& network) {
    expect("probability");
    expect("(");
    const int child = variable_id(network, next().text);
    std::vector<int> parents;
    if (peek().text == "|") {
      next();
      while (peek().text != ")") {
        const Token t = next();
        if (t.text == ",") continue;
        parents.push_back(variable_id(network, t.text));
      }
    }
    expect(")");
    expect("{");

    const int child_card = network.cardinality(child);
    std::size_t rows = 1;
    std::vector<int> parent_cards;
    for (int p : parents) {
      parent_cards.push_back(network.cardinality(p));
      rows *= static_cast<std::size_t>(network.cardinality(p));
    }
    std::vector<double> values(rows * static_cast<std::size_t>(child_card), -1.0);

    while (peek().text != "}") {
      if (peek().text == "table") {
        next();
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (peek().text == ",") next();
          values[i] = number(next().text);
        }
        expect(";");
      } else if (peek().text == "(") {
        next();
        std::vector<int> pstates;
        for (std::size_t i = 0; i < parents.size(); ++i) {
          if (peek().text == ",") next();
          pstates.push_back(state_id(network, parents[i], next().text));
        }
        expect(")");
        std::size_t row = 0;
        for (std::size_t i = 0; i < parents.size(); ++i) {
          row = row * static_cast<std::size_t>(parent_cards[i]) + static_cast<std::size_t>(pstates[i]);
        }
        for (int s = 0; s < child_card; ++s) {
          if (peek().text == ",") next();
          values[row * static_cast<std::size_t>(child_card) + static_cast<std::size_t>(s)] =
              number(next().text);
        }
        expect(";");
      } else {
        fail("expected 'table' or '(' in probability block");
      }
    }
    expect("}");
    for (double v : values) {
      if (v < 0.0) fail("incomplete CPT for variable " + network.variable(child).name);
    }
    network.set_cpt(child, std::move(parents), std::move(values));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

BayesianNetwork parse_bif(const std::string& text) { return Parser(text).parse(); }

BayesianNetwork load_bif_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_bif_file: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bif(buf.str());
}

std::string to_bif(const BayesianNetwork& network, const std::string& network_name) {
  std::ostringstream os;
  os << "network " << network_name << " {\n}\n";
  for (int v = 0; v < network.num_variables(); ++v) {
    const Variable& var = network.variable(v);
    os << "variable " << var.name << " {\n  type discrete [ " << var.cardinality() << " ] { ";
    for (int s = 0; s < var.cardinality(); ++s) {
      os << (s ? ", " : "") << var.state_names[static_cast<std::size_t>(s)];
    }
    os << " };\n}\n";
  }
  os.precision(17);
  for (int v = 0; v < network.num_variables(); ++v) {
    const Cpt& c = network.cpt(v);
    os << "probability ( " << network.variable(v).name;
    if (!c.parents.empty()) {
      os << " | ";
      for (std::size_t i = 0; i < c.parents.size(); ++i) {
        os << (i ? ", " : "") << network.variable(c.parents[i]).name;
      }
    }
    os << " ) {\n";
    const auto child_card = static_cast<std::size_t>(network.cardinality(v));
    if (c.parents.empty()) {
      os << "  table ";
      for (std::size_t s = 0; s < child_card; ++s) os << (s ? ", " : "") << c.values[s];
      os << ";\n";
    } else {
      // Enumerate parent rows (last parent fastest, matching Cpt layout).
      std::vector<int> pstates(c.parents.size(), 0);
      const std::size_t rows = c.values.size() / child_card;
      for (std::size_t row = 0; row < rows; ++row) {
        os << "  (";
        for (std::size_t i = 0; i < pstates.size(); ++i) {
          const auto& pvar = network.variable(c.parents[i]);
          os << (i ? ", " : "") << pvar.state_names[static_cast<std::size_t>(pstates[i])];
        }
        os << ") ";
        for (std::size_t s = 0; s < child_card; ++s) {
          os << (s ? ", " : "") << c.values[row * child_card + s];
        }
        os << ";\n";
        for (std::size_t i = pstates.size(); i > 0; --i) {
          if (++pstates[i - 1] < network.cardinality(c.parents[i - 1])) break;
          pstates[i - 1] = 0;
        }
      }
    }
    os << "}\n";
  }
  return os.str();
}

void save_bif_file(const BayesianNetwork& network, const std::string& path,
                   const std::string& network_name) {
  std::ofstream out(path);
  require(out.good(), "save_bif_file: cannot open '" + path + "'");
  out << to_bif(network, network_name);
}

}  // namespace problp::bn
