// Random Bayesian-network generator for property-based tests: arbitrary
// DAGs with bounded in-degree and Dirichlet CPTs, so bound-soundness and
// compiler-correctness properties can be checked across many topologies.
#pragma once

#include <cstdint>

#include "bn/network.hpp"
#include "util/rng.hpp"

namespace problp::bn {

struct RandomNetworkSpec {
  int num_variables = 8;
  int max_parents = 3;
  int min_cardinality = 2;
  int max_cardinality = 3;
  double edge_probability = 0.4;  ///< chance of each candidate parent edge
  double dirichlet_alpha = 1.0;
};

/// Builds a random network; variables are named "X0".."X{n-1}" and node i may
/// only have parents among {X0..X{i-1}} (guaranteeing acyclicity).
BayesianNetwork make_random_network(const RandomNetworkSpec& spec, Rng& rng);

}  // namespace problp::bn
