#include "bn/variable_elimination.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace problp::bn {

namespace {

// Undirected interaction (moral) graph as adjacency sets.
std::vector<std::set<int>> moral_graph(const BayesianNetwork& network) {
  const int n = network.num_variables();
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  auto connect = [&](int a, int b) {
    if (a == b) return;
    adj[static_cast<std::size_t>(a)].insert(b);
    adj[static_cast<std::size_t>(b)].insert(a);
  };
  for (int v = 0; v < n; ++v) {
    const auto& ps = network.parents(v);
    for (int p : ps) connect(v, p);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      for (std::size_t j = i + 1; j < ps.size(); ++j) connect(ps[i], ps[j]);
    }
  }
  return adj;
}

// Number of fill-in edges eliminating v would add.
int fill_cost(const std::vector<std::set<int>>& adj, int v) {
  const auto& nb = adj[static_cast<std::size_t>(v)];
  int fill = 0;
  for (auto it = nb.begin(); it != nb.end(); ++it) {
    auto jt = it;
    for (++jt; jt != nb.end(); ++jt) {
      if (!adj[static_cast<std::size_t>(*it)].contains(*jt)) ++fill;
    }
  }
  return fill;
}

}  // namespace

std::vector<int> elimination_order(const BayesianNetwork& network,
                                   EliminationHeuristic heuristic) {
  const int n = network.num_variables();
  if (heuristic == EliminationHeuristic::kTopological) {
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    return order;
  }
  auto adj = moral_graph(network);
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_cost = std::numeric_limits<long>::max();
    for (int v = 0; v < n; ++v) {
      if (eliminated[static_cast<std::size_t>(v)]) continue;
      const long cost = (heuristic == EliminationHeuristic::kMinFill)
                            ? fill_cost(adj, v)
                            : static_cast<long>(adj[static_cast<std::size_t>(v)].size());
      if (cost < best_cost) {
        best_cost = cost;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[static_cast<std::size_t>(best)] = true;
    // Connect the neighbourhood of `best`, then remove it.
    const auto nb = adj[static_cast<std::size_t>(best)];
    for (int a : nb) {
      adj[static_cast<std::size_t>(a)].erase(best);
      for (int b : nb) {
        if (a != b) adj[static_cast<std::size_t>(a)].insert(b);
      }
    }
    adj[static_cast<std::size_t>(best)].clear();
  }
  return order;
}

VariableElimination::VariableElimination(const BayesianNetwork& network,
                                         EliminationHeuristic heuristic)
    : network_(network), order_(elimination_order(network, heuristic)) {}

double VariableElimination::run(const Evidence& evidence, bool maximize) const {
  require(evidence.size() == static_cast<std::size_t>(network_.num_variables()),
          "VariableElimination: evidence size mismatch");
  // Build one factor per CPT, with evidence variables restricted away.
  std::vector<FactorTable<double>> factors;
  factors.reserve(static_cast<std::size_t>(network_.num_variables()));
  for (int v = 0; v < network_.num_variables(); ++v) {
    const Cpt& c = network_.cpt(v);
    std::vector<int> scope = c.parents;
    scope.push_back(v);
    std::sort(scope.begin(), scope.end());
    std::vector<int> cards;
    cards.reserve(scope.size());
    for (int s : scope) cards.push_back(network_.cardinality(s));
    FactorTable<double> f(scope, cards);
    // Fill by enumerating (child_state, parent assignment).
    std::vector<int> full(static_cast<std::size_t>(network_.num_variables()), 0);
    std::vector<int> pstates(c.parents.size(), 0);
    const int child_card = network_.cardinality(v);
    bool done = false;
    while (!done) {
      for (std::size_t i = 0; i < c.parents.size(); ++i) {
        full[static_cast<std::size_t>(c.parents[i])] = pstates[i];
      }
      for (int s = 0; s < child_card; ++s) {
        full[static_cast<std::size_t>(v)] = s;
        f[f.index_of(full)] = network_.cpt_value(v, s, pstates);
      }
      // advance parent odometer
      done = true;
      for (std::size_t i = pstates.size(); i > 0; --i) {
        if (++pstates[i - 1] < network_.cardinality(c.parents[i - 1])) {
          done = false;
          break;
        }
        pstates[i - 1] = 0;
      }
      if (c.parents.empty()) done = true;
    }
    // Restrict observed variables.
    for (int s : scope) {
      const auto& obs = evidence[static_cast<std::size_t>(s)];
      if (obs.has_value()) f = f.restrict_var(s, *obs);
    }
    factors.push_back(std::move(f));
  }

  const auto sum_reduce = [](std::span<const double> g) {
    double s = 0.0;
    for (double x : g) s += x;
    return s;
  };
  const auto max_reduce = [](std::span<const double> g) {
    double s = 0.0;
    for (double x : g) s = std::max(s, x);
    return s;
  };
  const auto mul2 = [](double a, double b) { return a * b; };

  for (int v : order_) {
    if (evidence[static_cast<std::size_t>(v)].has_value()) continue;
    // Multiply all factors mentioning v, then eliminate v.
    FactorTable<double> acc = FactorTable<double>::scalar(1.0);
    bool found = false;
    for (auto it = factors.begin(); it != factors.end();) {
      const auto& vs = it->vars();
      if (std::find(vs.begin(), vs.end(), v) != vs.end()) {
        acc = FactorTable<double>::product(acc, *it, mul2);
        it = factors.erase(it);
        found = true;
      } else {
        ++it;
      }
    }
    if (!found) continue;
    factors.push_back(maximize ? acc.eliminate(v, max_reduce) : acc.eliminate(v, sum_reduce));
  }
  double result = 1.0;
  for (const auto& f : factors) {
    require(f.is_scalar(), "VariableElimination: non-scalar factor left over");
    result *= f[0];
  }
  return result;
}

double VariableElimination::probability_of_evidence(const Evidence& evidence) const {
  return run(evidence, /*maximize=*/false);
}

double VariableElimination::joint_marginal(int query_var, int state,
                                           const Evidence& evidence) const {
  require(query_var >= 0 && query_var < network_.num_variables(),
          "joint_marginal: bad query var");
  require(!evidence[static_cast<std::size_t>(query_var)].has_value(),
          "joint_marginal: query variable already observed");
  Evidence extended = evidence;
  extended[static_cast<std::size_t>(query_var)] = state;
  return run(extended, /*maximize=*/false);
}

double VariableElimination::conditional(int query_var, int state,
                                        const Evidence& evidence) const {
  const double pe = probability_of_evidence(evidence);
  require(pe > 0.0, "conditional: evidence has zero probability");
  return joint_marginal(query_var, state, evidence) / pe;
}

std::vector<double> VariableElimination::posterior(int query_var,
                                                   const Evidence& evidence) const {
  const double pe = probability_of_evidence(evidence);
  require(pe > 0.0, "posterior: evidence has zero probability");
  std::vector<double> out;
  const int card = network_.cardinality(query_var);
  out.reserve(static_cast<std::size_t>(card));
  for (int s = 0; s < card; ++s) {
    out.push_back(joint_marginal(query_var, s, evidence) / pe);
  }
  return out;
}

double VariableElimination::mpe_value(const Evidence& evidence) const {
  return run(evidence, /*maximize=*/true);
}

}  // namespace problp::bn
