// Generic factor tables for variable elimination.
//
// A FactorTable<T> maps joint assignments of a set of discrete variables to
// values of type T.  The same machinery drives two clients:
//
//  * `bn::VariableElimination` instantiates T = double and combines entries
//    with ordinary (*, +) — the exact-inference baseline;
//  * `compile::VeCompiler` instantiates T = ac::NodeId and combines entries
//    by *emitting circuit nodes* — recording the trace of variable
//    elimination as an arithmetic circuit (Darwiche's network-polynomial
//    view, the role ACE plays in the paper).
//
// Entries are stored row-major with the *last* variable in `vars()` fastest;
// vars() is kept sorted ascending so factor products can merge scopes
// deterministically.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace problp::bn {

template <class T>
class FactorTable {
 public:
  /// A factor over `vars` (ascending ids) with the given per-variable
  /// cardinalities, all entries default-initialised.
  FactorTable(std::vector<int> vars, std::vector<int> cards)
      : vars_(std::move(vars)), cards_(std::move(cards)) {
    require(vars_.size() == cards_.size(), "FactorTable: vars/cards size mismatch");
    require(std::is_sorted(vars_.begin(), vars_.end()) &&
                std::adjacent_find(vars_.begin(), vars_.end()) == vars_.end(),
            "FactorTable: vars must be sorted and unique");
    std::size_t n = 1;
    for (int c : cards_) {
      require(c >= 1, "FactorTable: cardinality must be >= 1");
      n *= static_cast<std::size_t>(c);
    }
    values_.resize(n);
  }

  /// A scalar factor (empty scope, one entry).
  static FactorTable scalar(T value) {
    FactorTable f({}, {});
    f.values_[0] = std::move(value);
    return f;
  }

  const std::vector<int>& vars() const { return vars_; }
  const std::vector<int>& cards() const { return cards_; }
  std::size_t size() const { return values_.size(); }
  bool is_scalar() const { return vars_.empty(); }

  T& operator[](std::size_t i) { return values_[i]; }
  const T& operator[](std::size_t i) const { return values_[i]; }

  /// Flat index of an assignment restricted to this factor's scope.
  /// `full_assignment[v]` must be valid for every v in vars().
  std::size_t index_of(const std::vector<int>& full_assignment) const {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      idx = idx * static_cast<std::size_t>(cards_[i]) +
            static_cast<std::size_t>(full_assignment[static_cast<std::size_t>(vars_[i])]);
    }
    return idx;
  }

  /// Entry accessor by per-scope states (aligned with vars()).
  T& at(const std::vector<int>& states) { return values_[flat_index(states)]; }
  const T& at(const std::vector<int>& states) const { return values_[flat_index(states)]; }

  /// Pointwise product of two factors over the union of their scopes.
  /// `mul(a, b)` combines one entry of each.
  template <class Mul>
  static FactorTable product(const FactorTable& a, const FactorTable& b, Mul&& mul) {
    std::vector<int> uvars;
    std::vector<int> ucards;
    std::merge(a.vars_.begin(), a.vars_.end(), b.vars_.begin(), b.vars_.end(),
               std::back_inserter(uvars));
    uvars.erase(std::unique(uvars.begin(), uvars.end()), uvars.end());
    ucards.reserve(uvars.size());
    for (int v : uvars) {
      const int ca = a.card_of(v);
      const int cb = b.card_of(v);
      require(ca < 0 || cb < 0 || ca == cb, "FactorTable::product: cardinality clash");
      ucards.push_back(ca >= 0 ? ca : cb);
    }
    FactorTable out(uvars, ucards);
    // Odometer over the union scope; track flat indices into a and b
    // incrementally via their strides in the union ordering.
    const auto stride_a = strides_in(a, uvars);
    const auto stride_b = strides_in(b, uvars);
    std::vector<int> state(uvars.size(), 0);
    std::size_t ia = 0;
    std::size_t ib = 0;
    for (std::size_t io = 0;; ++io) {
      out.values_[io] = mul(a.values_[ia], b.values_[ib]);
      // increment odometer (last variable fastest)
      std::size_t k = uvars.size();
      while (k > 0) {
        --k;
        ++state[k];
        ia += stride_a[k];
        ib += stride_b[k];
        if (state[k] < ucards[k]) break;
        // carry: rewind this digit
        ia -= stride_a[k] * static_cast<std::size_t>(ucards[k]);
        ib -= stride_b[k] * static_cast<std::size_t>(ucards[k]);
        state[k] = 0;
        if (k == 0) return out;
      }
      if (uvars.empty()) return out;
    }
  }

  /// Eliminates `var` by reducing each group of entries that agree on all
  /// other variables.  `reduce(span)` receives the `card(var)` group members
  /// (e.g. sums them, max-es them, or emits an n-ary SUM circuit node).
  template <class Reduce>
  FactorTable eliminate(int var, Reduce&& reduce) const {
    const auto pos_it = std::find(vars_.begin(), vars_.end(), var);
    require(pos_it != vars_.end(), "FactorTable::eliminate: var not in scope");
    const auto pos = static_cast<std::size_t>(pos_it - vars_.begin());
    const int card = cards_[pos];

    std::vector<int> rvars;
    std::vector<int> rcards;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (i == pos) continue;
      rvars.push_back(vars_[i]);
      rcards.push_back(cards_[i]);
    }
    FactorTable out(rvars, rcards);

    // stride of `var` in this factor; entries of a group are `stride` apart.
    std::size_t stride = 1;
    for (std::size_t i = pos + 1; i < vars_.size(); ++i) {
      stride *= static_cast<std::size_t>(cards_[i]);
    }

    std::vector<T> group(static_cast<std::size_t>(card));
    const std::size_t inner = stride;                     // entries with var slower
    const std::size_t outer = values_.size() / (inner * static_cast<std::size_t>(card));
    std::size_t io = 0;
    for (std::size_t o = 0; o < outer; ++o) {
      const std::size_t base_o = o * inner * static_cast<std::size_t>(card);
      for (std::size_t in = 0; in < inner; ++in) {
        for (int s = 0; s < card; ++s) {
          group[static_cast<std::size_t>(s)] =
              values_[base_o + static_cast<std::size_t>(s) * stride + in];
        }
        out.values_[io++] = reduce(std::span<const T>(group));
      }
    }
    return out;
  }

  /// Restricts `var` to `state` (drops it from the scope).
  FactorTable restrict_var(int var, int state) const {
    const auto pos_it = std::find(vars_.begin(), vars_.end(), var);
    require(pos_it != vars_.end(), "FactorTable::restrict_var: var not in scope");
    const auto pos = static_cast<std::size_t>(pos_it - vars_.begin());
    require(state >= 0 && state < cards_[pos], "FactorTable::restrict_var: bad state");
    return eliminate(var, [&](std::span<const T> group) { return group[static_cast<std::size_t>(state)]; });
  }

 private:
  std::size_t flat_index(const std::vector<int>& states) const {
    require(states.size() == vars_.size(), "FactorTable::at: arity mismatch");
    std::size_t idx = 0;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      require(states[i] >= 0 && states[i] < cards_[i], "FactorTable::at: state out of range");
      idx = idx * static_cast<std::size_t>(cards_[i]) + static_cast<std::size_t>(states[i]);
    }
    return idx;
  }

  /// Cardinality of `v` in this factor, or -1 when absent.
  int card_of(int v) const {
    const auto it = std::find(vars_.begin(), vars_.end(), v);
    return it == vars_.end() ? -1 : cards_[static_cast<std::size_t>(it - vars_.begin())];
  }

  /// For each union variable, how much one step of that odometer digit moves
  /// the flat index of `f` (0 when f does not mention the variable).
  static std::vector<std::size_t> strides_in(const FactorTable& f, const std::vector<int>& uvars) {
    std::vector<std::size_t> strides(uvars.size(), 0);
    std::size_t s = 1;
    for (std::size_t i = f.vars_.size(); i > 0; --i) {
      const int v = f.vars_[i - 1];
      const auto it = std::find(uvars.begin(), uvars.end(), v);
      strides[static_cast<std::size_t>(it - uvars.begin())] = s;
      s *= static_cast<std::size_t>(f.cards_[i - 1]);
    }
    return strides;
  }

  std::vector<int> vars_;
  std::vector<int> cards_;
  std::vector<T> values_;
};

}  // namespace problp::bn
