#include "bn/alarm.hpp"

#include "util/rng.hpp"

namespace problp::bn {

namespace {

struct NodeSpec {
  const char* name;
  int cardinality;
  std::initializer_list<const char*> parents;
};

// The standard ALARM topology: 37 nodes, 46 arcs (Beinlich et al. 1989, as
// distributed in the bnlearn repository).
constexpr std::initializer_list<NodeSpec> kAlarmSpec = {
    {"HYPOVOLEMIA", 2, {}},
    {"LVFAILURE", 2, {}},
    {"ERRLOWOUTPUT", 2, {}},
    {"ERRCAUTER", 2, {}},
    {"INSUFFANESTH", 2, {}},
    {"ANAPHYLAXIS", 2, {}},
    {"KINKEDTUBE", 2, {}},
    {"FIO2", 2, {}},
    {"PULMEMBOLUS", 2, {}},
    {"INTUBATION", 3, {}},
    {"DISCONNECT", 2, {}},
    {"MINVOLSET", 3, {}},
    {"HISTORY", 2, {"LVFAILURE"}},
    {"LVEDVOLUME", 3, {"HYPOVOLEMIA", "LVFAILURE"}},
    {"CVP", 3, {"LVEDVOLUME"}},
    {"PCWP", 3, {"LVEDVOLUME"}},
    {"STROKEVOLUME", 3, {"HYPOVOLEMIA", "LVFAILURE"}},
    {"TPR", 3, {"ANAPHYLAXIS"}},
    {"PAP", 3, {"PULMEMBOLUS"}},
    {"SHUNT", 2, {"PULMEMBOLUS", "INTUBATION"}},
    {"VENTMACH", 4, {"MINVOLSET"}},
    {"VENTTUBE", 4, {"DISCONNECT", "VENTMACH"}},
    {"PRESS", 4, {"INTUBATION", "KINKEDTUBE", "VENTTUBE"}},
    {"VENTLUNG", 4, {"INTUBATION", "KINKEDTUBE", "VENTTUBE"}},
    {"MINVOL", 4, {"INTUBATION", "VENTLUNG"}},
    {"VENTALV", 4, {"INTUBATION", "VENTLUNG"}},
    {"PVSAT", 3, {"FIO2", "VENTALV"}},
    {"ARTCO2", 3, {"VENTALV"}},
    {"EXPCO2", 4, {"ARTCO2", "VENTLUNG"}},
    {"SAO2", 3, {"PVSAT", "SHUNT"}},
    {"CATECHOL", 2, {"ARTCO2", "INSUFFANESTH", "SAO2", "TPR"}},
    {"HR", 3, {"CATECHOL"}},
    {"HRBP", 3, {"ERRLOWOUTPUT", "HR"}},
    {"HREKG", 3, {"ERRCAUTER", "HR"}},
    {"HRSAT", 3, {"ERRCAUTER", "HR"}},
    {"CO", 3, {"HR", "STROKEVOLUME"}},
    {"BP", 3, {"CO", "TPR"}},
};

}  // namespace

BayesianNetwork make_alarm_network(std::uint64_t seed, double alpha) {
  BayesianNetwork network;
  for (const NodeSpec& spec : kAlarmSpec) {
    network.add_variable(spec.name, spec.cardinality);
  }
  Rng rng(seed);
  for (const NodeSpec& spec : kAlarmSpec) {
    const int child = network.find_variable(spec.name);
    std::vector<int> parents;
    std::size_t rows = 1;
    for (const char* p : spec.parents) {
      const int pid = network.find_variable(p);
      require(pid >= 0, std::string("alarm: unknown parent ") + p);
      parents.push_back(pid);
      rows *= static_cast<std::size_t>(network.cardinality(pid));
    }
    std::vector<double> values;
    values.reserve(rows * static_cast<std::size_t>(spec.cardinality));
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = rng.dirichlet(spec.cardinality, alpha);
      values.insert(values.end(), row.begin(), row.end());
    }
    network.set_cpt(child, std::move(parents), std::move(values));
  }
  network.validate();
  return network;
}

}  // namespace problp::bn
