// Exact inference by variable elimination — the double-precision ground
// truth every low-precision result is compared against, and the source of
// elimination orders for the AC compiler.
#pragma once

#include <vector>

#include "bn/factor.hpp"
#include "bn/network.hpp"

namespace problp::bn {

enum class EliminationHeuristic {
  kMinFill,    ///< greedy minimum fill-in on the moral graph (default)
  kMinDegree,  ///< greedy minimum degree
  kTopological ///< network insertion order (cheap, usually worst)
};

/// Greedy elimination order over the moral graph of `network`.
std::vector<int> elimination_order(const BayesianNetwork& network,
                                   EliminationHeuristic heuristic);

class VariableElimination {
 public:
  explicit VariableElimination(const BayesianNetwork& network,
                               EliminationHeuristic heuristic = EliminationHeuristic::kMinFill);

  /// Pr(e): probability of the evidence.
  double probability_of_evidence(const Evidence& evidence) const;

  /// Pr(Q = state, e): joint marginal of one query value with the evidence.
  double joint_marginal(int query_var, int state, const Evidence& evidence) const;

  /// Pr(Q = state | e); throws when Pr(e) == 0.
  double conditional(int query_var, int state, const Evidence& evidence) const;

  /// Full posterior over `query_var` given evidence.
  std::vector<double> posterior(int query_var, const Evidence& evidence) const;

  /// max_x Pr(x, e): value of the most probable explanation (MPE) consistent
  /// with the evidence (no traceback; ProbLP only bounds the value).
  double mpe_value(const Evidence& evidence) const;

  const std::vector<int>& order() const { return order_; }

 private:
  /// Runs elimination with sum (or max) over all unobserved variables.
  double run(const Evidence& evidence, bool maximize) const;

  const BayesianNetwork& network_;
  std::vector<int> order_;
};

}  // namespace problp::bn
