#include "bn/random_network.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace problp::bn {

BayesianNetwork make_random_network(const RandomNetworkSpec& spec, Rng& rng) {
  require(spec.num_variables >= 1, "make_random_network: need >= 1 variable");
  require(spec.min_cardinality >= 2 && spec.max_cardinality >= spec.min_cardinality,
          "make_random_network: bad cardinality range");
  BayesianNetwork network;
  for (int v = 0; v < spec.num_variables; ++v) {
    network.add_variable(str_format("X%d", v),
                         rng.uniform_int(spec.min_cardinality, spec.max_cardinality));
  }
  for (int v = 0; v < spec.num_variables; ++v) {
    // Candidate parents: earlier variables, shuffled, each kept with
    // edge_probability until max_parents is reached.
    std::vector<int> candidates(static_cast<std::size_t>(v));
    for (int i = 0; i < v; ++i) candidates[static_cast<std::size_t>(i)] = i;
    std::shuffle(candidates.begin(), candidates.end(), rng.engine());
    std::vector<int> parents;
    for (int c : candidates) {
      if (static_cast<int>(parents.size()) >= spec.max_parents) break;
      if (rng.coin(spec.edge_probability)) parents.push_back(c);
    }
    std::sort(parents.begin(), parents.end());
    std::size_t rows = 1;
    for (int p : parents) rows *= static_cast<std::size_t>(network.cardinality(p));
    std::vector<double> values;
    const int card = network.cardinality(v);
    values.reserve(rows * static_cast<std::size_t>(card));
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = rng.dirichlet(card, spec.dirichlet_alpha);
      values.insert(values.end(), row.begin(), row.end());
    }
    network.set_cpt(v, std::move(parents), std::move(values));
  }
  network.validate();
  return network;
}

}  // namespace problp::bn
