#include "bn/sampling.hpp"

namespace problp::bn {

Assignment sample_assignment(const BayesianNetwork& network, Rng& rng) {
  Assignment out(static_cast<std::size_t>(network.num_variables()), -1);
  for (int v : network.topological_order()) {
    const auto& parents = network.parents(v);
    std::vector<int> pstates;
    pstates.reserve(parents.size());
    for (int p : parents) pstates.push_back(out[static_cast<std::size_t>(p)]);
    std::vector<double> weights;
    const int card = network.cardinality(v);
    weights.reserve(static_cast<std::size_t>(card));
    for (int s = 0; s < card; ++s) weights.push_back(network.cpt_value(v, s, pstates));
    out[static_cast<std::size_t>(v)] = rng.categorical(weights);
  }
  return out;
}

std::vector<Assignment> sample_dataset(const BayesianNetwork& network, int count, Rng& rng) {
  std::vector<Assignment> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(sample_assignment(network, rng));
  return out;
}

Evidence evidence_from_assignment(const BayesianNetwork& network, const Assignment& assignment,
                                  const std::vector<int>& observed) {
  require(assignment.size() == static_cast<std::size_t>(network.num_variables()),
          "evidence_from_assignment: assignment size mismatch");
  Evidence e = network.empty_evidence();
  for (int v : observed) {
    require(v >= 0 && v < network.num_variables(), "evidence_from_assignment: bad var id");
    e[static_cast<std::size_t>(v)] = assignment[static_cast<std::size_t>(v)];
  }
  return e;
}

}  // namespace problp::bn
