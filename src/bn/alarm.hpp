// The ALARM patient-monitoring network (Beinlich et al., 1989) — the paper's
// fourth benchmark and the network used for the Fig. 5 bound-validation
// experiment.
//
// Substitution note (see DESIGN.md): the genuine 37-variable / 46-arc
// structure and state spaces are reproduced here; the CPT values, which are
// not in the paper, are drawn from a seeded Dirichlet so the experiments are
// deterministic.  ProbLP's analyses depend on circuit structure and parameter
// magnitudes, not on the clinical numbers.
#pragma once

#include <cstdint>

#include "bn/network.hpp"

namespace problp::bn {

/// Builds ALARM with Dirichlet(alpha)-distributed CPT rows.
/// alpha < 1 skews rows toward deterministic-ish CPTs like the original's.
BayesianNetwork make_alarm_network(std::uint64_t seed = 1989, double alpha = 0.6);

}  // namespace problp::bn
