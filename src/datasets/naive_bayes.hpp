// Naive Bayes learning (maximum likelihood with Laplace smoothing) producing
// a bn::BayesianNetwork — the "trained Naive Bayes classifier on 60% of the
// data" step of the paper's §4 pipeline.
#pragma once

#include "bn/network.hpp"
#include "datasets/discretize.hpp"

namespace problp::datasets {

struct NaiveBayesOptions {
  double laplace_alpha = 1.0;  ///< add-alpha smoothing (keeps every CPT entry > 0)
};

/// Learns P(class) and P(feature_j | class) from discretised rows.
/// Network layout: variable 0 is "class", variables 1..F are "f0".."f{F-1}".
bn::BayesianNetwork learn_naive_bayes(const std::vector<std::vector<int>>& rows,
                                      const std::vector<int>& labels, int num_classes,
                                      int bins, const NaiveBayesOptions& options = {});

/// Classifier-style evidence: every feature observed, class unobserved.
bn::Evidence evidence_from_row(const bn::BayesianNetwork& network, const std::vector<int>& row);

}  // namespace problp::datasets
