// Synthetic embedded-sensing datasets.
//
// The paper evaluates on three smartphone sensing datasets (HAR [1],
// UNIMIB-SHAR [15], UIWADS [3]).  Those recordings are not redistributable
// here, so we synthesise class-conditional Gaussian feature data of matching
// character (see DESIGN.md, substitution table): each class c draws feature
// j from N(mean[c][j], sigma[c][j]).  After the same discretise → train →
// compile pipeline the paper uses, what reaches ProbLP is a Naive Bayes AC
// whose size and parameter skew track the original benchmark — which is all
// the error/energy analyses can see.
//
// The three spec presets keep the paper's relative circuit sizes
// (HAR > UNIMIB > UIWADS, roughly 10x steps in predicted energy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace problp::datasets {

/// Dense feature matrix with integer class labels.
struct Dataset {
  std::vector<std::vector<double>> features;  ///< [sample][feature]
  std::vector<int> labels;                    ///< [sample], in [0, num_classes)
  int num_classes = 0;

  std::size_t size() const { return labels.size(); }
  int num_features() const {
    return features.empty() ? 0 : static_cast<int>(features.front().size());
  }
};

struct SyntheticSpec {
  std::string name;
  int num_classes = 2;
  int num_features = 8;
  int num_samples = 1000;
  std::uint64_t seed = 1;
  /// Class means are drawn uniformly in [-mean_spread, +mean_spread]; larger
  /// spread = more separable classes = more skewed CPTs.
  double mean_spread = 2.0;
  /// Per-class, per-feature stddevs drawn uniformly in [sigma_lo, sigma_hi].
  double sigma_lo = 0.6;
  double sigma_hi = 1.4;
};

/// Draws a dataset from the spec (deterministic in spec.seed).
Dataset generate_synthetic(const SyntheticSpec& spec);

/// Presets sized to track the paper's three benchmarks.
SyntheticSpec har_like_spec();     ///< 6 activities, 24 features
SyntheticSpec unimib_like_spec();  ///< 9 activities, 8 features
SyntheticSpec uiwads_like_spec();  ///< 2 users (verification), 5 features

/// Deterministic train/test split: first `train_fraction` of a shuffled
/// permutation trains, the rest tests (the paper uses 60/40).
struct Split {
  Dataset train;
  Dataset test;
};
Split split_dataset(const Dataset& data, double train_fraction, std::uint64_t seed);

}  // namespace problp::datasets
