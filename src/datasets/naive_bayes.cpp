#include "datasets/naive_bayes.hpp"

#include "util/strings.hpp"

namespace problp::datasets {

bn::BayesianNetwork learn_naive_bayes(const std::vector<std::vector<int>>& rows,
                                      const std::vector<int>& labels, int num_classes,
                                      int bins, const NaiveBayesOptions& options) {
  require(!rows.empty() && rows.size() == labels.size(), "learn_naive_bayes: bad inputs");
  require(num_classes >= 2 && bins >= 2, "learn_naive_bayes: bad arities");
  const double alpha = options.laplace_alpha;
  require(alpha > 0.0, "learn_naive_bayes: laplace_alpha must be > 0");
  const int nf = static_cast<int>(rows.front().size());

  bn::BayesianNetwork network;
  const int class_var = network.add_variable("class", num_classes);
  for (int f = 0; f < nf; ++f) network.add_variable(str_format("f%d", f), bins);

  // Class prior.
  std::vector<double> class_counts(static_cast<std::size_t>(num_classes), alpha);
  for (int y : labels) {
    require(y >= 0 && y < num_classes, "learn_naive_bayes: label out of range");
    class_counts[static_cast<std::size_t>(y)] += 1.0;
  }
  const double class_total =
      static_cast<double>(labels.size()) + alpha * static_cast<double>(num_classes);
  std::vector<double> prior;
  prior.reserve(class_counts.size());
  for (double c : class_counts) prior.push_back(c / class_total);
  network.set_cpt(class_var, {}, std::move(prior));

  // Per-feature conditionals: values[c * bins + v] = P(f = v | class = c).
  for (int f = 0; f < nf; ++f) {
    std::vector<double> counts(static_cast<std::size_t>(num_classes * bins), alpha);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const int v = rows[i][static_cast<std::size_t>(f)];
      require(v >= 0 && v < bins, "learn_naive_bayes: bin out of range");
      counts[static_cast<std::size_t>(labels[i] * bins + v)] += 1.0;
    }
    for (int c = 0; c < num_classes; ++c) {
      double total = 0.0;
      for (int v = 0; v < bins; ++v) total += counts[static_cast<std::size_t>(c * bins + v)];
      for (int v = 0; v < bins; ++v) counts[static_cast<std::size_t>(c * bins + v)] /= total;
    }
    network.set_cpt(f + 1, {class_var}, std::move(counts));
  }
  network.validate();
  return network;
}

bn::Evidence evidence_from_row(const bn::BayesianNetwork& network, const std::vector<int>& row) {
  require(static_cast<int>(row.size()) == network.num_variables() - 1,
          "evidence_from_row: feature count mismatch");
  bn::Evidence e = network.empty_evidence();
  for (std::size_t f = 0; f < row.size(); ++f) {
    e[f + 1] = row[f];  // variable 0 is the class
  }
  return e;
}

}  // namespace problp::datasets
