// Classification metrics for the benchmark pipelines: accuracy and confusion
// matrices for exact vs low-precision classifiers, plus decision-agreement —
// the application-level quantity the paper's intro argues ProbLP protects
// ("allowing an output error of 0.01 would only affect the decisions within
// the probability range of 0.59 and 0.61").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace problp::datasets {

struct ConfusionMatrix {
  int num_classes = 0;
  std::vector<std::size_t> counts;  ///< counts[truth * num_classes + predicted]

  explicit ConfusionMatrix(int classes)
      : num_classes(classes),
        counts(static_cast<std::size_t>(classes) * static_cast<std::size_t>(classes), 0) {
    require(classes >= 2, "ConfusionMatrix: need >= 2 classes");
  }

  void add(int truth, int predicted);
  std::size_t total() const;
  double accuracy() const;
  std::string to_string() const;
};

/// argmax with deterministic tie-breaking (lowest index wins).
int argmax(const std::vector<double>& scores);

/// Fraction of positions where the two prediction vectors agree.
double agreement(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace problp::datasets
