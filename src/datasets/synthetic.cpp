#include "datasets/synthetic.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace problp::datasets {

Dataset generate_synthetic(const SyntheticSpec& spec) {
  require(spec.num_classes >= 2, "generate_synthetic: need >= 2 classes");
  require(spec.num_features >= 1, "generate_synthetic: need >= 1 feature");
  require(spec.num_samples >= spec.num_classes, "generate_synthetic: too few samples");
  Rng rng(spec.seed);

  // Class priors: mildly imbalanced, like real activity data.
  const std::vector<double> priors = rng.dirichlet(spec.num_classes, 4.0);

  // Per-class Gaussians.
  std::vector<std::vector<double>> mean(static_cast<std::size_t>(spec.num_classes));
  std::vector<std::vector<double>> sigma(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    for (int f = 0; f < spec.num_features; ++f) {
      mean[static_cast<std::size_t>(c)].push_back(
          rng.uniform(-spec.mean_spread, spec.mean_spread));
      sigma[static_cast<std::size_t>(c)].push_back(rng.uniform(spec.sigma_lo, spec.sigma_hi));
    }
  }

  Dataset out;
  out.num_classes = spec.num_classes;
  out.features.reserve(static_cast<std::size_t>(spec.num_samples));
  out.labels.reserve(static_cast<std::size_t>(spec.num_samples));
  for (int i = 0; i < spec.num_samples; ++i) {
    const int c = rng.categorical(priors);
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(spec.num_features));
    for (int f = 0; f < spec.num_features; ++f) {
      row.push_back(rng.normal(mean[static_cast<std::size_t>(c)][static_cast<std::size_t>(f)],
                               sigma[static_cast<std::size_t>(c)][static_cast<std::size_t>(f)]));
    }
    out.features.push_back(std::move(row));
    out.labels.push_back(c);
  }
  return out;
}

SyntheticSpec har_like_spec() {
  SyntheticSpec spec;
  spec.name = "HAR";
  spec.num_classes = 6;    // the six HAR activities
  spec.num_features = 24;  // accelerometer/gyro summary statistics
  spec.num_samples = 3000;
  spec.seed = 0x4841;
  return spec;
}

SyntheticSpec unimib_like_spec() {
  SyntheticSpec spec;
  spec.name = "UNIMIB";
  spec.num_classes = 9;
  spec.num_features = 8;
  spec.num_samples = 2000;
  spec.seed = 0x554e;
  return spec;
}

SyntheticSpec uiwads_like_spec() {
  SyntheticSpec spec;
  spec.name = "UIWADS";
  spec.num_classes = 2;  // user verification: target vs impostor
  spec.num_features = 5;
  spec.num_samples = 1500;
  spec.seed = 0x5549;
  return spec;
}

Split split_dataset(const Dataset& data, double train_fraction, std::uint64_t seed) {
  require(train_fraction > 0.0 && train_fraction < 1.0, "split_dataset: bad fraction");
  require(data.size() >= 2, "split_dataset: dataset too small");
  std::vector<std::size_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  const auto n_train = static_cast<std::size_t>(train_fraction * static_cast<double>(data.size()));
  Split out;
  out.train.num_classes = out.test.num_classes = data.num_classes;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    Dataset& dst = (i < n_train) ? out.train : out.test;
    dst.features.push_back(data.features[perm[i]]);
    dst.labels.push_back(data.labels[perm[i]]);
  }
  return out;
}

}  // namespace problp::datasets
