#include "datasets/metrics.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace problp::datasets {

void ConfusionMatrix::add(int truth, int predicted) {
  require(truth >= 0 && truth < num_classes, "ConfusionMatrix::add: bad truth label");
  require(predicted >= 0 && predicted < num_classes, "ConfusionMatrix::add: bad prediction");
  ++counts[static_cast<std::size_t>(truth) * static_cast<std::size_t>(num_classes) +
           static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t n = 0;
  for (std::size_t c : counts) n += c;
  return n;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes; ++c) {
    correct += counts[static_cast<std::size_t>(c) * static_cast<std::size_t>(num_classes) +
                      static_cast<std::size_t>(c)];
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (int p = 0; p < num_classes; ++p) os << str_format("%8d", p);
  os << "\n";
  for (int t = 0; t < num_classes; ++t) {
    os << str_format("%-10d", t);
    for (int p = 0; p < num_classes; ++p) {
      os << str_format("%8zu",
                       counts[static_cast<std::size_t>(t) * static_cast<std::size_t>(num_classes) +
                              static_cast<std::size_t>(p)]);
    }
    os << "\n";
  }
  os << str_format("accuracy: %.4f over %zu samples\n", accuracy(), total());
  return os.str();
}

int argmax(const std::vector<double>& scores) {
  require(!scores.empty(), "argmax: empty scores");
  int best = 0;
  for (int i = 1; i < static_cast<int>(scores.size()); ++i) {
    if (scores[static_cast<std::size_t>(i)] > scores[static_cast<std::size_t>(best)]) best = i;
  }
  return best;
}

double agreement(const std::vector<int>& a, const std::vector<int>& b) {
  require(a.size() == b.size() && !a.empty(), "agreement: size mismatch or empty");
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]);
  return static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace problp::datasets
