// The paper's four evaluation benchmarks, assembled end-to-end (§4):
//
//   HAR / UNIMIB / UIWADS — synthesise sensor data, 60/40 split, equal-width
//   discretise (fit on train), learn Naive Bayes, compile the NB arithmetic
//   circuit; test evidence = discretised test rows (all features observed,
//   class queried).
//
//   ALARM — build the network, compile with min-fill variable elimination;
//   test evidence = 1000 ancestral samples restricted to the BN's leaf
//   variables, query = a root variable (the paper: "the leaf nodes of the BN
//   were used as evidence nodes e and one of the root nodes as a query node
//   q").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ac/circuit.hpp"
#include "bn/network.hpp"

namespace problp::datasets {

struct Benchmark {
  std::string name;
  bn::BayesianNetwork network;
  ac::Circuit circuit;  ///< n-ary AC over the network's variables
  int query_var = -1;   ///< the q of Pr(q | e)
  std::vector<bn::Evidence> test_evidence;
};

Benchmark make_har_benchmark(std::uint64_t seed = 1, int bins = 4);
Benchmark make_unimib_benchmark(std::uint64_t seed = 1, int bins = 3);
Benchmark make_uiwads_benchmark(std::uint64_t seed = 1, int bins = 3);
Benchmark make_alarm_benchmark(std::uint64_t seed = 1, int num_test_samples = 1000);

/// All four, in the paper's Table-2 order.
std::vector<Benchmark> make_all_benchmarks(std::uint64_t seed = 1);

}  // namespace problp::datasets
