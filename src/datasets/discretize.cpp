#include "datasets/discretize.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace problp::datasets {

EqualWidthDiscretizer::EqualWidthDiscretizer(const Dataset& train, int bins) : bins_(bins) {
  require(bins >= 2, "EqualWidthDiscretizer: need >= 2 bins");
  require(!train.features.empty(), "EqualWidthDiscretizer: empty training set");
  const int nf = train.num_features();
  lo_.assign(static_cast<std::size_t>(nf), std::numeric_limits<double>::infinity());
  std::vector<double> hi(static_cast<std::size_t>(nf),
                         -std::numeric_limits<double>::infinity());
  for (const auto& row : train.features) {
    require(static_cast<int>(row.size()) == nf, "EqualWidthDiscretizer: ragged dataset");
    for (int f = 0; f < nf; ++f) {
      lo_[static_cast<std::size_t>(f)] = std::min(lo_[static_cast<std::size_t>(f)], row[static_cast<std::size_t>(f)]);
      hi[static_cast<std::size_t>(f)] = std::max(hi[static_cast<std::size_t>(f)], row[static_cast<std::size_t>(f)]);
    }
  }
  width_.resize(static_cast<std::size_t>(nf));
  for (int f = 0; f < nf; ++f) {
    const double span = hi[static_cast<std::size_t>(f)] - lo_[static_cast<std::size_t>(f)];
    width_[static_cast<std::size_t>(f)] =
        std::max(span / bins_, 1e-12);  // constant features collapse into bin 0
  }
}

int EqualWidthDiscretizer::transform_value(int f, double value) const {
  require(f >= 0 && f < num_features(), "transform_value: bad feature index");
  const double rel = (value - lo_[static_cast<std::size_t>(f)]) / width_[static_cast<std::size_t>(f)];
  const int bin = static_cast<int>(rel);
  return std::clamp(bin, 0, bins_ - 1);
}

std::vector<int> EqualWidthDiscretizer::transform(const std::vector<double>& sample) const {
  require(static_cast<int>(sample.size()) == num_features(), "transform: arity mismatch");
  std::vector<int> out;
  out.reserve(sample.size());
  for (int f = 0; f < num_features(); ++f) {
    out.push_back(transform_value(f, sample[static_cast<std::size_t>(f)]));
  }
  return out;
}

std::vector<std::vector<int>> EqualWidthDiscretizer::transform_all(const Dataset& data) const {
  std::vector<std::vector<int>> out;
  out.reserve(data.features.size());
  for (const auto& row : data.features) out.push_back(transform(row));
  return out;
}

}  // namespace problp::datasets
