#include "datasets/benchmark_suite.hpp"

#include "bn/alarm.hpp"
#include "bn/sampling.hpp"
#include "compile/naive_bayes_compiler.hpp"
#include "compile/ve_compiler.hpp"
#include "datasets/naive_bayes.hpp"

namespace problp::datasets {

namespace {

Benchmark make_nb_benchmark(const SyntheticSpec& spec, std::uint64_t seed, int bins) {
  SyntheticSpec seeded = spec;
  seeded.seed ^= seed * 0x9e3779b97f4a7c15ull;
  const Dataset data = generate_synthetic(seeded);
  const Split split = split_dataset(data, 0.6, seeded.seed + 1);  // the paper's 60/40
  const EqualWidthDiscretizer disc(split.train, bins);

  bn::BayesianNetwork network = learn_naive_bayes(
      disc.transform_all(split.train), split.train.labels, data.num_classes, bins);
  ac::Circuit circuit = compile::compile_naive_bayes(network, /*class_var=*/0);

  Benchmark out{spec.name, std::move(network), std::move(circuit), /*query_var=*/0, {}};
  for (const auto& row : disc.transform_all(split.test)) {
    out.test_evidence.push_back(evidence_from_row(out.network, row));
  }
  return out;
}

}  // namespace

Benchmark make_har_benchmark(std::uint64_t seed, int bins) {
  return make_nb_benchmark(har_like_spec(), seed, bins);
}

Benchmark make_unimib_benchmark(std::uint64_t seed, int bins) {
  return make_nb_benchmark(unimib_like_spec(), seed, bins);
}

Benchmark make_uiwads_benchmark(std::uint64_t seed, int bins) {
  return make_nb_benchmark(uiwads_like_spec(), seed, bins);
}

Benchmark make_alarm_benchmark(std::uint64_t seed, int num_test_samples) {
  bn::BayesianNetwork network = bn::make_alarm_network(1989 + seed);
  ac::Circuit circuit = compile::compile_network(network);

  // Evidence variables: the DAG's leaves (no children); query: a root.
  std::vector<int> leaves;
  int root_var = -1;
  for (int v = 0; v < network.num_variables(); ++v) {
    if (network.children(v).empty()) leaves.push_back(v);
    if (network.parents(v).empty() && root_var < 0) root_var = v;
  }
  require(!leaves.empty() && root_var >= 0, "alarm benchmark: degenerate structure");

  Benchmark out{"Alarm", std::move(network), std::move(circuit), root_var, {}};
  Rng rng(seed * 7919 + 13);
  for (const auto& sample : bn::sample_dataset(out.network, num_test_samples, rng)) {
    out.test_evidence.push_back(bn::evidence_from_assignment(out.network, sample, leaves));
  }
  return out;
}

std::vector<Benchmark> make_all_benchmarks(std::uint64_t seed) {
  std::vector<Benchmark> out;
  out.push_back(make_har_benchmark(seed));
  out.push_back(make_unimib_benchmark(seed));
  out.push_back(make_uiwads_benchmark(seed));
  out.push_back(make_alarm_benchmark(seed));
  return out;
}

}  // namespace problp::datasets
