// Equal-width feature discretisation, fit on training data only — the
// standard front-end that turns continuous sensor features into the
// categorical variables a discrete Naive Bayes network expects.
#pragma once

#include <vector>

#include "datasets/synthetic.hpp"

namespace problp::datasets {

class EqualWidthDiscretizer {
 public:
  /// Learns per-feature [min, max] ranges from `train`; each feature gets
  /// `bins` equal-width bins.  Values outside the training range clamp to
  /// the edge bins (exactly what an embedded pipeline would do).
  EqualWidthDiscretizer(const Dataset& train, int bins);

  int bins() const { return bins_; }
  int num_features() const { return static_cast<int>(lo_.size()); }

  /// Bin index of one value of feature `f`, in [0, bins).
  int transform_value(int f, double value) const;

  /// Discretises a full sample.
  std::vector<int> transform(const std::vector<double>& sample) const;

  /// Discretises a whole dataset into categorical rows.
  std::vector<std::vector<int>> transform_all(const Dataset& data) const;

 private:
  int bins_;
  std::vector<double> lo_;
  std::vector<double> width_;  ///< per-feature bin width (>= epsilon)
};

}  // namespace problp::datasets
