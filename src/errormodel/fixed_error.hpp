// Fixed-point error propagation (paper §3.1.1, eqs. 2–5).
//
// For a circuit evaluated in fixed point with F fraction bits, every node's
// absolute error |~f - f| is bounded by a constant propagated leaf-to-root:
//
//   indicator leaf  Δ = 0                      (0 and 1 are on the grid)
//   parameter leaf  Δ = 2^-(F+1)               (one round-to-nearest, eq. 2)
//   adder           Δ = Δa + Δb                (exact in fixed point, eq. 3)
//   multiplier      Δ = a_max·Δb + b_max·Δa + Δa·Δb + 2^-(F+1)   (eq. 5)
//   max (MPE)       Δ = max(Δa, Δb)            (selects one of its inputs)
//
// a_max/b_max come from the max-value analysis (§3.1.4), which is what keeps
// eq. 5 bounded.  The propagation requires a *binary* circuit so the
// association order matches the generated hardware exactly.
//
// Validity precondition: no overflow — guaranteed by choosing I from the max
// analysis (bitwidth_search.hpp) and checked at runtime by the emulator's
// overflow flag.
#pragma once

#include <vector>

#include "ac/circuit.hpp"
#include "lowprec/format.hpp"

namespace problp::errormodel {

struct FixedErrorOptions {
  lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven;
  /// When true, leaves whose value lies exactly on the fixed-point grid
  /// contribute zero quantisation error (a sound tightening the paper does
  /// not apply; off by default for faithfulness).
  bool tighten_exact_leaves = false;
};

struct FixedErrorAnalysis {
  std::vector<double> node_bound;  ///< per-node absolute error bound
  double root_bound = 0.0;
};

/// Propagates eqs. 2–5 over `circuit` (must be binary; binarize() first).
/// `max_values` must come from ac::max_value_analysis on the same circuit.
FixedErrorAnalysis propagate_fixed_error(const ac::Circuit& circuit,
                                         const lowprec::FixedFormat& format,
                                         const std::vector<double>& max_values,
                                         const FixedErrorOptions& options = {});

}  // namespace problp::errormodel
