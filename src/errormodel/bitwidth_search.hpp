// Bit-width selection (paper §3.3 + §3.1.4).
//
// "ProbLP evaluates the bounds starting with 2 fraction bits and 2 mantissa
// bits, and increments them until the error-requirement is satisfied.  Then,
// it estimates the least number of integer and exponent bits required by the
// min and max analysis."
//
// Fixed point: for each candidate F, propagate the fixed error bound; once
// the query bound meets the tolerance, size I so that no node value — even
// inflated by its own error bound — can overflow: 2^I >= max_i(maxv_i + Δ_i).
//
// Float: the counter propagation is format-independent, so the search over M
// is a pure formula sweep; E is then sized so every node value, inflated or
// deflated by the worst-case relative factor, stays within the normal range
// (no overflow, no underflow).
#pragma once

#include "errormodel/query_bounds.hpp"

namespace problp::errormodel {

struct SearchOptions {
  int min_fraction_bits = 2;
  int max_fraction_bits = 60;   ///< beyond this, report infeasible ("> max" in Table 2)
  int min_mantissa_bits = 2;
  int max_mantissa_bits = 52;
  FixedErrorOptions fixed_options;
  lowprec::RoundingMode float_rounding = lowprec::RoundingMode::kNearestEven;
};

struct FixedPlan {
  bool feasible = false;
  lowprec::FixedFormat format;    ///< meaningful only when feasible
  double predicted_bound = 0.0;   ///< query bound at the chosen format
  int attempted_max_fraction_bits = 0;  ///< for "1, >64 (-)"-style reporting
};

struct FloatPlan {
  bool feasible = false;
  lowprec::FloatFormat format;
  double predicted_bound = 0.0;
  int attempted_max_mantissa_bits = 0;
};

/// Smallest fixed-point representation meeting `spec` on `binary_circuit`.
FixedPlan search_fixed_representation(const ac::Circuit& binary_circuit,
                                      const CircuitErrorModel& model, const QuerySpec& spec,
                                      const SearchOptions& options = {});

/// Smallest floating-point representation meeting `spec`.
FloatPlan search_float_representation(const CircuitErrorModel& model, const QuerySpec& spec,
                                      const SearchOptions& options = {});

}  // namespace problp::errormodel
