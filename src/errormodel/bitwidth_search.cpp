#include "errormodel/bitwidth_search.hpp"

#include <algorithm>
#include <cmath>

#include "util/int_math.hpp"

namespace problp::errormodel {

using lowprec::FixedFormat;
using lowprec::FloatFormat;

FixedPlan search_fixed_representation(const ac::Circuit& binary_circuit,
                                      const CircuitErrorModel& model, const QuerySpec& spec,
                                      const SearchOptions& options) {
  FixedPlan plan;
  plan.attempted_max_fraction_bits = options.max_fraction_bits;
  for (int f = options.min_fraction_bits; f <= options.max_fraction_bits; ++f) {
    // I does not influence the error bound (it only prevents overflow), so
    // probe with a placeholder and size I afterwards.
    FixedFormat probe{1, f};
    const double bound =
        fixed_query_bound(binary_circuit, model, spec, probe, options.fixed_options);
    if (!(bound <= spec.tolerance)) continue;

    // Size I: every node value, inflated by its own error bound, must fit.
    const FixedErrorAnalysis fx = propagate_fixed_error(
        binary_circuit, probe, model.range.max_value, options.fixed_options);
    double need = 0.0;
    for (std::size_t i = 0; i < fx.node_bound.size(); ++i) {
      need = std::max(need, model.range.max_value[i] + fx.node_bound[i]);
    }
    const int integer_bits = std::max(1, ceil_log2_double(need + pow2(-f)));
    FixedFormat fmt{integer_bits, f};
    if (fmt.total_bits() > 62) continue;  // not emulable; wider F won't shrink I
    plan.feasible = true;
    plan.format = fmt;
    plan.predicted_bound = bound;
    return plan;
  }
  return plan;
}

FloatPlan search_float_representation(const CircuitErrorModel& model, const QuerySpec& spec,
                                      const SearchOptions& options) {
  FloatPlan plan;
  plan.attempted_max_mantissa_bits = options.max_mantissa_bits;
  for (int m = options.min_mantissa_bits; m <= options.max_mantissa_bits; ++m) {
    FloatFormat probe{8, m};
    const double bound = float_query_bound(model, spec, probe, options.float_rounding);
    if (!(bound <= spec.tolerance)) continue;

    // Per-node worst-case relative excursion: any node's counter is at most
    // the maximum counter in the circuit.  Computed values lie within
    // [exact*(1-eps)^cmax, exact*(1+eps)^cmax]; note the deflation side must
    // use (1-eps)^cmax — which is always positive — rather than
    // 1-((1+eps)^cmax - 1), which goes negative for coarse mantissas and
    // would silently drop the underflow constraint.
    std::int64_t cmax = 0;
    for (std::int64_t c : model.float_counts.node_count) cmax = std::max(cmax, c);
    const double eps = (options.float_rounding == lowprec::RoundingMode::kNearestEven)
                           ? probe.epsilon()
                           : 2.0 * probe.epsilon();
    const double inflation = 1.0 + float_relative_bound(cmax, probe, options.float_rounding);
    const double deflation = std::exp(static_cast<double>(cmax) * std::log1p(-eps));

    double max_needed = 0.0;
    double min_needed = 0.0;  // 0 means "no positive value to protect"
    for (std::size_t i = 0; i < model.range.max_value.size(); ++i) {
      max_needed = std::max(max_needed, model.range.max_value[i] * inflation);
      const double mn = model.range.min_value[i];
      if (mn > 0.0) {
        const double lo = mn * deflation;
        if (lo > 0.0 && (min_needed == 0.0 || lo < min_needed)) min_needed = lo;
      }
    }

    for (int e = 2; e <= 28; ++e) {
      FloatFormat fmt{e, m};
      const bool max_ok = max_needed <= fmt.max_value();
      const bool min_ok = min_needed == 0.0 || fmt.min_normal() <= min_needed;
      if (max_ok && min_ok) {
        plan.feasible = true;
        plan.format = fmt;
        plan.predicted_bound = float_query_bound(model, spec, fmt, options.float_rounding);
        return plan;
      }
    }
    return plan;  // no exponent width can cover the range (practically unreachable)
  }
  return plan;
}

}  // namespace problp::errormodel
