#include "errormodel/float_error.hpp"

#include <algorithm>
#include <cmath>

namespace problp::errormodel {

using ac::Circuit;
using ac::Node;
using ac::NodeId;
using ac::NodeKind;

FloatErrorAnalysis propagate_float_error(const Circuit& circuit) {
  require(circuit.root() != ac::kInvalidNode, "propagate_float_error: no root");
  require(circuit.is_binary(), "propagate_float_error: circuit must be binary");
  FloatErrorAnalysis out;
  out.node_count.resize(circuit.num_nodes(), 0);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    std::int64_t count = 0;
    switch (n.kind) {
      case NodeKind::kIndicator:
        count = 0;
        break;
      case NodeKind::kParameter:
        count = 1;
        break;
      case NodeKind::kSum: {
        for (NodeId c : n.children) {
          count = std::max(count, out.node_count[static_cast<std::size_t>(c)]);
        }
        count += 1;
        break;
      }
      case NodeKind::kProd: {
        count = 1;
        for (NodeId c : n.children) count += out.node_count[static_cast<std::size_t>(c)];
        break;
      }
      case NodeKind::kMax: {
        for (NodeId c : n.children) {
          count = std::max(count, out.node_count[static_cast<std::size_t>(c)]);
        }
        break;
      }
    }
    out.node_count[i] = count;
  }
  out.root_count = out.node_count[static_cast<std::size_t>(circuit.root())];
  return out;
}

double float_relative_bound(std::int64_t count, const lowprec::FloatFormat& format,
                            lowprec::RoundingMode rounding) {
  format.validate();
  require(count >= 0, "float_relative_bound: negative count");
  const double eps = (rounding == lowprec::RoundingMode::kNearestEven)
                         ? format.epsilon()
                         : 2.0 * format.epsilon();
  // (1+eps)^count - 1, computed stably for large counts / tiny eps.
  return std::expm1(static_cast<double>(count) * std::log1p(eps));
}

}  // namespace problp::errormodel
