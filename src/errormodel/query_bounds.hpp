// Query-level error bounds (paper §3.2).
//
// The per-evaluation bounds of §3.1 cover one upward pass.  Queries compose
// passes:
//
//  * Marginal probability and MPE use a single pass — the §3.1 bounds apply
//    directly (§3.2.1).
//  * Conditional probability Pr(q|e) is the ratio of two passes (§3.2.2):
//      - fixed point: worst case puts the full absolute error Δ in the
//        numerator, giving Δ/Pr(e) <= Δ / min⁺Pr(e) (eq. 14), with
//        min⁺Pr(e) from the min-value analysis;
//      - fixed point + relative tolerance: no usable bound exists (the
//        denominator of eq. 15 can be arbitrarily small) — ProbLP always
//        selects float here, so the bound is +infinity;
//      - float: both passes carry (1±ε)^c factors; the ratio is bounded by
//        (1+ε)^C/(1-ε)^C - 1 (slightly more conservative than the paper's
//        eq. 17 simplification, and sound for both tails).
//
// All bounds are expressed as: given a format, what is the worst-case
// absolute/relative error of the query result.
#pragma once

#include "ac/analysis.hpp"
#include "errormodel/fixed_error.hpp"
#include "errormodel/float_error.hpp"

namespace problp::errormodel {

enum class QueryType {
  kMarginal,     ///< Pr(q, e): one AC evaluation
  kConditional,  ///< Pr(q | e): ratio of two AC evaluations
  kMpe,          ///< max_x Pr(x, e): one evaluation of the max-circuit
};

enum class ToleranceKind { kAbsolute, kRelative };

const char* to_string(QueryType q);
const char* to_string(ToleranceKind t);

/// What the user asks ProbLP for: "keep the <kind> error of <query> within
/// <tolerance> for every possible input" (§3, "Error tolerance").
struct QuerySpec {
  QueryType query = QueryType::kMarginal;
  ToleranceKind kind = ToleranceKind::kAbsolute;
  double tolerance = 0.01;
};

/// Format-independent facts about one circuit, computed once and reused
/// across the bit-width search.  For MPE queries, build from the
/// max-circuit (ac::to_max_circuit).
struct CircuitErrorModel {
  ac::RangeAnalysis range;
  FloatErrorAnalysis float_counts;

  static CircuitErrorModel build(const ac::Circuit& binary_circuit);
};

/// Worst-case query error in fixed point; +infinity when the combination is
/// unsupported (conditional + relative).
double fixed_query_bound(const ac::Circuit& binary_circuit, const CircuitErrorModel& model,
                         const QuerySpec& spec, const lowprec::FixedFormat& format,
                         const FixedErrorOptions& options = {});

/// Worst-case query error in floating point.
double float_query_bound(const CircuitErrorModel& model, const QuerySpec& spec,
                         const lowprec::FloatFormat& format,
                         lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

}  // namespace problp::errormodel
