// Floating-point error propagation (paper §3.1.2, eqs. 6–12).
//
// With ε = 2^-(M+1), every value carries an accumulated factor (1 ± ε)^c.
// The per-node counter c propagates structurally — it depends only on the
// circuit, not on M, so one propagation serves every candidate mantissa
// width:
//
//   indicator leaf  c = 0        (0 and 1 are exact in any float format)
//   parameter leaf  c = 1        (one conversion rounding, eq. 6)
//   adder           c = max(ca, cb) + 1                       (eq. 10)
//   multiplier      c = ca + cb + 1                           (eq. 12)
//   max (MPE)       c = max(ca, cb)   (comparison selects an input, exact)
//
// The root counter C then yields the relative bound (1+ε)^C - 1 on a single
// AC evaluation.
//
// Validity precondition: no overflow/underflow — guaranteed by choosing E
// from the max/min analysis (§3.1.4) and checked by the emulator's flags.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/circuit.hpp"
#include "lowprec/format.hpp"

namespace problp::errormodel {

struct FloatErrorAnalysis {
  std::vector<std::int64_t> node_count;  ///< per-node (1±ε) factor count
  std::int64_t root_count = 0;
};

/// Propagates the counters over `circuit` (must be binary).
FloatErrorAnalysis propagate_float_error(const ac::Circuit& circuit);

/// (1+ε)^count - 1, the relative-error bound for one AC evaluation;
/// ε = 2^-(M+1) for round-to-nearest, 2^-M for truncation.
double float_relative_bound(std::int64_t count, const lowprec::FloatFormat& format,
                            lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

}  // namespace problp::errormodel
