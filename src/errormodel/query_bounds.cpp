#include "errormodel/query_bounds.hpp"

#include <cmath>
#include <limits>

namespace problp::errormodel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const char* to_string(QueryType q) {
  switch (q) {
    case QueryType::kMarginal: return "marginal";
    case QueryType::kConditional: return "conditional";
    case QueryType::kMpe: return "mpe";
  }
  return "?";
}

const char* to_string(ToleranceKind t) {
  return t == ToleranceKind::kAbsolute ? "absolute" : "relative";
}

CircuitErrorModel CircuitErrorModel::build(const ac::Circuit& binary_circuit) {
  require(binary_circuit.is_binary(), "CircuitErrorModel: circuit must be binary");
  CircuitErrorModel model;
  model.range = ac::analyze_range(binary_circuit);
  model.float_counts = propagate_float_error(binary_circuit);
  return model;
}

double fixed_query_bound(const ac::Circuit& binary_circuit, const CircuitErrorModel& model,
                         const QuerySpec& spec, const lowprec::FixedFormat& format,
                         const FixedErrorOptions& options) {
  const FixedErrorAnalysis fx =
      propagate_fixed_error(binary_circuit, format, model.range.max_value, options);
  const double delta = fx.root_bound;
  switch (spec.query) {
    case QueryType::kMarginal:
    case QueryType::kMpe:
      if (spec.kind == ToleranceKind::kAbsolute) return delta;
      // Relative: the exact output can be as small as the min analysis
      // allows; Δ / min⁺ bounds the relative error of any non-zero output.
      return model.range.root_min > 0.0 ? delta / model.range.root_min : kInf;
    case QueryType::kConditional:
      if (spec.kind == ToleranceKind::kRelative) return kInf;  // §3.2.2: unsupported
      // eq. 14: Δ1max / min Pr(e).
      return model.range.root_min > 0.0 ? delta / model.range.root_min : kInf;
  }
  return kInf;
}

double float_query_bound(const CircuitErrorModel& model, const QuerySpec& spec,
                         const lowprec::FloatFormat& format,
                         lowprec::RoundingMode rounding) {
  const std::int64_t c = model.float_counts.root_count;
  const double eps = (rounding == lowprec::RoundingMode::kNearestEven)
                         ? format.epsilon()
                         : 2.0 * format.epsilon();
  // One evaluation: (1+eps)^C - 1.  Sound for both tails because
  // 1 - (1-eps)^C <= (1+eps)^C - 1.
  const double single = float_relative_bound(c, format, rounding);
  // Ratio of two evaluations: (1+eps)^C / (1-eps)^C - 1.
  const double ratio =
      std::expm1(static_cast<double>(c) * (std::log1p(eps) - std::log1p(-eps)));
  switch (spec.query) {
    case QueryType::kMarginal:
    case QueryType::kMpe:
      if (spec.kind == ToleranceKind::kRelative) return single;
      // Absolute: |~f - f| <= f * single <= root_max * single.
      return model.range.root_max * single;
    case QueryType::kConditional:
      // Both tolerances use the ratio bound; for absolute tolerance note
      // Pr(q|e) <= 1, so absolute error <= relative error bound.
      return ratio;
  }
  return kInf;
}

}  // namespace problp::errormodel
