#include "errormodel/fixed_error.hpp"

#include <algorithm>
#include <cmath>

namespace problp::errormodel {

using ac::Circuit;
using ac::Node;
using ac::NodeId;
using ac::NodeKind;
using lowprec::FixedFormat;
using lowprec::RoundingMode;

FixedErrorAnalysis propagate_fixed_error(const Circuit& circuit, const FixedFormat& format,
                                         const std::vector<double>& max_values,
                                         const FixedErrorOptions& options) {
  format.validate();
  require(circuit.root() != ac::kInvalidNode, "propagate_fixed_error: no root");
  require(circuit.is_binary(), "propagate_fixed_error: circuit must be binary");
  require(max_values.size() == circuit.num_nodes(),
          "propagate_fixed_error: max_values size mismatch");

  // One rounding's worth of error: half a ulp for round-to-nearest, a full
  // ulp for truncation.
  const double q = (options.rounding == RoundingMode::kNearestEven)
                       ? format.quantization_bound()
                       : format.resolution();

  const auto on_grid = [&](double v) {
    const double scaled = std::ldexp(v, format.fraction_bits);
    return scaled == std::floor(scaled) && v <= format.max_value();
  };

  FixedErrorAnalysis out;
  out.node_bound.resize(circuit.num_nodes(), 0.0);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    double bound = 0.0;
    switch (n.kind) {
      case NodeKind::kIndicator:
        bound = 0.0;  // 0 and 1 are exactly representable (I >= 1)
        break;
      case NodeKind::kParameter:
        bound = (options.tighten_exact_leaves && on_grid(n.value)) ? 0.0 : q;
        break;
      case NodeKind::kSum: {
        for (NodeId c : n.children) bound += out.node_bound[static_cast<std::size_t>(c)];
        break;
      }
      case NodeKind::kProd: {
        const auto a = static_cast<std::size_t>(n.children[0]);
        const auto b = static_cast<std::size_t>(n.children[1]);
        bound = max_values[a] * out.node_bound[b] + max_values[b] * out.node_bound[a] +
                out.node_bound[a] * out.node_bound[b] + q;
        break;
      }
      case NodeKind::kMax: {
        for (NodeId c : n.children) {
          bound = std::max(bound, out.node_bound[static_cast<std::size_t>(c)]);
        }
        break;
      }
    }
    out.node_bound[i] = bound;
  }
  out.root_bound = out.node_bound[static_cast<std::size_t>(circuit.root())];
  return out;
}

}  // namespace problp::errormodel
