#include "util/fault_injection.hpp"

#include <cstdlib>

namespace problp::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  // PROBLP_FAULTS="site[=nth][,site[=nth]...]" — malformed entries are
  // ignored rather than fatal: the injector must never take the process
  // down on its own, only through an armed site's real error path.
  const char* env = std::getenv("PROBLP_FAULTS");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    std::uint64_t nth = 1;
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      char* parse_end = nullptr;
      const unsigned long long v = std::strtoull(item.c_str() + eq + 1, &parse_end, 10);
      if (parse_end == item.c_str() + eq + 1 || *parse_end != '\0' || v == 0) continue;
      nth = static_cast<std::uint64_t>(v);
      item.resize(eq);
    }
    if (item.empty()) continue;
    Site& site = sites_[item];
    site.arm_at = nth;
    site.hits = 0;
    site.fired = false;
  }
  recompute_enabled_locked();
}

void FaultInjector::arm(const std::string& site, std::uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[site];
  s.arm_at = nth == 0 ? 1 : nth;
  s.hits = 0;
  s.fired = false;
  recompute_enabled_locked();
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.arm_at = 0;
  recompute_enabled_locked();
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  recompute_enabled_locked();
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

bool FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() && it->second.fired;
}

bool FaultInjector::should_fire(const char* site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;  // only armed (or counted) sites track hits
  Site& s = it->second;
  ++s.hits;
  if (s.arm_at != 0 && !s.fired && s.hits >= s.arm_at) {
    s.fired = true;
    return true;
  }
  return false;
}

void FaultInjector::recompute_enabled_locked() {
  bool any = false;
  for (const auto& [name, site] : sites_) {
    if (site.arm_at != 0 && !site.fired) any = true;
  }
  // Sites stay countable (hits()) after firing, but the fast path can go
  // back to the one-load guard only when nothing armed remains.  Keep the
  // injector enabled while any site entry exists so hit counts of armed-
  // with-huge-nth "tracer" sites keep accumulating.
  any = any || !sites_.empty();
  enabled_.store(any, std::memory_order_relaxed);
}

}  // namespace problp::util
