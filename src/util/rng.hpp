// Seeded random-number utilities.
//
// Everything stochastic in the repository (CPT generation, dataset synthesis,
// ancestral sampling, random-circuit property tests) draws from this wrapper
// so every experiment is reproducible from a single integer seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace problp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Index sampled from an (unnormalised) non-negative weight vector.
  int categorical(const std::vector<double>& weights);

  /// A point on the probability simplex, Dirichlet(alpha, ..., alpha).
  /// Larger alpha gives flatter distributions; alpha < 1 gives skewed ones.
  std::vector<double> dirichlet(int dimension, double alpha);

  /// Bernoulli draw.
  bool coin(double p_true = 0.5);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace problp
