// Injectable monotonic clock for deadline-driven code.
//
// The serving layer (src/serve/) flushes batches on deadlines, expires
// requests past their per-request deadline, and times out blocked producers.
// Testing those paths against std::chrono::steady_clock means sleeping and
// hoping — the classic recipe for flaky timing tests.  Instead, every
// deadline consumer takes a `Clock`:
//
//   * SteadyClock  — the production clock: now() is steady_clock::now() and
//     wait_until() is condition_variable::wait_until.
//
//   * ManualClock  — the test clock: time only moves when the test calls
//     advance(), and wait_until() blocks with *no real timeout* until
//     someone notifies the condition variable — which advance() does for
//     every registered waiter.  A deadline test becomes: submit, advance
//     past the deadline, assert the typed timeout; no sleeps anywhere.
//
// Lost-wakeup safety: wait_until() registers the (cv, mutex) pair while the
// caller still holds its lock, and advance() acquires each registered
// waiter's mutex before notifying.  A waiter therefore either registers
// before advance() can acquire the mutex (and is woken from cv.wait), or
// registers after advance() released it (and re-reads the already-advanced
// now()).  Either way no advance is missed.
//
// Contract for callers: wait_until() may return spuriously (both clocks);
// always re-check the predicate and now() in a loop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace problp::util {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  /// The current time in this clock's domain.
  virtual TimePoint now() const = 0;

  /// Blocks on `cv` (releasing `lock`) until notified or — for real clocks —
  /// `deadline` passes in this clock's domain.  TimePoint::max() means "no
  /// deadline".  May return spuriously; callers loop on their predicate.
  virtual void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                          TimePoint deadline) = 0;

  /// The process-wide production clock (steady_clock semantics).
  static const std::shared_ptr<Clock>& steady();
};

/// Production clock: real monotonic time.
class SteadyClock final : public Clock {
 public:
  TimePoint now() const override { return std::chrono::steady_clock::now(); }
  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  TimePoint deadline) override;
};

/// Test clock: time is a counter the test advances by hand.  Deterministic —
/// a waiter blocked in wait_until() is woken by advance() (or any direct
/// notify), never by wall-clock time.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint now() const override;
  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  TimePoint deadline) override;

  /// Moves time forward and wakes every thread currently blocked in
  /// wait_until() so it can re-check its deadline.  Must not be called
  /// while holding a mutex some waiter waits on (advance acquires it).
  void advance(Duration d);

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mutex;
  };

  mutable std::mutex mutex_;
  TimePoint now_;
  std::vector<Waiter> waiters_;
};

}  // namespace problp::util
