#include "util/rng.hpp"

#include "util/error.hpp"

namespace problp {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::categorical(const std::vector<double>& weights) {
  require(!weights.empty(), "categorical: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  require(total > 0.0, "categorical: all weights zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;  // guard against FP round-off
}

std::vector<double> Rng::dirichlet(int dimension, double alpha) {
  require(dimension >= 1, "dirichlet: dimension must be >= 1");
  require(alpha > 0.0, "dirichlet: alpha must be positive");
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> out(static_cast<std::size_t>(dimension));
  double total = 0.0;
  for (double& v : out) {
    v = gamma(engine_);
    // Gamma draws can round to zero for small alpha; keep values positive so
    // CPT rows never contain an exact 0 (the min-value analysis in
    // ac/analysis.hpp is cleanest with strictly positive parameters).
    if (v < 1e-12) v = 1e-12;
    total += v;
  }
  for (double& v : out) v /= total;
  return out;
}

bool Rng::coin(double p_true) { return uniform() < p_true; }

}  // namespace problp
