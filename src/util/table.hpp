// Plain-text table writer used by the benchmark harnesses to print
// paper-style tables (Table 1, Table 2, Fig. 5 series) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace problp {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with single-space-padded, left-aligned columns and a rule under
  /// the header.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace problp
