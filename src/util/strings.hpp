// String helpers for the BIF parser, the Verilog emitter, and report
// formatting.  Deliberately minimal: just what the parsers/emitters need.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace problp {

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// printf-style helper returning std::string (format must be a literal
/// understood by vsnprintf).
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a double the way the paper's tables do: "5.9e-04"-style scientific
/// with `digits` significant decimals.
std::string sci(double v, int digits = 1);

/// Sanitises an arbitrary identifier into a legal Verilog identifier
/// ([A-Za-z_][A-Za-z0-9_]*); distinct inputs can collide, callers that need
/// uniqueness must add their own suffix.
std::string verilog_ident(std::string_view s);

}  // namespace problp
