// Error types shared across the ProbLP libraries.
//
// ProbLP reports contract violations (malformed networks, out-of-range
// formats, unsupported query/representation combinations) with exceptions
// derived from `problp::Error`, so callers can catch the whole family at the
// API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace problp {

/// Base class of every exception thrown by ProbLP libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, bad state).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Input text (BIF file, circuit file, ...) could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `what` when `cond` does not hold.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

}  // namespace problp
