// Small integer / bit-manipulation helpers used by the number-format
// emulation and the range analyses.  All helpers are constexpr-friendly and
// operate on unsigned 64/128-bit integers; 128-bit arithmetic is what lets the
// fixed-point and soft-float emulators hold exact double-width intermediate
// products before rounding.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace problp {

using u128 = unsigned __int128;

/// Index of the most significant set bit (0-based); requires v != 0.
constexpr int msb_index(u128 v) {
  int i = -1;
  while (v != 0) {
    v >>= 1;
    ++i;
  }
  return i;
}

/// Number of bits needed to represent v (0 needs 0 bits).
constexpr int bit_width_u128(u128 v) { return v == 0 ? 0 : msb_index(v) + 1; }

/// floor(log2(v)); requires v != 0.
constexpr int floor_log2_u64(std::uint64_t v) {
  return msb_index(static_cast<u128>(v));
}

/// ceil(log2(v)); requires v != 0.  ceil_log2(1) == 0.
constexpr int ceil_log2_u64(std::uint64_t v) {
  const int f = floor_log2_u64(v);
  return ((std::uint64_t{1} << f) == v) ? f : f + 1;
}

/// 2^n as double; n may be negative.
inline double pow2(int n) { return std::ldexp(1.0, n); }

/// floor(log2(x)) for a positive finite double.
inline int floor_log2_double(double x) {
  require(x > 0.0 && std::isfinite(x), "floor_log2_double: x must be positive finite");
  int e = 0;
  (void)std::frexp(x, &e);  // x = m * 2^e with m in [0.5, 1)
  return e - 1;
}

/// Smallest integer e such that x <= 2^e, for a positive finite double.
inline int ceil_log2_double(double x) {
  const int f = floor_log2_double(x);
  return (pow2(f) == x) ? f : f + 1;
}

/// (1 << n) as u128; n in [0, 127].
constexpr u128 u128_pow2(int n) { return static_cast<u128>(1) << n; }

}  // namespace problp
