#include "util/clock.hpp"

#include <algorithm>

namespace problp::util {

const std::shared_ptr<Clock>& Clock::steady() {
  static const std::shared_ptr<Clock> clock = std::make_shared<SteadyClock>();
  return clock;
}

void SteadyClock::wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                             TimePoint deadline) {
  // wait_until with time_point::max() overflows in some libstdc++ versions;
  // "no deadline" waits for a notify outright.
  if (deadline == TimePoint::max()) {
    cv.wait(lock);
  } else {
    cv.wait_until(lock, deadline);
  }
}

Clock::TimePoint ManualClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void ManualClock::wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                             TimePoint deadline) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (now_ >= deadline) return;  // already expired: no wait
    waiters_.push_back({&cv, lock.mutex()});
  }
  // The caller still holds `lock` here, so advance() cannot slip its
  // notification between registration and the wait: it must acquire
  // lock.mutex() first, which only becomes possible once cv.wait() has
  // atomically released it (see the header's lost-wakeup note).
  cv.wait(lock);
  std::lock_guard<std::mutex> guard(mutex_);
  const auto it = std::find_if(waiters_.begin(), waiters_.end(),
                               [&](const Waiter& w) { return w.cv == &cv; });
  if (it != waiters_.end()) waiters_.erase(it);
}

void ManualClock::advance(Duration d) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += d;
    waiters = waiters_;
  }
  for (const Waiter& w : waiters) {
    // Acquire-and-release the waiter's mutex: after this, the waiter is
    // either blocked inside cv.wait (the notify below wakes it) or past its
    // registration's critical section entirely.
    { std::lock_guard<std::mutex> guard(*w.mutex); }
    w.cv->notify_all();
  }
}

}  // namespace problp::util
