// Deterministic, site-keyed fault injection for the serving runtime.
//
// Production failure paths (a truncated artifact, a load that throws under
// the registry lock, an exception escaping a batched worker thread) are
// exactly the paths no unit test reaches by accident.  This harness makes
// them reachable on demand: code under test declares named *sites* with
// `util::fault_point("artifact.checksum")`, and a test (or the
// PROBLP_FAULTS environment variable) arms a site to fire on its N-th hit.
// A fired site does not throw by itself — each call site implements its own
// failure (flip the checksum it just computed, pretend mmap returned
// MAP_FAILED, throw from the worker lambda), so the *real* error path runs,
// not a synthetic stand-in.
//
// Registered sites (see the call sites for exact semantics):
//
//   artifact.write        ArtifactWriter::write: the payload stream fails
//   artifact.mmap         MappedArtifact::open: mmap fails -> heap fallback
//   artifact.short_read   MappedArtifact::open: heap read comes up short
//   artifact.checksum     MappedArtifact::open: a section checksum flips
//   artifact.size_recheck MappedArtifact::open: file shrank after open
//   registry.load         ModelRegistry::get: the cold load throws
//   batch.worker          batched engines: a worker thread throws a foreign
//                         (non-problp) exception
//   serve.enqueue         serve::Server::submit: forces the queue-full
//                         rejection path (typed kRejectedQueueFull)
//   serve.flush           serve::Server batcher: batch dispatch fails; every
//                         member completes with a typed kError
//   serve.worker          serve::Server worker: evaluation throws mid-batch;
//                         the group completes kError, the worker survives
//
// Determinism: arming is per-site and single-shot ("fire on the nth hit"),
// hit counting is globally serialised, and nothing fires unless armed — the
// disabled fast path is one relaxed atomic load, so instrumented hot paths
// cost nothing in production.
//
// PROBLP_FAULTS="site[=nth][,site[=nth]...]" arms sites from the
// environment at first use (nth defaults to 1), so the CLI and benches can
// be driven into failure paths without recompiling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace problp::util {

class FaultInjector {
 public:
  /// The process-wide injector (sites are process-wide by nature: the code
  /// under test reaches them through free functions, not injected handles).
  static FaultInjector& instance();

  /// Arms `site` to fire on its `nth` hit from now (1-based, single-shot);
  /// resets the site's hit counter so tests compose.
  void arm(const std::string& site, std::uint64_t nth = 1);

  /// Disarms `site` (its hit/fired history is kept until reset()).
  void disarm(const std::string& site);

  /// Disarms every site and clears all counters.  Tests call this in
  /// teardown so no armed fault leaks into the next test.
  void reset();

  /// Hits `site` has taken since it was last armed (or reset).
  std::uint64_t hits(const std::string& site) const;

  /// Whether `site` has fired since it was last armed.
  bool fired(const std::string& site) const;

  /// Counts a hit at `site`; true exactly when the armed nth hit is reached.
  bool should_fire(const char* site);

  /// Cheap guard for the disabled case (no site armed, no PROBLP_FAULTS).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  FaultInjector();  ///< parses PROBLP_FAULTS

  struct Site {
    std::uint64_t arm_at = 0;  ///< 0 = not armed
    std::uint64_t hits = 0;
    bool fired = false;
  };

  void recompute_enabled_locked();

  mutable std::mutex mutex_;
  std::map<std::string, Site> sites_;
  std::atomic<bool> enabled_{false};
};

/// The per-site hook: true when the armed fault at `site` must fire now.
/// Disabled (the production default) this is one relaxed atomic load.
inline bool fault_point(const char* site) {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.enabled()) return false;
  return injector.should_fire(site);
}

}  // namespace problp::util
