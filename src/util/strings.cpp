#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace problp {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string sci(double v, int digits) {
  return str_format("%.*e", digits, v);
}

std::string verilog_ident(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 1);
  for (char c : s) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), 'n');
  }
  return out;
}

}  // namespace problp
