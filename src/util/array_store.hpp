// ArrayStore<T> — owned-or-borrowed flat array storage, the seam behind the
// zero-copy model artifact (runtime/artifact.hpp).
//
// The runtime structures the artifact persists (CircuitTape, TapeLayout,
// KernelSchedule, quantised leaf caches) are all flat arrays of trivially
// copyable words.  Compiled in-process they own their storage as today's
// std::vector; loaded from a mapped artifact the same arrays are *views*
// into read-only mapped pages — no parse, no copy, no per-element work.
// ArrayStore abstracts that ownership behind the subset of the vector API
// the sweeps and analyses actually use (data/size/operator[]/iteration), so
// one structure definition serves both paths.
//
// A view does not own the mapped pages: whoever constructs view-backed
// structures must keep the mapping alive for their lifetime (CompiledModel
// holds the mapping as its first member, so it outlives every view into
// it).  Copying a view copies the pointer, not the bytes — cheap, and safe
// under the same lifetime contract.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace problp::util {

template <class T>
class ArrayStore {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArrayStore views raw mapped bytes; T must be trivially copyable");

 public:
  using value_type = T;
  using const_iterator = const T*;

  ArrayStore() = default;
  /*implicit*/ ArrayStore(std::vector<T> owned) : owned_(std::move(owned)) {}

  /// Borrow [data, data + size) without owning it.  The caller guarantees
  /// the storage outlives every copy of this store.
  static ArrayStore view(const T* data, std::size_t size) {
    ArrayStore s;
    s.view_ = data;
    s.view_size_ = size;
    return s;
  }

  const T* data() const { return view_ != nullptr ? view_ : owned_.data(); }
  std::size_t size() const { return view_ != nullptr ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  bool is_view() const { return view_ != nullptr; }

  /// Owned copy of the contents (tests and mutating consumers).
  std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

 private:
  std::vector<T> owned_;
  const T* view_ = nullptr;  ///< non-null: borrowed storage of view_size_ elements
  std::size_t view_size_ = 0;
};

template <class T>
bool operator==(const ArrayStore<T>& a, const ArrayStore<T>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <class T>
bool operator==(const ArrayStore<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <class T>
bool operator==(const std::vector<T>& a, const ArrayStore<T>& b) {
  return b == a;
}

}  // namespace problp::util
