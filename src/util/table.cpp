#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace problp {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace problp
