// Operator-level energy models (paper Table 1).
//
// The paper synthesised adders and multipliers of varying widths in TSMC
// 65 nm at 1 V, extracted post-synthesis energy, and least-squares-fitted:
//
//   fixed-pt add   7.8  * N              fJ    (N = I + F datapath bits)
//   fixed-pt mult  1.9  * N^2 * log2(N)  fJ
//   float-pt add   44.74 * (M+1)         fJ    (M = mantissa bits)
//   float-pt mult  2.9  * (M+1)^2 * log2(M+1) fJ
//
// Float adders are dominated by alignment/normalisation shifters (hence the
// large linear coefficient); float multipliers only multiply the (M+1)-bit
// significands, so their cost tracks a fixed multiplier of that width.
//
// Two approximations of ours (documented, used only where the paper gives no
// number): MAX operators are costed as a comparator ≈ one fixed adder at the
// datapath width, and pipeline registers cost kRegisterFjPerBit per bit per
// cycle — both feed the "post-synthesis" netlist estimate, not the Table-1
// models themselves.
#pragma once

#include "lowprec/format.hpp"

namespace problp::energy {

/// Energy per operation, femtojoules.
double fixed_add_fj(int total_bits);
double fixed_mul_fj(int total_bits);
double float_add_fj(int mantissa_bits);
double float_mul_fj(int mantissa_bits);

/// Comparator/mux cost of a MAX node at `width` bits (≈ one adder).
double max_op_fj(int width_bits);

/// Clock + data energy of one pipeline flip-flop bit (65 nm, 1 V ballpark).
inline constexpr double kRegisterFjPerBit = 2.5;

/// Stored datapath width of one value: I+F for fixed; 1 hidden-bit float
/// word is E + M bits (+ no sign: AC values are non-negative).
int fixed_width_bits(const lowprec::FixedFormat& format);
int float_width_bits(const lowprec::FloatFormat& format);

}  // namespace problp::energy
