// Circuit-level energy prediction: the Table-1 operator models applied to
// the operator census of a binarised circuit.  This is the "pred. energy"
// column of the paper's Table 2 — what ProbLP compares when choosing between
// the optimal fixed- and float-point representations (§3.3).
#pragma once

#include <string>

#include "ac/circuit.hpp"
#include "lowprec/format.hpp"

namespace problp::energy {

/// Live (root-reachable) 2-input operator counts of a binary circuit — what
/// the fully-parallel hardware instantiates.
struct OperatorCensus {
  std::size_t adders = 0;
  std::size_t multipliers = 0;
  std::size_t maxes = 0;

  static OperatorCensus of(const ac::Circuit& binary_circuit);
  std::size_t total() const { return adders + multipliers + maxes; }
  std::string to_string() const;
};

/// Predicted energy of one AC evaluation, femtojoules.
double fixed_energy_fj(const OperatorCensus& census, const lowprec::FixedFormat& format);
double float_energy_fj(const OperatorCensus& census, const lowprec::FloatFormat& format);

/// The paper's reference column: same circuit in IEEE-single-sized float
/// (E=8, M=23).
double float32_reference_fj(const OperatorCensus& census);

/// fJ -> nJ (the unit Table 2 reports).
inline double fj_to_nj(double fj) { return fj * 1e-6; }

}  // namespace problp::energy
