#include "energy/op_models.hpp"

#include <cmath>

#include "util/error.hpp"

namespace problp::energy {

double fixed_add_fj(int total_bits) {
  require(total_bits >= 1, "fixed_add_fj: need >= 1 bit");
  return 7.8 * total_bits;
}

double fixed_mul_fj(int total_bits) {
  require(total_bits >= 1, "fixed_mul_fj: need >= 1 bit");
  const double n = total_bits;
  // log2(1) == 0 would price a 1-bit multiplier at zero; clamp to one AND
  // gate's worth by flooring the log factor at 1 (only affects N == 1).
  return 1.9 * n * n * std::max(1.0, std::log2(n));
}

double float_add_fj(int mantissa_bits) {
  require(mantissa_bits >= 1, "float_add_fj: need >= 1 mantissa bit");
  return 44.74 * (mantissa_bits + 1);
}

double float_mul_fj(int mantissa_bits) {
  require(mantissa_bits >= 1, "float_mul_fj: need >= 1 mantissa bit");
  const double m1 = mantissa_bits + 1;
  return 2.9 * m1 * m1 * std::log2(m1);
}

double max_op_fj(int width_bits) { return fixed_add_fj(width_bits); }

int fixed_width_bits(const lowprec::FixedFormat& format) { return format.total_bits(); }

int float_width_bits(const lowprec::FloatFormat& format) {
  return format.exponent_bits + format.mantissa_bits;
}

}  // namespace problp::energy
