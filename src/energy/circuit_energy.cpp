#include "energy/circuit_energy.hpp"

#include "energy/op_models.hpp"
#include "util/strings.hpp"

namespace problp::energy {

OperatorCensus OperatorCensus::of(const ac::Circuit& binary_circuit) {
  require(binary_circuit.is_binary(), "OperatorCensus: circuit must be binary");
  const auto live = binary_circuit.reachable_from_root();
  OperatorCensus census;
  for (std::size_t i = 0; i < binary_circuit.num_nodes(); ++i) {
    if (!live[i]) continue;
    switch (binary_circuit.node(static_cast<ac::NodeId>(i)).kind) {
      case ac::NodeKind::kSum: ++census.adders; break;
      case ac::NodeKind::kProd: ++census.multipliers; break;
      case ac::NodeKind::kMax: ++census.maxes; break;
      default: break;
    }
  }
  return census;
}

std::string OperatorCensus::to_string() const {
  return str_format("adders=%zu multipliers=%zu maxes=%zu", adders, multipliers, maxes);
}

double fixed_energy_fj(const OperatorCensus& census, const lowprec::FixedFormat& format) {
  const int n = fixed_width_bits(format);
  return static_cast<double>(census.adders) * fixed_add_fj(n) +
         static_cast<double>(census.multipliers) * fixed_mul_fj(n) +
         static_cast<double>(census.maxes) * max_op_fj(n);
}

double float_energy_fj(const OperatorCensus& census, const lowprec::FloatFormat& format) {
  const int m = format.mantissa_bits;
  return static_cast<double>(census.adders) * float_add_fj(m) +
         static_cast<double>(census.multipliers) * float_mul_fj(m) +
         static_cast<double>(census.maxes) * max_op_fj(float_width_bits(format));
}

double float32_reference_fj(const OperatorCensus& census) {
  return float_energy_fj(census, lowprec::ieee_single_sized());
}

}  // namespace problp::energy
