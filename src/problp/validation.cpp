#include "problp/validation.hpp"

#include <cmath>

#include "ac/low_precision_eval.hpp"

namespace problp {

namespace {

// One approximate/exact pair folded into the running statistics.
void accumulate(ObservedError& err, double approx, double exact) {
  const double abs_err = std::abs(approx - exact);
  err.max_abs = std::max(err.max_abs, abs_err);
  err.mean_abs += abs_err;
  if (exact > 0.0) {
    const double rel = abs_err / exact;
    err.max_rel = std::max(err.max_rel, rel);
    err.mean_rel += rel;
  }
  err.count += 1;
}

void finalize(ObservedError& err) {
  if (err.count > 0) {
    err.mean_abs /= static_cast<double>(err.count);
    err.mean_rel /= static_cast<double>(err.count);
  }
}

ac::LowPrecisionResult eval_lowprec(const ac::Circuit& circuit,
                                    const ac::PartialAssignment& assignment,
                                    const Representation& repr,
                                    lowprec::RoundingMode rounding) {
  if (repr.kind == Representation::Kind::kFixed) {
    return ac::evaluate_fixed(circuit, assignment, repr.fixed, rounding);
  }
  return ac::evaluate_float(circuit, assignment, repr.flt, rounding);
}

}  // namespace

ObservedError measure_marginal_error(const ac::Circuit& binary_circuit,
                                     const std::vector<ac::PartialAssignment>& assignments,
                                     const Representation& repr,
                                     lowprec::RoundingMode rounding) {
  ObservedError err;
  for (const auto& a : assignments) {
    const double exact = ac::evaluate(binary_circuit, a);
    const ac::LowPrecisionResult approx = eval_lowprec(binary_circuit, a, repr, rounding);
    err.flags.merge(approx.flags);
    accumulate(err, approx.value, exact);
  }
  finalize(err);
  return err;
}

ObservedError measure_conditional_error(const ac::Circuit& binary_circuit, int query_var,
                                        const std::vector<ac::PartialAssignment>& assignments,
                                        const Representation& repr,
                                        lowprec::RoundingMode rounding) {
  require(query_var >= 0 && query_var < binary_circuit.num_variables(),
          "measure_conditional_error: bad query var");
  ObservedError err;
  const int card = binary_circuit.cardinalities()[static_cast<std::size_t>(query_var)];
  for (const auto& e : assignments) {
    require(!e[static_cast<std::size_t>(query_var)].has_value(),
            "measure_conditional_error: query variable must be unobserved");
    const double exact_pe = ac::evaluate(binary_circuit, e);
    const ac::LowPrecisionResult approx_pe = eval_lowprec(binary_circuit, e, repr, rounding);
    err.flags.merge(approx_pe.flags);
    if (exact_pe <= 0.0 || approx_pe.value <= 0.0) continue;  // query undefined on this input
    for (int q = 0; q < card; ++q) {
      ac::PartialAssignment qe = e;
      qe[static_cast<std::size_t>(query_var)] = q;
      const double exact = ac::evaluate(binary_circuit, qe) / exact_pe;
      const ac::LowPrecisionResult approx_qe = eval_lowprec(binary_circuit, qe, repr, rounding);
      err.flags.merge(approx_qe.flags);
      accumulate(err, approx_qe.value / approx_pe.value, exact);
    }
  }
  finalize(err);
  return err;
}

ObservedError measure_mpe_error(const ac::Circuit& binary_max_circuit,
                                const std::vector<ac::PartialAssignment>& assignments,
                                const Representation& repr, lowprec::RoundingMode rounding) {
  return measure_marginal_error(binary_max_circuit, assignments, repr, rounding);
}

}  // namespace problp
