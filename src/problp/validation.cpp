#include "problp/validation.hpp"

#include <cmath>

#include "runtime/compiled_model.hpp"
#include "runtime/session.hpp"

namespace problp {

namespace {

// One approximate/exact pair folded into the running statistics.
void accumulate(ObservedError& err, double approx, double exact) {
  const double abs_err = std::abs(approx - exact);
  err.max_abs = std::max(err.max_abs, abs_err);
  err.mean_abs += abs_err;
  if (exact > 0.0) {
    const double rel = abs_err / exact;
    err.max_rel = std::max(err.max_rel, rel);
    err.mean_rel += rel;
  }
  err.count += 1;
}

void finalize(ObservedError& err) {
  if (err.count > 0) {
    err.mean_abs /= static_cast<double>(err.count);
    err.mean_rel /= static_cast<double>(err.count);
  }
}

// The kind of sweep one measure_* call runs: root values of the marginal
// tape, posteriors of a query variable, or root values of the maximiser
// tape (whose root *is* the MPE query).
enum class MeasureQuery { kMarginalRoot, kConditional, kMpeRoot };

// The one observed-error implementation behind all measure_* entry points:
// a low-precision InferenceSession against an exact one on the same shared
// CompiledModel.
ObservedError measure_error(const std::shared_ptr<const runtime::CompiledModel>& model,
                            MeasureQuery query, int query_var,
                            const std::vector<ac::PartialAssignment>& assignments,
                            const Representation& repr, lowprec::RoundingMode rounding) {
  runtime::InferenceSession exact(model);
  runtime::InferenceSession lowprec(model,
                                    runtime::SessionOptions::low_precision(repr, rounding));

  ObservedError err;
  if (query != MeasureQuery::kConditional) {
    // Both sides sweep batched: exact on the SoA double engine, low
    // precision on the SoA raw-word engine (bit-identical, values and
    // merged flags, to the per-query passes this loop used to run).
    const bool mpe = query == MeasureQuery::kMpeRoot;
    const std::vector<double>& ground_truth =
        mpe ? exact.mpe(assignments) : exact.marginal(assignments);
    const std::vector<double>& approx =
        mpe ? lowprec.mpe(assignments) : lowprec.marginal(assignments);
    err.flags.merge(lowprec.last_flags());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      accumulate(err, approx[i], ground_truth[i]);
    }
  } else {
    // Posteriors in batched SoA sweeps on both backends.
    const std::vector<std::vector<double>> truth = exact.conditional(query_var, assignments);
    const std::vector<std::vector<double>> approx = lowprec.conditional(query_var, assignments);
    err.flags.merge(lowprec.last_flags());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      // Skip evidence where either side's Pr(e) vanished: the query is
      // undefined there (matching the pre-session sweeps).
      if (approx[i].empty() || truth[i].empty()) continue;
      for (std::size_t q = 0; q < truth[i].size(); ++q) {
        accumulate(err, approx[i][q], truth[i][q]);
      }
    }
  }
  finalize(err);
  return err;
}

}  // namespace

ObservedError measure_marginal_error(const ac::Circuit& binary_circuit,
                                     const std::vector<ac::PartialAssignment>& assignments,
                                     const Representation& repr,
                                     lowprec::RoundingMode rounding) {
  return measure_error(runtime::CompiledModel::wrap(binary_circuit),
                       MeasureQuery::kMarginalRoot, -1, assignments, repr, rounding);
}

ObservedError measure_conditional_error(const ac::Circuit& binary_circuit, int query_var,
                                        const std::vector<ac::PartialAssignment>& assignments,
                                        const Representation& repr,
                                        lowprec::RoundingMode rounding) {
  return measure_conditional_error(runtime::CompiledModel::wrap(binary_circuit), query_var,
                                   assignments, repr, rounding);
}

ObservedError measure_mpe_error(const ac::Circuit& binary_max_circuit,
                                const std::vector<ac::PartialAssignment>& assignments,
                                const Representation& repr, lowprec::RoundingMode rounding) {
  // The caller hands us the maximiser circuit itself, so its root is read
  // through the marginal tape of the wrapped model.
  return measure_error(runtime::CompiledModel::wrap(binary_max_circuit),
                       MeasureQuery::kMarginalRoot, -1, assignments, repr, rounding);
}

ObservedError measure_marginal_error(const std::shared_ptr<const runtime::CompiledModel>& model,
                                     const std::vector<ac::PartialAssignment>& assignments,
                                     const Representation& repr,
                                     lowprec::RoundingMode rounding) {
  return measure_error(model, MeasureQuery::kMarginalRoot, -1, assignments, repr, rounding);
}

ObservedError measure_conditional_error(
    const std::shared_ptr<const runtime::CompiledModel>& model, int query_var,
    const std::vector<ac::PartialAssignment>& assignments, const Representation& repr,
    lowprec::RoundingMode rounding) {
  require(model != nullptr, "measure_conditional_error: null model");
  require(query_var >= 0 && query_var < model->num_variables(),
          "measure_conditional_error: bad query var");
  for (const auto& e : assignments) {
    require(!e[static_cast<std::size_t>(query_var)].has_value(),
            "measure_conditional_error: query variable must be unobserved");
  }
  return measure_error(model, MeasureQuery::kConditional, query_var, assignments, repr,
                       rounding);
}

ObservedError measure_mpe_error(const std::shared_ptr<const runtime::CompiledModel>& model,
                                const std::vector<ac::PartialAssignment>& assignments,
                                const Representation& repr, lowprec::RoundingMode rounding) {
  return measure_error(model, MeasureQuery::kMpeRoot, -1, assignments, repr, rounding);
}

}  // namespace problp
