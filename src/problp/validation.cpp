#include "problp/validation.hpp"

#include <cmath>

#include "ac/batch_eval.hpp"
#include "ac/low_precision_eval.hpp"
#include "ac/tape.hpp"

namespace problp {

namespace {

// One approximate/exact pair folded into the running statistics.
void accumulate(ObservedError& err, double approx, double exact) {
  const double abs_err = std::abs(approx - exact);
  err.max_abs = std::max(err.max_abs, abs_err);
  err.mean_abs += abs_err;
  if (exact > 0.0) {
    const double rel = abs_err / exact;
    err.max_rel = std::max(err.max_rel, rel);
    err.mean_rel += rel;
  }
  err.count += 1;
}

void finalize(ObservedError& err) {
  if (err.count > 0) {
    err.mean_abs /= static_cast<double>(err.count);
    err.mean_rel /= static_cast<double>(err.count);
  }
}

// The error sweeps evaluate one circuit under hundreds of evidence sets, so
// they run on the compiled-tape engine: exact values come from one batched
// sweep, low-precision values from a tape evaluator whose parameters are
// quantised once.  `Fn(lp)` receives the selected evaluator.
template <class Fn>
void with_lowprec_evaluator(const ac::CircuitTape& tape, const Representation& repr,
                            lowprec::RoundingMode rounding, Fn&& fn) {
  if (repr.kind == Representation::Kind::kFixed) {
    ac::FixedTapeEvaluator lp(tape, repr.fixed, rounding);
    fn(lp);
  } else {
    ac::FloatTapeEvaluator lp(tape, repr.flt, rounding);
    fn(lp);
  }
}

}  // namespace

ObservedError measure_marginal_error(const ac::Circuit& binary_circuit,
                                     const std::vector<ac::PartialAssignment>& assignments,
                                     const Representation& repr,
                                     lowprec::RoundingMode rounding) {
  const ac::CircuitTape tape = ac::CircuitTape::compile(binary_circuit);
  ac::BatchEvaluator batch(tape);
  const std::vector<double>& exact = batch.evaluate(assignments);
  ObservedError err;
  with_lowprec_evaluator(tape, repr, rounding, [&](auto& lp) {
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      const ac::LowPrecisionResult approx = lp.evaluate(assignments[i]);
      err.flags.merge(approx.flags);
      accumulate(err, approx.value, exact[i]);
    }
  });
  finalize(err);
  return err;
}

ObservedError measure_conditional_error(const ac::Circuit& binary_circuit, int query_var,
                                        const std::vector<ac::PartialAssignment>& assignments,
                                        const Representation& repr,
                                        lowprec::RoundingMode rounding) {
  require(query_var >= 0 && query_var < binary_circuit.num_variables(),
          "measure_conditional_error: bad query var");
  const ac::CircuitTape tape = ac::CircuitTape::compile(binary_circuit);
  ac::BatchEvaluator batch(tape);
  const int card = binary_circuit.cardinalities()[static_cast<std::size_t>(query_var)];
  for (const auto& e : assignments) {
    require(!e[static_cast<std::size_t>(query_var)].has_value(),
            "measure_conditional_error: query variable must be unobserved");
  }
  // Pr(e) for every evidence set in one batched sweep; the per-state
  // numerators are batched per surviving evidence set below.
  std::vector<double> exact_pe(batch.evaluate(assignments));
  ObservedError err;
  with_lowprec_evaluator(tape, repr, rounding, [&](auto& lp) {
    std::vector<ac::PartialAssignment> qes(static_cast<std::size_t>(card));
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      const ac::LowPrecisionResult approx_pe = lp.evaluate(assignments[i]);
      err.flags.merge(approx_pe.flags);
      if (exact_pe[i] <= 0.0 || approx_pe.value <= 0.0) continue;  // query undefined here
      for (int q = 0; q < card; ++q) {
        qes[static_cast<std::size_t>(q)] = assignments[i];
        qes[static_cast<std::size_t>(q)][static_cast<std::size_t>(query_var)] = q;
      }
      const std::vector<double>& exact_q = batch.evaluate(qes);
      for (int q = 0; q < card; ++q) {
        const ac::LowPrecisionResult approx_qe = lp.evaluate(qes[static_cast<std::size_t>(q)]);
        err.flags.merge(approx_qe.flags);
        accumulate(err, approx_qe.value / approx_pe.value,
                   exact_q[static_cast<std::size_t>(q)] / exact_pe[i]);
      }
    }
  });
  finalize(err);
  return err;
}

ObservedError measure_mpe_error(const ac::Circuit& binary_max_circuit,
                                const std::vector<ac::PartialAssignment>& assignments,
                                const Representation& repr, lowprec::RoundingMode rounding) {
  return measure_marginal_error(binary_max_circuit, assignments, repr, rounding);
}

}  // namespace problp
