// Analysis-layer value types and the pure functions that compute them —
// the shared vocabulary of the Framework facade and the runtime layer
// (runtime/compiled_model.hpp).
//
// A (binarised circuit, CircuitErrorModel) pair plus a QuerySpec determines
// one Table-2 row: the optimal fixed and float representations, their
// predicted energies, and the selection.  analyze_circuit() computes that
// row; generate_hardware() emits the datapath for the selected
// representation.  Both are stateless, so every caller (Framework,
// CompiledModel's report cache, tests) gets bit-identical reports.
#pragma once

#include <string>

#include "ac/circuit.hpp"
#include "ac/transform.hpp"
#include "energy/circuit_energy.hpp"
#include "errormodel/bitwidth_search.hpp"
#include "hw/netlist.hpp"
#include "hw/netlist_energy.hpp"

namespace problp {

struct FrameworkOptions {
  errormodel::SearchOptions search;
  ac::DecompositionStyle decomposition = ac::DecompositionStyle::kBalanced;
  hw::NetlistEnergyOptions netlist_energy;
  /// Binary model artifacts load via a private heap copy instead of mmap:
  /// slower cold load, no cross-process page sharing, but the loaded model
  /// is immune to the artifact file being truncated or rewritten after
  /// open (the mmap path only re-checks the size at open time — see
  /// runtime/artifact.hpp).  Set it on ModelRegistry::Options::model_options
  /// for a registry that owns every resident byte.
  bool artifact_read_copy = false;
};

/// The representation ProbLP selected (fixed xor float).
struct Representation {
  enum class Kind { kFixed, kFloat } kind = Kind::kFixed;
  lowprec::FixedFormat fixed;  ///< valid when kind == kFixed
  lowprec::FloatFormat flt;    ///< valid when kind == kFloat

  static Representation of(lowprec::FixedFormat format) {
    Representation repr;
    repr.kind = Kind::kFixed;
    repr.fixed = format;
    return repr;
  }
  static Representation of(lowprec::FloatFormat format) {
    Representation repr;
    repr.kind = Kind::kFloat;
    repr.flt = format;
    return repr;
  }

  std::string to_string() const;
};

/// Everything Table 2 reports for one (AC, query, tolerance) row.
struct AnalysisReport {
  errormodel::QuerySpec spec;

  errormodel::FixedPlan fixed_plan;
  double fixed_energy_nj = 0.0;  ///< +inf when infeasible

  errormodel::FloatPlan float_plan;
  double float_energy_nj = 0.0;  ///< +inf when infeasible

  Representation selected;       ///< lower predicted energy of the feasible plans
  bool any_feasible = false;

  double float32_reference_nj = 0.0;  ///< same AC at E=8, M=23
  energy::OperatorCensus census;

  /// One Table-2-style row (human-readable).
  std::string to_string() const;
};

/// Generated hardware for a selected representation.
struct HardwareReport {
  hw::Netlist netlist;
  hw::NetlistStats stats;
  std::string verilog;
  double netlist_energy_nj = 0.0;  ///< the "post-synthesis" estimate
};

/// Error analysis + bit-width search + energy comparison for one query on
/// `binary_circuit` (the circuit the query evaluates; for MPE, the
/// binarised max-circuit) with `model` built from that same circuit.
AnalysisReport analyze_circuit(const ac::Circuit& binary_circuit,
                               const errormodel::CircuitErrorModel& model,
                               const errormodel::QuerySpec& spec,
                               const FrameworkOptions& options);

/// Pipelined netlist + Verilog for the representation `report` selected.
/// `binary_circuit` must be the circuit `report` was analysed on.
HardwareReport generate_hardware(const ac::Circuit& binary_circuit,
                                 const AnalysisReport& report,
                                 const FrameworkOptions& options);

}  // namespace problp
