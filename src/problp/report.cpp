#include "problp/report.hpp"

#include <limits>

#include "hw/generator.hpp"
#include "hw/verilog.hpp"
#include "util/strings.hpp"

namespace problp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string Representation::to_string() const {
  return kind == Kind::kFixed ? fixed.to_string() : flt.to_string();
}

std::string AnalysisReport::to_string() const {
  const std::string fixed_desc =
      fixed_plan.feasible
          ? str_format("I=%d,F=%d (%.3g nJ)", fixed_plan.format.integer_bits,
                       fixed_plan.format.fraction_bits, fixed_energy_nj)
          : str_format("F>%d (-)", fixed_plan.attempted_max_fraction_bits);
  const std::string float_desc =
      float_plan.feasible
          ? str_format("E=%d,M=%d (%.3g nJ)", float_plan.format.exponent_bits,
                       float_plan.format.mantissa_bits, float_energy_nj)
          : str_format("M>%d (-)", float_plan.attempted_max_mantissa_bits);
  return str_format(
      "%s %s tol=%.3g | fixed: %s | float: %s | selected: %s | 32b-float ref: %.3g nJ",
      errormodel::to_string(spec.query), errormodel::to_string(spec.kind), spec.tolerance,
      fixed_desc.c_str(), float_desc.c_str(),
      any_feasible ? selected.to_string().c_str() : "none", float32_reference_nj);
}

AnalysisReport analyze_circuit(const ac::Circuit& binary_circuit,
                               const errormodel::CircuitErrorModel& model,
                               const errormodel::QuerySpec& spec,
                               const FrameworkOptions& options) {
  AnalysisReport report;
  report.spec = spec;
  report.census = energy::OperatorCensus::of(binary_circuit);

  report.fixed_plan =
      errormodel::search_fixed_representation(binary_circuit, model, spec, options.search);
  report.fixed_energy_nj =
      report.fixed_plan.feasible
          ? energy::fj_to_nj(energy::fixed_energy_fj(report.census, report.fixed_plan.format))
          : kInf;

  report.float_plan = errormodel::search_float_representation(model, spec, options.search);
  report.float_energy_nj =
      report.float_plan.feasible
          ? energy::fj_to_nj(energy::float_energy_fj(report.census, report.float_plan.format))
          : kInf;

  report.float32_reference_nj = energy::fj_to_nj(energy::float32_reference_fj(report.census));

  report.any_feasible = report.fixed_plan.feasible || report.float_plan.feasible;
  if (report.fixed_energy_nj <= report.float_energy_nj && report.fixed_plan.feasible) {
    report.selected.kind = Representation::Kind::kFixed;
    report.selected.fixed = report.fixed_plan.format;
  } else if (report.float_plan.feasible) {
    report.selected.kind = Representation::Kind::kFloat;
    report.selected.flt = report.float_plan.format;
  }
  return report;
}

HardwareReport generate_hardware(const ac::Circuit& binary_circuit, const AnalysisReport& report,
                                 const FrameworkOptions& options) {
  require(report.any_feasible, "generate_hardware: no feasible representation");
  hw::Netlist netlist = hw::generate_netlist(binary_circuit);
  hw::VerilogOptions vopts;

  HardwareReport out{std::move(netlist), {}, {}, 0.0};
  out.stats = out.netlist.stats();
  if (report.selected.kind == Representation::Kind::kFixed) {
    vopts.rounding = options.search.fixed_options.rounding;
    out.verilog = hw::emit_fixed_verilog(out.netlist, report.selected.fixed, vopts);
    out.netlist_energy_nj = energy::fj_to_nj(
        hw::fixed_netlist_energy(out.netlist, report.selected.fixed, options.netlist_energy)
            .total_fj());
  } else {
    vopts.rounding = options.search.float_rounding;
    out.verilog = hw::emit_float_verilog(out.netlist, report.selected.flt, vopts);
    out.netlist_energy_nj = energy::fj_to_nj(
        hw::float_netlist_energy(out.netlist, report.selected.flt, options.netlist_energy)
            .total_fj());
  }
  return out;
}

}  // namespace problp
