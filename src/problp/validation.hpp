// Test-set validation: evaluates queries under an emulated low-precision
// representation and compares against double-precision ground truth — the
// "Max error observed on test-set" column of Table 2 and the measured
// curves of Fig. 5.
//
// Conditional queries divide the two low-precision AC results in double
// precision: ProbLP's generated datapath computes the two passes; the final
// ratio is taken by the host (footnote 2 of the paper considers the division
// outside the AC error model).
#pragma once

#include <memory>
#include <vector>

#include "ac/circuit.hpp"
#include "ac/evaluator.hpp"
#include "lowprec/format.hpp"
#include "problp/framework.hpp"

namespace problp::runtime {
class CompiledModel;
}

namespace problp {

struct ObservedError {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double max_rel = 0.0;   ///< over cases with non-zero exact value
  double mean_rel = 0.0;
  std::size_t count = 0;
  lowprec::ArithFlags flags;  ///< sticky across all evaluations

  double max_of(errormodel::ToleranceKind kind) const {
    return kind == errormodel::ToleranceKind::kAbsolute ? max_abs : max_rel;
  }
};

/// Single-pass (marginal) queries: root value per assignment.
ObservedError measure_marginal_error(
    const ac::Circuit& binary_circuit, const std::vector<ac::PartialAssignment>& assignments,
    const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

/// Conditional queries: Pr(q | e) for every state q of `query_var`, per
/// evidence (query_var must be unobserved in each assignment).
ObservedError measure_conditional_error(
    const ac::Circuit& binary_circuit, int query_var,
    const std::vector<ac::PartialAssignment>& assignments, const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

/// MPE queries: root of the binarised max-circuit per assignment.
ObservedError measure_mpe_error(
    const ac::Circuit& binary_max_circuit, const std::vector<ac::PartialAssignment>& assignments,
    const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

/// Model-based overloads for callers that already hold a CompiledModel
/// (bench_table2, patient_monitoring): the circuit-reference entry points
/// above re-wrap (copy + re-flatten) the circuit per call, these reuse the
/// model's tapes directly.  Results are bit-identical to the circuit forms
/// on the model's binary (resp. maximiser) circuit.
ObservedError measure_marginal_error(
    const std::shared_ptr<const runtime::CompiledModel>& model,
    const std::vector<ac::PartialAssignment>& assignments, const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

ObservedError measure_conditional_error(
    const std::shared_ptr<const runtime::CompiledModel>& model, int query_var,
    const std::vector<ac::PartialAssignment>& assignments, const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

ObservedError measure_mpe_error(
    const std::shared_ptr<const runtime::CompiledModel>& model,
    const std::vector<ac::PartialAssignment>& assignments, const Representation& repr,
    lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven);

}  // namespace problp
