#include "problp/report_io.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace problp {

namespace {

std::string selected_name(const AnalysisReport& r) {
  if (!r.any_feasible) return "none";
  return r.selected.kind == Representation::Kind::kFixed ? "fixed" : "float";
}

std::string maybe(double v, const char* fmt) {
  return v < 0.0 ? std::string("") : str_format(fmt, v);
}

}  // namespace

std::string to_csv(const std::vector<ReportRow>& rows) {
  std::ostringstream os;
  os << "benchmark,query,tolerance_kind,tolerance,fixed_feasible,fixed_I,fixed_F,"
        "fixed_energy_nj,float_feasible,float_E,float_M,float_energy_nj,selected,"
        "observed_max_error,netlist_energy_nj,float32_reference_nj\n";
  for (const ReportRow& row : rows) {
    const AnalysisReport& a = row.analysis;
    os << row.benchmark_name << ',' << errormodel::to_string(a.spec.query) << ','
       << errormodel::to_string(a.spec.kind) << ',' << str_format("%g", a.spec.tolerance) << ',';
    if (a.fixed_plan.feasible) {
      os << "1," << a.fixed_plan.format.integer_bits << ',' << a.fixed_plan.format.fraction_bits
         << ',' << str_format("%.6g", a.fixed_energy_nj) << ',';
    } else {
      os << "0,,,,";
    }
    if (a.float_plan.feasible) {
      os << "1," << a.float_plan.format.exponent_bits << ',' << a.float_plan.format.mantissa_bits
         << ',' << str_format("%.6g", a.float_energy_nj) << ',';
    } else {
      os << "0,,,,";
    }
    os << selected_name(a) << ',' << maybe(row.observed_max_error, "%.6g") << ','
       << maybe(row.netlist_energy_nj, "%.6g") << ','
       << str_format("%.6g", a.float32_reference_nj) << '\n';
  }
  return os.str();
}

std::string to_markdown(const std::vector<ReportRow>& rows) {
  std::ostringstream os;
  os << "| AC | Query | Tolerance | Opt. fixed I,F (nJ) | Opt. float E,M (nJ) | Selected | "
        "Max err observed | Post-synth nJ | 32b float nJ |\n";
  os << "|---|---|---|---|---|---|---|---|---|\n";
  for (const ReportRow& row : rows) {
    const AnalysisReport& a = row.analysis;
    const std::string fixed_cell =
        a.fixed_plan.feasible
            ? str_format("%d, %d (%.2g)", a.fixed_plan.format.integer_bits,
                         a.fixed_plan.format.fraction_bits, a.fixed_energy_nj)
            : str_format(">%d ( - )", a.fixed_plan.attempted_max_fraction_bits);
    const std::string float_cell =
        a.float_plan.feasible
            ? str_format("%d, %d (%.2g)", a.float_plan.format.exponent_bits,
                         a.float_plan.format.mantissa_bits, a.float_energy_nj)
            : str_format(">%d ( - )", a.float_plan.attempted_max_mantissa_bits);
    os << "| " << row.benchmark_name << " | " << errormodel::to_string(a.spec.query) << " | "
       << errormodel::to_string(a.spec.kind) << " " << str_format("%g", a.spec.tolerance)
       << " | " << fixed_cell << " | " << float_cell << " | **" << selected_name(a) << "** | "
       << (row.observed_max_error < 0 ? "-" : sci(row.observed_max_error)) << " | "
       << (row.netlist_energy_nj < 0 ? "-" : str_format("%.2g", row.netlist_energy_nj)) << " | "
       << str_format("%.2g", a.float32_reference_nj) << " |\n";
  }
  return os.str();
}

}  // namespace problp
