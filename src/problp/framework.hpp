// The ProbLP framework facade — the full Fig. 2 pipeline:
//
//   AC + query type + error tolerance
//     -> fixed-pt error analysis  -> optimal fixed-pt bit width  (I, F)
//     -> float-pt error analysis  -> optimal float-pt bit width  (E, M)
//     -> energy estimates (Table-1 models) -> representation selection
//     -> hardware generation -> pipelined netlist + Verilog
//
// Framework is a thin, source-compatible facade over the runtime layer: it
// compiles a runtime::CompiledModel (which binarises the circuit — §3.4
// stage 1 — and lazily materialises the analyses) and delegates every call.
// Code that also wants to *answer queries* should take model() and open
// runtime::InferenceSessions on it; the analysis types and the pure
// analyze/generate functions live in problp/report.hpp.
#pragma once

#include <memory>

#include "problp/report.hpp"
#include "runtime/compiled_model.hpp"

namespace problp {

class Framework {
 public:
  explicit Framework(const ac::Circuit& circuit, FrameworkOptions options = {})
      : model_(runtime::CompiledModel::compile(circuit, options)) {}

  /// Error analysis + bit-width search + energy comparison for one query
  /// (cached per spec in the underlying model).
  AnalysisReport analyze(const errormodel::QuerySpec& spec) const { return model_->analyze(spec); }

  /// Pipelined netlist + Verilog for the representation `report` selected.
  HardwareReport generate_hardware(const AnalysisReport& report) const {
    return model_->generate_hardware(report);
  }

  /// The binarised circuit a marginal/conditional query evaluates.
  const ac::Circuit& binary_circuit() const { return model_->binary_circuit(); }
  /// The binarised maximiser circuit an MPE query evaluates.
  const ac::Circuit& binary_max_circuit() const { return model_->binary_max_circuit(); }

  const FrameworkOptions& options() const { return model_->options(); }

  /// The shared artifact behind this facade — open
  /// runtime::InferenceSessions on it to answer queries.
  const std::shared_ptr<const runtime::CompiledModel>& model() const { return model_; }

 private:
  std::shared_ptr<const runtime::CompiledModel> model_;
};

}  // namespace problp
