// The ProbLP framework facade — the full Fig. 2 pipeline:
//
//   AC + query type + error tolerance
//     -> fixed-pt error analysis  -> optimal fixed-pt bit width  (I, F)
//     -> float-pt error analysis  -> optimal float-pt bit width  (E, M)
//     -> energy estimates (Table-1 models) -> representation selection
//     -> hardware generation -> pipelined netlist + Verilog
//
// Construction binarises the circuit (hardware decomposition, §3.4 stage 1)
// and precomputes the format-independent analyses; analyze() then answers
// any (query, tolerance) combination, and generate_hardware() emits the
// datapath for the selected representation.
#pragma once

#include <optional>
#include <string>

#include "ac/circuit.hpp"
#include "ac/transform.hpp"
#include "energy/circuit_energy.hpp"
#include "errormodel/bitwidth_search.hpp"
#include "hw/netlist.hpp"
#include "hw/netlist_energy.hpp"

namespace problp {

struct FrameworkOptions {
  errormodel::SearchOptions search;
  ac::DecompositionStyle decomposition = ac::DecompositionStyle::kBalanced;
  hw::NetlistEnergyOptions netlist_energy;
};

/// The representation ProbLP selected (fixed xor float).
struct Representation {
  enum class Kind { kFixed, kFloat } kind = Kind::kFixed;
  lowprec::FixedFormat fixed;  ///< valid when kind == kFixed
  lowprec::FloatFormat flt;    ///< valid when kind == kFloat

  std::string to_string() const;
};

/// Everything Table 2 reports for one (AC, query, tolerance) row.
struct AnalysisReport {
  errormodel::QuerySpec spec;

  errormodel::FixedPlan fixed_plan;
  double fixed_energy_nj = 0.0;  ///< +inf when infeasible

  errormodel::FloatPlan float_plan;
  double float_energy_nj = 0.0;  ///< +inf when infeasible

  Representation selected;       ///< lower predicted energy of the feasible plans
  bool any_feasible = false;

  double float32_reference_nj = 0.0;  ///< same AC at E=8, M=23
  energy::OperatorCensus census;

  /// One Table-2-style row (human-readable).
  std::string to_string() const;
};

/// Generated hardware for a selected representation.
struct HardwareReport {
  hw::Netlist netlist;
  hw::NetlistStats stats;
  std::string verilog;
  double netlist_energy_nj = 0.0;  ///< the "post-synthesis" estimate
};

class Framework {
 public:
  explicit Framework(const ac::Circuit& circuit, FrameworkOptions options = {});

  /// Error analysis + bit-width search + energy comparison for one query.
  AnalysisReport analyze(const errormodel::QuerySpec& spec) const;

  /// Pipelined netlist + Verilog for the representation `report` selected.
  HardwareReport generate_hardware(const AnalysisReport& report) const;

  /// The binarised circuit a marginal/conditional query evaluates.
  const ac::Circuit& binary_circuit() const { return binary_; }
  /// The binarised maximiser circuit an MPE query evaluates.
  const ac::Circuit& binary_max_circuit() const { return binary_max_; }

  const FrameworkOptions& options() const { return options_; }

 private:
  const ac::Circuit& circuit_for(errormodel::QueryType q) const {
    return q == errormodel::QueryType::kMpe ? binary_max_ : binary_;
  }
  const errormodel::CircuitErrorModel& model_for(errormodel::QueryType q) const {
    return q == errormodel::QueryType::kMpe ? max_model_ : model_;
  }

  FrameworkOptions options_;
  ac::Circuit binary_;
  ac::Circuit binary_max_;
  errormodel::CircuitErrorModel model_;
  errormodel::CircuitErrorModel max_model_;
};

}  // namespace problp
