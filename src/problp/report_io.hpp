// Machine-readable report export: the Table-2-style AnalysisReport rows as
// CSV and Markdown, so experiment results flow into notebooks and papers
// without scraping stdout.
#pragma once

#include <string>
#include <vector>

#include "problp/framework.hpp"
#include "problp/validation.hpp"

namespace problp {

/// One labelled result row (what bench_table2_overall accumulates).
struct ReportRow {
  std::string benchmark_name;
  AnalysisReport analysis;
  double observed_max_error = -1.0;   ///< < 0 when not measured
  double netlist_energy_nj = -1.0;    ///< < 0 when hardware was not generated
};

/// CSV with a fixed header:
/// benchmark,query,tolerance_kind,tolerance,fixed_feasible,fixed_I,fixed_F,
/// fixed_energy_nj,float_feasible,float_E,float_M,float_energy_nj,selected,
/// observed_max_error,netlist_energy_nj,float32_reference_nj
std::string to_csv(const std::vector<ReportRow>& rows);

/// GitHub-flavoured Markdown table mirroring the paper's Table 2 layout.
std::string to_markdown(const std::vector<ReportRow>& rows);

}  // namespace problp
