#include "serve/types.hpp"

namespace problp::serve {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kTimeout:
      return "timeout";
    case Status::kRejectedQueueFull:
      return "rejected-queue-full";
    case Status::kRejectedOverload:
      return "rejected-overload";
    case Status::kRejectedShutdown:
      return "rejected-shutdown";
    case Status::kError:
      return "error";
  }
  return "unknown";
}

const char* to_string(Tier t) {
  return t == Tier::kNormal ? "normal" : "degraded";
}

void Response::throw_if_failed() const {
  const std::string detail =
      message.empty() ? std::string(to_string(status)) : message;
  switch (status) {
    case Status::kOk:
      return;
    case Status::kTimeout:
      throw DeadlineExceededError(detail);
    case Status::kRejectedQueueFull:
      throw QueueFullError(detail);
    case Status::kRejectedOverload:
      throw OverloadShedError(detail);
    case Status::kRejectedShutdown:
      throw ShutdownError(detail);
    case Status::kError:
      throw ServeError(detail);
  }
}

double Response::value_or_throw() const {
  throw_if_failed();
  return value;
}

const std::vector<double>& Response::posterior_or_throw() const {
  throw_if_failed();
  return posterior;
}

}  // namespace problp::serve
