#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/fault_injection.hpp"
#include "util/strings.hpp"

namespace problp::serve {

namespace {

bool same_repr(const Representation& a, const Representation& b) {
  if (a.kind != b.kind) return false;
  return a.kind == Representation::Kind::kFixed ? a.fixed == b.fixed : a.flt == b.flt;
}

}  // namespace

// Per-worker session pool: the base tier is built with the thread (engines
// inside are lazy), the degraded tier only when this shard first serves a
// degraded batch.
struct Server::WorkerSessions {
  Server& server;
  runtime::InferenceSession base;
  std::optional<runtime::InferenceSession> degraded;

  explicit WorkerSessions(Server& s) : server(s), base(s.model_, s.options_.session) {}

  runtime::InferenceSession& for_tier(Tier tier) {
    if (tier == Tier::kDegraded && server.options_.overload.degraded) {
      if (!degraded) {
        const DegradedTier& d = *server.options_.overload.degraded;
        runtime::SessionOptions opts = runtime::SessionOptions::low_precision(d.repr, d.rounding);
        opts.batch = server.options_.session.batch;
        degraded.emplace(server.model_, opts);
      }
      return *degraded;
    }
    return base;
  }
};

Server::Server(std::shared_ptr<const runtime::CompiledModel> model, ServerOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  require(model_ != nullptr, "serve: Server: null model");
  options_.validate();
  clock_ = options_.clock ? options_.clock : util::Clock::steady();
  max_pending_batches_ = options_.max_pending_batches == 0
                             ? 2 * static_cast<std::size_t>(options_.workers)
                             : options_.max_pending_batches;
  // Surface session misconfiguration on the constructing thread, not as an
  // exception escaping a worker thread minutes later: build (and discard) a
  // probe session per tier.  Sessions are scratch-only until their first
  // query, so this is cheap.
  { runtime::InferenceSession probe(model_, options_.session); }
  if (options_.overload.degraded) {
    const DegradedTier& d = *options_.overload.degraded;
    runtime::SessionOptions opts = runtime::SessionOptions::low_precision(d.repr, d.rounding);
    opts.batch = options_.session.batch;
    runtime::InferenceSession probe(model_, opts);
  }
  batcher_ = std::thread([this] { batcher_main(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Server::~Server() { shutdown(true); }

// ---- admission -------------------------------------------------------------

std::future<Response> Server::submit(Request request) {
  return submit_internal(std::move(request), nullptr);
}

void Server::submit(Request request, std::function<void(Response)> done) {
  require(done != nullptr, "serve: submit: null completion callback");
  submit_internal(std::move(request), std::move(done));
}

Tier Server::admission_tier(std::size_t depth) const {
  const OverloadPolicy& policy = options_.overload;
  if (!policy.degraded) return Tier::kNormal;
  if (depth >= policy.degrade_depth) return Tier::kDegraded;
  if (policy.degrade_p99 && latency_.p99() > *policy.degrade_p99) return Tier::kDegraded;
  return Tier::kNormal;
}

std::future<Response> Server::submit_internal(Request request,
                                              std::function<void(Response)> done) {
  // Malformed requests are caller bugs, not load conditions: they throw
  // here, synchronously, and never occupy queue space.  Messages are
  // formatted only on failure — str_format on the submit hot path would
  // cost more than the rest of admission combined.
  if (request.evidence.size() != static_cast<std::size_t>(model_->num_variables())) {
    throw InvalidArgument(str_format("serve: request evidence size: found %zu, expected %d",
                                     request.evidence.size(), model_->num_variables()));
  }
  if (request.query == errormodel::QueryType::kConditional) {
    if (request.query_var < 0 || request.query_var >= model_->num_variables()) {
      throw InvalidArgument(
          str_format("serve: conditional request query_var: found %d, expected in [0, %d)",
                     request.query_var, model_->num_variables()));
    }
    require(!request.evidence[static_cast<std::size_t>(request.query_var)].has_value(),
            "serve: conditional request: query_var must be unobserved in the evidence");
  }

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->callback = std::move(done);
  std::future<Response> future;
  if (!pending->callback) future = pending->promise.emplace().get_future();
  ++counters_.submitted;

  std::unique_lock<std::mutex> lock(mu_);
  const util::Clock::TimePoint now = clock_->now();
  pending->enqueued = now;
  if (pending->request.timeout) pending->deadline = now + *pending->request.timeout;

  if (stopping_) {
    lock.unlock();
    complete_rejection(std::move(pending), Status::kRejectedShutdown,
                       "serve: server is shutting down");
    return future;
  }
  // serve.enqueue forces the queue-full rejection path — the same typed
  // completion a physically full queue produces under FullPolicy::kReject.
  if (util::fault_point("serve.enqueue")) {
    lock.unlock();
    complete_rejection(std::move(pending), Status::kRejectedQueueFull,
                       "serve: injected fault at serve.enqueue — submission queue full");
    return future;
  }
  if (queue_.size() >= options_.overload.shed_depth) {
    const std::size_t depth = queue_.size();
    lock.unlock();
    complete_rejection(std::move(pending), Status::kRejectedOverload,
                       str_format("serve: overload shed — queue depth %zu >= shed threshold %zu",
                                  depth, options_.overload.shed_depth));
    return future;
  }
  if (queue_.size() >= options_.capacity) {
    if (options_.full_policy == ServerOptions::FullPolicy::kReject) {
      lock.unlock();
      complete_rejection(std::move(pending), Status::kRejectedQueueFull,
                         str_format("serve: submission queue full (capacity %zu)",
                                    options_.capacity));
      return future;
    }
    // Block-with-timeout backpressure: the producer waits for space, but
    // never forever — a stalled pipeline turns into a typed rejection, not
    // a wedged client.
    const util::Clock::TimePoint block_deadline = now + options_.block_timeout;
    ++counters_.producers_blocked;
    while (queue_.size() >= options_.capacity && !stopping_ &&
           clock_->now() < block_deadline) {
      clock_->wait_until(cv_not_full_, lock, block_deadline);
    }
    --counters_.producers_blocked;
    if (stopping_) {
      lock.unlock();
      complete_rejection(std::move(pending), Status::kRejectedShutdown,
                         "serve: server shut down while blocked on a full queue");
      return future;
    }
    if (queue_.size() >= options_.capacity) {
      lock.unlock();
      complete_rejection(
          std::move(pending), Status::kRejectedQueueFull,
          str_format("serve: submission queue still full after block timeout (capacity %zu)",
                     options_.capacity));
      return future;
    }
  }
  pending->tier = admission_tier(queue_.size());
  if (pending->tier == Tier::kDegraded) ++counters_.degraded_admitted;
  const bool was_empty = queue_.empty();
  const bool has_deadline = pending->deadline != util::Clock::TimePoint::max();
  if (has_deadline) ++queue_deadlines_;
  queue_.push_back(std::move(pending));
  // Size-triggered flushes are cut right here on the submitting thread: at
  // saturation every batch is size-cut, and routing each one through the
  // batcher costs a futex wake plus two context switches per batch.  The
  // batcher still owns deadline/linger flushes and the drain; when the
  // batch queue is full the cut is left to it (the worker's slot-freed
  // notify wakes it), so backpressure behaves identically.
  if (queue_.size() >= options_.batch_max && batches_.size() < max_pending_batches_ &&
      !stopping_) {
    // Fresh stamp: under FullPolicy::kBlock `now` can predate a long wait.
    flush_locked(lock, clock_->now(), /*by_size=*/true);
  }
  // Wake the batcher only when its wake plan can change: the first request
  // arms the linger timer, and a finite deadline may be earlier than the
  // sleep it already computed.  Every other submit would wake it just to
  // re-sleep — on a saturated machine that futex round-trip per request
  // costs more than the flush.
  const bool wake = was_empty || has_deadline;
  lock.unlock();
  if (wake) cv_batcher_.notify_one();
  return future;
}

// ---- completion funnel -----------------------------------------------------

void Server::complete(PendingPtr pending, Response&& response) {
  // Exactly-once: the first completion wins; a second is counted as the bug
  // it would be (the drain and stress tests assert this stays 0) and
  // dropped rather than crossing a std::promise twice.
  if (pending->completed.exchange(true)) {
    ++counters_.double_completions;
    return;
  }
  switch (response.status) {
    case Status::kOk:
      ++counters_.completed_ok;
      break;
    case Status::kTimeout:
      ++counters_.timed_out;
      break;
    case Status::kRejectedQueueFull:
      ++counters_.rejected_queue_full;
      break;
    case Status::kRejectedOverload:
      ++counters_.rejected_overload;
      break;
    case Status::kRejectedShutdown:
      ++counters_.rejected_shutdown;
      break;
    case Status::kError:
      ++counters_.errors;
      break;
  }
  // Exactly one channel is engaged (see Pending): the callback flavour
  // never pays the promise's shared-state allocation and set_value mutex.
  if (pending->callback) {
    std::function<void(Response)> callback = std::move(pending->callback);
    callback(std::move(response));
  } else {
    pending->promise->set_value(std::move(response));
  }
}

void Server::complete_rejection(PendingPtr pending, Status status, const std::string& message) {
  Response response;
  response.status = status;
  response.message = message;
  response.tier = pending->tier;
  const util::Clock::TimePoint now = clock_->now();
  response.queue_wait = now - pending->enqueued;
  response.latency = response.queue_wait;
  complete(std::move(pending), std::move(response));
}

void Server::complete_timeout(PendingPtr pending, bool after_flush) {
  if (after_flush) ++counters_.timed_out_after_flush;
  Response response;
  response.status = Status::kTimeout;
  response.message = after_flush
                         ? "serve: deadline exceeded after flush, before evaluation"
                         : "serve: deadline exceeded while queued";
  response.tier = pending->tier;
  const util::Clock::TimePoint now = clock_->now();
  response.queue_wait = now - pending->enqueued;
  response.latency = response.queue_wait;
  complete(std::move(pending), std::move(response));
}

// ---- batcher ---------------------------------------------------------------

void Server::flush_locked(std::unique_lock<std::mutex>& lock, util::Clock::TimePoint now,
                          bool by_size) {
  Batch batch;
  const std::size_t n = std::min(queue_.size(), options_.batch_max);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queue_.front()->flushed = now;
    if (queue_.front()->deadline != util::Clock::TimePoint::max()) --queue_deadlines_;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  (by_size ? counters_.flushes_by_size : counters_.flushes_by_deadline).fetch_add(1);
  if (util::fault_point("serve.flush")) {
    // A failed dispatch must still complete every member exactly once —
    // the real mid-flush error path, driven deterministically.
    lock.unlock();
    for (PendingPtr& p : batch) {
      complete_rejection(std::move(p), Status::kError,
                         "serve: injected fault at serve.flush — batch dispatch failed");
    }
    cv_not_full_.notify_all();
    lock.lock();
    return;
  }
  batches_.push_back(std::move(batch));
  lock.unlock();
  cv_work_.notify_one();
  cv_not_full_.notify_all();
  lock.lock();
}

void Server::batcher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const util::Clock::TimePoint now = clock_->now();

    // Expired requests leave the queue as typed timeouts — before any flush
    // decision, so an expired request is never silently evaluated.  The
    // sweep is O(depth), so it only runs while some queued request actually
    // carries a deadline (queue_deadlines_ tracks that across every path a
    // request leaves the queue by).
    if (queue_deadlines_ > 0) {
      std::vector<PendingPtr> expired;
      for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->deadline <= now) {
          --queue_deadlines_;
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (!expired.empty()) {
        lock.unlock();
        for (PendingPtr& p : expired) complete_timeout(std::move(p), false);
        cv_not_full_.notify_all();
        lock.lock();
        continue;
      }
    }

    bool flush = false;
    bool by_size = false;
    if (!queue_.empty()) {
      if (queue_.size() >= options_.batch_max) {
        flush = true;
        by_size = true;
      } else if (stopping_ && drain_) {
        flush = true;  // drain: flush the backlog without waiting for the linger
      } else if (now - queue_.front()->enqueued >= options_.flush_deadline) {
        flush = true;
      }
    }

    if (flush) {
      if (batches_.size() >= max_pending_batches_) {
        // Workers are behind; stall here so the submission queue fills and
        // backpressure reaches producers instead of batches piling up.
        cv_batcher_.wait(lock);
        continue;
      }
      flush_locked(lock, now, by_size);
      continue;
    }

    if (stopping_ && queue_.empty()) break;

    // Sleep until the earliest actionable instant: the oldest request's
    // linger deadline or any request's own deadline, whichever is sooner.
    util::Clock::TimePoint next = util::Clock::TimePoint::max();
    if (!queue_.empty()) {
      next = queue_.front()->enqueued + options_.flush_deadline;
      if (queue_deadlines_ > 0) {
        for (const PendingPtr& p : queue_) next = std::min(next, p->deadline);
      }
    }
    clock_->wait_until(cv_batcher_, lock, next);
  }
  batcher_done_ = true;
  lock.unlock();
  cv_work_.notify_all();
}

// ---- workers ---------------------------------------------------------------

void Server::worker_main() {
  WorkerSessions sessions(*this);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (batches_.empty() && !batcher_done_) cv_work_.wait(lock);
    if (batches_.empty()) break;  // batcher finished and the backlog is served
    Batch batch = std::move(batches_.front());
    batches_.pop_front();
    lock.unlock();
    cv_batcher_.notify_one();  // batch-queue slot freed
    process_batch(sessions, std::move(batch));
    lock.lock();
  }
}

void Server::process_batch(WorkerSessions& sessions, Batch batch) {
  if (options_.test_worker_hook) options_.test_worker_hook();
  // Deadlines are re-checked after pickup: a request that expired between
  // flush and evaluation is a typed timeout, not a stale answer.
  const util::Clock::TimePoint now = clock_->now();
  for (PendingPtr& p : batch) {
    if (p->deadline <= now) complete_timeout(std::move(p), true);
  }
  // One batched session call per homogeneous group: batches are coalesced
  // across requests, so a flush can mix query kinds and tiers.  Groups are
  // found by linear scan — a saturated batch is almost always one group
  // (same query, same var, same tier), and the distinct-group count is tiny
  // even when it is not, so this stays allocation-light where a map would
  // pay a node per request.
  struct Group {
    int query;
    int query_var;
    int tier;
    std::vector<std::size_t> indices;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i]) continue;  // timed out above
    const Pending& p = *batch[i];
    const int query = static_cast<int>(p.request.query);
    const int tier = static_cast<int>(p.tier);
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.query == query && g.query_var == p.request.query_var && g.tier == tier) {
        group = &g;
        break;
      }
    }
    if (!group) {
      groups.push_back(Group{query, p.request.query_var, tier, {}});
      group = &groups.back();
      group->indices.reserve(batch.size());
    }
    group->indices.push_back(i);
  }
  if (groups.empty()) return;
  ++counters_.batches_evaluated;
  for (Group& g : groups) evaluate_group(sessions, batch, g.indices);
}

void Server::evaluate_group(WorkerSessions& sessions, Batch& batch,
                            const std::vector<std::size_t>& indices) {
  const Tier tier = batch[indices.front()]->tier;
  const errormodel::QueryType query = batch[indices.front()]->request.query;
  const int query_var = batch[indices.front()]->request.query_var;
  try {
    // serve.worker mirrors batch.worker: a *foreign* exception from the
    // serving thread's evaluation, driven deterministically.
    if (util::fault_point("serve.worker")) {
      throw std::runtime_error("injected fault: serve.worker evaluation failed");
    }
    runtime::InferenceSession& session = sessions.for_tier(tier);
    std::vector<ac::PartialAssignment> evidence;
    evidence.reserve(indices.size());
    for (const std::size_t i : indices) {
      evidence.push_back(std::move(batch[i]->request.evidence));
    }

    std::vector<double> values;
    std::vector<std::vector<double>> posteriors;
    if (query == errormodel::QueryType::kConditional) {
      posteriors = session.conditional(query_var, evidence);
    } else if (query == errormodel::QueryType::kMpe) {
      values = session.mpe(evidence);
    } else {
      values = session.marginal(evidence);
    }
    const std::vector<runtime::QueryProvenance>& provenance = session.last_provenance();

    const util::Clock::TimePoint done = clock_->now();
    // Latencies are recorded before any member completes: a client that
    // observes a completion may submit again immediately, and its admission
    // must see a p99 window that already includes the batch it just waited
    // on (the ManualClock p99-trigger test pins this ordering down).
    std::vector<util::Clock::Duration> latencies;
    latencies.reserve(indices.size());
    for (const std::size_t i : indices) {
      latencies.push_back(done - batch[i]->enqueued);
    }
    latency_.record_many(latencies);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PendingPtr pending = std::move(batch[indices[j]]);
      Response response;
      response.status = Status::kOk;
      if (query == errormodel::QueryType::kConditional) {
        response.posterior = std::move(posteriors[j]);
      } else {
        response.value = values[j];
      }
      response.tier = tier;
      const runtime::QueryProvenance& prov = provenance[j];
      response.served_format = prov.served_format;
      response.escalations = prov.escalations;
      response.flags = prov.flags;
      // The analytic bound travels with the format that licenses it: the
      // degraded rung's configured bound, or the base representation's.
      // An escalated answer served on some other rung carries no bound —
      // better none than a wrong one.
      if (response.served_format) {
        if (tier == Tier::kDegraded && options_.overload.degraded &&
            same_repr(*response.served_format, options_.overload.degraded->repr)) {
          response.error_bound = options_.overload.degraded->error_bound;
        } else if (options_.base_error_bound && options_.session.representation &&
                   same_repr(*response.served_format, *options_.session.representation)) {
          response.error_bound = options_.base_error_bound;
        }
      }
      response.queue_wait = pending->flushed - pending->enqueued;
      response.latency = latencies[j];
      complete(std::move(pending), std::move(response));
    }
  } catch (const std::exception& e) {
    // The whole group shares the failed sweep; each member still completes
    // exactly once, as a typed error, and the worker thread survives.
    for (const std::size_t i : indices) {
      if (!batch[i]) continue;
      complete_rejection(std::move(batch[i]), Status::kError,
                         str_format("serve: worker evaluation failed: %s", e.what()));
    }
  }
}

// ---- shutdown & stats ------------------------------------------------------

void Server::shutdown(bool drain) {
  std::vector<PendingPtr> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_ = drain;
    }
    if (!drain_) {
      while (!queue_.empty()) {
        cancelled.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_deadlines_ = 0;
    }
  }
  cv_batcher_.notify_all();
  cv_not_full_.notify_all();
  cv_work_.notify_all();
  for (PendingPtr& p : cancelled) {
    complete_rejection(std::move(p), Status::kRejectedShutdown,
                       "serve: server shut down before the request was flushed");
  }
  std::lock_guard<std::mutex> join_lock(shutdown_mu_);
  if (joined_) return;
  if (batcher_.joinable()) batcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  joined_ = true;
}

StatsSnapshot Server::stats() const {
  StatsSnapshot s;
  s.submitted = counters_.submitted.load();
  s.completed_ok = counters_.completed_ok.load();
  s.timed_out = counters_.timed_out.load();
  s.timed_out_after_flush = counters_.timed_out_after_flush.load();
  s.rejected_queue_full = counters_.rejected_queue_full.load();
  s.rejected_overload = counters_.rejected_overload.load();
  s.rejected_shutdown = counters_.rejected_shutdown.load();
  s.errors = counters_.errors.load();
  s.degraded_admitted = counters_.degraded_admitted.load();
  s.flushes_by_size = counters_.flushes_by_size.load();
  s.flushes_by_deadline = counters_.flushes_by_deadline.load();
  s.batches_evaluated = counters_.batches_evaluated.load();
  s.double_completions = counters_.double_completions.load();
  s.producers_blocked = counters_.producers_blocked.load();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

}  // namespace problp::serve
