// Serving-layer observability: lock-free counters for every completion
// class, plus a small sliding latency window the overload controller reads
// its p99 from.
//
// The accounting identity the drain tests pin down:
//
//   submitted == completed_ok + timed_out + rejected_queue_full
//              + rejected_overload + rejected_shutdown + errors
//
// holds after shutdown() returns — every request completes exactly once
// (double_completions counts violations of "exactly once"; it must stay 0,
// and the stress/drain tests assert it).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/clock.hpp"

namespace problp::serve {

/// A point-in-time copy of the server's counters.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t timed_out = 0;           ///< expired in queue, never evaluated
  std::uint64_t timed_out_after_flush = 0;  ///< subset of timed_out: expired between flush and eval
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded_admitted = 0;  ///< admitted onto the degraded tier
  std::uint64_t flushes_by_size = 0;
  std::uint64_t flushes_by_deadline = 0;
  std::uint64_t batches_evaluated = 0;
  std::uint64_t double_completions = 0;  ///< exactly-once violations; must be 0
  std::uint64_t producers_blocked = 0;   ///< currently blocked in submit()
  std::uint64_t queue_depth = 0;         ///< current
  std::uint64_t total_completed() const {
    return completed_ok + timed_out + rejected_queue_full + rejected_overload +
           rejected_shutdown + errors;
  }
};

/// The mutable counters (one relaxed atomic each — serving-path increments
/// never contend on a lock).
struct Counters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed_ok{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> timed_out_after_flush{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> degraded_admitted{0};
  std::atomic<std::uint64_t> flushes_by_size{0};
  std::atomic<std::uint64_t> flushes_by_deadline{0};
  std::atomic<std::uint64_t> batches_evaluated{0};
  std::atomic<std::uint64_t> double_completions{0};
  std::atomic<std::uint64_t> producers_blocked{0};
};

/// Sliding window of recent completion latencies; p99() feeds the overload
/// controller's latency trigger.  Writers (workers) and readers (admission)
/// share one small mutex — the window is 256 entries, the critical sections
/// a few loads/stores.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t size = 256) : ring_(size) {}

  void record(util::Clock::Duration d) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[next_++ % ring_.size()] = d;
    if (count_ < ring_.size()) ++count_;
  }

  /// One lock for a whole batch of completions (a worker finishing a group
  /// records every member at once — per-request locking would cost more
  /// than the stores).
  void record_many(const std::vector<util::Clock::Duration>& ds) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (util::Clock::Duration d : ds) {
      ring_[next_++ % ring_.size()] = d;
      if (count_ < ring_.size()) ++count_;
    }
  }

  /// Quantile over the window (0 when empty).  q in [0, 1].
  util::Clock::Duration quantile(double q) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return util::Clock::Duration::zero();
    std::vector<util::Clock::Duration> sorted(ring_.begin(),
                                              ring_.begin() + static_cast<long>(count_));
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = std::min(
        count_ - 1, static_cast<std::size_t>(q * static_cast<double>(count_)));
    return sorted[idx];
  }

  util::Clock::Duration p99() const { return quantile(0.99); }

 private:
  mutable std::mutex mutex_;
  std::vector<util::Clock::Duration> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

}  // namespace problp::serve
