// Configuration of the async serving front-end — every policy the Server
// enforces is explicit here, so a misconfigured serving stack fails at
// construction (validate(), found-vs-expected messages) rather than under
// load.
//
// The three pressure valves, in the order they engage as load rises:
//
//   1. coalescing   — requests wait at most `flush_deadline` to ride a batch
//                     of up to `batch_max` (bigger batches = the SIMD
//                     engines' preferred shape).
//   2. degradation  — past OverloadPolicy::degrade_depth (or an observed-p99
//                     threshold), *new* requests are admitted onto the
//                     configured lower-precision rung: cheaper to serve, and
//                     — this is ProbLP's trick — still carrying the format's
//                     analytic a-priori error bound, so the caller knows
//                     exactly what it traded.
//   3. shedding     — past OverloadPolicy::shed_depth (and always when the
//                     bounded queue itself is full under FullPolicy::kReject,
//                     or stays full past the block timeout under kBlock), new
//                     requests complete immediately with a typed rejection.
//                     The queue never grows without bound.
//
// Degradation is the serving-side dual of the session's escalation fallback
// (runtime/session.hpp FallbackPolicy): escalation spends *more* precision
// on flagged answers after the fact; degradation spends *less* on new
// answers before the fact, trading a known bound for admission under
// overload.  See docs/serving.md.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "runtime/session.hpp"
#include "util/clock.hpp"

namespace problp::serve {

/// The lower-precision rung degraded requests are served on, plus the
/// analytic error bound that makes serving it defensible.
struct DegradedTier {
  Representation repr;
  lowprec::RoundingMode rounding = lowprec::RoundingMode::kNearestEven;
  /// The format's a-priori query-error bound (from the bit-width search /
  /// AnalysisReport), stamped on every degraded answer's provenance.
  double error_bound = 0.0;

  /// The tier an analysis selected: the report's representation with its
  /// plan's predicted bound and the rounding mode the analysis assumed.
  /// Requires a feasible report.
  static DegradedTier from_report(const runtime::CompiledModel& model,
                                  const AnalysisReport& report);
};

struct OverloadPolicy {
  /// Rung new requests are served on while the controller is degrading.
  /// Unset = never degrade (depth/latency thresholds then must be unset
  /// too — validate() rejects a threshold with no rung to degrade to).
  std::optional<DegradedTier> degraded;
  /// Queue depth at or above which new requests are admitted degraded.
  std::size_t degrade_depth = SIZE_MAX;
  /// Observed p99 completion latency (sliding window) above which new
  /// requests are admitted degraded, independent of queue depth.
  std::optional<util::Clock::Duration> degrade_p99;
  /// Queue depth at or above which new requests are shed with a typed
  /// rejection (kRejectedOverload) — degradation's last line.
  std::size_t shed_depth = SIZE_MAX;

  bool enabled() const { return degraded.has_value() || shed_depth != SIZE_MAX; }
};

struct ServerOptions {
  /// Bounded submission-queue capacity (requests submitted but not yet
  /// flushed to a worker).  The hard memory bound: in-flight state never
  /// exceeds capacity + workers' batches.
  std::size_t capacity = 1024;

  /// What submit() does when the queue is full.
  enum class FullPolicy {
    kReject,  ///< complete immediately with kRejectedQueueFull
    kBlock,   ///< block the producer up to block_timeout, then reject
  };
  FullPolicy full_policy = FullPolicy::kReject;
  util::Clock::Duration block_timeout = std::chrono::milliseconds(100);

  /// Coalescing batcher: flush when this many requests are pending...
  std::size_t batch_max = 64;
  /// ...or when the oldest pending request has waited this long.  This is
  /// the p99-latency knob: no request waits in the queue longer than
  /// flush_deadline before dispatch (its own deadline permitting).
  util::Clock::Duration flush_deadline = std::chrono::milliseconds(2);

  /// Worker shards; each owns its InferenceSession pool (base + degraded
  /// tiers), so shards never contend on evaluator scratch state.
  int workers = 1;
  /// Bound on flushed-but-unserved batches (0 = 2 * workers).  When full
  /// the batcher stalls, the submission queue fills, and backpressure
  /// reaches producers — growth stays bounded end to end.
  std::size_t max_pending_batches = 0;

  /// Base-tier backend every worker session is built with (exact double by
  /// default; set `session.representation` to serve low-precision, plus
  /// `session.fallback` for flag-driven escalation).  For serving, prefer
  /// session.batch.num_threads == 1: workers are already the parallelism.
  runtime::SessionOptions session;
  /// Analytic error bound of session.representation, stamped on normal-tier
  /// low-precision answers (exact answers never carry a bound).
  std::optional<double> base_error_bound;

  OverloadPolicy overload;

  /// Deadline/timer domain; null = the process steady clock.  Tests inject
  /// util::ManualClock to drive flush deadlines and timeouts by hand.
  std::shared_ptr<util::Clock> clock;

  /// Test seam: called by a worker when it picks up a batch, *before* the
  /// post-flush deadline re-check — lets tests hold a flushed batch while
  /// they advance the clock.  Never set in production.
  std::function<void()> test_worker_hook;

  /// Throws InvalidArgument (found-vs-expected message) on any
  /// inconsistency; called by the Server constructor.
  void validate() const;
};

}  // namespace problp::serve
