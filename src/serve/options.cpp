#include "serve/options.hpp"

#include "util/strings.hpp"

namespace problp::serve {

DegradedTier DegradedTier::from_report(const runtime::CompiledModel& model,
                                       const AnalysisReport& report) {
  require(report.any_feasible,
          "DegradedTier::from_report: the analysis found no feasible representation — "
          "there is no rung to degrade to");
  DegradedTier tier;
  tier.repr = report.selected;
  if (report.selected.kind == Representation::Kind::kFixed) {
    tier.rounding = model.options().search.fixed_options.rounding;
    tier.error_bound = report.fixed_plan.predicted_bound;
  } else {
    tier.rounding = model.options().search.float_rounding;
    tier.error_bound = report.float_plan.predicted_bound;
  }
  return tier;
}

void ServerOptions::validate() const {
  require(capacity >= 1, str_format("serve: queue capacity: found %zu, expected >= 1", capacity));
  require(batch_max >= 1, str_format("serve: batch_max: found %zu, expected >= 1", batch_max));
  require(batch_max <= capacity,
          str_format("serve: batch_max: found %zu, expected <= capacity (%zu)", batch_max,
                     capacity));
  require(flush_deadline.count() >= 0, "serve: flush_deadline: found negative, expected >= 0");
  require(workers >= 1, str_format("serve: workers: found %d, expected >= 1", workers));
  if (full_policy == FullPolicy::kBlock) {
    require(block_timeout.count() > 0,
            "serve: block_timeout: found <= 0, expected > 0 under FullPolicy::kBlock");
  }
  const bool has_degrade_trigger =
      overload.degrade_depth != SIZE_MAX || overload.degrade_p99.has_value();
  if (has_degrade_trigger) {
    require(overload.degraded.has_value(),
            "serve: overload degrade threshold set but no degraded tier configured: "
            "found no rung, expected OverloadPolicy::degraded");
  }
  if (overload.degraded) {
    if (overload.degraded->repr.kind == Representation::Kind::kFixed) {
      overload.degraded->repr.fixed.validate();
    } else {
      overload.degraded->repr.flt.validate();
    }
  }
  if (overload.degrade_depth != SIZE_MAX) {
    require(overload.degrade_depth <= overload.shed_depth,
            str_format("serve: degrade_depth: found %zu, expected <= shed_depth (%zu)",
                       overload.degrade_depth, overload.shed_depth));
  }
  // The session options the workers will run with are validated by every
  // InferenceSession constructor; re-check the cheap parts here so the
  // failure names the serving stack, not a worker thread.
  require(session.batch.num_threads >= 0,
          str_format("serve: session.batch.num_threads: found %d, expected >= 0",
                     session.batch.num_threads));
}

}  // namespace problp::serve
