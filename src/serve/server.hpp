// Server — the overload-safe async serving front-end over the runtime.
//
// Everything below the runtime seam wants *big batches*: the SoA engines
// amortise the tape sweep over whole evidence vectors (docs/evaluation.md).
// Everything above it produces *single concurrent requests*.  The Server is
// the adapter, built robustness-first:
//
//   producers ──submit()──▶ bounded queue ──batcher──▶ batch queue ──▶ workers
//                (backpressure,            (flush on size            (session
//                 overload admission)       or deadline)              pools)
//
// * Bounded MPSC submission queue.  submit() never grows memory without
//   bound: a full queue either rejects with a typed response
//   (FullPolicy::kReject) or blocks the producer up to a timeout
//   (FullPolicy::kBlock) and then rejects.  The queue doubles as the
//   coalescing buffer, so "queue depth" is exactly the batcher's backlog.
//
// * Coalescing batcher.  One thread cuts the queue into batches of up to
//   batch_max, flushing early when the oldest pending request has waited
//   flush_deadline — the knob that bounds queued latency.  Requests whose
//   own deadline expires while queued are completed with a typed timeout
//   and never evaluated.
//
// * Worker session pools.  Each worker shard owns its InferenceSessions
//   (base tier + degraded tier, built once per thread), re-checks deadlines
//   after pickup, groups a batch by (query kind, query_var, tier), and runs
//   each group through the batched session API — escalation fallback,
//   per-query flags and provenance included.
//
// * Overload controller.  Admission-time policy (see serve/options.hpp):
//   past degrade_depth / degrade_p99, new requests are served on the
//   configured lower-precision rung and their responses carry the rung's
//   format and analytic error bound; past shed_depth they are shed with a
//   typed rejection.  Degradation is decided when a request is *admitted*,
//   so a burst's tail degrades while earlier requests keep full precision.
//
// * Deterministic shutdown.  shutdown(drain=true) stops admission, flushes
//   and evaluates everything queued (deadlines still honoured), joins all
//   threads; drain=false completes queued requests with typed shutdown
//   rejections instead (already-flushed batches still evaluate).  Either
//   way every request completes exactly once — under injected worker
//   faults too (stats().double_completions counts violations; it stays 0).
//
// Fault sites (util/fault_injection.hpp): serve.enqueue forces the
// queue-full rejection path, serve.flush fails a batch mid-flush (its
// requests complete with typed errors), serve.worker throws from a worker
// mid-evaluation (the group completes with typed errors, the worker
// survives).
//
// Thread-safety: submit(), stats() and shutdown() are safe from any thread.
// Completion (future ready / callback invoked) happens on server threads —
// callbacks must not call back into submit() of a server being destroyed.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/options.hpp"
#include "serve/stats.hpp"
#include "serve/types.hpp"

namespace problp::serve {

class Server {
 public:
  /// Validates `options`, starts the batcher and worker threads.  Worker
  /// sessions are constructed inside their threads (engines are lazy, so
  /// startup is cheap until the first batch of each tier).
  Server(std::shared_ptr<const runtime::CompiledModel> model, ServerOptions options = {});

  /// shutdown(true) if the caller has not already shut down.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one request; the returned future becomes ready exactly once
  /// with the terminal Response.  Malformed requests (evidence size
  /// mismatch, bad query_var) throw InvalidArgument immediately — they
  /// never enter the queue.
  std::future<Response> submit(Request request);

  /// Callback flavour: `done` is invoked exactly once, on a server thread
  /// (or inline on the submitting thread for immediate rejections).
  void submit(Request request, std::function<void(Response)> done);

  /// Stops admission and joins every thread.  drain=true evaluates the
  /// backlog (per-request deadlines still honoured); drain=false completes
  /// queued-but-unflushed requests with kRejectedShutdown.  Idempotent;
  /// concurrent callers block until the first call finishes.
  void shutdown(bool drain = true);

  StatsSnapshot stats() const;

  const ServerOptions& options() const { return options_; }
  const std::shared_ptr<const runtime::CompiledModel>& model() const { return model_; }

 private:
  /// One queued request: the caller's Request plus its completion channel
  /// and admission-time stamps.  Owned by exactly one stage at a time
  /// (queue -> batch -> worker), completed exactly once.  Exactly one
  /// completion channel is engaged: the promise for the future flavour, the
  /// callback for the callback flavour — a std::promise allocates shared
  /// state and crosses a mutex on set_value, which is most of the serving
  /// stack's per-request cost, so the callback path never constructs one.
  struct Pending {
    Request request;
    std::optional<std::promise<Response>> promise;
    std::function<void(Response)> callback;
    util::Clock::TimePoint enqueued{};
    util::Clock::TimePoint deadline = util::Clock::TimePoint::max();
    util::Clock::TimePoint flushed{};  ///< set when the batcher cuts it into a batch
    Tier tier = Tier::kNormal;
    std::atomic<bool> completed{false};
  };
  using PendingPtr = std::unique_ptr<Pending>;
  using Batch = std::vector<PendingPtr>;

  /// Per-worker session pool: base tier always, degraded tier lazily on the
  /// first degraded batch (sessions are scratch-heavy; don't pay for a tier
  /// a shard never serves).
  struct WorkerSessions;

  std::future<Response> submit_internal(Request request, std::function<void(Response)> done);

  // ---- completion funnel (never called with mu_ held) ----------------------
  /// Sets the promise / invokes the callback exactly once; counts a
  /// double_completion instead of completing twice.
  void complete(PendingPtr pending, Response&& response);
  void complete_rejection(PendingPtr pending, Status status, const std::string& message);
  void complete_timeout(PendingPtr pending, bool after_flush);

  /// With mu_ held (via `lock`): cuts up to batch_max queued requests into
  /// a batch stamped `flushed = now` and dispatches it to the batch queue —
  /// or, when the serve.flush fault fires, completes every member with a
  /// typed error.  Briefly drops the lock to complete/notify; re-held on
  /// return.  Callers check queue_/batches_ preconditions.  Shared by the
  /// batcher and by submit's inline size-cut so flush semantics (counters,
  /// fault site, backpressure notifies) cannot drift between the two.
  void flush_locked(std::unique_lock<std::mutex>& lock, util::Clock::TimePoint now, bool by_size);

  void batcher_main();
  void worker_main();
  void process_batch(WorkerSessions& sessions, Batch batch);
  /// Evaluates one homogeneous group of `batch` (same query/query_var/tier)
  /// and completes its members; on any exception the whole group completes
  /// with typed kError responses.
  void evaluate_group(WorkerSessions& sessions, Batch& batch,
                      const std::vector<std::size_t>& indices);

  /// Admission-time tier decision (call with mu_ held).
  Tier admission_tier(std::size_t depth) const;

  std::shared_ptr<const runtime::CompiledModel> model_;
  ServerOptions options_;
  std::shared_ptr<util::Clock> clock_;
  std::size_t max_pending_batches_;

  mutable std::mutex mu_;
  std::deque<PendingPtr> queue_;  ///< the bounded MPSC submission/coalescing buffer
  std::size_t queue_deadlines_ = 0;  ///< queue_ entries with a finite deadline
  std::deque<Batch> batches_;    ///< flushed, awaiting a worker (bounded)
  bool stopping_ = false;
  bool drain_ = true;
  bool batcher_done_ = false;
  std::condition_variable cv_batcher_;   ///< queue state changed
  std::condition_variable cv_not_full_;  ///< space freed (blocked producers)
  std::condition_variable cv_work_;      ///< batch queue state changed

  std::mutex shutdown_mu_;  ///< serialises shutdown(); taken before joins
  bool joined_ = false;

  Counters counters_;
  LatencyWindow latency_;

  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace problp::serve
