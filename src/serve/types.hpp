// Request/response vocabulary of the async serving front-end (serve/server.hpp).
//
// A Request names one inference query (marginal / conditional / MPE) with
// its evidence and an optional relative deadline.  Every submitted request
// completes exactly once with a Response whose Status says how it ended:
//
//   kOk                 evaluated; value/posterior + provenance are valid
//   kTimeout            its deadline passed before evaluation started — the
//                       request was *never* evaluated, by contract
//   kRejectedQueueFull  backpressure: the bounded queue was full (or stayed
//                       full past the block timeout under FullPolicy::kBlock)
//   kRejectedOverload   the overload controller shed it (queue depth crossed
//                       OverloadPolicy::shed_depth)
//   kRejectedShutdown   submitted after shutdown began, or cancelled by a
//                       non-draining shutdown before it was flushed
//   kError              evaluation failed (worker fault); message has detail
//
// Degradation provenance: an answer served on the overload controller's
// lower-precision rung carries tier == kDegraded, the served format, and the
// format's *analytic* error bound (ProbLP's a-priori guarantee — the reason
// degrading is safe: the answer is cheaper but its worst-case error is still
// known).  See docs/serving.md for the taxonomy table.
//
// The typed-error mirror: callers that prefer exceptions over status codes
// use value_or_throw() / posterior_or_throw(), which throw the matching
// problp::Error subclass (QueueFullError, OverloadShedError,
// DeadlineExceededError, ShutdownError, ServeError).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ac/evaluator.hpp"
#include "errormodel/query_bounds.hpp"
#include "lowprec/format.hpp"
#include "problp/report.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace problp::serve {

/// Family root of the serving layer's typed failures.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// Backpressure: the bounded submission queue rejected the request.
class QueueFullError : public ServeError {
 public:
  explicit QueueFullError(const std::string& what) : ServeError(what) {}
};

/// The overload controller shed the request past its shedding threshold.
class OverloadShedError : public ServeError {
 public:
  explicit OverloadShedError(const std::string& what) : ServeError(what) {}
};

/// The request's deadline passed before evaluation started.
class DeadlineExceededError : public ServeError {
 public:
  explicit DeadlineExceededError(const std::string& what) : ServeError(what) {}
};

/// The server was shutting down.
class ShutdownError : public ServeError {
 public:
  explicit ShutdownError(const std::string& what) : ServeError(what) {}
};

/// One inference request.  `evidence` must be sized to the model's variable
/// count; `query_var` is required (and must be unobserved) for conditional
/// queries.  `timeout` is relative to submission; unset means no deadline.
struct Request {
  errormodel::QueryType query = errormodel::QueryType::kMarginal;
  ac::PartialAssignment evidence;
  int query_var = -1;
  std::optional<util::Clock::Duration> timeout;
};

enum class Status {
  kOk,
  kTimeout,
  kRejectedQueueFull,
  kRejectedOverload,
  kRejectedShutdown,
  kError,
};

const char* to_string(Status s);

/// Which serving tier computed an answer: the configured base backend, or
/// the overload controller's degraded (lower-precision) rung.
enum class Tier { kNormal, kDegraded };

const char* to_string(Tier t);

struct Response {
  Status status = Status::kError;
  /// Root value for marginal/MPE queries (undefined otherwise).
  double value = 0.0;
  /// Posterior per state for conditional queries; empty when Pr(e) was not
  /// positive in the serving format (check flags.underflow to distinguish
  /// "flushed to zero" from "structurally impossible").
  std::vector<double> posterior;

  // ---- provenance (kOk only) ----------------------------------------------
  Tier tier = Tier::kNormal;
  /// Format the answer was computed in; nullopt = exact IEEE double.
  std::optional<Representation> served_format;
  /// The served format's analytic a-priori error bound, when the server was
  /// configured with one (always set for degraded answers — the bound is
  /// what licenses serving them).  nullopt for exact answers.
  std::optional<double> error_bound;
  /// Fallback-ladder climbs the base session performed (see runtime docs).
  int escalations = 0;
  /// Sticky flags of the serving datapath (clean on the exact backend).
  lowprec::ArithFlags flags;

  /// Detail for non-kOk statuses (injected-fault site, rejection reason...).
  std::string message;

  /// Time spent queued before evaluation (or before the terminal non-kOk
  /// completion), and submission-to-completion latency.
  util::Clock::Duration queue_wait{};
  util::Clock::Duration latency{};

  bool ok() const { return status == Status::kOk; }

  /// The marginal/MPE value, or throws the Status's typed error.
  double value_or_throw() const;
  /// The posterior, or throws the Status's typed error.
  const std::vector<double>& posterior_or_throw() const;
  /// Throws the typed error matching a non-kOk status; no-op when kOk.
  void throw_if_failed() const;
};

}  // namespace problp::serve
