#include "compile/ve_compiler.hpp"

#include <algorithm>

#include "bn/factor.hpp"

namespace problp::compile {

using ac::Circuit;
using ac::NodeId;
using bn::BayesianNetwork;
using bn::FactorTable;

ac::Circuit compile_network(const BayesianNetwork& network, const CompileOptions& options) {
  network.validate();
  const int n = network.num_variables();
  std::vector<int> cards;
  cards.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) cards.push_back(network.cardinality(v));
  Circuit circuit(cards);

  // 1. CPT factors with indicators multiplied in.
  std::vector<FactorTable<NodeId>> factors;
  factors.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const bn::Cpt& c = network.cpt(v);
    std::vector<int> scope = c.parents;
    scope.push_back(v);
    std::sort(scope.begin(), scope.end());
    std::vector<int> scope_cards;
    scope_cards.reserve(scope.size());
    for (int s : scope) scope_cards.push_back(network.cardinality(s));
    FactorTable<NodeId> f(scope, scope_cards);

    std::vector<int> full(static_cast<std::size_t>(n), 0);
    std::vector<int> pstates(c.parents.size(), 0);
    const int child_card = network.cardinality(v);
    bool done = false;
    while (!done) {
      for (std::size_t i = 0; i < c.parents.size(); ++i) {
        full[static_cast<std::size_t>(c.parents[i])] = pstates[i];
      }
      for (int s = 0; s < child_card; ++s) {
        full[static_cast<std::size_t>(v)] = s;
        const NodeId lambda = circuit.add_indicator(v, s);
        const NodeId theta = circuit.add_parameter(network.cpt_value(v, s, pstates));
        f[f.index_of(full)] = circuit.add_prod({lambda, theta});
      }
      done = true;
      for (std::size_t i = pstates.size(); i > 0; --i) {
        if (++pstates[i - 1] < network.cardinality(c.parents[i - 1])) {
          done = false;
          break;
        }
        pstates[i - 1] = 0;
      }
      if (c.parents.empty()) done = true;
    }
    factors.push_back(std::move(f));
  }

  // 2. Eliminate every variable, recording products and sums as nodes.
  const auto mul2 = [&](NodeId a, NodeId b) { return circuit.add_prod({a, b}); };
  const auto sum_group = [&](std::span<const NodeId> group) {
    return circuit.add_sum(std::vector<NodeId>(group.begin(), group.end()));
  };
  for (int v : bn::elimination_order(network, options.heuristic)) {
    std::vector<FactorTable<NodeId>> touching;
    for (auto it = factors.begin(); it != factors.end();) {
      const auto& vs = it->vars();
      if (std::find(vs.begin(), vs.end(), v) != vs.end()) {
        touching.push_back(std::move(*it));
        it = factors.erase(it);
      } else {
        ++it;
      }
    }
    require(!touching.empty(), "compile_network: variable missing from all factors");
    FactorTable<NodeId> acc = std::move(touching.front());
    for (std::size_t i = 1; i < touching.size(); ++i) {
      acc = FactorTable<NodeId>::product(acc, touching[i], mul2);
    }
    factors.push_back(acc.eliminate(v, sum_group));
  }

  // 3. Multiply the leftover scalars into the root.
  std::vector<NodeId> scalars;
  scalars.reserve(factors.size());
  for (const auto& f : factors) {
    require(f.is_scalar(), "compile_network: non-scalar factor after elimination");
    scalars.push_back(f[0]);
  }
  circuit.set_root(scalars.size() == 1 ? scalars.front() : circuit.add_prod(std::move(scalars)));
  return circuit;
}

ac::PartialAssignment to_assignment(const bn::Evidence& evidence) {
  return ac::PartialAssignment(evidence.begin(), evidence.end());
}

}  // namespace problp::compile
