// Bayesian network -> arithmetic circuit compilation.
//
// The paper compiles its networks with the ACE tool; we reproduce the same
// artefact — a sum/product DAG over indicator (λ) and parameter (θ) leaves
// computing the network polynomial — by *recording the trace of variable
// elimination* as circuit nodes:
//
//   1. every CPT becomes a factor whose entries are PROD(λ_{X=x}, θ_{x|u})
//      nodes (indicators multiplied into their variable's factor);
//   2. eliminating a variable multiplies the factors that mention it
//      (entrywise PROD nodes) and sums it out (n-ary SUM nodes);
//   3. after all variables are eliminated the remaining scalars multiply
//      into the root.
//
// The resulting circuit evaluates Pr(e) for *any* evidence by setting the
// indicators (paper §2): λ contradicting e to 0, all others to 1 — so a
// single compiled circuit serves marginal, conditional and MPE queries.
#pragma once

#include "ac/circuit.hpp"
#include "ac/evaluator.hpp"
#include "bn/network.hpp"
#include "bn/variable_elimination.hpp"

namespace problp::compile {

struct CompileOptions {
  bn::EliminationHeuristic heuristic = bn::EliminationHeuristic::kMinFill;
};

/// Compiles the network; circuit variables use the network's variable ids.
ac::Circuit compile_network(const bn::BayesianNetwork& network,
                            const CompileOptions& options = {});

/// bn::Evidence and ac::PartialAssignment have identical layouts; this keeps
/// the conversion explicit at module boundaries.
ac::PartialAssignment to_assignment(const bn::Evidence& evidence);

}  // namespace problp::compile
