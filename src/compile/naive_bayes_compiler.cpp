#include "compile/naive_bayes_compiler.hpp"

namespace problp::compile {

using ac::Circuit;
using ac::NodeId;

bool is_naive_bayes(const bn::BayesianNetwork& network, int class_var) {
  if (class_var < 0 || class_var >= network.num_variables()) return false;
  if (!network.parents(class_var).empty()) return false;
  for (int v = 0; v < network.num_variables(); ++v) {
    if (v == class_var) continue;
    const auto& ps = network.parents(v);
    if (ps.size() != 1 || ps.front() != class_var) return false;
  }
  return true;
}

ac::Circuit compile_naive_bayes(const bn::BayesianNetwork& network, int class_var) {
  network.validate();
  require(is_naive_bayes(network, class_var),
          "compile_naive_bayes: network is not Naive-Bayes-structured");
  const int n = network.num_variables();
  std::vector<int> cards;
  cards.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) cards.push_back(network.cardinality(v));
  Circuit circuit(cards);

  std::vector<NodeId> class_terms;
  const int num_classes = network.cardinality(class_var);
  class_terms.reserve(static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    std::vector<NodeId> product;
    product.push_back(circuit.add_indicator(class_var, c));
    product.push_back(circuit.add_parameter(network.cpt_value(class_var, c, {})));
    for (int v = 0; v < n; ++v) {
      if (v == class_var) continue;
      std::vector<NodeId> terms;
      const int card = network.cardinality(v);
      terms.reserve(static_cast<std::size_t>(card));
      for (int s = 0; s < card; ++s) {
        const NodeId lambda = circuit.add_indicator(v, s);
        const NodeId theta = circuit.add_parameter(network.cpt_value(v, s, {c}));
        terms.push_back(circuit.add_prod({lambda, theta}));
      }
      product.push_back(circuit.add_sum(std::move(terms)));
    }
    class_terms.push_back(circuit.add_prod(std::move(product)));
  }
  circuit.set_root(circuit.add_sum(std::move(class_terms)));
  return circuit;
}

}  // namespace problp::compile
