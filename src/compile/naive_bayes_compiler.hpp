// Direct AC construction for Naive-Bayes-structured networks — the shape of
// the paper's HAR / UNIMIB / UIWADS benchmarks (§4: "we trained Naive Bayes
// classifier[s]").
//
// The circuit is the textbook NB network polynomial,
//
//   root = Σ_c  λ_{C=c} · θ_c · Π_i ( Σ_v λ_{F_i=v} · θ_{v|c} ) ,
//
// which is smaller and shallower than what generic elimination produces and
// matches the structure ProbLP's intro example describes.
#pragma once

#include "ac/circuit.hpp"
#include "bn/network.hpp"

namespace problp::compile {

/// `class_var` must be parentless and the sole parent of every other
/// variable; throws InvalidArgument otherwise.
ac::Circuit compile_naive_bayes(const bn::BayesianNetwork& network, int class_var);

/// Checks the structural requirement above.
bool is_naive_bayes(const bn::BayesianNetwork& network, int class_var);

}  // namespace problp::compile
