#include "ac/tape.hpp"

#include <algorithm>
#include <numeric>

#include "ac/kernel_schedule.hpp"
#include "ac/tape_layout.hpp"

namespace problp::ac {

CircuitTape CircuitTape::compile(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "CircuitTape: circuit has no root");
  const std::size_t n = circuit.num_nodes();
  CircuitTape tape;
  tape.root_ = circuit.root();
  tape.cardinalities_ = circuit.cardinalities();

  // Built in owned vectors, moved into the (possibly view-backed elsewhere)
  // ArrayStore members at the end.
  std::vector<NodeKind> kinds(n);
  std::vector<std::int32_t> child_offsets(n + 1, 0);
  std::vector<NodeId> children;
  std::vector<double> base_values(n, 0.0);
  std::vector<std::int32_t> ind_var(n, -1);
  std::vector<std::int32_t> ind_state(n, -1);
  std::vector<NodeId> op_ids, param_ids, indicator_ids;
  std::vector<double> param_values;

  // (var, state) -> NodeId index, dense over the cardinalities.
  std::vector<std::int32_t> var_offsets(tape.cardinalities_.size() + 1, 0);
  for (std::size_t v = 0; v < tape.cardinalities_.size(); ++v) {
    var_offsets[v + 1] = var_offsets[v] + tape.cardinalities_[v];
  }
  std::vector<NodeId> indicator_index(
      static_cast<std::size_t>(var_offsets[tape.cardinalities_.size()]), kInvalidNode);

  std::size_t num_edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = circuit.node(static_cast<NodeId>(i));
    kinds[i] = node.kind;
    switch (node.kind) {
      case NodeKind::kIndicator: {
        const std::size_t slot =
            static_cast<std::size_t>(var_offsets[static_cast<std::size_t>(node.var)] + node.state);
        require(indicator_index[slot] == kInvalidNode,
                "CircuitTape: duplicate indicator leaf for one (var, state)");
        indicator_index[slot] = static_cast<NodeId>(i);
        ind_var[i] = node.var;
        ind_state[i] = node.state;
        base_values[i] = 1.0;
        indicator_ids.push_back(static_cast<NodeId>(i));
        break;
      }
      case NodeKind::kParameter:
        base_values[i] = node.value;
        param_ids.push_back(static_cast<NodeId>(i));
        param_values.push_back(node.value);
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax:
        require(!node.children.empty(), "CircuitTape: operator node has no children");
        for (NodeId c : node.children) {
          require(c >= 0 && static_cast<std::size_t>(c) < i,
                  "CircuitTape: children must precede parents");
        }
        num_edges += node.children.size();
        op_ids.push_back(static_cast<NodeId>(i));
        break;
    }
  }

  children.reserve(num_edges);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = circuit.node(static_cast<NodeId>(i));
    for (NodeId c : node.children) children.push_back(c);
    child_offsets[i + 1] = child_offsets[i] + static_cast<std::int32_t>(node.children.size());
  }

  tape.kinds_ = std::move(kinds);
  tape.child_offsets_ = std::move(child_offsets);
  tape.children_ = std::move(children);
  tape.base_values_ = std::move(base_values);
  tape.ind_var_ = std::move(ind_var);
  tape.ind_state_ = std::move(ind_state);
  tape.op_ids_ = std::move(op_ids);
  tape.param_ids_ = std::move(param_ids);
  tape.param_values_ = std::move(param_values);
  tape.indicator_ids_ = std::move(indicator_ids);
  tape.var_offsets_ = std::move(var_offsets);
  tape.indicator_index_ = std::move(indicator_index);

  tape.layout_ = std::make_shared<const TapeLayout>(TapeLayout::compile(tape));
  tape.schedule_ =
      std::make_shared<const KernelSchedule>(KernelSchedule::compile(tape, *tape.layout_));
  return tape;
}

CircuitTape CircuitTape::adopt(Arrays arrays, NodeId root, std::vector<int> cardinalities,
                               std::shared_ptr<const TapeLayout> layout,
                               std::shared_ptr<const KernelSchedule> layout_schedule) {
  const std::size_t n = arrays.kinds.size();
  require(n > 0, "CircuitTape::adopt: empty tape");
  require(root >= 0 && static_cast<std::size_t>(root) < n,
          "CircuitTape::adopt: root out of range");
  require(arrays.child_offsets.size() == n + 1 && arrays.base_values.size() == n &&
              arrays.ind_var.size() == n && arrays.ind_state.size() == n,
          "CircuitTape::adopt: per-node arrays disagree in size");
  require(arrays.children.size() ==
              static_cast<std::size_t>(arrays.child_offsets[arrays.child_offsets.size() - 1]),
          "CircuitTape::adopt: child offsets do not cover the edge array");
  require(arrays.param_ids.size() == arrays.param_values.size(),
          "CircuitTape::adopt: parameter arrays disagree in size");
  require(arrays.op_ids.size() + arrays.param_ids.size() + arrays.indicator_ids.size() == n,
          "CircuitTape::adopt: id partitions do not cover the tape");
  require(arrays.var_offsets.size() == cardinalities.size() + 1,
          "CircuitTape::adopt: variable offsets disagree with cardinalities");
  require(arrays.indicator_index.size() ==
              static_cast<std::size_t>(arrays.var_offsets[cardinalities.size()]),
          "CircuitTape::adopt: indicator index does not cover the state space");
  require(layout != nullptr && layout_schedule != nullptr,
          "CircuitTape::adopt: layout and layout schedule are required");
  require(layout->slot_of().size() == n && layout->op_order().size() == arrays.op_ids.size(),
          "CircuitTape::adopt: layout does not match the tape shape");
  require(layout_schedule->num_ops() == arrays.op_ids.size() &&
              layout_schedule->num_rows() == layout->num_slots(),
          "CircuitTape::adopt: kernel schedule does not match the layout");

  CircuitTape tape;
  tape.kinds_ = std::move(arrays.kinds);
  tape.child_offsets_ = std::move(arrays.child_offsets);
  tape.children_ = std::move(arrays.children);
  tape.base_values_ = std::move(arrays.base_values);
  tape.ind_var_ = std::move(arrays.ind_var);
  tape.ind_state_ = std::move(arrays.ind_state);
  tape.op_ids_ = std::move(arrays.op_ids);
  tape.param_ids_ = std::move(arrays.param_ids);
  tape.param_values_ = std::move(arrays.param_values);
  tape.indicator_ids_ = std::move(arrays.indicator_ids);
  tape.var_offsets_ = std::move(arrays.var_offsets);
  tape.indicator_index_ = std::move(arrays.indicator_index);
  tape.root_ = root;
  tape.cardinalities_ = std::move(cardinalities);
  tape.layout_ = std::move(layout);
  tape.schedule_ = std::move(layout_schedule);
  return tape;
}

void CircuitTape::resolve_observed(const PartialAssignment& assignment,
                                   std::vector<std::int32_t>& observed) const {
  ac::resolve_observed(assignment, cardinalities_, observed);
}

void CircuitTape::evaluate_all_double(const PartialAssignment& assignment,
                                      std::vector<double>& values) const {
  thread_local std::vector<std::int32_t> observed;
  resolve_observed(assignment, observed);
  // assign reuses capacity: a memcpy, no alloc in steady state
  values.assign(base_values_.begin(), base_values_.end());
  zero_contradicted(observed, values.data(), 1, 0);
  for (const NodeId id : op_ids_) {
    const std::size_t i = static_cast<std::size_t>(id);
    const std::int32_t begin = child_offsets_[i];
    const std::int32_t end = child_offsets_[i + 1];
    double acc = values[static_cast<std::size_t>(children_[static_cast<std::size_t>(begin)])];
    switch (kinds_[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc += values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])];
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc *= values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])];
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc = std::max(acc,
                         values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids_
    }
    values[i] = acc;
  }
}

double CircuitTape::evaluate(const PartialAssignment& assignment,
                             std::vector<double>& values) const {
  evaluate_all_double(assignment, values);
  return values[static_cast<std::size_t>(root_)];
}

}  // namespace problp::ac
