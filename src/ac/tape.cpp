#include "ac/tape.hpp"

#include <algorithm>
#include <numeric>

#include "ac/tape_layout.hpp"

namespace problp::ac {

CircuitTape CircuitTape::compile(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "CircuitTape: circuit has no root");
  const std::size_t n = circuit.num_nodes();
  CircuitTape tape;
  tape.root_ = circuit.root();
  tape.cardinalities_ = circuit.cardinalities();

  tape.kinds_.resize(n);
  tape.child_offsets_.resize(n + 1, 0);
  tape.base_values_.resize(n, 0.0);
  tape.ind_var_.resize(n, -1);
  tape.ind_state_.resize(n, -1);

  // (var, state) -> NodeId index, dense over the cardinalities.
  tape.var_offsets_.resize(tape.cardinalities_.size() + 1, 0);
  for (std::size_t v = 0; v < tape.cardinalities_.size(); ++v) {
    tape.var_offsets_[v + 1] = tape.var_offsets_[v] + tape.cardinalities_[v];
  }
  tape.indicator_index_.assign(
      static_cast<std::size_t>(tape.var_offsets_[tape.cardinalities_.size()]), kInvalidNode);

  std::size_t num_edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = circuit.node(static_cast<NodeId>(i));
    tape.kinds_[i] = node.kind;
    switch (node.kind) {
      case NodeKind::kIndicator: {
        const std::size_t slot =
            static_cast<std::size_t>(tape.var_offsets_[static_cast<std::size_t>(node.var)] +
                                     node.state);
        require(tape.indicator_index_[slot] == kInvalidNode,
                "CircuitTape: duplicate indicator leaf for one (var, state)");
        tape.indicator_index_[slot] = static_cast<NodeId>(i);
        tape.ind_var_[i] = node.var;
        tape.ind_state_[i] = node.state;
        tape.base_values_[i] = 1.0;
        tape.indicator_ids_.push_back(static_cast<NodeId>(i));
        break;
      }
      case NodeKind::kParameter:
        tape.base_values_[i] = node.value;
        tape.param_ids_.push_back(static_cast<NodeId>(i));
        tape.param_values_.push_back(node.value);
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax:
        require(!node.children.empty(), "CircuitTape: operator node has no children");
        for (NodeId c : node.children) {
          require(c >= 0 && static_cast<std::size_t>(c) < i,
                  "CircuitTape: children must precede parents");
        }
        num_edges += node.children.size();
        tape.op_ids_.push_back(static_cast<NodeId>(i));
        break;
    }
  }

  tape.children_.reserve(num_edges);
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = circuit.node(static_cast<NodeId>(i));
    for (NodeId c : node.children) tape.children_.push_back(c);
    tape.child_offsets_[i + 1] =
        tape.child_offsets_[i] + static_cast<std::int32_t>(node.children.size());
  }
  tape.layout_ = std::make_shared<const TapeLayout>(TapeLayout::compile(tape));
  return tape;
}

void CircuitTape::resolve_observed(const PartialAssignment& assignment,
                                   std::vector<std::int32_t>& observed) const {
  ac::resolve_observed(assignment, cardinalities_, observed);
}

void CircuitTape::evaluate_all_double(const PartialAssignment& assignment,
                                      std::vector<double>& values) const {
  thread_local std::vector<std::int32_t> observed;
  resolve_observed(assignment, observed);
  values = base_values_;  // vector assign reuses capacity: a memcpy, no alloc
  zero_contradicted(observed, values.data(), 1, 0);
  for (const NodeId id : op_ids_) {
    const std::size_t i = static_cast<std::size_t>(id);
    const std::int32_t begin = child_offsets_[i];
    const std::int32_t end = child_offsets_[i + 1];
    double acc = values[static_cast<std::size_t>(children_[static_cast<std::size_t>(begin)])];
    switch (kinds_[i]) {
      case NodeKind::kSum:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc += values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])];
        }
        break;
      case NodeKind::kProd:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc *= values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])];
        }
        break;
      case NodeKind::kMax:
        for (std::int32_t k = begin + 1; k < end; ++k) {
          acc = std::max(acc,
                         values[static_cast<std::size_t>(children_[static_cast<std::size_t>(k)])]);
        }
        break;
      default:
        break;  // leaves never appear in op_ids_
    }
    values[i] = acc;
  }
}

double CircuitTape::evaluate(const PartialAssignment& assignment,
                             std::vector<double>& values) const {
  evaluate_all_double(assignment, values);
  return values[static_cast<std::size_t>(root_)];
}

}  // namespace problp::ac
