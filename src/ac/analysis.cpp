#include "ac/analysis.hpp"

#include <algorithm>

#include "ac/evaluator.hpp"

namespace problp::ac {

std::vector<double> max_value_analysis(const Circuit& circuit) {
  return evaluate_all_double(circuit, all_indicators_one(circuit));
}

std::vector<double> min_value_analysis(const Circuit& circuit) {
  // Smallest positive outcome of a sum: exactly one (the smallest positive)
  // term survives; zero children cannot contribute.  MAX uses the same rule:
  // when the max is positive, some child is positive and at least its own
  // minimum (taking the max of minima would be wrong — an indicator can
  // zero the larger branch).  Both rules are MinValueOps folds.
  return evaluate_all(circuit, all_indicators_one(circuit), MinValueOps{});
}

RangeAnalysis analyze_range(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "analyze_range: circuit has no root");
  RangeAnalysis out;
  out.max_value = max_value_analysis(circuit);
  out.min_value = min_value_analysis(circuit);
  out.root_max = out.max_value[static_cast<std::size_t>(circuit.root())];
  out.root_min = out.min_value[static_cast<std::size_t>(circuit.root())];
  return out;
}

}  // namespace problp::ac
