#include "ac/analysis.hpp"

#include <algorithm>

#include "ac/evaluator.hpp"

namespace problp::ac {

std::vector<double> max_value_analysis(const Circuit& circuit) {
  return evaluate_all_double(circuit, all_indicators_one(circuit));
}

std::vector<double> min_value_analysis(const Circuit& circuit) {
  std::vector<double> mins;
  mins.reserve(circuit.num_nodes());
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator:
        mins.push_back(1.0);  // the positive value an indicator can take
        break;
      case NodeKind::kParameter:
        mins.push_back(n.value);
        break;
      case NodeKind::kProd: {
        double v = 1.0;
        for (NodeId c : n.children) v *= mins[static_cast<std::size_t>(c)];
        mins.push_back(v);
        break;
      }
      case NodeKind::kSum: {
        // Smallest positive outcome: exactly one (the smallest positive)
        // term survives.  Zero children cannot contribute a positive value.
        double v = 0.0;
        for (NodeId c : n.children) {
          const double m = mins[static_cast<std::size_t>(c)];
          if (m > 0.0 && (v == 0.0 || m < v)) v = m;
        }
        mins.push_back(v);
        break;
      }
      case NodeKind::kMax: {
        // Same rule as sum: when the max is positive, some child is
        // positive and at least its own minimum, so min over positive
        // child minima is a sound lower bound.  (Taking the max of minima
        // would be wrong: an indicator can zero the larger branch.)
        double v = 0.0;
        for (NodeId c : n.children) {
          const double m = mins[static_cast<std::size_t>(c)];
          if (m > 0.0 && (v == 0.0 || m < v)) v = m;
        }
        mins.push_back(v);
        break;
      }
    }
  }
  return mins;
}

RangeAnalysis analyze_range(const Circuit& circuit) {
  require(circuit.root() != kInvalidNode, "analyze_range: circuit has no root");
  RangeAnalysis out;
  out.max_value = max_value_analysis(circuit);
  out.min_value = min_value_analysis(circuit);
  out.root_max = out.max_value[static_cast<std::size_t>(circuit.root())];
  out.root_min = out.min_value[static_cast<std::size_t>(circuit.root())];
  return out;
}

}  // namespace problp::ac
