#include "ac/kernel_schedule.hpp"

namespace problp::ac {

namespace {

KernelSegment::Kind fanin2_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSum:
      return KernelSegment::Kind::kSum2;
    case NodeKind::kProd:
      return KernelSegment::Kind::kProd2;
    case NodeKind::kMax:
      return KernelSegment::Kind::kMax2;
    default:
      return KernelSegment::Kind::kGeneric;  // leaves never appear in op_ids
  }
}

}  // namespace

KernelSchedule KernelSchedule::compile(const CircuitTape& tape) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = tape.op_ids();

  KernelSchedule schedule;
  schedule.out_.reserve(ops.size());
  schedule.lhs_.reserve(ops.size());
  schedule.rhs_.reserve(ops.size());

  for (std::size_t p = 0; p < ops.size(); ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    const bool fanin2 = (ce - cb) == 2;
    const KernelSegment::Kind kind =
        fanin2 ? fanin2_kind(kinds[i]) : KernelSegment::Kind::kGeneric;

    if (fanin2) {
      const std::uint32_t at = static_cast<std::uint32_t>(schedule.out_.size());
      schedule.out_.push_back(static_cast<std::int32_t>(ops[p]));
      schedule.lhs_.push_back(static_cast<std::int32_t>(children[static_cast<std::size_t>(cb)]));
      schedule.rhs_.push_back(
          static_cast<std::int32_t>(children[static_cast<std::size_t>(cb) + 1]));
      if (!schedule.segments_.empty() && schedule.segments_.back().kind == kind) {
        ++schedule.segments_.back().end;
      } else {
        schedule.segments_.push_back(KernelSegment{kind, at, at + 1});
      }
    } else {
      ++schedule.num_generic_ops_;
      if (!schedule.segments_.empty() &&
          schedule.segments_.back().kind == KernelSegment::Kind::kGeneric) {
        ++schedule.segments_.back().end;
      } else {
        const std::uint32_t at = static_cast<std::uint32_t>(p);
        schedule.segments_.push_back(
            KernelSegment{KernelSegment::Kind::kGeneric, at, at + 1});
      }
    }
  }
  return schedule;
}

}  // namespace problp::ac
