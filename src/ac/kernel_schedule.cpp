#include "ac/kernel_schedule.hpp"

#include "ac/tape_layout.hpp"

namespace problp::ac {

namespace {

KernelSegment::Kind fanin2_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSum:
      return KernelSegment::Kind::kSum2;
    case NodeKind::kProd:
      return KernelSegment::Kind::kProd2;
    case NodeKind::kMax:
      return KernelSegment::Kind::kMax2;
    default:
      return KernelSegment::Kind::kGeneric;  // leaves never appear in op_ids
  }
}

}  // namespace

KernelSchedule KernelSchedule::compile(const CircuitTape& tape) {
  return compile_impl(tape, nullptr);
}

KernelSchedule KernelSchedule::compile(const CircuitTape& tape, const TapeLayout& layout) {
  return compile_impl(tape, &layout);
}

KernelSchedule KernelSchedule::compile_impl(const CircuitTape& tape, const TapeLayout* layout) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = layout != nullptr ? layout->op_order() : tape.op_ids();
  const std::int32_t* slot_of = layout != nullptr ? layout->slot_of().data() : nullptr;
  const auto row = [slot_of](NodeId id) {
    return slot_of == nullptr ? static_cast<std::int32_t>(id)
                              : slot_of[static_cast<std::size_t>(id)];
  };

  KernelSchedule schedule;
  schedule.num_rows_ = layout != nullptr ? layout->num_slots() : tape.num_nodes();
  // Built in owned vectors, moved into the (possibly view-backed elsewhere)
  // ArrayStore members at the end.
  std::vector<std::int32_t> out, lhs, rhs, gen_out, gen_offsets, gen_children;
  std::vector<NodeKind> gen_kinds;
  out.reserve(ops.size());
  lhs.reserve(ops.size());
  rhs.reserve(ops.size());
  gen_offsets.push_back(0);

  for (std::size_t p = 0; p < ops.size(); ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    const bool fanin2 = (ce - cb) == 2;
    const KernelSegment::Kind kind =
        fanin2 ? fanin2_kind(kinds[i]) : KernelSegment::Kind::kGeneric;

    if (fanin2) {
      const std::uint32_t at = static_cast<std::uint32_t>(out.size());
      out.push_back(row(ops[p]));
      lhs.push_back(row(children[static_cast<std::size_t>(cb)]));
      rhs.push_back(row(children[static_cast<std::size_t>(cb) + 1]));
      if (!schedule.segments_.empty() && schedule.segments_.back().kind == kind) {
        ++schedule.segments_.back().end;
      } else {
        schedule.segments_.push_back(KernelSegment{kind, at, at + 1});
      }
    } else {
      const std::uint32_t at = static_cast<std::uint32_t>(gen_kinds.size());
      gen_kinds.push_back(kinds[i]);
      gen_out.push_back(row(ops[p]));
      for (std::int32_t k = cb; k < ce; ++k) {
        gen_children.push_back(row(children[static_cast<std::size_t>(k)]));
      }
      gen_offsets.push_back(static_cast<std::int32_t>(gen_children.size()));
      if (!schedule.segments_.empty() &&
          schedule.segments_.back().kind == KernelSegment::Kind::kGeneric) {
        ++schedule.segments_.back().end;
      } else {
        schedule.segments_.push_back(KernelSegment{KernelSegment::Kind::kGeneric, at, at + 1});
      }
    }
  }
  schedule.out_ = std::move(out);
  schedule.lhs_ = std::move(lhs);
  schedule.rhs_ = std::move(rhs);
  schedule.gen_kinds_ = std::move(gen_kinds);
  schedule.gen_out_ = std::move(gen_out);
  schedule.gen_offsets_ = std::move(gen_offsets);
  schedule.gen_children_ = std::move(gen_children);
  return schedule;
}

KernelSchedule KernelSchedule::adopt(std::vector<KernelSegment> segments,
                                     util::ArrayStore<std::int32_t> out,
                                     util::ArrayStore<std::int32_t> lhs,
                                     util::ArrayStore<std::int32_t> rhs,
                                     util::ArrayStore<NodeKind> gen_kinds,
                                     util::ArrayStore<std::int32_t> gen_out,
                                     util::ArrayStore<std::int32_t> gen_offsets,
                                     util::ArrayStore<std::int32_t> gen_children,
                                     std::size_t num_rows) {
  require(out.size() == lhs.size() && out.size() == rhs.size(),
          "KernelSchedule::adopt: fanin-2 row arrays disagree in size");
  require(gen_kinds.size() == gen_out.size() &&
              gen_offsets.size() == gen_kinds.size() + 1,
          "KernelSchedule::adopt: generic-op arrays disagree in size");
  // Segment ranges must tile exactly the fanin-2 and generic index spaces —
  // the sweeps index out()/gen_*() straight off these ranges.
  std::uint32_t flat = 0, gen = 0;
  for (const KernelSegment& seg : segments) {
    require(seg.begin < seg.end, "KernelSchedule::adopt: empty segment");
    if (seg.kind == KernelSegment::Kind::kGeneric) {
      require(seg.begin == gen, "KernelSchedule::adopt: generic segments not contiguous");
      gen = seg.end;
    } else {
      require(seg.begin == flat, "KernelSchedule::adopt: fanin-2 segments not contiguous");
      flat = seg.end;
    }
  }
  require(flat == out.size() && gen == gen_kinds.size(),
          "KernelSchedule::adopt: segments do not cover the op arrays");
  KernelSchedule schedule;
  schedule.segments_ = std::move(segments);
  schedule.out_ = std::move(out);
  schedule.lhs_ = std::move(lhs);
  schedule.rhs_ = std::move(rhs);
  schedule.gen_kinds_ = std::move(gen_kinds);
  schedule.gen_out_ = std::move(gen_out);
  schedule.gen_offsets_ = std::move(gen_offsets);
  schedule.gen_children_ = std::move(gen_children);
  schedule.num_rows_ = num_rows;
  return schedule;
}

}  // namespace problp::ac
