#include "ac/kernel_schedule.hpp"

#include "ac/tape_layout.hpp"

namespace problp::ac {

namespace {

KernelSegment::Kind fanin2_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSum:
      return KernelSegment::Kind::kSum2;
    case NodeKind::kProd:
      return KernelSegment::Kind::kProd2;
    case NodeKind::kMax:
      return KernelSegment::Kind::kMax2;
    default:
      return KernelSegment::Kind::kGeneric;  // leaves never appear in op_ids
  }
}

}  // namespace

KernelSchedule KernelSchedule::compile(const CircuitTape& tape) {
  return compile_impl(tape, nullptr);
}

KernelSchedule KernelSchedule::compile(const CircuitTape& tape, const TapeLayout& layout) {
  return compile_impl(tape, &layout);
}

KernelSchedule KernelSchedule::compile_impl(const CircuitTape& tape, const TapeLayout* layout) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ops = layout != nullptr ? layout->op_order() : tape.op_ids();
  const std::int32_t* slot_of = layout != nullptr ? layout->slot_of().data() : nullptr;
  const auto row = [slot_of](NodeId id) {
    return slot_of == nullptr ? static_cast<std::int32_t>(id)
                              : slot_of[static_cast<std::size_t>(id)];
  };

  KernelSchedule schedule;
  schedule.num_rows_ = layout != nullptr ? layout->num_slots() : tape.num_nodes();
  schedule.out_.reserve(ops.size());
  schedule.lhs_.reserve(ops.size());
  schedule.rhs_.reserve(ops.size());
  schedule.gen_offsets_.push_back(0);

  for (std::size_t p = 0; p < ops.size(); ++p) {
    const std::size_t i = static_cast<std::size_t>(ops[p]);
    const std::int32_t cb = offsets[i];
    const std::int32_t ce = offsets[i + 1];
    const bool fanin2 = (ce - cb) == 2;
    const KernelSegment::Kind kind =
        fanin2 ? fanin2_kind(kinds[i]) : KernelSegment::Kind::kGeneric;

    if (fanin2) {
      const std::uint32_t at = static_cast<std::uint32_t>(schedule.out_.size());
      schedule.out_.push_back(row(ops[p]));
      schedule.lhs_.push_back(row(children[static_cast<std::size_t>(cb)]));
      schedule.rhs_.push_back(row(children[static_cast<std::size_t>(cb) + 1]));
      if (!schedule.segments_.empty() && schedule.segments_.back().kind == kind) {
        ++schedule.segments_.back().end;
      } else {
        schedule.segments_.push_back(KernelSegment{kind, at, at + 1});
      }
    } else {
      const std::uint32_t at = static_cast<std::uint32_t>(schedule.gen_kinds_.size());
      schedule.gen_kinds_.push_back(kinds[i]);
      schedule.gen_out_.push_back(row(ops[p]));
      for (std::int32_t k = cb; k < ce; ++k) {
        schedule.gen_children_.push_back(row(children[static_cast<std::size_t>(k)]));
      }
      schedule.gen_offsets_.push_back(static_cast<std::int32_t>(schedule.gen_children_.size()));
      if (!schedule.segments_.empty() &&
          schedule.segments_.back().kind == KernelSegment::Kind::kGeneric) {
        ++schedule.segments_.back().end;
      } else {
        schedule.segments_.push_back(KernelSegment{KernelSegment::Kind::kGeneric, at, at + 1});
      }
    }
  }
  return schedule;
}

}  // namespace problp::ac
