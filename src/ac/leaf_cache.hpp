// Pre-quantised leaf caches — the low-precision leaf state of one tape
// under one (format, rounding mode), computed once and shared.
//
// A LowPrecBatchEvaluator's construction cost is dominated by quantising
// every parameter leaf through the emulated datapath (FixedPoint /
// SoftFloat from_double).  That work depends only on (tape, format, mode) —
// not on the evaluator instance — so a model artifact can persist the
// quantised words next to the tape and a loaded model can serve its first
// low-precision batch without touching the double parameters at all.
//
// A LeafCacheSet holds the caches of the formats a model was analysed /
// saved with, attached to the tape (CircuitTape::attach_leaf_caches).  The
// evaluator probes the set at construction and adopts a hit verbatim
// (words, indicator constants, and the sticky conversion flags every query
// folds in); a miss falls back to quantising in-process, exactly as before.
// Bit-identity is structural: the cached words are the same from_double
// results the evaluator would have produced.
//
// Float caches store decomposed exponent / significand planes rather than
// FloatRaw structs: the planes are pure primitive arrays (no padding), so
// the artifact layer can map them zero-copy.  The evaluator re-interleaves
// on its wide path and adopts the planes directly on the lane paths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lowprec/format.hpp"
#include "util/array_store.hpp"
#include "util/int_math.hpp"

namespace problp::ac {

class CircuitTape;

/// Quantised leaf state of one tape under one fixed-point format: one u128
/// scaled-integer word per parameter (aligned with tape.param_ids()), plus
/// the quantised indicator constants and the conversion flags quantisation
/// raised.
struct FixedLeafCache {
  lowprec::FixedFormat format;
  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven;
  lowprec::ArithFlags param_flags;
  u128 one = 0;
  u128 zero = 0;
  util::ArrayStore<u128> params;
};

/// Quantised leaf state of one tape under one float format, stored as
/// decomposed exponent / significand planes (FloatRaw has struct padding;
/// the planes are mappable primitive arrays).
struct FloatLeafCache {
  lowprec::FloatFormat format;
  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven;
  lowprec::ArithFlags param_flags;
  std::int32_t one_exp = 0;
  std::uint64_t one_sig = 0;
  std::int32_t zero_exp = 0;
  std::uint64_t zero_sig = 0;
  util::ArrayStore<std::int32_t> params_exp;
  util::ArrayStore<std::uint64_t> params_sig;
};

/// The leaf caches attached to one tape — typically the formats the model's
/// cached analysis reports selected.  Attached via shared_ptr (tapes are
/// copyable); lookups are linear over a handful of entries.
struct LeafCacheSet {
  std::vector<FixedLeafCache> fixed;
  std::vector<FloatLeafCache> flt;

  const FixedLeafCache* find(const lowprec::FixedFormat& format,
                             lowprec::RoundingMode mode) const {
    for (const FixedLeafCache& c : fixed) {
      if (c.format.integer_bits == format.integer_bits &&
          c.format.fraction_bits == format.fraction_bits && c.mode == mode) {
        return &c;
      }
    }
    return nullptr;
  }

  const FloatLeafCache* find(const lowprec::FloatFormat& format,
                             lowprec::RoundingMode mode) const {
    for (const FloatLeafCache& c : flt) {
      if (c.format.exponent_bits == format.exponent_bits &&
          c.format.mantissa_bits == format.mantissa_bits && c.mode == mode) {
        return &c;
      }
    }
    return nullptr;
  }
};

/// Quantises `tape`'s leaves under (format, mode) — the exact conversion
/// set (and flag sink) the low-precision evaluators apply at construction.
FixedLeafCache build_fixed_leaf_cache(const CircuitTape& tape, lowprec::FixedFormat format,
                                      lowprec::RoundingMode mode);
FloatLeafCache build_float_leaf_cache(const CircuitTape& tape, lowprec::FloatFormat format,
                                      lowprec::RoundingMode mode);

}  // namespace problp::ac
