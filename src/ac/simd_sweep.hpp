// Width-specialised sweep backend for the batched engines: runtime ISA
// dispatch over per-ISA compiled kernels executing a KernelSchedule.
//
// The generic batched sweeps are compiled once, at the baseline ISA of the
// build (SSE2 on x86-64), and lean on the autovectoriser.  This backend
// compiles the same schedule executor into separate translation units with
// wider vector ISAs enabled (simd_sweep_avx2.cpp with -mavx2,
// simd_sweep_avx512.cpp with -mavx512f, a NEON unit on aarch64) and picks
// one at *evaluator construction* via cpuid — one indirect call per block,
// zero per-op dispatch cost.
//
// Vectorisation is across the batch dimension only: a W-wide kernel applies
// the same op to W queries' slots, and per query the op order is exactly the
// operator schedule — so every level produces bit-identical IEEE doubles
// (lane-wise add/mul/max have no cross-lane interaction).  Forcing
// `PROBLP_SIMD=scalar` and diffing against auto dispatch is therefore a
// *checksum equality* test, not a tolerance test; the bench and CI do
// exactly that.
//
// Dispatch resolution order (ac::BatchEvaluator and the low-precision
// engines share it through BatchEvaluator::Options):
//   1. an explicit Options::simd level (throws if unsupported here),
//   2. the PROBLP_SIMD environment override: scalar|neon|avx2|avx512|auto
//      (unknown or unsupported values throw — a misconfigured deployment
//      must fail loudly, not silently run the slow path),
//   3. the best level this binary compiled in AND this CPU supports.
//
// See docs/evaluation.md for the schedule/segment layout.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <vector>

#include "ac/kernel_schedule.hpp"
#include "ac/tape.hpp"
#include "lowprec/format.hpp"

namespace problp::ac::simd {

/// Kernel instruction-set levels, in preference order.  kScalar is the
/// build's baseline ISA with a lane-serial schedule executor; kNeon exists
/// only on aarch64 builds, the AVX levels only on x86-64 builds.
enum class Level : std::uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// Lower-case name as accepted by PROBLP_SIMD ("scalar", "neon", "avx2",
/// "avx512").
const char* level_name(Level level);

/// Whether this binary carries kernels for `level` (compile-time property).
bool level_compiled(Level level);

/// level_compiled AND the running CPU can execute it (cpuid).
bool level_supported(Level level);

/// Every supported level, ascending — what parity tests iterate.
std::vector<Level> supported_levels();

/// Resolves the dispatch level per the order documented above (`forced` is
/// the explicit Options::simd value, if any).  Throws InvalidArgument on an
/// unknown PROBLP_SIMD value or an unsupported request.
Level dispatch_level();
Level dispatch_level(Level forced);

/// Executes the whole kernel schedule for one SoA block: buf holds
/// schedule.num_rows() rows of `w` doubles each (leaf rows pre-initialised,
/// evidence pre-applied); on return every operator row is computed.  The
/// schedule is self-contained (fanin-2 and generic ops alike carry their
/// rows), so the sweep never touches the tape.
using ExactSweepFn = void (*)(const KernelSchedule& schedule, double* buf, std::size_t w);

/// The exact-double schedule executor for `level`; never null for a
/// supported level.
ExactSweepFn exact_sweep(Level level);

/// Precomputed per-format constants of the narrow-word (u32) fixed-point
/// datapath — engaged by the batched low-precision engine when
/// FixedFormat::fits_narrow_word() (total width <= 30 bits, so every stored
/// word fits u32 and the exact product closes over u64; see
/// lowprec/fixed_point.hpp).
struct FixedSweepParams {
  std::uint32_t max_raw = 0;  ///< saturation point, fmt.max_raw() (< 2^30)
  std::uint32_t half = 0;     ///< nearest midpoint 2^(F-1); 0 when F == 0
  int fraction_bits = 0;      ///< the multiply right-shift F
  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven;
};

/// Executes the whole kernel schedule for one narrow fixed-point SoA block:
/// buf holds schedule.num_rows() rows of `w` u32 raw words (leaf rows
/// pre-initialised, evidence pre-applied) — u32 lanes halve the buffer
/// traffic of the former u64 storage and double the lanes per vector (16
/// per AVX-512 register).  `ovf` is one sticky per-lane overflow mask
/// (nonzero when that column ever saturated), OR-accumulated by every
/// add/mul; the caller folds `ovf[j] != 0` into the per-column ArithFlags —
/// overflow is the only flag fixed-point arithmetic can raise past
/// quantisation.
using FixedSweepFn = void (*)(const KernelSchedule& schedule, std::uint32_t* buf,
                              std::uint32_t* ovf, std::size_t w,
                              const FixedSweepParams& params);

/// The narrow fixed-point schedule executor for `level`; never null for a
/// supported level.
FixedSweepFn fixed_sweep(Level level);

/// Precomputed per-format constants of the decomposed (exp, sig) float lane
/// datapath — engaged by the batched low-precision engine when
/// FloatFormat::fits_lane_word() (significand lanes are u32 when
/// fits_narrow_word(), u64 otherwise; exponent lanes are always i32; see
/// lowprec/soft_float.hpp for the lane kernels and their parity argument).
struct FloatSweepParams {
  int mantissa_bits = 0;       ///< M; lane significands carry M+1 bits
  std::int32_t min_exp = 0;    ///< fmt.min_exponent(): mul flushes below it
  std::int32_t max_exp = 0;    ///< fmt.max_exponent(): add/mul saturate above it
  lowprec::RoundingMode mode = lowprec::RoundingMode::kNearestEven;
};

/// Executes the whole kernel schedule for one decomposed float SoA block:
/// `exps` and `sigs` each hold schedule.num_rows() rows of `w` lanes (leaf
/// rows pre-initialised, evidence pre-applied by zeroing significands —
/// sig == 0 encodes zero, so exponent lanes of zero slots are don't-cares).
/// `ovf` / `und` are per-lane sticky overflow / underflow masks (nonzero
/// when that column ever saturated / flushed), OR-accumulated by every
/// add/mul; the caller folds them into the per-column ArithFlags after the
/// sweep.
using FloatSweepFn32 = void (*)(const KernelSchedule& schedule, std::int32_t* exps,
                                std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                                std::size_t w, const FloatSweepParams& params);
using FloatSweepFn64 = void (*)(const KernelSchedule& schedule, std::int32_t* exps,
                                std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                                std::size_t w, const FloatSweepParams& params);

/// The decomposed float schedule executors for `level`; never null for a
/// supported level.
FloatSweepFn32 float_sweep32(Level level);
FloatSweepFn64 float_sweep64(Level level);

/// SoA row alignment (bytes): one full AVX-512 vector, which also makes
/// every row of an 8-lane-multiple block start on its own cache line.
inline constexpr std::size_t kRowAlignment = 64;

/// Minimal 64-byte-aligned, grow-only, uninitialised buffer — the SoA value
/// storage of the batched engines.  Intentionally not a std::vector: no
/// value-initialisation on resize (operator rows are always overwritten by
/// the sweep) and a guaranteed over-aligned base address.
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "AlignedBuffer holds raw machine words");

 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(ptr_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept : ptr_(o.ptr_), capacity_(o.capacity_) {
    o.ptr_ = nullptr;
    o.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      std::free(ptr_);
      ptr_ = o.ptr_;
      capacity_ = o.capacity_;
      o.ptr_ = nullptr;
      o.capacity_ = 0;
    }
    return *this;
  }

  /// Ensures capacity for `n` elements; contents are unspecified after a
  /// growth (callers initialise every slot they read).  Grow-only, so the
  /// steady state of a serving loop performs zero allocations.
  void resize(std::size_t n) {
    if (n <= capacity_) return;
    std::free(ptr_);
    ptr_ = nullptr;
    capacity_ = 0;
    const std::size_t bytes =
        (n * sizeof(T) + kRowAlignment - 1) / kRowAlignment * kRowAlignment;
    ptr_ = static_cast<T*>(std::aligned_alloc(kRowAlignment, bytes));
    if (ptr_ == nullptr) throw std::bad_alloc();
    capacity_ = n;
  }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }

 private:
  T* ptr_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace problp::ac::simd
