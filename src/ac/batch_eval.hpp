// Batched multi-query evaluation over a CircuitTape.
//
// Observed-error sweeps, bound-validation experiments and serving workloads
// evaluate one circuit under hundreds of evidence sets.  The per-query
// interpreter pays its full overhead (allocation, dispatch, pointer chasing)
// once per query; the BatchEvaluator instead sweeps the tape once per
// *block* of queries over a structure-of-arrays value buffer:
//
//   buffer[node * W + j] = value of `node` under the j-th query of the block
//
// so each operator's fold runs over W contiguous doubles — a loop the
// compiler vectorises — and the tape's CSR arrays are traversed once per
// block instead of once per query.  Blocks are sized so the working set
// (num_nodes * W doubles) stays cache-resident; buffers are owned by the
// evaluator and reused across calls (zero allocation in steady state).
//
// Folds run in the same child order as the interpreter, so batched double
// results are bit-identical to ac::evaluate on the source circuit.
//
// An optional thread partition splits the batch dimension across worker
// threads, each with its own buffer; results land in a shared output vector
// at disjoint indices.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ac/tape.hpp"

namespace problp::ac {

/// Shared batch-partition driver: runs fn(begin, end, worker) over
/// block-aligned contiguous chunks of [0, count) on up to num_threads
/// workers (chunks are block-aligned so no SoA block straddles two
/// workers; a batch below one block per worker runs inline as worker 0).
/// Exceptions thrown by fn on a worker thread are captured and rethrown
/// on the caller — a malformed assignment surfaces as a catchable error,
/// never std::terminate.  Used by both the exact and the low-precision
/// batched engines so the partition math exists exactly once.
void parallel_blocks(std::size_t count, std::size_t block, int num_threads,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

class BatchEvaluator {
 public:
  struct Options {
    /// Worker threads over the batch dimension.  1 = evaluate inline;
    /// 0 = one thread per hardware core.
    int num_threads = 1;
    /// Queries per block (the SoA width W).  Chosen so num_nodes * W
    /// doubles fit comfortably in cache; 16 is a good default for the
    /// benchmark circuits.
    std::size_t block = 16;
  };

  explicit BatchEvaluator(const CircuitTape& tape) : BatchEvaluator(tape, Options()) {}
  BatchEvaluator(const CircuitTape& tape, Options options);

  /// Root value per assignment, in input order.  The reference stays valid
  /// until the next evaluate call.
  const std::vector<double>& evaluate(const std::vector<PartialAssignment>& batch);

  /// As above for a raw span (avoids forcing callers into one container).
  const std::vector<double>& evaluate(const PartialAssignment* batch, std::size_t count);

  const CircuitTape& tape() const { return *tape_; }
  const Options& options() const { return options_; }

 private:
  struct Workspace {
    std::vector<double> buffer;            ///< num_nodes * W structure-of-arrays values
    std::vector<std::int32_t> observed;    ///< per-query resolved evidence scratch
  };

  /// Evaluates batch[begin, end) into roots_[begin, end) using `ws`.
  void evaluate_range(const PartialAssignment* batch, std::size_t begin, std::size_t end,
                      Workspace& ws);

  const CircuitTape* tape_;
  Options options_;
  std::vector<Workspace> workspaces_;  ///< one per worker, reused across calls
  std::vector<double> roots_;
};

}  // namespace problp::ac
