// Batched multi-query evaluation over a CircuitTape.
//
// Observed-error sweeps, bound-validation experiments and serving workloads
// evaluate one circuit under hundreds of evidence sets.  The per-query
// interpreter pays its full overhead (allocation, dispatch, pointer chasing)
// once per query; the BatchEvaluator instead sweeps the tape once per
// *block* of queries over a structure-of-arrays value buffer:
//
//   buffer[row * W + j] = value of a node's slot under the j-th block query
//
// so each operator's fold runs over W contiguous doubles, and the schedule
// is traversed once per block instead of once per query.  By default the
// buffer holds the tape layout's num_slots() rows (Options::relayout: op
// reordering + liveness-based slot reuse, ac/tape_layout.hpp) rather than
// one row per node, so big circuits keep their live frontier — not the
// whole circuit — in cache.  Blocks are auto-sized so the working set
// (rows * W doubles) stays cache-resident (see Options::block); buffers are
// 64-byte-aligned, owned by the evaluator and reused across calls (zero
// allocation in steady state).
//
// Two sweep backends execute each block:
//
//  * the **kernel-schedule backend** (default): the tape is segmented once
//    into homogeneous fanin-2 runs plus a generic fallback
//    (ac/kernel_schedule.hpp) and executed by width-specialised kernels
//    picked per the runtime ISA — AVX-512 / AVX2 / NEON / scalar — at
//    evaluator construction (ac/simd_sweep.hpp; PROBLP_SIMD overrides);
//  * the **generic CSR fold** (Options::force_generic): the original
//    baseline-ISA sweep, kept as the parity reference and the trajectory
//    baseline in bench_eval_throughput.
//
// Both run the same per-query op order in IEEE double, so results are
// bit-identical to each other and to ac::evaluate on the source circuit.
//
// An optional thread partition splits the batch dimension across worker
// threads, each with its own buffer; results land in a shared output vector
// at disjoint indices.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ac/kernel_schedule.hpp"
#include "ac/simd_sweep.hpp"
#include "ac/tape.hpp"

namespace problp::ac {

/// Shared batch-partition driver: runs fn(begin, end, worker) over
/// block-aligned contiguous chunks of [0, count) on up to num_threads
/// workers (chunks are block-aligned so no SoA block straddles two
/// workers; a batch below one block per worker runs inline as worker 0).
/// Exceptions thrown by fn on a worker thread are captured and rethrown
/// on the caller — a malformed assignment surfaces as a catchable error,
/// never std::terminate.  Used by both the exact and the low-precision
/// batched engines so the partition math exists exactly once.
void parallel_blocks(std::size_t count, std::size_t block, int num_threads,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Working-set target of the batched engines (a typical per-core L2):
/// auto_block_size keeps one SoA value buffer inside it, and the
/// low-precision engines elect the precomposed leaf image only while buffer
/// + image still fit it together.
inline constexpr std::size_t kCacheTargetBytes = 1024 * 1024;

/// auto_block_size's target under the slot-reuse relayout.  The compacted
/// buffer shares the cache with the schedule's per-op index arrays (three
/// i32 streams the identity layout also walks, but whose footprint the
/// relayout does NOT shrink), so wide blocks that amortise the index stream
/// beat strict buffer residency: measured on synthetic_ve36 the exact sweep
/// peaks at block 32 (2.1x the identity row), which the 1 MiB target would
/// round down past.
inline constexpr std::size_t kRelayoutCacheTargetBytes = 2 * 1024 * 1024;

/// Cache-aware SoA block width for a value buffer of `num_rows` rows whose
/// slots are `elem_bytes` wide: the largest lane count keeping the buffer
/// (num_rows * block * elem_bytes) within the cache target, rounded to a
/// multiple of the widest SIMD width (8 doubles) and clamped to
/// [min_block, 64] — so small circuits amortise the tape traversal over
/// wide blocks while big circuits (synthetic_ve36-sized) stop thrashing the
/// cache.  Callers pass the *post-layout* row count (max-live slots under
/// Options::relayout, node count otherwise) and `relayout` for the engaged
/// layout, which switches the target to kRelayoutCacheTargetBytes and the
/// floor to 32: with the buffer compacted ~10x, blocks wide enough to
/// amortise the schedule's index streams win over strict residency.
/// `min_block` raises the floor further for datapaths whose kernels need
/// fuller vectors (the u32 narrow engine passes 16 — at 8 lanes its
/// half-filled vectors lose to the wide path).
std::size_t auto_block_size(std::size_t num_rows, std::size_t elem_bytes,
                            bool relayout = false, std::size_t min_block = 8);

class BatchEvaluator {
 public:
  struct Options {
    /// Worker threads over the batch dimension.  1 = evaluate inline;
    /// 0 = one thread per hardware core.
    int num_threads = 1;
    /// Queries per block (the SoA width W).  0 = cache-aware auto-size via
    /// auto_block_size(); explicit values are honoured as given.
    std::size_t block = 0;
    /// Force the generic CSR fold instead of the specialised kernel
    /// schedule — the parity reference and the pre-SIMD trajectory baseline.
    bool force_generic = false;
    /// Cache-shaped tape re-layout (ac/tape_layout.hpp): execute the
    /// re-ordered operator schedule over a value buffer of max-live slots
    /// instead of one row per node.  Bit-identical results either way; off
    /// is the O(nodes) parity/trajectory reference.  Applies to the kernel
    /// schedule backend only (force_generic always runs the identity
    /// layout).
    bool relayout = true;
    /// Low-precision engines only: keep the wide (u128) raw-word datapath
    /// even for fixed formats narrow enough for the lane-parallel u32 path
    /// (lowprec::FixedFormat::fits_narrow_word()) — the schedule-level
    /// parity reference for the narrow kernels.  Ignored by the exact
    /// engine; force_generic implies it.
    bool force_wide_raw = false;
    /// Kernel ISA level.  nullopt = auto: the PROBLP_SIMD environment
    /// override if set, else the best level this build and CPU support.
    /// An explicitly requested level that is unsupported throws at
    /// construction.
    std::optional<simd::Level> simd;
  };

  explicit BatchEvaluator(const CircuitTape& tape) : BatchEvaluator(tape, Options()) {}
  BatchEvaluator(const CircuitTape& tape, Options options);

  /// Root value per assignment, in input order.  The reference stays valid
  /// until the next evaluate call.
  const std::vector<double>& evaluate(const std::vector<PartialAssignment>& batch);

  /// As above for a raw span (avoids forcing callers into one container).
  const std::vector<double>& evaluate(const PartialAssignment* batch, std::size_t count);

  const CircuitTape& tape() const { return *tape_; }
  const Options& options() const { return options_; }
  /// The dispatched kernel ISA (meaningful whenever !force_generic).
  simd::Level simd_level() const { return level_; }
  /// Rows of the per-block SoA value buffer: the layout's num_slots() when
  /// the relayout is engaged, num_nodes otherwise.
  std::size_t num_rows() const { return rows_; }
  /// Whether this evaluator runs the slot-reuse layout (relayout requested
  /// AND the kernel-schedule backend selected).
  bool relayout_engaged() const { return row_of_ != nullptr; }

  /// Whether full blocks sharing one evidence template may re-initialise
  /// from a per-worker precomposed template image (one memcpy) instead of
  /// the leaf fill + evidence zeroing; elected at construction by the same
  /// cache-residency bar as the low-precision leaf image.
  bool uses_evidence_template() const { return use_template_image_; }

 private:
  struct Workspace {
    simd::AlignedBuffer<double> buffer;  ///< rows * W structure-of-arrays values
    std::vector<std::int32_t> observed;  ///< per-query resolved evidence scratch
    // Precomposed evidence-template image: the leaf-initialised, evidence-
    // zeroed buffer state of the last whole-block-uniform evidence template
    // this worker composed (operator rows ride along uninitialised — the
    // sweep overwrites them).  A following uniform block with the same
    // template restores it with one memcpy.
    std::vector<double> template_image;
    PartialAssignment template_key;  ///< template the image was composed for
    std::size_t template_w = 0;      ///< block width the image is shaped for
    bool template_valid = false;
  };

  /// Evaluates batch[begin, end) into roots_[begin, end) using `ws`.
  void evaluate_range(const PartialAssignment* batch, std::size_t begin, std::size_t end,
                      Workspace& ws);

  /// The generic CSR fold over one block (the force_generic backend).
  void generic_sweep(double* buf, std::size_t w) const;

  const CircuitTape* tape_;
  Options options_;
  simd::Level level_ = simd::Level::kScalar;
  /// Engaged unless force_generic; shares the tape's precompiled schedule
  /// on the relayout path.
  std::shared_ptr<const KernelSchedule> schedule_;
  simd::ExactSweepFn sweep_ = nullptr;      ///< null when force_generic
  const std::int32_t* row_of_ = nullptr;    ///< node id -> row; null = identity
  std::size_t rows_ = 0;                    ///< value-buffer rows per block
  std::size_t root_row_ = 0;                ///< row of the root under row_of_
  bool use_template_image_ = false;         ///< evidence-template image elected
  std::vector<Workspace> workspaces_;       ///< one per worker, reused across calls
  std::vector<double> roots_;
};

}  // namespace problp::ac
