#include "ac/leaf_cache.hpp"

#include "ac/tape.hpp"
#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac {

FixedLeafCache build_fixed_leaf_cache(const CircuitTape& tape, lowprec::FixedFormat format,
                                      lowprec::RoundingMode mode) {
  FixedLeafCache cache;
  cache.format = format;
  cache.mode = mode;
  cache.one = lowprec::FixedPoint::from_double(1.0, format, cache.param_flags, mode).raw();
  cache.zero = lowprec::FixedPoint::from_double(0.0, format, cache.param_flags, mode).raw();
  std::vector<u128> params;
  params.reserve(tape.param_values().size());
  for (double v : tape.param_values()) {
    params.push_back(lowprec::FixedPoint::from_double(v, format, cache.param_flags, mode).raw());
  }
  cache.params = std::move(params);
  return cache;
}

FloatLeafCache build_float_leaf_cache(const CircuitTape& tape, lowprec::FloatFormat format,
                                      lowprec::RoundingMode mode) {
  FloatLeafCache cache;
  cache.format = format;
  cache.mode = mode;
  const lowprec::FloatRaw one =
      lowprec::SoftFloat::from_double(1.0, format, cache.param_flags, mode).raw();
  const lowprec::FloatRaw zero =
      lowprec::SoftFloat::from_double(0.0, format, cache.param_flags, mode).raw();
  cache.one_exp = one.exp;
  cache.one_sig = one.sig;
  cache.zero_exp = zero.exp;
  cache.zero_sig = zero.sig;
  std::vector<std::int32_t> exps;
  std::vector<std::uint64_t> sigs;
  exps.reserve(tape.param_values().size());
  sigs.reserve(tape.param_values().size());
  for (double v : tape.param_values()) {
    const lowprec::FloatRaw r =
        lowprec::SoftFloat::from_double(v, format, cache.param_flags, mode).raw();
    exps.push_back(r.exp);
    sigs.push_back(r.sig);
  }
  cache.params_exp = std::move(exps);
  cache.params_sig = std::move(sigs);
  return cache;
}

}  // namespace problp::ac
