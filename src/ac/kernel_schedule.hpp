// Specialised kernel schedule — the once-per-tape segmentation behind the
// SIMD sweep backend (ac/simd_sweep.hpp).
//
// The generic batched sweeps (ac/batch_eval.hpp, ac/batch_lowprec.hpp) walk
// the tape's CSR fold per operator: look up the child range, copy the first
// child's row, then fold the remaining children one row at a time, branching
// on the node kind at every op.  For the circuits the runtime actually
// serves — binarised, or compiler output that is ~90% fanin-2 — that CSR
// machinery is pure overhead: almost every op is `out = a OP b` on exactly
// two rows.
//
// A KernelSchedule is compiled once per tape and segments the operator
// schedule into
//
//   * homogeneous fanin-2 runs: maximal runs of consecutive ops that all
//     have exactly two children and the same kind (SUM / PROD / MAX).  Their
//     output and child rows are laid out flat in out()/lhs()/rhs(), so a
//     sweep executes the whole run in one straight-line loop with no CSR
//     lookups, no first-child copy and no per-op kind branch — the shape the
//     W-wide SIMD kernels specialise;
//   * generic fallback runs: everything else (fanin != 2), re-emitted as a
//     self-contained flat CSR (gen_kinds()/gen_out()/gen_offsets()/
//     gen_children()) so the sweeps never touch the tape at run time.
//
// The schedule is compiled either over the tape's arena operator order
// (compile(tape) — rows are node ids, the O(nodes) identity layout) or over
// a TapeLayout (compile(tape, layout) — the re-ordered op schedule with
// every row renamed through the layout's slot table, so value buffers need
// only layout.num_slots() rows).  Either way, concatenating the segments in
// order replays a dependency-respecting operator schedule computing the
// exact same per-op results — bit-identical by construction, on the exact
// and the raw-word low-precision engines alike.  See docs/evaluation.md.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/tape.hpp"
#include "util/array_store.hpp"

namespace problp::ac {

class TapeLayout;

/// One homogeneous run of the operator schedule.
struct KernelSegment {
  enum class Kind : std::uint8_t { kSum2, kProd2, kMax2, kGeneric };
  Kind kind;
  /// For fanin-2 kinds: index range into out()/lhs()/rhs().  For kGeneric:
  /// index range into the generic-op arrays gen_kinds()/gen_out()/
  /// gen_offsets().
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const { return end - begin; }
};

class KernelSchedule {
 public:
  /// Segments `tape`'s operator schedule in arena order; rows are node ids
  /// (the identity layout — value buffers need num_nodes rows).
  /// O(num ops); the result is immutable and shareable across evaluators.
  static KernelSchedule compile(const CircuitTape& tape);

  /// Segments the re-ordered schedule `layout.op_order()` with every row
  /// renamed through `layout.slot_of()`; value buffers need only
  /// layout.num_slots() rows.  `layout` must be the layout of `tape`.
  static KernelSchedule compile(const CircuitTape& tape, const TapeLayout& layout);

  /// Rehydrates a schedule from already-computed arrays — the zero-copy
  /// artifact seam (runtime/artifact.hpp): the stores may be views into a
  /// mapped file, which the caller keeps alive for the schedule's lifetime.
  /// Segment geometry is re-checked; the row arrays are trusted to be a
  /// compile() result (the artifact layer checksums them).
  static KernelSchedule adopt(std::vector<KernelSegment> segments,
                              util::ArrayStore<std::int32_t> out,
                              util::ArrayStore<std::int32_t> lhs,
                              util::ArrayStore<std::int32_t> rhs,
                              util::ArrayStore<NodeKind> gen_kinds,
                              util::ArrayStore<std::int32_t> gen_out,
                              util::ArrayStore<std::int32_t> gen_offsets,
                              util::ArrayStore<std::int32_t> gen_children,
                              std::size_t num_rows);

  const std::vector<KernelSegment>& segments() const { return segments_; }

  /// Flat per-op rows of every fanin-2 segment, concatenated in schedule
  /// order: op i computes  out()[i] = lhs()[i] OP rhs()[i].
  const util::ArrayStore<std::int32_t>& out() const { return out_; }
  const util::ArrayStore<std::int32_t>& lhs() const { return lhs_; }
  const util::ArrayStore<std::int32_t>& rhs() const { return rhs_; }

  /// Self-contained generic-op arrays, concatenated in schedule order:
  /// generic op g of kind gen_kinds()[g] folds the child rows
  /// gen_children()[gen_offsets()[g] .. gen_offsets()[g+1]) into row
  /// gen_out()[g].
  const util::ArrayStore<NodeKind>& gen_kinds() const { return gen_kinds_; }
  const util::ArrayStore<std::int32_t>& gen_out() const { return gen_out_; }
  const util::ArrayStore<std::int32_t>& gen_offsets() const { return gen_offsets_; }
  const util::ArrayStore<std::int32_t>& gen_children() const { return gen_children_; }

  std::size_t num_fanin2_ops() const { return out_.size(); }
  std::size_t num_generic_ops() const { return gen_kinds_.size(); }
  std::size_t num_ops() const { return num_fanin2_ops() + num_generic_ops(); }

  /// Rows a value buffer evaluated under this schedule must hold:
  /// layout.num_slots() when compiled over a layout, num_nodes otherwise.
  std::size_t num_rows() const { return num_rows_; }

 private:
  KernelSchedule() = default;

  static KernelSchedule compile_impl(const CircuitTape& tape, const TapeLayout* layout);

  /// Segment descriptors stay owned: they are tiny, and rebuilding them
  /// from the artifact's flat (kind, begin, end) triples avoids persisting
  /// struct padding.
  std::vector<KernelSegment> segments_;
  util::ArrayStore<std::int32_t> out_;
  util::ArrayStore<std::int32_t> lhs_;
  util::ArrayStore<std::int32_t> rhs_;
  util::ArrayStore<NodeKind> gen_kinds_;
  util::ArrayStore<std::int32_t> gen_out_;
  util::ArrayStore<std::int32_t> gen_offsets_;
  util::ArrayStore<std::int32_t> gen_children_;
  std::size_t num_rows_ = 0;
};

}  // namespace problp::ac
