// Specialised kernel schedule — the once-per-tape segmentation behind the
// SIMD sweep backend (ac/simd_sweep.hpp).
//
// The generic batched sweeps (ac/batch_eval.hpp, ac/batch_lowprec.hpp) walk
// the tape's CSR fold per operator: look up the child range, copy the first
// child's row, then fold the remaining children one row at a time, branching
// on the node kind at every op.  For the circuits the runtime actually
// serves — binarised, or compiler output that is ~90% fanin-2 — that CSR
// machinery is pure overhead: almost every op is `out = a OP b` on exactly
// two rows.
//
// A KernelSchedule is compiled once per tape and segments the operator
// schedule (tape.op_ids(), in order) into
//
//   * homogeneous fanin-2 runs: maximal runs of consecutive ops that all
//     have exactly two children and the same kind (SUM / PROD / MAX).  Their
//     output and child node ids are laid out flat in out()/lhs()/rhs(), so a
//     sweep executes the whole run in one straight-line loop with no CSR
//     lookups, no first-child copy and no per-op kind branch — the shape the
//     W-wide SIMD kernels specialise;
//   * generic fallback runs: everything else (fanin != 2), kept as position
//     ranges into tape.op_ids() and executed by the classic CSR fold.
//
// Concatenating the segments in order replays exactly the original operator
// schedule, so any sweep over the schedule is op-for-op identical to the
// generic sweep — bit-identical results by construction, on the exact and
// the raw-word low-precision engines alike.  See docs/evaluation.md.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/tape.hpp"

namespace problp::ac {

/// One homogeneous run of the operator schedule.
struct KernelSegment {
  enum class Kind : std::uint8_t { kSum2, kProd2, kMax2, kGeneric };
  Kind kind;
  /// For fanin-2 kinds: index range into out()/lhs()/rhs().  For kGeneric:
  /// position range into tape.op_ids().
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const { return end - begin; }
};

class KernelSchedule {
 public:
  /// Segments `tape`'s operator schedule.  O(num ops); the result is
  /// immutable and shareable across evaluators of the same tape.
  static KernelSchedule compile(const CircuitTape& tape);

  const std::vector<KernelSegment>& segments() const { return segments_; }

  /// Flat per-op node ids of every fanin-2 segment, concatenated in
  /// schedule order: op i computes  out()[i] = lhs()[i] OP rhs()[i].
  const std::vector<std::int32_t>& out() const { return out_; }
  const std::vector<std::int32_t>& lhs() const { return lhs_; }
  const std::vector<std::int32_t>& rhs() const { return rhs_; }

  std::size_t num_fanin2_ops() const { return out_.size(); }
  std::size_t num_generic_ops() const { return num_generic_ops_; }
  std::size_t num_ops() const { return num_fanin2_ops() + num_generic_ops(); }

 private:
  KernelSchedule() = default;

  std::vector<KernelSegment> segments_;
  std::vector<std::int32_t> out_;
  std::vector<std::int32_t> lhs_;
  std::vector<std::int32_t> rhs_;
  std::size_t num_generic_ops_ = 0;
};

}  // namespace problp::ac
