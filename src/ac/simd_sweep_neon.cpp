// NEON kernel unit for aarch64 builds, where 128-bit NEON is baseline — no
// extra compile flags needed, W = 2 doubles matches the vector width.  The
// distinct NeonTag keeps the instantiations unique to this unit.
#ifdef PROBLP_SIMD_TU_NEON

#include "ac/simd_sweep_impl.hpp"

namespace problp::ac::simd {

namespace {
struct NeonTag {};
}  // namespace

void exact_sweep_neon(const KernelSchedule& schedule, double* buf, std::size_t w) {
  detail::run_exact_schedule<2, NeonTag>(schedule, buf, w);
}

// The u32 fixed-point lanes pack 4 per 128-bit vector — twice the exact
// sweep's W.
void fixed_sweep_neon(const KernelSchedule& schedule, std::uint32_t* buf, std::uint32_t* ovf,
                      std::size_t w, const FixedSweepParams& params) {
  detail::run_fixed_schedule<4, NeonTag>(schedule, buf, ovf, w, params);
}

// Decomposed float lanes: i32 exponents + u32/u64 significands, W matching
// the significand lane count per 128-bit vector (NEON's ushl-by-register
// covers the kernels' variable shifts).
void float_sweep32_neon(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint32_t* sigs, std::uint32_t* ovf, std::uint32_t* und,
                        std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<4, std::uint32_t, NeonTag>(schedule, exps, sigs, ovf, und, w,
                                                        params);
}

void float_sweep64_neon(const KernelSchedule& schedule, std::int32_t* exps,
                        std::uint64_t* sigs, std::uint64_t* ovf, std::uint64_t* und,
                        std::size_t w, const FloatSweepParams& params) {
  detail::run_float_schedule<2, std::uint64_t, NeonTag>(schedule, exps, sigs, ovf, und, w,
                                                        params);
}

}  // namespace problp::ac::simd

#endif  // PROBLP_SIMD_TU_NEON
