// Flattened circuit tape — the compiled form of a Circuit.
//
// The interpreter in ac/evaluator.hpp walks Node objects whose children live
// in per-node heap vectors: every operator visit chases a pointer into a
// separate allocation, re-branches on n.kind, and every query allocates a
// fresh value vector.  Under query traffic (observed-error sweeps evaluate
// the same circuit hundreds of times) that interpretation overhead dominates.
//
// A CircuitTape is built once per circuit and is immutable afterwards:
//
//   kinds[i]            node kind, one flat array
//   child_offsets[i]    CSR range [child_offsets[i], child_offsets[i+1])
//   children[...]       flat child ids; the caller's stored order is
//                       preserved because it is the fold order (analyses on
//                       non-associative arithmetic depend on it)
//   base_values[i]      parameter value; 1.0 for indicators; 0.0 for ops
//   ind_var/ind_state   indicator payload (-1 for non-indicators)
//   op_ids              the operator schedule: non-leaf ids in topological
//                       (arena) order — leaf slots never need revisiting
//   param_ids/values    parameter leaves in arena order, so per-Ops
//                       evaluators can quantise every parameter exactly once
//   indicator_node(v,s) dense (variable, state) -> NodeId index: evidence is
//                       applied by zeroing the few contradicted slots
//                       instead of testing every leaf against the assignment
//
// Arena order is a topological order (children have smaller ids), so every
// evaluation is one linear sweep over op_ids.  The generic sweep keeps the
// evaluator's Ops customisation point: exact double, emulated low-precision
// and the range analyses all run on the same tape.  See docs/evaluation.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ac/circuit.hpp"
#include "ac/evaluator.hpp"
#include "util/array_store.hpp"

namespace problp::ac {

class TapeLayout;
class KernelSchedule;
struct LeafCacheSet;

class CircuitTape {
 public:
  /// Flattens `circuit` (which must have a root).  Validates the structural
  /// invariants the sweeps rely on: operators have >= 1 children, children
  /// precede parents, and each (var, state) names at most one indicator.
  static CircuitTape compile(const Circuit& circuit);

  /// The flat arrays of one tape, as one movable bundle — the zero-copy
  /// artifact seam (runtime/artifact.hpp).  Each store is either an owned
  /// vector or a view into a mapped file the caller keeps alive.
  struct Arrays {
    util::ArrayStore<NodeKind> kinds;
    util::ArrayStore<std::int32_t> child_offsets;
    util::ArrayStore<NodeId> children;
    util::ArrayStore<double> base_values;
    util::ArrayStore<std::int32_t> ind_var;
    util::ArrayStore<std::int32_t> ind_state;
    util::ArrayStore<NodeId> op_ids;
    util::ArrayStore<NodeId> param_ids;
    util::ArrayStore<double> param_values;
    util::ArrayStore<NodeId> indicator_ids;
    util::ArrayStore<std::int32_t> var_offsets;
    util::ArrayStore<NodeId> indicator_index;
  };

  /// Rehydrates a tape from already-flattened arrays plus its precompiled
  /// layout and layout-schedule (which compile() would otherwise rebuild).
  /// Cheap shape invariants are re-checked; element contents are trusted to
  /// be a compile() result (the artifact layer checksums them).
  static CircuitTape adopt(Arrays arrays, NodeId root, std::vector<int> cardinalities,
                           std::shared_ptr<const TapeLayout> layout,
                           std::shared_ptr<const KernelSchedule> layout_schedule);

  std::size_t num_nodes() const { return kinds_.size(); }
  NodeId root() const { return root_; }
  int num_variables() const { return static_cast<int>(cardinalities_.size()); }
  const std::vector<int>& cardinalities() const { return cardinalities_; }

  const util::ArrayStore<NodeKind>& kinds() const { return kinds_; }
  const util::ArrayStore<std::int32_t>& child_offsets() const { return child_offsets_; }
  const util::ArrayStore<NodeId>& children() const { return children_; }
  const util::ArrayStore<double>& base_values() const { return base_values_; }
  const util::ArrayStore<std::int32_t>& ind_var() const { return ind_var_; }
  const util::ArrayStore<std::int32_t>& ind_state() const { return ind_state_; }
  const util::ArrayStore<NodeId>& op_ids() const { return op_ids_; }
  const util::ArrayStore<NodeId>& param_ids() const { return param_ids_; }
  const util::ArrayStore<double>& param_values() const { return param_values_; }
  const util::ArrayStore<NodeId>& indicator_ids() const { return indicator_ids_; }
  const util::ArrayStore<std::int32_t>& var_offsets() const { return var_offsets_; }
  const util::ArrayStore<NodeId>& indicator_index() const { return indicator_index_; }

  /// NodeId of λ_{var=state}, or kInvalidNode when the circuit has no such
  /// leaf (compilers drop indicators that never influence the root).
  NodeId indicator_node(int var, int state) const {
    return indicator_index_[static_cast<std::size_t>(var_offsets_[static_cast<std::size_t>(var)] +
                                                     state)];
  }

  /// One bounds-checked pass over the assignment: observed[v] is the
  /// observed state of v, or -1.  Validates the assignment size.
  void resolve_observed(const PartialAssignment& assignment,
                        std::vector<std::int32_t>& observed) const;

  /// Writes `zero` into the value slots of every indicator `assignment`
  /// contradicts in a value buffer laid out with `stride` slots per node
  /// (stride 1 == the single-query layout; column `column` of a batched
  /// buffer otherwise).  Generic over the slot type so the exact double
  /// engine and the raw-word low-precision engine share one walk.
  /// `row_of` remaps node ids to buffer rows (the tape-layout slot table);
  /// nullptr is the identity O(nodes) layout.
  template <class T>
  void zero_contradicted(const std::vector<std::int32_t>& observed, T* values,
                         std::size_t stride, std::size_t column, const T& zero,
                         const std::int32_t* row_of = nullptr) const {
    for (std::size_t v = 0; v < observed.size(); ++v) {
      const std::int32_t obs = observed[v];
      if (obs < 0) continue;
      const int card = cardinalities_[v];
      for (int s = 0; s < card; ++s) {
        if (s == obs) continue;
        const NodeId id = indicator_index_[static_cast<std::size_t>(var_offsets_[v] + s)];
        if (id == kInvalidNode) continue;
        const std::size_t row =
            row_of == nullptr ? static_cast<std::size_t>(id)
                              : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
        values[row * stride + column] = zero;
      }
    }
  }

  /// Double shorthand for the exact engines.
  void zero_contradicted(const std::vector<std::int32_t>& observed, double* values,
                         std::size_t stride, std::size_t column,
                         const std::int32_t* row_of = nullptr) const {
    zero_contradicted(observed, values, stride, column, 0.0, row_of);
  }

  /// Whole-row variant for batched blocks whose every column shares one
  /// evidence template: writes `zero` across the full `stride`-wide row of
  /// each contradicted indicator, so a uniform block zeroes each slot once
  /// with a contiguous fill instead of `stride` separate column walks.
  template <class T>
  void zero_contradicted_rows(const std::vector<std::int32_t>& observed, T* values,
                              std::size_t stride, const T& zero,
                              const std::int32_t* row_of = nullptr) const {
    for (std::size_t v = 0; v < observed.size(); ++v) {
      const std::int32_t obs = observed[v];
      if (obs < 0) continue;
      const int card = cardinalities_[v];
      for (int s = 0; s < card; ++s) {
        if (s == obs) continue;
        const NodeId id = indicator_index_[static_cast<std::size_t>(var_offsets_[v] + s)];
        if (id == kInvalidNode) continue;
        const std::size_t row =
            row_of == nullptr ? static_cast<std::size_t>(id)
                              : static_cast<std::size_t>(row_of[static_cast<std::size_t>(id)]);
        std::fill(values + row * stride, values + row * stride + stride, zero);
      }
    }
  }

  /// Double fast path: values of all nodes into `values` (capacity reused
  /// across calls — zero allocation in steady state).
  void evaluate_all_double(const PartialAssignment& assignment,
                           std::vector<double>& values) const;

  /// Double fast path, root value only (`values` is scratch, reused).
  double evaluate(const PartialAssignment& assignment, std::vector<double>& values) const;

  /// The cache-shaped layout of this tape (op reordering + slot reuse),
  /// computed eagerly by compile() and shared by every batched evaluator.
  /// Engines opt in via Options::relayout; see ac/tape_layout.hpp.
  const TapeLayout& layout() const { return *layout_; }

  /// The layout-based kernel schedule (KernelSchedule::compile(tape,
  /// layout())), compiled eagerly by compile() and shared by every batched
  /// evaluator running with Options::relayout on — evaluators no longer
  /// recompile it per instance.
  const std::shared_ptr<const KernelSchedule>& layout_schedule() const { return schedule_; }

  /// Pre-quantised leaf caches restored from a model artifact, or nullptr
  /// when the tape was compiled in-process.  Low-precision evaluators probe
  /// this before re-quantising tape.param_values(); see ac/leaf_cache.hpp.
  const std::shared_ptr<const LeafCacheSet>& leaf_caches() const { return leaf_caches_; }
  void attach_leaf_caches(std::shared_ptr<const LeafCacheSet> caches) {
    leaf_caches_ = std::move(caches);
  }

 private:
  CircuitTape() = default;

  util::ArrayStore<NodeKind> kinds_;
  util::ArrayStore<std::int32_t> child_offsets_;
  util::ArrayStore<NodeId> children_;
  util::ArrayStore<double> base_values_;
  util::ArrayStore<std::int32_t> ind_var_;
  util::ArrayStore<std::int32_t> ind_state_;
  util::ArrayStore<NodeId> op_ids_;
  util::ArrayStore<NodeId> param_ids_;
  util::ArrayStore<double> param_values_;
  util::ArrayStore<NodeId> indicator_ids_;

  util::ArrayStore<std::int32_t> var_offsets_;  ///< prefix sums of cardinalities
  util::ArrayStore<NodeId> indicator_index_;    ///< (var, state) -> NodeId or kInvalidNode
  NodeId root_ = kInvalidNode;
  std::vector<int> cardinalities_;
  std::shared_ptr<const TapeLayout> layout_;  ///< shared: CircuitTape is copyable
  std::shared_ptr<const KernelSchedule> schedule_;    ///< layout-based, shared
  std::shared_ptr<const LeafCacheSet> leaf_caches_;   ///< artifact-restored, may be null
};

/// Generic forward sweep over a tape.  Same Ops contract as evaluate_all;
/// leaves are supplied pre-converted (`params` aligned with
/// tape.param_ids(), `one`/`zero` the two indicator values) so callers pay
/// conversion once, not once per query.  `values` is clear()+push_back
/// reused: zero allocation in steady state, and no default-constructibility
/// requirement on the value type.
template <class Ops, class T>
void sweep_tape(const CircuitTape& tape, const std::vector<std::int32_t>& observed, Ops&& ops,
                const std::vector<T>& params, const T& one, const T& zero,
                std::vector<T>& values) {
  const auto& kinds = tape.kinds();
  const auto& offsets = tape.child_offsets();
  const auto& children = tape.children();
  const auto& ind_var = tape.ind_var();
  const auto& ind_state = tape.ind_state();
  values.clear();
  values.reserve(tape.num_nodes());
  std::size_t pi = 0;
  for (std::size_t i = 0; i < tape.num_nodes(); ++i) {
    switch (kinds[i]) {
      case NodeKind::kIndicator: {
        const std::int32_t obs = observed[static_cast<std::size_t>(ind_var[i])];
        values.push_back(obs < 0 || obs == ind_state[i] ? one : zero);
        break;
      }
      case NodeKind::kParameter:
        values.push_back(params[pi++]);
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax: {
        const std::int32_t begin = offsets[i];
        const std::int32_t end = offsets[i + 1];
        T acc = values[static_cast<std::size_t>(children[static_cast<std::size_t>(begin)])];
        for (std::int32_t k = begin + 1; k < end; ++k) {
          const T& rhs = values[static_cast<std::size_t>(children[static_cast<std::size_t>(k)])];
          if (kinds[i] == NodeKind::kSum) {
            acc = ops.add(acc, rhs);
          } else if (kinds[i] == NodeKind::kProd) {
            acc = ops.mul(acc, rhs);
          } else {
            acc = ops.max(acc, rhs);
          }
        }
        values.push_back(std::move(acc));
        break;
      }
    }
  }
}

/// Reusable per-Ops evaluator over a compiled tape: parameters are converted
/// through the Ops exactly once at construction, the value buffer is reused
/// across queries.  Results are bit-identical to evaluate_all on the source
/// circuit with the same Ops.
template <class Ops>
class TapeEvaluator {
 public:
  using Value = decltype(std::declval<Ops&>().from_parameter(0.0));

  TapeEvaluator(const CircuitTape& tape, Ops ops)
      : tape_(&tape),
        ops_(std::move(ops)),
        one_(ops_.from_indicator(true)),
        zero_(ops_.from_indicator(false)) {
    params_.reserve(tape.param_values().size());
    for (double v : tape.param_values()) params_.push_back(ops_.from_parameter(v));
  }

  /// Values of all nodes under `assignment`; the reference stays valid until
  /// the next evaluate_all call.
  const std::vector<Value>& evaluate_all(const PartialAssignment& assignment) {
    tape_->resolve_observed(assignment, observed_);
    sweep_tape(*tape_, observed_, ops_, params_, one_, zero_, values_);
    return values_;
  }

  /// Root value under `assignment`.
  const Value& evaluate_root(const PartialAssignment& assignment) {
    return evaluate_all(assignment)[static_cast<std::size_t>(tape_->root())];
  }

  const CircuitTape& tape() const { return *tape_; }

 private:
  const CircuitTape* tape_;
  Ops ops_;
  Value one_;
  Value zero_;
  std::vector<Value> params_;
  std::vector<Value> values_;
  std::vector<std::int32_t> observed_;
};

}  // namespace problp::ac
