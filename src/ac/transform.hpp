// Circuit transformations.
//
//  * binarize — decomposes every operator with more than two inputs into a
//    tree of 2-input operators, the first stage of ProbLP's hardware
//    generation (paper §3.4, Fig. 4).  Balanced trees minimise pipeline
//    depth; chain (left-fold) decomposition is kept as an ablation.
//
//  * to_max_circuit — replaces SUM with MAX, turning a marginal circuit into
//    the maximiser circuit an MPE query evaluates (paper §3.2.1).
#pragma once

#include "ac/circuit.hpp"

namespace problp::ac {

enum class DecompositionStyle {
  kBalanced,  ///< pairwise reduction, depth ceil(log2(fanin))
  kChain,     ///< left fold, depth fanin-1
};

struct BinarizeResult {
  Circuit circuit;
  /// node_map[old_id] == corresponding node in `circuit` (for ops, the root
  /// of the decomposition tree).
  std::vector<NodeId> node_map;
};

/// Rewrites the circuit so every operator has fanin <= 2.
BinarizeResult binarize(const Circuit& circuit, DecompositionStyle style = DecompositionStyle::kBalanced);

/// Same circuit with every SUM turned into a MAX.
Circuit to_max_circuit(const Circuit& circuit);

}  // namespace problp::ac
