// Shared arithmetic-ops adapters over the lowprec emulation types.
//
// Both the circuit evaluator (ac/low_precision_eval) and the hardware
// netlist simulator (hw/simulator) must perform *bit-identical* arithmetic —
// that equivalence is the correctness proof of the hardware generator — so
// they share these adapters.
#pragma once

#include "lowprec/fixed_point.hpp"
#include "lowprec/soft_float.hpp"

namespace problp::ac {

struct FixedOps {
  lowprec::FixedFormat fmt;
  lowprec::RoundingMode mode;
  lowprec::ArithFlags* flags;

  using Value = lowprec::FixedPoint;

  Value from_parameter(double v) const {
    return lowprec::FixedPoint::from_double(v, fmt, *flags, mode);
  }
  Value from_indicator(bool one) const {
    // 0 and 1 are exactly representable (I >= 1 enforced by the framework),
    // so indicators carry no quantisation error (paper §3.1.1).
    return lowprec::FixedPoint::from_double(one ? 1.0 : 0.0, fmt, *flags, mode);
  }
  Value add(const Value& a, const Value& b) const { return fx_add(a, b, *flags); }
  Value mul(const Value& a, const Value& b) const { return fx_mul(a, b, *flags, mode); }
  Value max(const Value& a, const Value& b) const { return fx_max(a, b); }
  Value zero() const { return Value(fmt); }
};

struct FloatOps {
  lowprec::FloatFormat fmt;
  lowprec::RoundingMode mode;
  lowprec::ArithFlags* flags;

  using Value = lowprec::SoftFloat;

  Value from_parameter(double v) const {
    return lowprec::SoftFloat::from_double(v, fmt, *flags, mode);
  }
  Value from_indicator(bool one) const {
    return lowprec::SoftFloat::from_double(one ? 1.0 : 0.0, fmt, *flags, mode);
  }
  Value add(const Value& a, const Value& b) const { return fl_add(a, b, *flags, mode); }
  Value mul(const Value& a, const Value& b) const { return fl_mul(a, b, *flags, mode); }
  Value max(const Value& a, const Value& b) const { return fl_max(a, b); }
  Value zero() const { return Value(fmt); }
};

}  // namespace problp::ac
