#include "ac/optimize.hpp"

#include <algorithm>
#include <cmath>

namespace problp::ac {

namespace {

bool is_constant(const Circuit& c, NodeId id) {
  return c.node(id).kind == NodeKind::kParameter;
}

bool is_constant_value(const Circuit& c, NodeId id, double v) {
  const Node& n = c.node(id);
  return n.kind == NodeKind::kParameter && n.value == v;
}

}  // namespace

Circuit fold_constants(const Circuit& circuit, OptimizeStats* stats) {
  require(circuit.root() != kInvalidNode, "fold_constants: circuit has no root");
  Circuit out(circuit.cardinalities());
  std::vector<NodeId> map(circuit.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    const Node& n = circuit.node(static_cast<NodeId>(i));
    NodeId mapped = kInvalidNode;
    switch (n.kind) {
      case NodeKind::kIndicator:
        mapped = out.add_indicator(n.var, n.state);
        break;
      case NodeKind::kParameter:
        mapped = out.add_parameter(n.value);
        break;
      case NodeKind::kSum:
      case NodeKind::kProd:
      case NodeKind::kMax: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(map[static_cast<std::size_t>(c)]);

        // Constant folding: every input known at compile time.
        const bool all_const = std::all_of(children.begin(), children.end(),
                                           [&](NodeId c) { return is_constant(out, c); });
        if (all_const) {
          double v = (n.kind == NodeKind::kProd) ? 1.0 : 0.0;
          for (NodeId c : children) {
            const double cv = out.node(c).value;
            if (n.kind == NodeKind::kProd) {
              v *= cv;
            } else if (n.kind == NodeKind::kSum) {
              v += cv;
            } else {
              v = std::max(v, cv);
            }
          }
          mapped = out.add_parameter(v);
          if (stats != nullptr) ++stats->folded_operators;
          break;
        }

        // Identity simplifications.  Partial constants are also combined
        // (e.g. prod(x, 0.5, 0.5) -> prod(x, 0.25)).
        std::vector<NodeId> kept;
        double const_acc = (n.kind == NodeKind::kProd) ? 1.0 : 0.0;
        bool saw_const = false;
        for (NodeId c : children) {
          if (is_constant(out, c)) {
            const double cv = out.node(c).value;
            saw_const = true;
            if (n.kind == NodeKind::kProd) {
              const_acc *= cv;
            } else if (n.kind == NodeKind::kSum) {
              const_acc += cv;
            } else {
              const_acc = std::max(const_acc, cv);
            }
          } else {
            kept.push_back(c);
          }
        }
        if (n.kind == NodeKind::kProd && saw_const && const_acc == 0.0) {
          mapped = out.add_parameter(0.0);  // annihilator
          if (stats != nullptr) ++stats->folded_operators;
          break;
        }
        const bool is_identity = (n.kind == NodeKind::kProd && const_acc == 1.0) ||
                                 (n.kind != NodeKind::kProd && const_acc == 0.0);
        if (saw_const && !is_identity) {
          kept.push_back(out.add_parameter(const_acc));
        } else if (saw_const && is_identity && stats != nullptr) {
          ++stats->identity_simplified;
        }
        switch (n.kind) {
          case NodeKind::kSum: mapped = out.add_sum(std::move(kept)); break;
          case NodeKind::kProd: mapped = out.add_prod(std::move(kept)); break;
          default: mapped = out.add_max(std::move(kept)); break;
        }
        break;
      }
    }
    map[i] = mapped;
  }
  out.set_root(map[static_cast<std::size_t>(circuit.root())]);
  return out;
}

Circuit prune_dead_nodes(const Circuit& circuit, OptimizeStats* stats) {
  require(circuit.root() != kInvalidNode, "prune_dead_nodes: circuit has no root");
  const auto live = circuit.reachable_from_root();
  Circuit out(circuit.cardinalities());
  std::vector<NodeId> map(circuit.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
    if (!live[i]) {
      if (stats != nullptr) ++stats->pruned_nodes;
      continue;
    }
    const Node& n = circuit.node(static_cast<NodeId>(i));
    switch (n.kind) {
      case NodeKind::kIndicator:
        map[i] = out.add_indicator(n.var, n.state);
        break;
      case NodeKind::kParameter:
        map[i] = out.add_parameter(n.value);
        break;
      default: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(map[static_cast<std::size_t>(c)]);
        if (n.kind == NodeKind::kSum) {
          map[i] = out.add_sum(std::move(children));
        } else if (n.kind == NodeKind::kProd) {
          map[i] = out.add_prod(std::move(children));
        } else {
          map[i] = out.add_max(std::move(children));
        }
        break;
      }
    }
  }
  out.set_root(map[static_cast<std::size_t>(circuit.root())]);
  return out;
}

Circuit optimize(const Circuit& circuit, OptimizeStats* stats) {
  return prune_dead_nodes(fold_constants(circuit, stats), stats);
}

}  // namespace problp::ac
