// Circuit optimisation passes, applied before hardware generation.
//
// AC compilers emit many operator nodes whose inputs are compile-time
// constants (parameter leaves): e.g. VE traces multiply CPT entries
// together long before any indicator is involved.  Hardware does not need
// to compute those — they fold into new parameter leaves, shrinking the
// datapath (and the predicted energy) with zero effect on semantics.
//
// Passes:
//   * fold_constants — bottom-up constant propagation: any operator whose
//     children are all parameter leaves becomes a parameter leaf.  Sound
//     because parameters never change between evaluations (§3.1.1: "CPT
//     parameters stay constant across AC evaluations").
//   * prune_dead_nodes — drops arena nodes that do not feed the root.
//   * optimize — both, to fixpoint (folding can orphan nodes).
//
// Identity simplifications (x*1, x+0) fall out of folding + the builder's
// hash-consing when the constants collapse.
#pragma once

#include "ac/circuit.hpp"

namespace problp::ac {

struct OptimizeStats {
  std::size_t folded_operators = 0;   ///< operators replaced by parameter leaves
  std::size_t pruned_nodes = 0;       ///< dead arena nodes dropped
  std::size_t identity_simplified = 0;  ///< x*1 / x+0 / max(x,0) rewrites
};

/// Folds operator nodes with all-constant inputs into parameter leaves and
/// applies identity simplifications (x*1 -> x, x+0 -> x, max(x,0) -> x).
Circuit fold_constants(const Circuit& circuit, OptimizeStats* stats = nullptr);

/// Rebuilds the circuit keeping only nodes reachable from the root.
Circuit prune_dead_nodes(const Circuit& circuit, OptimizeStats* stats = nullptr);

/// fold_constants followed by prune_dead_nodes.
Circuit optimize(const Circuit& circuit, OptimizeStats* stats = nullptr);

}  // namespace problp::ac
